//! # UTE — Unified Trace Environment
//!
//! A Rust reproduction of the SC 2000 performance framework *"From Trace
//! Generation to Visualization: A Performance Framework for Distributed
//! Parallel Systems"* (Wu, Bolmarcich, Snir, Wootton, Parpia, Chan, Lusk,
//! Gropp).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] — shared ids, time, event codes, bebits, errors, byte codec.
//! * [`clock`] — drifting local clocks, the switch-adapter global clock,
//!   and the clock-synchronization estimators of §2.2.
//! * [`faults`] — deterministic, seedable fault injection (truncation,
//!   bit flips, dropped flushes, missing nodes, clock jumps) feeding the
//!   salvage-mode robustness tests and `ute corrupt`.
//! * [`rawtrace`] — the AIX-trace-facility substitute: hookwords, trace
//!   buffers, per-node raw trace files.
//! * [`cluster`] — a discrete-event simulator of an SMP cluster running
//!   multi-threaded MPI programs, standing in for the IBM SP.
//! * [`format`] — the self-defining interval file format and its API
//!   (§2.3–§2.4).
//! * [`convert`] — the event→interval conversion utility (§3.1).
//! * [`merge`] — the merge / `slogmerge` utility with clock adjustment
//!   (§2.2, §3.1, §3.3).
//! * [`pipeline`] — the parallel execution layer: per-node conversion and
//!   clock adjustment fanned onto a worker pool, streamed into the k-way
//!   merge through bounded channels, byte-identical to the serial path.
//! * [`slog`] — the SLOG scalable log format with frames, pseudo-intervals
//!   and preview data (§4).
//! * [`stats`] — the declarative statistics generator and viewer (§3.2).
//! * [`view`] — headless time-space diagram rendering (Jumpshot
//!   substitute, §4).
//! * [`workloads`] — synthetic sPPM-like / FLASH-like programs and the
//!   scaling workloads used by the paper's Table 1.
//! * [`scenario`] — the seeded random workload generator behind
//!   `ute scenario`: topology / communication-pattern / phase /
//!   imbalance knobs expanded deterministically into cluster programs,
//!   so the conformance and diagnostics layers are exercised on traces
//!   nobody hand-crafted.
//! * [`store`] — crash safety: the write-ahead run journal and atomic
//!   artifact store behind `ute pipeline` / `ute resume`, plus the
//!   numbered abort points the chaos harness kills at.
//! * [`obs`] — the self-observability layer: global metrics registry,
//!   RAII span timers, and the span capture behind `--self-trace`.
//! * [`profile`] — the continuous-profiling layer behind `ute profile`:
//!   wall-clock stack sampler, per-span CPU-time attribution, the
//!   backpressure counter track, and the ranked bottleneck report.
//! * [`analyze`] — the programmable diagnostics layer over interval
//!   files: columnar trace table, composable operators, and the
//!   late-sender / imbalance / comm-pattern / critical-path diagnostics
//!   behind `ute analyze`.
//! * [`cli`] — the `ute` command-line tool as a library, including the
//!   self-trace sink and the `ute report` metrics report.
//! * [`verify`] — the conformance subsystem: invariant rule suites over
//!   raw/interval/SLOG artifacts, differential oracles, and the
//!   structure-aware decoder fuzzer behind `ute check` / `ute fuzz`.
//!
//! See `examples/quickstart.rs` for the end-to-end pipeline of Figure 2.

pub use ute_analyze as analyze;
pub use ute_cli as cli;
pub use ute_clock as clock;
pub use ute_cluster as cluster;
pub use ute_convert as convert;
pub use ute_core as core;
pub use ute_faults as faults;
pub use ute_format as format;
pub use ute_merge as merge;
pub use ute_obs as obs;
pub use ute_pipeline as pipeline;
pub use ute_profile as profile;
pub use ute_rawtrace as rawtrace;
pub use ute_scenario as scenario;
pub use ute_slog as slog;
pub use ute_stats as stats;
pub use ute_store as store;
pub use ute_verify as verify;
pub use ute_view as view;
pub use ute_workloads as workloads;
