//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives with the `parking_lot` API shape:
//! `lock()`/`read()`/`write()` return guards directly and a poisoned
//! lock is recovered instead of propagating the poison.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex with `parking_lot`'s non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// RwLock with `parking_lot`'s non-poisoning `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
