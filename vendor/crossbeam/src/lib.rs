//! Offline shim for `crossbeam`.
//!
//! Provides `crossbeam::thread::scope` with the 0.8 API shape
//! (closures receive a `&Scope`, `scope` returns a `Result`) on top of
//! `std::thread::scope`, and `crossbeam::channel::{bounded, unbounded}`
//! with the crossbeam-channel API shape (error types with `into_inner`,
//! iterator receivers) on top of `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> SendError<T> {
        /// Recovers the unsent value.
        pub fn into_inner(self) -> T {
            self.0
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The (bounded) channel is full; the value comes back.
        Full(T),
        /// The receiver is gone; the value comes back.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the unsent value.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders may still send).
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    enum Tx<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        tx: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                tx: self.tx.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a value, blocking while a bounded channel is full.
        /// Errors only when the receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.tx {
                Tx::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Tx::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }

        /// Sends without blocking: a full bounded channel returns the
        /// value as [`TrySendError::Full`] instead of waiting.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.tx {
                Tx::Bounded(s) => s.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
                Tx::Unbounded(s) => s.send(value).map_err(|e| TrySendError::Disconnected(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Receives a value, blocking while the channel is empty. Errors
        /// once the channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv().map_err(|_| RecvError)
        }

        /// Receives without blocking: an empty channel returns
        /// [`TryRecvError::Empty`] instead of waiting.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// A blocking iterator over received values; ends when every
        /// sender is gone.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.rx.iter()
        }
    }

    /// A bounded channel: sends block once `cap` values are in flight.
    /// A capacity of 0 makes every send rendezvous with a receive.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                tx: Tx::Bounded(tx),
            },
            Receiver { rx },
        )
    }

    /// An unbounded channel: sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                tx: Tx::Unbounded(tx),
            },
            Receiver { rx },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_blocks_and_preserves_order() {
            let (tx, rx) = bounded::<u32>(2);
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.iter().collect();
            handle.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<u32>>());
        }

        #[test]
        fn try_send_reports_full_and_disconnected() {
            let (tx, rx) = bounded::<u32>(1);
            assert!(tx.try_send(1).is_ok());
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            drop(rx);
            assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
            assert_eq!(TrySendError::Full(7).into_inner(), 7);
        }

        #[test]
        fn dropped_receiver_errors_the_sender() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            let err = tx.send(7).unwrap_err();
            assert_eq!(err.into_inner(), 7);
        }

        #[test]
        fn dropped_senders_end_the_receiver() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}

pub mod thread {
    use std::any::Any;

    /// Result of joining a scoped thread or closing a scope.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle passed to scoped closures; spawns more scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope; all threads spawned in it are joined
    /// before `scope` returns. Unlike crossbeam, an unjoined panicking
    /// thread aborts via std's propagation rather than surfacing in the
    /// `Err` arm — the workspace joins every handle, so the arms match.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::thread::scope(|s| Ok(f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread as cb;

    #[test]
    fn scope_spawn_join() {
        let data = [1, 2, 3];
        let total = cb::scope(|s| {
            let hs: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            hs.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(total, 12);
    }

    #[test]
    fn spawned_panic_is_catchable_at_join() {
        let r = cb::scope(|s| {
            let h = s.spawn(|_| -> i32 { panic!("boom") });
            h.join()
        })
        .unwrap();
        assert!(r.is_err());
    }
}
