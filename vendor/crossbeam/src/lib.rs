//! Offline shim for `crossbeam`.
//!
//! Provides `crossbeam::thread::scope` with the 0.8 API shape
//! (closures receive a `&Scope`, `scope` returns a `Result`) on top of
//! `std::thread::scope`.

pub mod thread {
    use std::any::Any;

    /// Result of joining a scoped thread or closing a scope.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle passed to scoped closures; spawns more scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope; all threads spawned in it are joined
    /// before `scope` returns. Unlike crossbeam, an unjoined panicking
    /// thread aborts via std's propagation rather than surfacing in the
    /// `Err` arm — the workspace joins every handle, so the arms match.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::thread::scope(|s| Ok(f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread as cb;

    #[test]
    fn scope_spawn_join() {
        let data = [1, 2, 3];
        let total = cb::scope(|s| {
            let hs: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            hs.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(total, 12);
    }

    #[test]
    fn spawned_panic_is_catchable_at_join() {
        let r = cb::scope(|s| {
            let h = s.spawn(|_| -> i32 { panic!("boom") });
            h.join()
        })
        .unwrap();
        assert!(r.is_err());
    }
}
