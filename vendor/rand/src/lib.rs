//! Offline shim for the `rand` crate.
//!
//! A deterministic xorshift64* generator behind the `rand 0.8` trait
//! names the workspace uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, and
//! [`rngs::SmallRng`]. Not cryptographic; statistically adequate for
//! simulation jitter and tests.

use std::ops::Range;

/// Core trait: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding by `u64`, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing sampling trait.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0f64..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xorshift64* with a splitmix64-scrambled seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // splitmix64 step guarantees a nonzero, well-mixed state.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            SmallRng {
                state: z | 1, // never zero
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    /// Alias so `rngs::StdRng` users keep compiling.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn int_range_in_bounds_and_covers() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            let v = r.gen_range(0u16..4);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
