//! Offline shim for `proptest`.
//!
//! Deterministic property testing with the proptest 1.x API shape the
//! workspace uses: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`, range/tuple/`Just`/`prop_oneof!`/`any` strategies, and
//! `prop::collection::vec`. Failing cases are reported with their case
//! number and seed but are **not shrunk** — rerun with the printed
//! seed to reproduce.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe boxed strategy.
    pub type BoxedStrategy<T> = Box<dyn DynStrategy<T>>;

    /// Object-safe sampling, blanket-implemented for every strategy.
    pub trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut SmallRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut SmallRng) -> S::Value {
            self.sample(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            self.as_ref().sample_dyn(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// `strategy.prop_map(f)`.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut SmallRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].sample_dyn(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

    /// Types with a canonical whole-domain strategy ([`super::arbitrary::any`]).
    pub trait Arbitrary {
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> bool {
            rng.gen_range(0u8..2) == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty : $w:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> $t {
                    use rand::RngCore;
                    rng.next_u64() as $w as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
                        i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut SmallRng) -> f64 {
            rng.gen_range(-1.0e9..1.0e9)
        }
    }

    /// Strategy over a type's whole [`Arbitrary`] domain.
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// A failed property: the message from the failing `prop_assert*`.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Seed for case `case` of a run keyed by the test name; fixed per
    /// (name, case) so failures reproduce across runs.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes().chain(case.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// The `prop` paths (`prop::collection::vec`, ...) from the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

// Re-exported so the macros below resolve the RNG through `$crate`
// without requiring callers to depend on `rand` themselves.
#[doc(hidden)]
pub use rand;

pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Builds a [`strategy::OneOf`] choosing uniformly between the arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts inside a property; fails the case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert!(a == b)` with a diff-style message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// `prop_assert!(a != b)` with a diff-style message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// The proptest entry macro: generates one `#[test]` per property that
/// samples its strategies `config.cases` times.
///
/// Implemented by incremental recursion (`@fns`) so one optional
/// `#![proptest_config(..)]` header can apply to every function —
/// macro_rules cannot mix the two repetition depths directly.
#[macro_export]
macro_rules! proptest {
    // Recursion end.
    (@fns ($config:expr)) => {};

    // Expand one property function, then recurse on the rest.
    (@fns ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for case in 0..config.cases {
                let seed = $crate::test_runner::case_seed(stringify!($name), case);
                let mut rng =
                    <$crate::rand::rngs::SmallRng as $crate::rand::SeedableRng>::seed_from_u64(seed);
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{} (seed {:#x}): {}",
                        stringify!($name), case, config.cases, seed, e
                    );
                }
            }
        }
        $crate::proptest!(@fns ($config) $($rest)*);
    };

    // Entry with a config header.
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::proptest!(@fns ($config) $($rest)*);
    };

    // Entry without one.
    ( $($rest:tt)* ) => {
        $crate::proptest!(@fns ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn oneof_and_map_compose() {
        use rand::SeedableRng;
        let s = prop_oneof![(0u16..4).prop_map(|v| v as u64), Just(99u64),];
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut saw_just = false;
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v < 4 || v == 99);
            saw_just |= v == 99;
        }
        assert!(saw_just);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(any::<u8>(), 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10, "bad len {}", v.len());
        }

        #[test]
        fn tuples_sample_independently((a, b) in (0u32..10, 0u32..10)) {
            prop_assert!(a < 10);
            prop_assert!(b < 10);
        }
    }

    proptest! {
        #[test]
        #[should_panic]
        fn failing_property_panics(x in 0u8..10) {
            prop_assert!(x > 200, "x was {}", x);
        }
    }
}
