//! Offline shim for the `bytes` crate.
//!
//! Implements the subset of [`Buf`]/[`BufMut`] the workspace uses:
//! little-endian scalar reads that advance a `&[u8]` cursor, and
//! little-endian scalar appends onto a `Vec<u8>`.

/// Read side: consuming little-endian scalars from a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Advances the cursor by `n` bytes. Panics if `n > remaining()`.
    fn advance(&mut self, n: usize);
    /// Copies `dst.len()` bytes out and advances. Panics on underrun.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write side: appending little-endian scalars to a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(7);
        v.put_u16_le(0xbeef);
        v.put_u32_le(0xdead_beef);
        v.put_u64_le(42);
        v.put_i64_le(-9);
        v.put_f64_le(1.5);
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xbeef);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_i64_le(), -9);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }
}
