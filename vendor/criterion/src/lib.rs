//! Offline shim for `criterion`.
//!
//! A minimal wall-clock harness with the criterion 0.5 API shape the
//! workspace benches use: groups, `bench_function`/`bench_with_input`,
//! `iter`/`iter_batched`, ids, and throughput annotations. It runs a
//! fixed small number of timed samples and prints mean time per
//! iteration (plus derived throughput) to stdout — no statistics,
//! plots, or baselines.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; ignored by the shim.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation for a group's current input size.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A `function/parameter` benchmark id.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Times closures handed over by a benchmark body.
pub struct Bencher {
    samples: u32,
    /// Mean seconds per iteration of the last `iter*` call.
    last_mean: f64,
}

impl Bencher {
    /// Times `f`, running `samples` measured iterations.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // One warm-up iteration outside the timed region.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.last_mean = start.elapsed().as_secs_f64() / self.samples as f64;
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, T, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> T,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.last_mean = total.as_secs_f64() / self.samples as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u32,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion's sample_size counts statistical samples; the shim
        // reuses it (capped) as the measured iteration count.
        self.samples = (n as u32).clamp(1, 50);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            last_mean: 0.0,
        };
        f(&mut b);
        self.report(&id.into_bench_id(), b.last_mean);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            last_mean: 0.0,
        };
        f(&mut b, input);
        self.report(&id.into_bench_id(), b.last_mean);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &str, mean_secs: f64) {
        let mut line = format!("{}/{}: {:.3} ms/iter", self.name, id, mean_secs * 1e3);
        match self.throughput {
            Some(Throughput::Elements(n)) if mean_secs > 0.0 => {
                line += &format!(" ({:.0} elem/s)", n as f64 / mean_secs);
            }
            Some(Throughput::Bytes(n)) if mean_secs > 0.0 => {
                line += &format!(" ({:.0} B/s)", n as f64 / mean_secs);
            }
            _ => {}
        }
        println!("{line}");
    }
}

/// Accepts both `&str` and [`BenchmarkId`] where criterion does.
pub trait IntoBenchId {
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.name
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        g.bench_function(BenchmarkId::new("count", 100), |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn iter_batched_consumes_setup() {
        let mut c = Criterion::default();
        c.benchmark_group("shim")
            .sample_size(2)
            .bench_function("batched", |b| {
                b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::LargeInput)
            });
    }
}
