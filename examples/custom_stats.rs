//! Writing a custom statistics program in the paper's declarative table
//! language (§3.2), against a halo-exchange stencil trace.
//!
//! Run with: `cargo run --example custom_stats`

use ute::cluster::Simulator;
use ute::convert::convert_job;
use ute::format::file::{FramePolicy, IntervalFileReader};
use ute::format::profile::Profile;
use ute::merge::{merge_files, MergeOptions};
use ute::stats::{parse_program, run_tables};
use ute::workloads::micro::stencil;

const PROGRAM: &str = r#"
# The paper's example: average duration per (node, cpu) of intervals that
# started during the first 2 seconds.
table name=sample
      condition=(start < 2)
      x=("node", node)
      x=("processor", cpu)
      y=("avg(duration)", dura, avg)

# Message volume per (sender node, destination rank).
table name=traffic
      condition=(state >= 256 && msgSizeSent > 0)
      x=("node", node)
      x=("peer", peer)
      y=("bytes", msgSizeSent, sum)
      y=("messages", msgSizeSent, count)

# How much of each second is spent inside MPI, per node.
table name=mpi_per_second
      condition=(state >= 256)
      x=("node", node)
      x=("second", bin(start, 10))
      y=("mpi time", dura, sum)
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = stencil(4, 20, 32 << 10);
    let result = Simulator::new(w.config, &w.job)?.run()?;
    let profile = Profile::standard();
    let converted = convert_job(
        &result.raw_files,
        &result.threads,
        &profile,
        FramePolicy::default(),
        true,
    )?;
    let files: Vec<&[u8]> = converted
        .iter()
        .map(|c| c.interval_file.as_slice())
        .collect();
    let merged = merge_files(&files, &profile, &MergeOptions::default())?;
    let reader = IntervalFileReader::open(&merged.merged, &profile)?;
    let intervals: Result<Vec<_>, _> = reader.intervals().collect();
    let intervals = intervals?;

    let specs = parse_program(PROGRAM)?;
    let tables = run_tables(&specs, &profile, &intervals)?;
    for t in &tables {
        println!("=== {} ===", t.name);
        print!("{}", t.to_tsv());
        println!();
    }

    // Sanity: every rank sends 20 steps × 2 neighbours × 32 KiB.
    let traffic = tables.iter().find(|t| t.name == "traffic").unwrap();
    let total: f64 = traffic.rows.values().map(|ys| ys[0]).sum();
    assert_eq!(total as u64, 4 * 20 * 2 * (32 << 10));
    println!("traffic table sums to the expected 4×20×2×32 KiB.");
    Ok(())
}
