//! Clock synchronization walkthrough (§1.1, §2.2, Figure 1).
//!
//! 1. Reproduce Figure 1: accumulated timestamp discrepancies among four
//!    local clocks over ~140 s.
//! 2. Sample (global, local) clock pairs the way each node's sampler
//!    thread does, including the §5 deschedule outlier.
//! 3. Compare the paper's RMS-of-slope-segments estimator against the
//!    alternatives it discusses, with and without outlier filtering.
//!
//! Run with: `cargo run --example clock_sync`

use ute::clock::discrepancy::{discrepancy_series, figure1_default_params};
use ute::clock::drift::LocalClock;
use ute::clock::filter::filter_outliers_default;
use ute::clock::global::GlobalClock;
use ute::clock::ratio::{rms_all_slopes, rms_segments, ClockFit, RatioEstimator};
use ute::clock::sample::{sample_clocks, SamplerConfig};
use ute::core::time::{Duration, LocalTime, Time};

fn main() {
    // ---- Figure 1 -----------------------------------------------------
    println!("=== Figure 1: accumulated discrepancy vs reference clock 0 ===");
    let rows = discrepancy_series(
        &figure1_default_params(),
        0,
        Duration::from_secs(140),
        Duration::from_secs(10),
    );
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "t (s)", "clock1 (µs)", "clock2 (µs)", "clock3 (µs)"
    );
    for r in &rows {
        println!(
            "{:>8.0} {:>12.1} {:>12.1} {:>12.1}",
            r.reference_elapsed as f64 / 1e9,
            r.deviation[1] as f64 / 1e3,
            r.deviation[2] as f64 / 1e3,
            r.deviation[3] as f64 / 1e3,
        );
    }

    // ---- sampling and fitting ------------------------------------------
    println!("\n=== ratio estimation on a +37 ppm clock with outliers ===");
    let params = ute::clock::drift::ClockParams::with_ppm(37.0, 120);
    let global = GlobalClock::ideal();
    let mut local = LocalClock::new(params);
    let cfg = SamplerConfig {
        period: Duration::from_secs(1),
        outlier_every: Some(25), // a deschedule every 25th sample (§5)
        outlier_delay: Duration::from_millis(3),
    };
    let samples = sample_clocks(
        &global,
        &mut local,
        &cfg,
        Time::ZERO,
        Time::from_secs_f64(140.0),
    );
    let truth = 1.0 / (1.0 + 37e-6);
    println!("true global/local ratio R = {truth:.9}");

    let report = |name: &str, r: f64| {
        println!(
            "  {name:<28} R = {r:.9}  (error {:+.3} ppm)",
            (r - truth) / truth * 1e6
        );
    };
    report("RMS of segments (paper)", rms_segments(&samples));
    report("RMS of all slopes", rms_all_slopes(&samples));
    let filtered = filter_outliers_default(&samples);
    println!(
        "  outlier filter kept {}/{} samples",
        filtered.len(),
        samples.len()
    );
    report("RMS of segments, filtered", rms_segments(&filtered));

    // ---- adjusting a timestamp -----------------------------------------
    let fit = ClockFit::fit(&filtered, RatioEstimator::RmsSegments).unwrap();
    let some_local = LocalTime(70_000_000_000);
    println!(
        "\nlocal timestamp {} adjusts to global {}",
        some_local,
        fit.adjust(some_local)
    );
    let err = (rms_segments(&filtered) - truth).abs() / truth * 1e6;
    assert!(
        err < 1.0,
        "filtered estimator should be sub-ppm, got {err:.3} ppm"
    );
    println!("filtered estimate is within {err:.3} ppm of the truth.");
}
