//! The FLASH scenario of Figures 6 and 7: trace a phased adaptive-mesh-
//! style run, build the SLOG preview, locate the interesting time ranges
//! (Figure 6's reading), and display one frame from the busy middle phase
//! (Figure 7's workflow: preview → pick an instant → frame display).
//!
//! Run with: `cargo run --example flash_preview`

use ute::cluster::Simulator;
use ute::convert::convert_job;
use ute::format::file::{FramePolicy, IntervalFileReader};
use ute::format::profile::Profile;
use ute::merge::{merge_files, slogmerge, MergeOptions};
use ute::slog::builder::BuildOptions;
use ute::stats::predefined::predefined_tables;
use ute::stats::run_tables;
use ute::stats::viewer::heatmap_ascii;
use ute::view::model::{frame_view, ViewConfig};
use ute::view::preview::{interesting_ranges, render_ascii};
use ute::workloads::flash::{workload, FlashParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = workload(FlashParams::default());
    println!("tracing FLASH-like job ({} nodes) …", w.config.nodes);
    let result = Simulator::new(w.config, &w.job)?.run()?;

    let profile = Profile::standard();
    let converted = convert_job(
        &result.raw_files,
        &result.threads,
        &profile,
        FramePolicy::default(),
        true,
    )?;
    let files: Vec<&[u8]> = converted
        .iter()
        .map(|c| c.interval_file.as_slice())
        .collect();

    // Figure 7's smaller window: the whole-run preview.
    let (slog, _) = slogmerge(
        &files,
        &profile,
        &MergeOptions::default(),
        BuildOptions {
            nframes: 32,
            preview_bins: 64,
            arrows: true,
        },
    )?;
    println!("\n=== Figure 7: whole-run preview ===");
    print!("{}", render_ascii(&slog.preview, 8));
    let ranges = interesting_ranges(&slog.preview, 0.2);
    println!("interesting time ranges (the Figure 6 reading):");
    for (a, b) in &ranges {
        println!("  {a:.3}s – {b:.3}s");
    }
    assert!(
        ranges.len() >= 3,
        "the FLASH shape should show ≥3 busy phases, found {ranges:?}"
    );

    // "The user has selected a time instant in this middle section which
    // causes the display of the data in the frame containing this
    // instant."
    let middle = (ranges[1].0 + ranges[1].1) / 2.0;
    let t = (middle * 1e9) as u64;
    let frame = frame_view(&slog, t, &ViewConfig::default())?;
    println!(
        "\n=== frame containing t = {middle:.3}s ({} bars, {} arrows) ===",
        frame.bars.len(),
        frame.arrows.len()
    );
    print!("{}", ute::view::ascii::render(&frame, 100));

    // Figure 6 proper: the pre-defined statistics table rendered as a
    // heat map (sum of interesting durations per node × 50 time bins).
    let merged = merge_files(&files, &profile, &MergeOptions::default())?;
    let reader = IntervalFileReader::open(&merged.merged, &profile)?;
    let intervals: Result<Vec<_>, _> = reader.intervals().collect();
    let tables = run_tables(&predefined_tables(), &profile, &intervals?)?;
    let fig6 = tables
        .iter()
        .find(|t| t.name == "interesting_by_node_bin")
        .expect("predefined table exists");
    println!("\n=== Figure 6: statistics viewer ===");
    print!("{}", heatmap_ascii(fig6, 0)?);
    Ok(())
}
