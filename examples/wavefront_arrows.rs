//! A pipelined wavefront traced end to end, showing the message arrows
//! marching diagonally across thread timelines, and the file-backed
//! streaming reader working on the merged file without loading it whole.
//!
//! Run with: `cargo run --example wavefront_arrows`

use ute::cluster::Simulator;
use ute::convert::convert_job;
use ute::format::file::FramePolicy;
use ute::format::file_io::FileIntervalReader;
use ute::format::profile::Profile;
use ute::merge::{merge_files, slogmerge, MergeOptions};
use ute::slog::builder::BuildOptions;
use ute::slog::record::SlogRecord;
use ute::view::model::{build_view, ViewConfig};
use ute::workloads::patterns::wavefront;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = wavefront(6, 10, 16 << 10);
    println!("tracing a 6-rank, 10-sweep pipelined wavefront …");
    let result = Simulator::new(w.config, &w.job)?.run()?;

    let profile = Profile::standard();
    let converted = convert_job(
        &result.raw_files,
        &result.threads,
        &profile,
        FramePolicy::default(),
        true,
    )?;
    let files: Vec<&[u8]> = converted
        .iter()
        .map(|c| c.interval_file.as_slice())
        .collect();

    // Visualization: the arrows form diagonals, one per sweep front.
    let (slog, _) = slogmerge(
        &files,
        &profile,
        &MergeOptions::default(),
        BuildOptions::default(),
    )?;
    let view = build_view(
        &slog,
        &ViewConfig {
            hide_running: true,
            ..ViewConfig::default()
        },
    )?;
    print!("{}", ute::view::ascii::render(&view, 110));
    let arrows: usize = slog
        .frames
        .iter()
        .flat_map(|f| &f.records)
        .filter(|r| matches!(r, SlogRecord::Arrow(a) if !a.pseudo))
        .count();
    println!("\n{arrows} message arrows (expected 5 hops x 10 sweeps = 50)");
    assert_eq!(arrows, 50);

    // The streaming reader: write the merged file to disk and walk it
    // frame by frame without ever holding the whole file in memory.
    let merged = merge_files(&files, &profile, &MergeOptions::default())?;
    let dir = std::path::Path::new("target/examples");
    std::fs::create_dir_all(dir)?;
    let path = dir.join("wavefront_merged.ivl");
    std::fs::write(&path, &merged.merged)?;
    let mut reader = FileIntervalReader::open(&path, &profile)?;
    let total = reader.total_records()?;
    let mut mpi_time = 0u64;
    reader.for_each_interval(|iv| {
        if iv.itype.state.as_mpi().is_some() {
            mpi_time += iv.duration;
        }
    })?;
    println!(
        "streamed {} records from {} ({} bytes); total MPI time {:.3} ms",
        total,
        path.display(),
        merged.merged.len(),
        mpi_time as f64 / 1e6
    );
    Ok(())
}
