//! The sPPM scenario of Figures 8 and 9: trace a 4-node × 8-way-SMP run
//! with four threads per task (one making MPI calls), merge into SLOG,
//! and render the thread-activity and processor-activity views.
//!
//! Run with: `cargo run --example sppm_views`
//! SVG output lands in `target/examples/`.

use ute::cluster::Simulator;
use ute::convert::convert_job;
use ute::format::file::FramePolicy;
use ute::format::profile::Profile;
use ute::merge::{slogmerge, MergeOptions};
use ute::slog::builder::BuildOptions;
use ute::view::ascii;
use ute::view::model::{build_view, ViewConfig, ViewKind};
use ute::view::svg::{render as render_svg, SvgOptions};
use ute::workloads::sppm::{workload, SppmParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = workload(SppmParams::default());
    println!(
        "tracing sPPM-like job: {} nodes × {}-way SMP, {} threads/task",
        w.config.nodes, w.config.cpus_per_node, w.config.threads_per_task
    );
    let cpus = w.config.cpus_per_node;
    let result = Simulator::new(w.config, &w.job)?.run()?;

    let profile = Profile::standard();
    let converted = convert_job(
        &result.raw_files,
        &result.threads,
        &profile,
        FramePolicy::default(),
        true,
    )?;
    let files: Vec<&[u8]> = converted
        .iter()
        .map(|c| c.interval_file.as_slice())
        .collect();
    let (slog, stats) = slogmerge(
        &files,
        &profile,
        &MergeOptions::default(),
        BuildOptions::default(),
    )?;
    println!(
        "slogmerge: {} records merged into {} frames",
        stats.records_out,
        slog.frames.len()
    );

    let out_dir = std::path::Path::new("target/examples");
    std::fs::create_dir_all(out_dir)?;

    // Figure 8: thread-activity view. One timeline per thread; the idle
    // worker thread and the system activity on non-MPI threads are
    // visible.
    let thread_view = build_view(
        &slog,
        &ViewConfig {
            kind: ViewKind::ThreadActivity,
            hide_running: false,
            ..ViewConfig::default()
        },
    )?;
    println!("\n=== Figure 8: thread-activity view ===");
    print!("{}", ascii::render(&thread_view, 110));
    std::fs::write(
        out_dir.join("fig8_thread_activity.svg"),
        render_svg(&thread_view, &SvgOptions::default()),
    )?;

    // Figure 9: processor-activity view. One timeline per CPU; with 8
    // CPUs per node and only a few busy threads, most CPU rows are idle,
    // and MPI threads hop between CPUs.
    let cpu_view = build_view(
        &slog,
        &ViewConfig {
            kind: ViewKind::ProcessorActivity,
            cpus_per_node: Some(cpus),
            ..ViewConfig::default()
        },
    )?;
    println!("\n=== Figure 9: processor-activity view ===");
    print!("{}", ascii::render(&cpu_view, 110));
    std::fs::write(
        out_dir.join("fig9_processor_activity.svg"),
        render_svg(&cpu_view, &SvgOptions::default()),
    )?;

    // Bonus: thread-processor view shows the migration directly.
    let migration_view = build_view(
        &slog,
        &ViewConfig {
            kind: ViewKind::ThreadProcessor,
            hide_running: false,
            ..ViewConfig::default()
        },
    )?;
    std::fs::write(
        out_dir.join("thread_processor.svg"),
        render_svg(&migration_view, &SvgOptions::default()),
    )?;
    println!(
        "\nwrote {}/fig8_thread_activity.svg, fig9_processor_activity.svg, thread_processor.svg",
        out_dir.display()
    );
    Ok(())
}
