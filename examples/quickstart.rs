//! Quickstart: the paper's Figure 5 code segment, end to end.
//!
//! Figure 5 computes "the total number of bytes in the fields whose field
//! name is `msgSizeSent`" by reading an interval file record by record
//! through the simple API (§2.4): `readHeader` → `readFrameDir` →
//! `readProfile` → `getInterval` loop → `getItemByName`.
//!
//! We first have to *produce* an interval file, which on the paper's
//! system meant running an MPI program on an IBM SP. Here the cluster
//! simulator stands in: we trace a small ping-pong job, convert the raw
//! per-node traces to interval files, and then run the Figure 5 loop.
//!
//! Run with: `cargo run --example quickstart`

use ute::cluster::Simulator;
use ute::convert::convert_job;
use ute::format::file::{FramePolicy, IntervalFileReader};
use ute::format::profile::Profile;
use ute::workloads::micro::ping_pong;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- trace generation (left half of Figure 2) --------------------
    let w = ping_pong(32, 64 << 10); // 32 rounds of 64 KiB each way
    println!("running `{}` on {} nodes …", w.name, w.config.nodes);
    let result = Simulator::new(w.config, &w.job)?.run()?;
    println!(
        "  {} raw records cut, {:.3}s simulated",
        result.stats.events_cut,
        result.stats.end_time.as_secs_f64()
    );

    // ---- convert: event trace files → interval files ------------------
    let profile = Profile::standard();
    let outputs = convert_job(
        &result.raw_files,
        &result.threads,
        &profile,
        FramePolicy::default(),
        true,
    )?;

    // ---- Figure 5: total bytes sent, straight off the record bytes ----
    //
    //   if ((infp = readHeader("input_file", &header)) == NULL) exit(-1);
    //   if (readFrameDir(infp, &framedir) <= 0) exit(-1);
    //   if (readProfile("profile.ute", &table, header.masks) < 0) exit(-1);
    //   while ((length = getInterval(infp, &framedir, buffer, bufSize)) > 0)
    //     if ((nbits = getItemByName(&table, &buffer, length,
    //                                "msgSizeSent", &ilong) > 0)
    //       totalSize += ilong;
    //   printf("total bytes sent = %lld\n", totalSize);
    let mut total_size: i64 = 0;
    for out in &outputs {
        let reader = IntervalFileReader::open(&out.interval_file, &profile)?; // readHeader
        let _first_dir = reader.read_frame_dir(0)?; // readFrameDir
        for body in reader.record_bodies() {
            // getInterval
            let body = body?;
            if let Some(v) = profile.get_item_by_name(reader.mask, body, "msgSizeSent")? {
                // getItemByName
                total_size += v.as_int().unwrap_or(0);
            }
        }
    }
    println!("total bytes sent = {total_size}");

    // Each of the 32 rounds sends 64 KiB in each direction.
    assert_eq!(total_size, 2 * 32 * (64 << 10));
    println!("matches the workload's 2 × 32 × 64 KiB exactly.");
    Ok(())
}
