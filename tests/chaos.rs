//! Crash-safety properties of the journaled pipeline, driven through the
//! store's deterministic in-process abort points: a soft kill at *every*
//! abort point a pipeline run crosses — each journal append, each
//! mid-artifact write, each temp-durable and publish transition — must
//! leave a directory that `ute resume` finishes to byte-identical
//! artifacts, with no stale temps, at `--jobs 1` and `--jobs 4` alike.
//!
//! The hard-kill variants (`ute chaos --mode point|timed`, a real child
//! process dying on SIGKILL/abort) need the real `ute` binary and run in
//! the CI `chaos-matrix` job; the soft-abort path here exercises the
//! identical store code (`Err` propagation with no cleanup) at every
//! boundary deterministically.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

use ute::store::chaos;

/// Every test in this binary reads or arms the store's process-global
/// abort-point counter; serialize them so armed points fire where
/// intended.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn run(tokens: &[&str]) -> ute::core::error::Result<String> {
    let argv: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
    ute::cli::run(&argv)
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ute_chaos_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// The directory's published files — name and bytes, sorted — excluding
/// the journal (its record sequence legitimately differs between an
/// uninterrupted run and a kill + resume) and in-flight temps (asserted
/// absent separately).
fn files_of(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut v: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap())
        .filter(|e| e.file_type().unwrap().is_file())
        .map(|e| {
            (
                e.file_name().into_string().unwrap(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .filter(|(n, _)| n != "journal.utj" && !n.contains(".tmp."))
        .collect();
    v.sort();
    v
}

fn temps_of(dir: &Path) -> Vec<String> {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .filter(|n| n.contains(".tmp."))
        .collect()
}

fn pipeline(out: &Path, jobs: &str) -> ute::core::error::Result<String> {
    run(&[
        "pipeline",
        "--workload",
        "pingpong",
        "--out",
        out.to_str().unwrap(),
        "--jobs",
        jobs,
    ])
}

fn counter(name: &str) -> u64 {
    ute::obs::snapshot().counter(name).unwrap_or(0)
}

#[test]
fn soft_kill_at_every_abort_point_resumes_byte_identical() {
    let _g = lock();
    for jobs in ["1", "4"] {
        let clean = tmpdir(&format!("clean_j{jobs}"));
        let before = chaos::points_crossed();
        pipeline(&clean, jobs).unwrap();
        let points = chaos::points_crossed() - before;
        assert!(points > 20, "suspiciously few abort points: {points}");
        let want = files_of(&clean);

        for idx in 0..points {
            let victim = tmpdir(&format!("victim_j{jobs}"));
            chaos::arm_soft(chaos::points_crossed() + idx);
            let r = pipeline(&victim, jobs);
            chaos::disarm_soft();
            let e = r.expect_err(&format!("armed point {idx} never fired (jobs {jobs})"));
            assert!(e.to_string().contains("chaos"), "point {idx}: {e}");

            run(&["resume", victim.to_str().unwrap()])
                .unwrap_or_else(|e| panic!("resume after kill at point {idx} failed: {e}"));
            assert_eq!(
                files_of(&victim),
                want,
                "artifacts diverged after kill at point {idx} (jobs {jobs})"
            );
            assert_eq!(
                temps_of(&victim),
                Vec::<String>::new(),
                "stale temps after resume from point {idx} (jobs {jobs})"
            );
            std::fs::remove_dir_all(&victim).ok();
        }
        std::fs::remove_dir_all(&clean).ok();
    }
}

#[test]
fn resume_skips_published_stages_and_counts_them() {
    let _g = lock();
    let dir = tmpdir("skip");
    pipeline(&dir, "1").unwrap();
    let skipped = counter("store/stages_skipped");
    let reran = counter("store/stages_run");
    let msg = run(&["resume", dir.to_str().unwrap()]).unwrap();
    assert_eq!(
        counter("store/stages_skipped") - skipped,
        5,
        "all five published stages must be skipped:\n{msg}"
    );
    assert_eq!(
        counter("store/stages_run"),
        reran,
        "a fully published run must re-run nothing:\n{msg}"
    );
    assert!(msg.contains("already published"), "{msg}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_reruns_a_stage_whose_published_artifact_was_tampered() {
    let _g = lock();
    let dir = tmpdir("tamper");
    pipeline(&dir, "1").unwrap();
    let want = files_of(&dir);
    // Flip a byte in a published artifact: the journal's content hash no
    // longer matches, so resume must re-run the merge stage (and only
    // from there recover the exact bytes).
    let p = dir.join("merged.ivl");
    let mut bytes = std::fs::read(&p).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&p, &bytes).unwrap();
    let msg = run(&["resume", dir.to_str().unwrap()]).unwrap();
    assert!(
        msg.contains("resume: merge:") || msg.contains("merged"),
        "{msg}"
    );
    assert_eq!(files_of(&dir), want, "tampered artifact was not restored");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_discards_a_torn_journal_tail() {
    let _g = lock();
    let dir = tmpdir("torn");
    pipeline(&dir, "1").unwrap();
    let jp = dir.join("journal.utj");
    let mut data = std::fs::read(&jp).unwrap();
    // A record that lost its tail to the kill: no trailing newline, and
    // the checksum cannot match the mangled body.
    data.extend_from_slice(b"00000000deadbeef stage-start stage=mer");
    std::fs::write(&jp, &data).unwrap();
    let msg = run(&["resume", dir.to_str().unwrap()]).unwrap();
    assert!(msg.contains("torn tail discarded"), "{msg}");
    assert!(msg.contains("already published"), "{msg}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disk_budget_halts_gracefully_and_resume_finishes() {
    let _g = lock();
    let clean = tmpdir("budget_clean");
    pipeline(&clean, "1").unwrap();

    let dir = tmpdir("budget");
    let msg = run(&[
        "pipeline",
        "--workload",
        "pingpong",
        "--out",
        dir.to_str().unwrap(),
        "--jobs",
        "1",
        "--disk-budget",
        "10k",
    ])
    .unwrap();
    // Graceful partial-results exit: success, an explanation, a journal,
    // and no final artifact published past the budget.
    assert!(msg.contains("stopped early"), "{msg}");
    assert!(msg.contains("resume"), "{msg}");
    assert!(dir.join("journal.utj").exists());
    assert!(!dir.join("merged.ivl").exists());

    // Resume without the budget finishes to the clean run's exact bytes.
    let msg = run(&["resume", dir.to_str().unwrap()]).unwrap();
    assert_eq!(files_of(&dir), files_of(&clean), "{msg}");
    assert_eq!(temps_of(&dir), Vec::<String>::new());

    // A budget too small for even the resume halts gracefully again.
    let dir2 = tmpdir("budget2");
    let msg = run(&[
        "pipeline",
        "--workload",
        "pingpong",
        "--out",
        dir2.to_str().unwrap(),
        "--jobs",
        "1",
        "--disk-budget",
        "1",
    ])
    .unwrap();
    assert!(msg.contains("stopped early"), "{msg}");

    for d in [clean, dir, dir2] {
        std::fs::remove_dir_all(&d).ok();
    }
}

#[test]
fn chaos_command_soft_mode_verifies_seeded_kills() {
    let _g = lock();
    let dir = tmpdir("cmd_soft");
    let msg = run(&[
        "chaos",
        "--workload",
        "pingpong",
        "--out",
        dir.to_str().unwrap(),
        "--seed",
        "5",
        "--kills",
        "2",
        "--mode",
        "soft",
        "--jobs",
        "1",
    ])
    .unwrap();
    assert!(msg.contains("2 kill(s) verified"), "{msg}");
    assert!(msg.contains("byte-identical"), "{msg}");
    std::fs::remove_dir_all(&dir).ok();
}
