//! Fault-injection properties: deterministic fault plans applied to real
//! simulated traces, with salvage-mode ingestion asserted to survive —
//! and to lose *only* what the fault destroyed.
//!
//! The checksum-free raw format means an overrun splice can fabricate at
//! most one plausible-looking record per damaged region (two record
//! fragments joined at a field boundary can decode as one "Frankenstein"
//! record). So the subset property below is asserted for *loss-only*
//! faults (truncate / missing), while arbitrary seeded plans — bit
//! flips, overrun splices and all — get the weaker but universal
//! guarantee: salvage ingestion never panics and never wedges.

use proptest::prelude::*;

use ute::cluster::Simulator;
use ute::convert::{convert_job_opts, ConvertOptions};
use ute::faults::FaultPlan;
use ute::format::file::IntervalFileReader;
use ute::format::profile::Profile;
use ute::format::record::Interval;
use ute::format::state::StateCode;
use ute::merge::MergeOptions;
use ute::pipeline::{convert_and_merge, merge_files_jobs};
use ute::rawtrace::file::{RawTraceFile, HEADER_LEN};
use ute::workloads::micro;

/// One fault-free simulated job, built fresh per use (cheap workload).
fn baseline() -> (Profile, ute::cluster::SimResult) {
    let w = micro::stencil(4, 6, 4 << 10);
    let result = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
    (Profile::standard(), result)
}

fn salvage_copts() -> ConvertOptions {
    ConvertOptions {
        lenient: true,
        salvage: true,
        ..ConvertOptions::default()
    }
}

fn salvage_mopts(gap_nodes: Vec<u16>) -> MergeOptions {
    MergeOptions {
        salvage: true,
        gap_nodes,
        ..MergeOptions::default()
    }
}

/// Applies a byte-level plan to serialized raw traces and salvage-decodes
/// the survivors. Returns the decoded files plus the nodes lost outright
/// (missing, or too damaged for even the salvage reader to open).
fn damage_and_salvage(raws: &[RawTraceFile], plan: &FaultPlan) -> (Vec<RawTraceFile>, Vec<u16>) {
    let mut files = Vec::new();
    let mut lost = Vec::new();
    for f in raws {
        let node = f.node.raw();
        let bytes = f.to_bytes().unwrap();
        match plan.apply_to_file(node, bytes, HEADER_LEN) {
            None => lost.push(node),
            Some(damaged) => match RawTraceFile::from_bytes_salvage(&damaged) {
                Ok((back, _report)) => files.push(back),
                Err(_) => lost.push(node),
            },
        }
    }
    (files, lost)
}

/// Decodes every interval in a serialized interval file.
fn decode_intervals(bytes: &[u8], profile: &Profile) -> Vec<Interval> {
    let reader = IntervalFileReader::open(bytes, profile).unwrap();
    reader.intervals().map(|iv| iv.unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any seeded byte-level plan — including bit flips and overrun
    /// splices — must leave salvage convert + merge able to finish
    /// without panicking, at every job count, with identical bytes.
    #[test]
    fn seeded_fault_plans_never_panic(seed in any::<u64>()) {
        let (profile, result) = baseline();
        let plan = FaultPlan::byte_level_from_seed(seed, 4);
        let (files, lost) = damage_and_salvage(&result.raw_files, &plan);
        prop_assert!(!files.is_empty(), "seeded plans leave a survivor");

        let copts = salvage_copts();
        let mopts = salvage_mopts(lost.clone());
        let serial = convert_and_merge(&files, &result.threads, &profile, &copts, &mopts, 1);
        let parallel = convert_and_merge(&files, &result.threads, &profile, &copts, &mopts, 8);
        match (serial, parallel) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.merged.merged, b.merged.merged,
                    "jobs 1 vs 8 diverged under plan `{}`", plan);
            }
            // Salvage may still refuse pathological inputs (e.g. a bit
            // flip forging the header), but it must do so identically.
            (a, b) => prop_assert_eq!(a.is_err(), b.is_err()),
        }
    }

    /// Loss-only faults (truncation, missing node): everything the
    /// salvage path emits was present in the fault-free run, except the
    /// synthetic close of a state left dangling by the cut — and those
    /// are exactly counted by the converter.
    #[test]
    fn loss_only_faults_lose_only(keep in 0u64..20_000, victim in 0u16..4, missing in 0u16..4) {
        let (profile, result) = baseline();
        let spec = if victim == missing {
            format!("{victim}:truncate@{keep}")
        } else {
            format!("{victim}:truncate@{keep},{missing}:missing")
        };
        let plan = FaultPlan::parse(&spec).unwrap();
        let (files, lost) = damage_and_salvage(&result.raw_files, &plan);

        // Raw level: a truncated file decodes to a prefix of the
        // original event sequence — salvage invents nothing.
        for f in &files {
            let original = result.raw_files.iter().find(|o| o.node == f.node).unwrap();
            prop_assert!(f.events.len() <= original.events.len());
            prop_assert_eq!(&f.events[..], &original.events[..f.events.len()],
                "salvaged events are not a prefix for node {}", f.node);
        }

        // Interval level: per-node salvage output ⊆ fault-free output,
        // modulo at most `force_closed` synthetic truncated intervals.
        let clean = convert_job_opts(&result.raw_files, &result.threads, &profile,
            &ConvertOptions::default(), false).unwrap();
        let salvaged = convert_job_opts(&files, &result.threads, &profile,
            &salvage_copts(), false).unwrap();
        for s in &salvaged {
            let c = clean.iter().find(|c| c.node == s.node).unwrap();
            let clean_ivs = decode_intervals(&c.interval_file, &profile);
            let foreign = decode_intervals(&s.interval_file, &profile)
                .into_iter()
                .filter(|iv| !clean_ivs.contains(iv))
                .count() as u64;
            prop_assert!(foreign <= s.stats.force_closed,
                "node {}: {} foreign intervals but only {} forced closes",
                s.node, foreign, s.stats.force_closed);
        }

        // End to end: the degraded merge completes and marks every lost
        // node with a Gap pseudo-record.
        let merged = convert_and_merge(&files, &result.threads, &profile,
            &salvage_copts(), &salvage_mopts(lost.clone()), 2).unwrap();
        let ivs = decode_intervals(&merged.merged.merged, &profile);
        for node in &lost {
            prop_assert!(ivs.iter().any(|iv|
                iv.itype.state == StateCode::GAP && iv.node.raw() == *node),
                "no gap record for lost node {node}");
        }
    }
}

/// The acceptance scenario from the issue: one truncated node, one
/// bit-flipped node, one missing node — salvage ingestion completes,
/// degrades exactly the unreadable parts, and stays byte-identical
/// across job counts.
#[test]
fn acceptance_truncated_bitflipped_missing() {
    let (profile, result) = baseline();
    let plan = FaultPlan::parse("0:truncate@900,1:bitflip@333.4,2:missing").unwrap();
    let (files, lost) = damage_and_salvage(&result.raw_files, &plan);
    assert_eq!(lost, vec![2]);
    assert_eq!(files.len(), 3);

    let copts = salvage_copts();
    let mopts = salvage_mopts(lost);
    let outs: Vec<Vec<u8>> = [1usize, 2, 8]
        .iter()
        .map(|&jobs| {
            convert_and_merge(&files, &result.threads, &profile, &copts, &mopts, jobs)
                .unwrap()
                .merged
                .merged
        })
        .collect();
    assert_eq!(outs[0], outs[1], "jobs 1 vs 2 diverged");
    assert_eq!(outs[0], outs[2], "jobs 1 vs 8 diverged");

    // Node 2's absence is visible as a gap record; node 3 is untouched.
    let ivs = decode_intervals(&outs[0], &profile);
    assert!(ivs
        .iter()
        .any(|iv| iv.itype.state == StateCode::GAP && iv.node.raw() == 2));
    assert!(ivs.iter().any(|iv| iv.node.raw() == 3));
}

/// Strict mode refuses what salvage tolerates: the same damaged corpus
/// is a hard error without the salvage flags.
#[test]
fn strict_mode_still_fails_fast() {
    let (profile, result) = baseline();
    let plan = FaultPlan::parse("0:truncate@50").unwrap();
    let node0 = plan
        .apply_to_file(0, result.raw_files[0].to_bytes().unwrap(), HEADER_LEN)
        .unwrap();
    // Strict raw decode errors on the truncated tail...
    assert!(RawTraceFile::from_bytes(&node0).is_err());
    // ...while salvage decodes the surviving prefix.
    let (back, report) = RawTraceFile::from_bytes_salvage(&node0).unwrap();
    assert!(report.truncated_tail);
    assert!(back.events.len() < result.raw_files[0].events.len());

    // A truncated *interval* file fails a strict merge but degrades in
    // salvage mode.
    let converted = convert_job_opts(
        &result.raw_files,
        &result.threads,
        &profile,
        &ConvertOptions::default(),
        false,
    )
    .unwrap();
    let mut refs: Vec<Vec<u8>> = converted.iter().map(|c| c.interval_file.clone()).collect();
    let half = refs[1].len() / 2;
    refs[1].truncate(half);
    let views: Vec<&[u8]> = refs.iter().map(|v| v.as_slice()).collect();
    assert!(merge_files_jobs(&views, &profile, &MergeOptions::default(), 2).is_err());
    let out = merge_files_jobs(&views, &profile, &salvage_mopts(Vec::new()), 2).unwrap();
    assert!(out.stats.nodes_degraded >= 1);
    let serial = merge_files_jobs(&views, &profile, &salvage_mopts(Vec::new()), 1).unwrap();
    assert_eq!(
        serial.merged, out.merged,
        "salvage merge jobs 1 vs 2 diverged"
    );
}

/// Buffer-level faults (dropped flush, clock jump) are injected while
/// the simulator writes — the resulting files are *well-formed* but
/// incomplete or time-skewed, and must still convert and merge.
#[test]
fn buffer_level_faults_produce_wellformed_survivors() {
    let w = micro::stencil(3, 6, 4 << 10);
    let mut config = w.config;
    config.trace.faults = Some(FaultPlan::parse("0:dropflush@0,1:clockjump@40+500000").unwrap());
    let result = Simulator::new(config, &w.job).unwrap().run().unwrap();
    let profile = Profile::standard();
    // Every file strict-decodes: the damage is semantic, not structural.
    for f in &result.raw_files {
        let bytes = f.to_bytes().unwrap();
        assert!(RawTraceFile::from_bytes(&bytes).is_ok());
    }
    let out = convert_and_merge(
        &result.raw_files,
        &result.threads,
        &profile,
        &salvage_copts(),
        &salvage_mopts(Vec::new()),
        2,
    )
    .unwrap();
    assert!(!out.merged.merged.is_empty());
}

/// Mid-write kills of *non-atomic* writers (external tools, copies cut
/// short, pre-store artifacts) leave a prefix of the file. Sweep
/// truncation points over a real per-node interval file and a real SLOG
/// file: salvage ingestion must degrade the damaged node gracefully —
/// identically at every worker count — and the SLOG decoder must reject
/// the torn file with an error, never a panic.
#[test]
fn mid_write_truncation_of_ivl_and_slog_never_panics_ingestion() {
    let (profile, result) = baseline();
    let converted = convert_job_opts(
        &result.raw_files,
        &result.threads,
        &profile,
        &ConvertOptions::default(),
        false,
    )
    .unwrap();
    let full: Vec<Vec<u8>> = converted.iter().map(|c| c.interval_file.clone()).collect();

    // A torn per-node interval file at every tenth of its length.
    for tenths in 1..10 {
        let mut refs = full.clone();
        let cut = refs[1].len() * tenths / 10;
        refs[1].truncate(cut);
        let views: Vec<&[u8]> = refs.iter().map(|v| v.as_slice()).collect();
        let jobs2 = merge_files_jobs(&views, &profile, &salvage_mopts(Vec::new()), 2)
            .unwrap_or_else(|e| panic!("salvage merge failed at cut {cut}: {e}"));
        let jobs1 = merge_files_jobs(&views, &profile, &salvage_mopts(Vec::new()), 1).unwrap();
        assert_eq!(
            jobs1.merged, jobs2.merged,
            "salvage of a cut-at-{cut} file diverged between jobs 1 and 2"
        );
        assert!(
            jobs2.stats.nodes_degraded >= 1 || !jobs2.merged.is_empty(),
            "cut {cut}: neither degraded nor produced output"
        );
    }

    // A torn SLOG file at every tenth: a clean decode error each time.
    let views: Vec<&[u8]> = full.iter().map(|v| v.as_slice()).collect();
    let (slog, _stats) = ute::pipeline::slogmerge_jobs(
        &views,
        &profile,
        &salvage_mopts(Vec::new()),
        ute::slog::builder::BuildOptions::default(),
        2,
    )
    .unwrap();
    let bytes = slog.to_bytes();
    for tenths in 1..10 {
        let cut = bytes.len() * tenths / 10;
        let torn = &bytes[..cut];
        assert!(
            ute::slog::file::SlogFile::from_bytes(torn).is_err(),
            "a SLOG truncated to {cut}/{} bytes decoded without error",
            bytes.len()
        );
    }
}
