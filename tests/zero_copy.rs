//! Zero-copy safety wall: the validate-then-view raw decoder must never
//! panic or read out of bounds on hostile input, and must stay
//! observationally identical to the retired copy-decoder (kept behind
//! `ute-rawtrace`'s `reference-decode` feature, enabled here through
//! `ute-verify`). The same properties are asserted over a real
//! memory-mapped file, where an out-of-bounds slice would fault instead
//! of merely failing an assert.

use proptest::prelude::*;

use ute::cluster::Simulator;
use ute::faults::FaultPlan;
use ute::rawtrace::{map_file, salvage_views, RawTraceFile, RawTraceView};
use ute::workloads::micro::ping_pong;

/// One node's valid raw trace bytes, built once per case.
fn raw_bytes() -> Vec<u8> {
    let w = ping_pong(4, 2048);
    let sim = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
    sim.raw_files[0].to_bytes().unwrap()
}

/// Exhausts every view-layer entry point over possibly-hostile bytes.
/// Every payload slice handed out must sit inside the input buffer —
/// the zero-copy contract that makes mmap-backed decoding safe.
fn consume_views(bytes: &[u8]) {
    let range = bytes.as_ptr_range();
    if let Ok(view) = RawTraceView::open(bytes) {
        let mut n = 0usize;
        for v in view.events() {
            assert!(v.payload.is_empty() || range.contains(&v.payload.as_ptr()));
            assert!(v.payload.len() <= bytes.len());
            n += 1;
        }
        assert!(n <= view.records, "iterator yielded beyond validated count");
    }
    if let Ok(sv) = salvage_views(bytes) {
        assert_eq!(sv.report.records, sv.events.len() as u64);
        for v in &sv.events {
            assert!(v.payload.is_empty() || range.contains(&v.payload.as_ptr()));
        }
    }
}

/// Fast and reference decoders compared over the same bytes: same file
/// or same error strictly, same events and same report in salvage mode.
fn assert_fast_matches_reference(bytes: &[u8]) {
    match (
        RawTraceFile::from_bytes(bytes),
        RawTraceFile::from_bytes_reference(bytes),
    ) {
        (Ok(a), Ok(b)) => assert_eq!(a, b),
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
        (a, b) => panic!(
            "strict decode disagreement: fast {:?} vs reference {:?}",
            a.map(|f| f.events.len()),
            b.map(|f| f.events.len())
        ),
    }
    match (
        RawTraceFile::from_bytes_salvage(bytes),
        RawTraceFile::from_bytes_salvage_reference(bytes),
    ) {
        (Ok((a, ra)), Ok((b, rb))) => {
            assert_eq!(a, b);
            assert_eq!(ra, rb);
        }
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
        (a, b) => panic!(
            "salvage disagreement: fast {:?} vs reference {:?}",
            a.map(|(f, _)| f.events.len()),
            b.map(|(f, _)| f.events.len())
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary bit flips + truncation: the view layer neither panics
    /// nor hands out a slice pointing outside the buffer, and the fast
    /// decoders stay identical to the reference decoders.
    #[test]
    fn mutated_raw_bytes_never_break_the_view_contract(
        flips in prop::collection::vec((0usize..1_000_000, any::<u8>()), 0..12),
        truncate_frac in 0.0f64..1.0,
    ) {
        let mut bytes = raw_bytes();
        for (pos, val) in &flips {
            let len = bytes.len();
            bytes[pos % len] = *val;
        }
        let cut = ((bytes.len() as f64) * truncate_frac) as usize;
        for input in [&bytes[..], &bytes[..cut]] {
            consume_views(input);
            assert_fast_matches_reference(input);
        }
    }

    /// Structured damage from the fault-injection planner (truncations,
    /// bit flips, overrun splices — the shapes real crashes leave):
    /// same contract, including over pure garbage prefixes.
    #[test]
    fn fault_plan_damage_never_breaks_the_view_contract(seed in any::<u64>()) {
        let clean = raw_bytes();
        let plan = FaultPlan::byte_level_from_seed(seed, 1);
        if let Some(damaged) = plan.apply_to_file(0, clean.clone(), 0) {
            consume_views(&damaged);
            assert_fast_matches_reference(&damaged);
        }
        // Headerless garbage must be rejected without panicking.
        consume_views(&clean[5..]);
        assert_fast_matches_reference(&clean[5..]);
    }
}

/// Salvage resync over a genuinely memory-mapped damaged file: the
/// borrowed views point into the mapping, the recovered sequence equals
/// the owned decoder's, and dropping the views before the mapping is
/// enforced by the borrow checker (this test is the compile-time proof).
#[test]
fn salvage_runs_on_a_memory_mapped_file() {
    let mut bytes = raw_bytes();
    // Damage a mid-file record and chop the tail mid-record.
    let mid = bytes.len() / 2;
    bytes[mid..mid + 4].copy_from_slice(&0xffff_ffffu32.to_le_bytes());
    bytes.truncate(bytes.len() - 3);

    let dir = std::env::temp_dir().join(format!("ute_zero_copy_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("damaged.raw");
    std::fs::write(&path, &bytes).unwrap();

    let mapped = map_file(&path).unwrap();
    let range = mapped.as_ptr_range();
    let sv = salvage_views(&mapped).unwrap();
    assert!(!sv.report.is_clean(), "damage went unnoticed");
    assert!(!sv.events.is_empty(), "salvage recovered nothing");
    for v in &sv.events {
        assert!(v.payload.is_empty() || range.contains(&v.payload.as_ptr()));
    }
    let (owned, report) = RawTraceFile::from_bytes_salvage(&bytes).unwrap();
    assert_eq!(sv.report, report);
    assert_eq!(sv.events.len(), owned.events.len());
    for (v, o) in sv.events.iter().zip(&owned.events) {
        assert_eq!(v.to_owned(), *o);
    }

    // The high-level mmap ingestion path agrees too.
    let (from_disk, disk_report) = RawTraceFile::read_from_salvage(&path).unwrap();
    assert_eq!(from_disk, owned);
    assert_eq!(disk_report, report);
    std::fs::remove_file(&path).unwrap();
}
