//! Acceptance tests for the conformance subsystem: a clean pipeline's
//! artifacts must pass `ute check` with zero violations, seeded
//! corruption must be *detected* as structured findings (never panics),
//! and the differential oracles and fuzzer must hold from the CLI.

use std::path::PathBuf;

use ute::cli::run;

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ute_conformance_{name}_{}", std::process::id()));
    // A stale directory from a previous run could hide a regression
    // (e.g. a file today's pipeline no longer writes).
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn argv(tokens: &[&str]) -> Vec<String> {
    tokens.iter().map(|s| s.to_string()).collect()
}

fn run_pipeline(out: &str, workload: &str) {
    run(&argv(&[
        "pipeline",
        "--workload",
        workload,
        "--out",
        out,
        "--jobs",
        "2",
    ]))
    .unwrap();
}

#[test]
fn clean_pipeline_artifacts_pass_check() {
    let dir = tmpdir("clean");
    let out = dir.to_str().unwrap().to_string();
    run_pipeline(&out, "stencil");
    let msg = run(&argv(&["check", "--in", &out])).unwrap();
    assert!(msg.contains("0 error(s), 0 warning(s)\n"), "{msg}");
    // Every artifact class the pipeline writes was actually checked.
    for artifact in ["trace.0.raw", "trace.0.ivl", "merged.ivl", "run.slog"] {
        assert!(msg.contains(artifact), "missing {artifact} in:\n{msg}");
    }
}

#[test]
fn seeded_corruption_is_detected_without_panics() {
    // Build one clean reference run, then corrupt copies of it under
    // several seeds; `ute check` must fail on each with structured
    // findings, and across the seeds at least 5 distinct rules fire.
    let clean = tmpdir("corrupt_ref");
    let clean_out = clean.to_str().unwrap().to_string();
    run_pipeline(&clean_out, "stencil");
    let mut rules_hit: std::collections::BTreeSet<String> = Default::default();
    for seed in 1u64..=5 {
        let victim = tmpdir(&format!("corrupt_{seed}"));
        for entry in std::fs::read_dir(&clean).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), victim.join(entry.file_name())).unwrap();
        }
        let vout = victim.to_str().unwrap().to_string();
        run(&argv(&[
            "corrupt",
            "--in",
            &vout,
            "--seed",
            &seed.to_string(),
        ]))
        .unwrap();
        let err = run(&argv(&["check", "--in", &vout]))
            .expect_err("corrupted artifacts must fail the check");
        let report = err.to_string();
        assert!(
            !report.contains("no-panic"),
            "a rule panicked instead of reporting (seed {seed}):\n{report}"
        );
        let mut found_here = 0;
        for line in report.lines() {
            if let Some(rest) = line.trim_start().strip_prefix("[error] ") {
                let rule = rest.split(':').next().unwrap().to_string();
                rules_hit.insert(rule);
                found_here += 1;
            }
        }
        assert!(
            found_here > 0,
            "seed {seed} corrupted files but check found nothing:\n{report}"
        );
    }
    assert!(
        rules_hit.len() >= 5,
        "expected ≥5 distinct rules violated across seeds, got {rules_hit:?}"
    );
}

#[test]
fn differential_oracles_hold_from_the_cli() {
    let msg = run(&argv(&["check", "--oracles", "--seed", "7"])).unwrap();
    assert!(msg.contains("0 error(s), 0 warning(s)\n"), "{msg}");
    for oracle in [
        "serial vs --jobs",
        "fused vs staged",
        "salvage ⊆ strict",
        "clock-adjusted order",
    ] {
        assert!(msg.contains(oracle), "missing oracle {oracle} in:\n{msg}");
    }
}

#[test]
fn fuzz_subcommand_is_deterministic_and_clean() {
    let a = run(&argv(&["fuzz", "--seed", "11", "--iters", "96"])).unwrap();
    let b = run(&argv(&["fuzz", "--seed", "11", "--iters", "96"])).unwrap();
    assert_eq!(a, b, "fuzz output must be a pure function of the seed");
    assert!(a.contains("0 panic(s)"), "{a}");
}
