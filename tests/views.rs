//! View-layer integration tests on real pipeline data: the connected
//! nested thread-activity mode, windowed rendering through pseudo
//! records, golden ASCII/SVG snapshots of the sPPM and FLASH renders
//! (checked-in baselines under `tests/snapshots/`, regenerated with
//! `UPDATE_SNAPSHOTS=1 cargo test --test views`), and a golden ASCII
//! snapshot of a tiny deterministic view.

use ute::cluster::Simulator;
use ute::convert::convert_job;
use ute::core::bebits::BeBits;
use ute::format::file::FramePolicy;
use ute::format::profile::Profile;
use ute::format::state::StateCode;
use ute::merge::{slogmerge, MergeOptions};
use ute::slog::builder::BuildOptions;
use ute::slog::file::{SlogFile, SlogFrame};
use ute::slog::preview::Preview;
use ute::slog::record::{SlogRecord, SlogState};
use ute::view::ascii;
use ute::view::model::{build_view, ViewConfig, ViewKind};
use ute::workloads::flash::{workload, FlashParams};
use ute::workloads::{sppm, Workload};

fn workload_slog(w: Workload) -> (Profile, SlogFile) {
    let result = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
    let profile = Profile::standard();
    let converted = convert_job(
        &result.raw_files,
        &result.threads,
        &profile,
        FramePolicy::default(),
        true,
    )
    .unwrap();
    let files: Vec<&[u8]> = converted
        .iter()
        .map(|c| c.interval_file.as_slice())
        .collect();
    let (slog, _) = slogmerge(
        &files,
        &profile,
        &MergeOptions::default(),
        BuildOptions {
            nframes: 24,
            preview_bins: 48,
            arrows: true,
        },
    )
    .unwrap();
    (profile, slog)
}

fn flash_slog() -> (Profile, SlogFile) {
    workload_slog(workload(FlashParams {
        iters_per_phase: 3,
        ..FlashParams::default()
    }))
}

/// Compares rendered output to the checked-in baseline, or rewrites the
/// baseline when `UPDATE_SNAPSHOTS` is set. On mismatch, reports the
/// first differing line rather than dumping both renders whole.
fn snapshot_check(name: &str, content: &str) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots");
    let path = dir.join(name);
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, content).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing snapshot {}; generate it with UPDATE_SNAPSHOTS=1 cargo test --test views",
            path.display()
        )
    });
    if content == want {
        return;
    }
    let mismatch = content
        .lines()
        .zip(want.lines())
        .enumerate()
        .find(|(_, (got, want))| got != want);
    match mismatch {
        Some((i, (got, want))) => panic!(
            "snapshot {name} drifted at line {}:\n  got:  {got}\n  want: {want}\n\
             (re-run with UPDATE_SNAPSHOTS=1 if the change is intended)",
            i + 1
        ),
        None => panic!(
            "snapshot {name} drifted in length: got {} lines, want {} \
             (re-run with UPDATE_SNAPSHOTS=1 if the change is intended)",
            content.lines().count(),
            want.lines().count()
        ),
    }
}

/// Renders a workload's thread-activity view both ways and checks the
/// pair of baselines.
fn snapshot_workload(stem: &str, profile_slog: (Profile, SlogFile)) {
    let (_, slog) = profile_slog;
    let view = build_view(&slog, &ViewConfig::default()).unwrap();
    snapshot_check(&format!("{stem}_thread.txt"), &ascii::render(&view, 100));
    snapshot_check(
        &format!("{stem}_thread.svg"),
        &ute::view::svg::render(&view, &ute::view::svg::SvgOptions::default()),
    );
}

#[test]
fn sppm_view_snapshots() {
    snapshot_workload(
        "sppm",
        workload_slog(sppm::workload(sppm::SppmParams::default())),
    );
}

#[test]
fn flash_view_snapshots() {
    snapshot_workload("flash", flash_slog());
}

#[test]
fn connected_view_nests_markers_above_mpi() {
    let (_, slog) = flash_slog();
    let connected = build_view(
        &slog,
        &ViewConfig {
            kind: ViewKind::ThreadActivity,
            connected: true,
            hide_running: true,
            ..ViewConfig::default()
        },
    )
    .unwrap();
    // Marker bars exist and carry depth 0; MPI bars inside them carry
    // depth ≥ 1 (connected mode reconstructs nesting).
    let marker_bars: Vec<_> = connected
        .bars
        .iter()
        .filter(|b| b.color.starts_with("Marker:"))
        .collect();
    assert!(!marker_bars.is_empty(), "connected markers missing");
    assert!(
        connected
            .bars
            .iter()
            .any(|b| b.color.starts_with("MPI_") && b.depth >= 1),
        "MPI bars should nest inside markers"
    );
    // Marker labels resolve through the unified marker table.
    assert!(
        connected.legend.iter().any(|k| k == "Marker:Evolution"),
        "legend: {:?}",
        connected.legend
    );
    // The piece view of the same data has no depth.
    let pieces = build_view(
        &slog,
        &ViewConfig {
            kind: ViewKind::ThreadActivity,
            connected: false,
            hide_running: true,
            ..ViewConfig::default()
        },
    )
    .unwrap();
    assert!(pieces.bars.iter().all(|b| b.depth == 0));
}

#[test]
fn windowed_connected_view_shows_enclosing_state_via_pseudo_records() {
    let (_, slog) = flash_slog();
    // Find a frame strictly inside the Evolution phase: it contains a
    // zero-duration pseudo continuation for the marker, and the connected
    // view must stretch the marker across the whole window.
    let marker_frames: Vec<&SlogFrame> = slog
        .frames
        .iter()
        .filter(|f| {
            f.records.iter().any(|r| {
                matches!(
                    r,
                    SlogRecord::State(s)
                        if s.state == StateCode::MARKER
                            && s.bebits == BeBits::Continuation
                )
            })
        })
        .collect();
    assert!(
        !marker_frames.is_empty(),
        "no frames with marker continuations"
    );
    let f = marker_frames[0];
    let view = build_view(
        &slog,
        &ViewConfig {
            kind: ViewKind::ThreadActivity,
            window: Some((f.t_start, f.t_end)),
            connected: true,
            hide_running: true,
            ..ViewConfig::default()
        },
    )
    .unwrap();
    let full_span_marker = view
        .bars
        .iter()
        .any(|b| b.color.starts_with("Marker:") && b.start == f.t_start && b.end == f.t_end);
    assert!(
        full_span_marker,
        "enclosing marker should span the window: {:?}",
        view.bars
            .iter()
            .filter(|b| b.color.starts_with("Marker:"))
            .collect::<Vec<_>>()
    );
}

#[test]
fn golden_ascii_snapshot() {
    // A tiny handcrafted SLOG with one thread, one nested call, rendered
    // at fixed width: the exact output is pinned so rendering regressions
    // are caught immediately.
    let mut threads = ute::format::thread_table::ThreadTable::new();
    threads
        .register(ute::format::thread_table::ThreadEntry {
            task: ute::core::ids::TaskId(0),
            pid: ute::core::ids::Pid(1),
            system_tid: ute::core::ids::SystemThreadId(1),
            node: ute::core::ids::NodeId(0),
            logical: ute::core::ids::LogicalThreadId(0),
            ttype: ute::core::ids::ThreadType::Mpi,
        })
        .unwrap();
    let state = |st: StateCode, start: u64, dur: u64| {
        SlogRecord::State(SlogState {
            timeline: 0,
            state: st,
            bebits: BeBits::Complete,
            pseudo: false,
            start,
            duration: dur,
            node: 0,
            cpu: 0,
            marker_id: 0,
        })
    };
    let slog = SlogFile {
        threads,
        markers: vec![],
        preview: Preview::new(0, 40, 4),
        frames: vec![SlogFrame {
            t_start: 0,
            t_end: 40,
            records: vec![
                state(StateCode::RUNNING, 0, 40),
                state(StateCode::mpi(ute::core::event::MpiOp::Send), 10, 10),
            ],
        }],
    };
    let view = build_view(&slog, &ViewConfig::default()).unwrap();
    let got = ascii::render(&view, 20);
    // Fill characters are assigned positionally by legend order, so the
    // snapshot is checked structurally rather than byte-for-byte.
    let lines: Vec<&str> = got.lines().collect();
    assert_eq!(lines.len(), 4, "{got}");
    let bar: Vec<char> = lines[0]
        .chars()
        .skip("n0 t0 (mpi rank 0) |".len())
        .collect();
    assert_eq!(bar.len(), 20);
    // Columns 5..10 are the nested Send (25%..50% of 40 ticks).
    assert_ne!(bar[6], bar[2], "nested call must differ from Running fill");
    assert_eq!(bar[2], bar[15], "Running on both sides");
    assert!(lines[3].starts_with("legend:"));
    assert!(lines[3].contains("Running") && lines[3].contains("MPI_Send"));
}
