//! Delayed trace start (§2.1): "The user can also delay trace generation
//! until a later point to trace only a portion of the code to
//! substantially reduce the amount of trace data."
//!
//! A delayed trace opens mid-execution: begin events and dispatches that
//! happened before the start are missing, so strict conversion refuses
//! the stream while lenient conversion clips the dangling states to the
//! trace's first timestamp and the rest of the pipeline proceeds.

use ute::cluster::Simulator;
use ute::convert::{convert_job_opts, ConvertOptions};
use ute::core::time::LocalTime;
use ute::format::file::{FramePolicy, IntervalFileReader};
use ute::format::profile::Profile;
use ute::merge::{merge_files, MergeOptions};
use ute::rawtrace::buffer::TraceOptions;
use ute::workloads::micro::stencil;

#[test]
fn delayed_start_produces_fewer_events_and_lenient_convert_copes() {
    // Full trace first, for the baseline event count.
    let full = stencil(3, 12, 8 << 10);
    let full_res = Simulator::new(full.config.clone(), &full.job)
        .unwrap()
        .run()
        .unwrap();
    let full_events: usize = full_res.raw_files.iter().map(|f| f.events.len()).sum();

    // Same job, tracing delayed until 40% into the (local) run.
    let cutoff = full_res.stats.end_time.ticks() * 2 / 5;
    let mut delayed_cfg = full.config.clone();
    delayed_cfg.trace = TraceOptions {
        start_after: Some(LocalTime(cutoff)),
        ..TraceOptions::default()
    };
    let delayed_res = Simulator::new(delayed_cfg, &full.job)
        .unwrap()
        .run()
        .unwrap();
    let delayed_events: usize = delayed_res.raw_files.iter().map(|f| f.events.len()).sum();
    assert!(
        delayed_events < full_events * 8 / 10,
        "delaying the start should shed events: {delayed_events} vs {full_events}"
    );
    // Every surviving record is from after the cutoff.
    for f in &delayed_res.raw_files {
        for e in &f.events {
            assert!(e.timestamp.ticks() >= cutoff);
        }
    }

    let profile = Profile::standard();
    // Lenient conversion handles the partial stream.
    let outputs = convert_job_opts(
        &delayed_res.raw_files,
        &delayed_res.threads,
        &profile,
        &ConvertOptions {
            policy: FramePolicy::default(),
            lenient: true,
            ..ConvertOptions::default()
        },
        false,
    )
    .unwrap();
    let clipped: u64 = outputs.iter().map(|o| o.stats.clipped_starts).sum();
    assert!(clipped > 0, "a mid-run start should clip some states");

    // The rest of the pipeline works on the partial trace.
    let per_node: Vec<Vec<u8>> = outputs.into_iter().map(|o| o.interval_file).collect();
    let refs: Vec<&[u8]> = per_node.iter().map(|f| f.as_slice()).collect();
    let merged = merge_files(&refs, &profile, &MergeOptions::default()).unwrap();
    let r = IntervalFileReader::open(&merged.merged, &profile).unwrap();
    assert!(r.total_records().unwrap() > 0);
}
