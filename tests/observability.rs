//! Acceptance tests for the self-observability layer: the `--metrics` /
//! `--self-trace` switches, the `report` subcommand, and the dogfooded
//! self-trace file.

use std::path::PathBuf;

use ute::cli::run;
use ute::format::file::IntervalFileReader;
use ute::format::profile::Profile;

/// The metrics registry and span log are process-global, and `report`
/// resets them — these tests must not interleave.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ute_obs_accept_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn argv(tokens: &[&str]) -> Vec<String> {
    tokens.iter().map(|s| s.to_string()).collect()
}

#[test]
fn pipeline_self_trace_round_trips_with_a_span_per_stage() {
    let _serial = SERIAL.lock().unwrap();
    let dir = tmpdir("selftrace");
    let out = dir.to_str().unwrap().to_string();
    let ivl = dir.join("self.ivl");
    let msg = run(&argv(&[
        "pipeline",
        "--workload",
        "pingpong",
        "--out",
        &out,
        "--metrics",
        "--self-trace",
        ivl.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(msg.contains("wrote self-trace"), "{msg}");

    // The self-trace is a well-formed UTE interval file.
    let bytes = std::fs::read(&ivl).unwrap();
    let profile = Profile::standard();
    let reader = IntervalFileReader::open(&bytes, &profile).unwrap();
    let intervals: Vec<_> = reader.intervals().map(|iv| iv.unwrap()).collect();
    assert!(!intervals.is_empty());

    // Every pipeline stage contributed at least one span: each stage is
    // a timeline (logical thread) in the self-trace thread table.
    let stage_count = reader.threads.len();
    assert!(
        stage_count >= 5,
        "expected ≥5 stage timelines (trace/convert/merge/slog/stats), got {stage_count}"
    );
    for thread in reader.threads.entries() {
        let lane = thread.logical;
        assert!(
            intervals.iter().any(|iv| iv.thread == lane),
            "stage timeline {lane:?} has no intervals"
        );
    }

    // The framework's own viewer opens it.
    let preview = run(&argv(&["preview", "--ivl", ivl.to_str().unwrap()])).unwrap();
    assert!(preview.contains("interesting ranges:"), "{preview}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_emits_json_with_nonzero_stage_counters() {
    let _serial = SERIAL.lock().unwrap();
    let dir = tmpdir("report");
    let out = dir.to_str().unwrap().to_string();
    let json = run(&argv(&["report", "--workload", "sppm", "--out", &out])).unwrap();

    assert!(json.trim_start().starts_with('{'));
    assert!(json.trim_end().ends_with('}'));
    for section in ["\"counters\"", "\"gauges\"", "\"histograms\""] {
        assert!(json.contains(section), "missing {section} in {json}");
    }

    // Acceptance counters: one per pipeline stage, all nonzero.
    for name in [
        "cluster/events_simulated",
        "convert/intervals_out",
        "merge/comparisons",
        "format/frames_written",
        "format/dir_lookups",
        "stats/rows_emitted",
    ] {
        let key = format!("\"{name}\":");
        let at = json
            .find(&key)
            .unwrap_or_else(|| panic!("counter {name} missing from report:\n{json}"));
        let rest = json[at + key.len()..].trim_start();
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        let value: u64 = digits
            .parse()
            .unwrap_or_else(|_| panic!("counter {name} has a non-numeric value near `{rest:.40}`"));
        assert!(value > 0, "counter {name} is zero");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_snapshot_tsv_lists_stage_spans() {
    let _serial = SERIAL.lock().unwrap();
    // Drive one conversion directly and check the TSV surface used by
    // `--metrics` carries the per-stage span histogram.
    let dir = tmpdir("tsv");
    let out = dir.to_str().unwrap().to_string();
    run(&argv(&["trace", "--workload", "pingpong", "--out", &out])).unwrap();
    run(&argv(&["convert", "--in", &out])).unwrap();
    let snap = ute::obs::snapshot();
    let tsv = snap.to_tsv();
    assert!(tsv.starts_with("kind\tname\tvalue"), "{tsv}");
    assert!(
        tsv.lines().any(|l| l.contains("convert/span_ns")),
        "no convert span histogram in:\n{tsv}"
    );
    assert!(snap.counter("rawtrace/records_cut").unwrap_or(0) > 0);
    std::fs::remove_dir_all(&dir).ok();
}
