//! Acceptance tests for the self-observability layer: the `--metrics` /
//! `--self-trace` switches, the `report` subcommand, and the dogfooded
//! self-trace file.

use std::path::PathBuf;

use ute::cli::run;
use ute::format::file::IntervalFileReader;
use ute::format::profile::Profile;

/// The metrics registry and span log are process-global, and `report`
/// resets them — these tests must not interleave.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ute_obs_accept_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn argv(tokens: &[&str]) -> Vec<String> {
    tokens.iter().map(|s| s.to_string()).collect()
}

#[test]
fn pipeline_self_trace_round_trips_with_a_span_per_stage() {
    let _serial = SERIAL.lock().unwrap();
    let dir = tmpdir("selftrace");
    let out = dir.to_str().unwrap().to_string();
    let ivl = dir.join("self.ivl");
    let msg = run(&argv(&[
        "pipeline",
        "--workload",
        "pingpong",
        "--out",
        &out,
        "--metrics",
        "--self-trace",
        ivl.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(msg.contains("wrote self-trace"), "{msg}");

    // The self-trace is a well-formed UTE interval file.
    let bytes = std::fs::read(&ivl).unwrap();
    let profile = Profile::standard();
    let reader = IntervalFileReader::open(&bytes, &profile).unwrap();
    let intervals: Vec<_> = reader.intervals().map(|iv| iv.unwrap()).collect();
    assert!(!intervals.is_empty());

    // Every pipeline stage contributed at least one span: each stage is
    // a timeline (logical thread) in the self-trace thread table.
    let stage_count = reader.threads.len();
    assert!(
        stage_count >= 5,
        "expected ≥5 stage timelines (trace/convert/merge/slog/stats), got {stage_count}"
    );
    for thread in reader.threads.entries() {
        let lane = thread.logical;
        assert!(
            intervals.iter().any(|iv| iv.thread == lane),
            "stage timeline {lane:?} has no intervals"
        );
    }

    // The framework's own viewer opens it.
    let preview = run(&argv(&["preview", "--ivl", ivl.to_str().unwrap()])).unwrap();
    assert!(preview.contains("interesting ranges:"), "{preview}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn self_trace_hierarchy_round_trips_nested_and_laminar() {
    let _serial = SERIAL.lock().unwrap();
    let dir = tmpdir("hierarchy");
    let out = dir.to_str().unwrap().to_string();
    let ivl = dir.join("self.ivl");
    let msg = run(&argv(&[
        "pipeline",
        "--workload",
        "pingpong",
        "--out",
        &out,
        "--jobs",
        "2",
        "--self-trace",
        ivl.to_str().unwrap(),
    ]))
    .unwrap();

    // The reported span count matches what actually landed in the file.
    let tail = &msg[msg.find("wrote self-trace").unwrap()..];
    let n: usize = tail[tail.find('(').unwrap() + 1..tail.find(" spans)").unwrap()]
        .parse()
        .unwrap();
    let bytes = std::fs::read(&ivl).unwrap();
    let profile = Profile::standard();
    let reader = IntervalFileReader::open(&bytes, &profile).unwrap();
    let ivs: Vec<_> = reader.intervals().map(|iv| iv.unwrap()).collect();
    assert_eq!(ivs.len(), n, "span count and interval count diverged");

    // Hierarchy extras: `address` is the span's unique nonzero id,
    // `addressEnd` its parent — every parent must itself be recorded
    // (roots carry 0).
    let mut parent_of = std::collections::HashMap::new();
    for iv in &ivs {
        let id = iv
            .extra(&profile, "address")
            .and_then(|v| v.as_uint())
            .unwrap();
        let parent = iv
            .extra(&profile, "addressEnd")
            .and_then(|v| v.as_uint())
            .unwrap();
        assert_ne!(id, 0, "span with null id");
        assert!(
            parent_of.insert(id, parent).is_none(),
            "duplicate span id {id}"
        );
    }
    for (&id, &p) in &parent_of {
        assert!(
            p == 0 || parent_of.contains_key(&p),
            "span {id} has unrecorded parent {p}"
        );
    }
    // The tree really nests: at least cli root → stage worker → node
    // span somewhere (parents always predate children, so no cycles).
    let depth = |mut id: u64| {
        let mut d = 0u32;
        while id != 0 {
            d += 1;
            id = parent_of[&id];
        }
        d
    };
    let max_depth = parent_of.keys().map(|&i| depth(i)).max().unwrap();
    assert!(
        max_depth >= 3,
        "expected span nesting depth ≥3 (cli → worker → node), got {max_depth}"
    );

    // Per-lane laminarity: on any one (stage, thread) timeline, spans
    // nest or are disjoint — never partially overlap — which is what
    // lets the viewer's nest.rs recover the hierarchy from our own file.
    for t in reader.threads.entries() {
        let lane: Vec<_> = ivs.iter().filter(|iv| iv.thread == t.logical).collect();
        for (i, a) in lane.iter().enumerate() {
            for b in &lane[i + 1..] {
                let disjoint = a.end() <= b.start || b.end() <= a.start;
                let nested = (a.start <= b.start && b.end() <= a.end())
                    || (b.start <= a.start && a.end() <= b.end());
                assert!(
                    disjoint || nested,
                    "lane {:?}: [{}, {}) and [{}, {}) partially overlap",
                    t.logical,
                    a.start,
                    a.end(),
                    b.start,
                    b.end()
                );
            }
        }
    }
    // File order is ascending end time (the interval writer's contract).
    for w in ivs.windows(2) {
        assert!(w[0].end() <= w[1].end());
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Minimal recursive-descent JSON syntax checker — no dependencies,
/// just enough to assert the Chrome export is parseable JSON. Our
/// traces nest four levels deep at most, so recursion depth is a
/// non-issue.
fn json_valid(s: &str) -> bool {
    fn ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }
    fn string(b: &[u8], i: &mut usize) -> bool {
        if b.get(*i) != Some(&b'"') {
            return false;
        }
        *i += 1;
        while *i < b.len() {
            match b[*i] {
                b'"' => {
                    *i += 1;
                    return true;
                }
                b'\\' => *i += 2,
                _ => *i += 1,
            }
        }
        false
    }
    fn number(b: &[u8], i: &mut usize) -> bool {
        let start = *i;
        while *i < b.len()
            && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'-' | b'+' | b'e' | b'E'))
        {
            *i += 1;
        }
        std::str::from_utf8(&b[start..*i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .is_some()
    }
    fn value(b: &[u8], i: &mut usize) -> bool {
        ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return true;
                }
                loop {
                    ws(b, i);
                    if !string(b, i) {
                        return false;
                    }
                    ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return false;
                    }
                    *i += 1;
                    if !value(b, i) {
                        return false;
                    }
                    ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return true;
                        }
                        _ => return false,
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return true;
                }
                loop {
                    if !value(b, i) {
                        return false;
                    }
                    ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return true;
                        }
                        _ => return false,
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(b't') if b[*i..].starts_with(b"true") => {
                *i += 4;
                true
            }
            Some(b'f') if b[*i..].starts_with(b"false") => {
                *i += 5;
                true
            }
            Some(b'n') if b[*i..].starts_with(b"null") => {
                *i += 4;
                true
            }
            _ => number(b, i),
        }
    }
    let b = s.as_bytes();
    let mut i = 0;
    let ok = value(b, &mut i);
    ws(b, &mut i);
    ok && i == b.len()
}

/// Extracts the number following `key` on `line` (flat scan — our
/// exporter writes one event per line).
fn num_after(line: &str, key: &str) -> Option<f64> {
    let at = line.find(key)? + key.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn chrome_self_trace_is_parseable_sorted_and_flow_paired() {
    let _serial = SERIAL.lock().unwrap();
    let dir = tmpdir("chrome");
    let out = dir.to_str().unwrap().to_string();
    let path = dir.join("self.chrome.json");
    run(&argv(&[
        "pipeline",
        "--workload",
        "stencil",
        "--out",
        &out,
        "--jobs",
        "2",
        "--self-trace",
        path.to_str().unwrap(),
        "--self-trace-format",
        "chrome",
    ]))
    .unwrap();
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json_valid(&json), "chrome trace is not parseable JSON");

    // Walk the one-event-per-line body: timestamps must be
    // non-decreasing, every flow begin must pair with a flow end, and
    // at --jobs 2 the spans must come from at least two threads.
    let mut last_ts = f64::MIN;
    let mut x_events = 0usize;
    let mut x_tids = std::collections::HashSet::new();
    let mut s_ids = std::collections::HashSet::new();
    let mut f_ids = std::collections::HashSet::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.contains("\"ph\":") {
            continue;
        }
        if let Some(ts) = num_after(line, "\"ts\":") {
            assert!(
                ts >= last_ts,
                "events not sorted by ts: {ts} after {last_ts}"
            );
            last_ts = ts;
        }
        if line.contains("\"ph\":\"X\"") {
            x_events += 1;
            x_tids.insert(num_after(line, "\"tid\":").unwrap() as u64);
        } else if line.contains("\"ph\":\"s\"") {
            s_ids.insert(num_after(line, "\"id\":").unwrap() as u64);
        } else if line.contains("\"ph\":\"f\"") {
            assert!(
                line.contains("\"bp\":\"e\""),
                "flow end must bind encl: {line}"
            );
            f_ids.insert(num_after(line, "\"id\":").unwrap() as u64);
        }
    }
    assert!(x_events > 0, "no duration events in chrome trace");
    assert!(
        x_tids.len() >= 2,
        "expected spans from ≥2 threads at --jobs 2, got {x_tids:?}"
    );
    assert!(
        !s_ids.is_empty(),
        "no flow events: channel handoffs were not recorded"
    );
    assert_eq!(s_ids, f_ids, "flow begin/end ids must pair exactly");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_emits_json_with_nonzero_stage_counters() {
    let _serial = SERIAL.lock().unwrap();
    let dir = tmpdir("report");
    let out = dir.to_str().unwrap().to_string();
    let json = run(&argv(&["report", "--workload", "sppm", "--out", &out])).unwrap();

    assert!(json.trim_start().starts_with('{'));
    assert!(json.trim_end().ends_with('}'));
    for section in ["\"counters\"", "\"gauges\"", "\"histograms\""] {
        assert!(json.contains(section), "missing {section} in {json}");
    }

    // Acceptance counters: one per pipeline stage, all nonzero.
    for name in [
        "cluster/events_simulated",
        "convert/intervals_out",
        "merge/comparisons",
        "format/frames_written",
        "format/dir_lookups",
        "stats/rows_emitted",
    ] {
        let key = format!("\"{name}\":");
        let at = json
            .find(&key)
            .unwrap_or_else(|| panic!("counter {name} missing from report:\n{json}"));
        let rest = json[at + key.len()..].trim_start();
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        let value: u64 = digits
            .parse()
            .unwrap_or_else(|_| panic!("counter {name} has a non-numeric value near `{rest:.40}`"));
        assert!(value > 0, "counter {name} is zero");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_percentiles_timeseries_and_stable_baselines() {
    let _serial = SERIAL.lock().unwrap();
    let dir = tmpdir("report_extras");
    let out = dir.join("live");
    let json = run(&argv(&[
        "report",
        "--workload",
        "pingpong",
        "--out",
        out.to_str().unwrap(),
        "--metrics-interval",
        "1",
    ]))
    .unwrap();
    // Percentile fields ride on every histogram, and the 1 ms sampler
    // ticked at least once during the run, so its series is embedded.
    assert!(json.contains("\"p50\":"), "no p50 in live report");
    assert!(json.contains("\"p95\":"), "no p95 in live report");
    assert!(json.contains("\"p99\":"), "no p99 in live report");
    assert!(json.contains("\"timeseries\""), "no sampler series");
    assert!(json.contains("\"at_ns\""), "timeseries has no ticks");

    // --stable keeps only deterministic values: no percentiles (they
    // derive from wall-clock histograms), no time series — but always
    // the salvage/obs baseline counters, even on a clean run like this.
    let out = dir.join("stable");
    let stable = run(&argv(&[
        "report",
        "--workload",
        "pingpong",
        "--out",
        out.to_str().unwrap(),
        "--stable",
    ]))
    .unwrap();
    assert!(
        !stable.contains("\"p50\":"),
        "percentiles leaked into --stable"
    );
    assert!(
        !stable.contains("\"timeseries\""),
        "series leaked into --stable"
    );
    for key in [
        "salvage/nodes_degraded",
        "salvage/records_skipped",
        "salvage/resyncs",
        "obs/spans_dropped",
        "obs/flows_dropped",
    ] {
        assert!(
            stable.contains(&format!("\"{key}\"")),
            "baseline counter {key} missing from stable report:\n{stable}"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_snapshot_tsv_lists_stage_spans() {
    let _serial = SERIAL.lock().unwrap();
    // Drive one conversion directly and check the TSV surface used by
    // `--metrics` carries the per-stage span histogram.
    let dir = tmpdir("tsv");
    let out = dir.to_str().unwrap().to_string();
    run(&argv(&["trace", "--workload", "pingpong", "--out", &out])).unwrap();
    run(&argv(&["convert", "--in", &out])).unwrap();
    let snap = ute::obs::snapshot();
    let tsv = snap.to_tsv();
    assert!(tsv.starts_with("kind\tname\tvalue"), "{tsv}");
    assert!(
        tsv.lines().any(|l| l.contains("convert/span_ns")),
        "no convert span histogram in:\n{tsv}"
    );
    assert!(snap.counter("rawtrace/records_cut").unwrap_or(0) > 0);
    std::fs::remove_dir_all(&dir).ok();
}
