//! Acceptance tests for the seeded scenario generator: determinism at
//! the byte level (same seed ⇒ identical raw traces and pipeline
//! artifacts, across `--jobs` values), conformance of generated traces
//! over random seeds, and diagnostic ground truth — injected faults in
//! the *spec* must be blamed by `ute analyze` on the other end of the
//! pipeline.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use proptest::prelude::*;
use ute::analyze::{load_table, run_all, DiagOptions, LoadOptions};
use ute::cli::run;
use ute::cluster::Simulator;
use ute::format::profile::Profile;
use ute::scenario::{generate, PatternKind, ScenarioSpec};
use ute::verify::{check_raw_bytes, Severity};

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ute_scenario_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn argv(tokens: &[&str]) -> Vec<String> {
    tokens.iter().map(|s| s.to_string()).collect()
}

fn read(dir: &Path, file: &str) -> Vec<u8> {
    std::fs::read(dir.join(file)).unwrap_or_else(|e| panic!("{file}: {e}"))
}

/// Same seed, different `--jobs`: every artifact the pipeline writes —
/// raw traces, merged intervals, the SLOG, and the provenance spec —
/// must be byte-identical. This is the guarantee that makes a seed a
/// complete reproduction of a corpus.
#[test]
fn same_seed_is_byte_identical_across_runs_and_jobs() {
    let a = tmpdir("ident_a");
    let b = tmpdir("ident_b");
    run(&argv(&[
        "scenario",
        "--seed",
        "42",
        "--out",
        a.to_str().unwrap(),
        "--jobs",
        "1",
    ]))
    .unwrap();
    run(&argv(&[
        "scenario",
        "--seed",
        "42",
        "--out",
        b.to_str().unwrap(),
        "--jobs",
        "4",
    ]))
    .unwrap();
    let mut raws = 0;
    for entry in std::fs::read_dir(&a).unwrap() {
        let name = entry.unwrap().file_name().into_string().unwrap();
        if name.starts_with("trace.") && name.ends_with(".raw") {
            assert_eq!(read(&a, &name), read(&b, &name), "{name} differs");
            raws += 1;
        }
    }
    assert!(raws > 0, "no raw traces written");
    for f in ["merged.ivl", "run.slog", "scenario.json", "threads.utt"] {
        assert_eq!(read(&a, f), read(&b, f), "{f} differs");
    }
}

/// `--describe` is pure: no files, stable bytes, and the spec it prints
/// matches the provenance file a real run writes for the same seed.
#[test]
fn describe_matches_run_provenance() {
    let d1 = run(&argv(&["scenario", "--seed", "1337", "--describe"])).unwrap();
    let d2 = run(&argv(&["scenario", "--seed", "1337", "--describe"])).unwrap();
    assert_eq!(d1, d2);
    assert!(d1.trim_start().starts_with('{'), "{d1}");
    let dir = tmpdir("describe");
    run(&argv(&[
        "scenario",
        "--seed",
        "1337",
        "--out",
        dir.to_str().unwrap(),
    ]))
    .unwrap();
    assert_eq!(d1.into_bytes(), read(&dir, "scenario.json"));
}

/// Pipeline artifacts for the ground-truth scenario — a hub pattern
/// with rank 2 slowed 4× — built once and shared by the tests below.
fn ground_truth_dir() -> &'static PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let d = tmpdir("groundtruth");
        run(&argv(&[
            "scenario",
            "--seed",
            "7",
            "--nodes",
            "4",
            "--tasks-per-node",
            "1",
            "--pattern",
            "hub",
            "--straggler",
            "2:4",
            "--out",
            d.to_str().unwrap(),
        ]))
        .unwrap();
        d
    })
}

/// The spec said "slow rank 2 by 4×"; the diagnostics on the far end of
/// the pipeline must say the same thing back: late-sender blames rank 2
/// hardest, imbalance flags node 2 in the injected `Collect` phase, and
/// the communication structure classifies as a hub.
#[test]
fn injected_straggler_and_pattern_are_recovered_by_analyze() {
    let dir = ground_truth_dir();
    let profile = Profile::read_from(&dir.join("profile.ute")).unwrap();
    let table = load_table(&dir.join("merged.ivl"), &profile, &LoadOptions::default()).unwrap();
    let findings = run_all(&table, &DiagOptions::default());

    let late: Vec<_> = findings
        .iter()
        .filter(|f| f.diagnostic == "late_sender")
        .collect();
    assert!(!late.is_empty(), "no late-sender findings: {findings:?}");
    assert_eq!(late[0].rank, Some(2), "{late:?}");

    let imb: Vec<_> = findings
        .iter()
        .filter(|f| f.diagnostic == "imbalance" && f.node == Some(2))
        .collect();
    assert!(
        imb.iter().any(|f| f.phase.as_deref() == Some("Collect")),
        "node 2 not flagged in Collect: {findings:?}"
    );

    let pat: Vec<_> = findings
        .iter()
        .filter(|f| f.diagnostic == "comm_pattern")
        .collect();
    assert!(
        pat.iter()
            .any(|f| f.details.iter().any(|(k, v)| k == "pattern" && v == "hub")),
        "hub not classified: {pat:?}"
    );
}

/// Scenario output directories pass the full conformance suite.
#[test]
fn scenario_artifacts_pass_check() {
    let dir = ground_truth_dir();
    let msg = run(&argv(&["check", "--in", dir.to_str().unwrap()])).unwrap();
    assert!(msg.contains("0 error(s), 0 warning(s)\n"), "{msg}");
}

/// Forcing each pattern by name round-trips into the phase names the
/// provenance JSON reports — the CLI knob actually reshapes the spec.
#[test]
fn pattern_override_reaches_every_phase() {
    for (flag, canon) in [
        ("ring", "ring"),
        ("hub", "hub"),
        ("alltoall", "all_to_all"),
        ("service", "service_graph"),
    ] {
        let d = run(&argv(&[
            "scenario",
            "--seed",
            "3",
            "--pattern",
            flag,
            "--describe",
        ]))
        .unwrap();
        let kind = PatternKind::parse(flag).unwrap();
        assert_eq!(kind.name(), canon);
        assert!(
            !d.contains("nearest_neighbor") || canon == "nearest_neighbor",
            "--pattern {flag} left another pattern in place:\n{d}"
        );
        assert!(d.contains(canon), "--pattern {flag} missing {canon}:\n{d}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seed's expansion simulates to completion and every raw trace
    /// it emits passes the decoder-level conformance rules — generated
    /// workloads never deadlock and never write malformed bytes.
    #[test]
    fn random_specs_produce_conformant_traces(seed in 0u64..1u64 << 48) {
        let spec = ScenarioSpec::from_seed(seed);
        spec.validate().unwrap();
        let sc = generate(&spec).unwrap();
        let nodes = sc.config.nodes;
        let res = Simulator::new(sc.config, &sc.job).unwrap().run().unwrap();
        prop_assert_eq!(res.raw_files.len(), nodes as usize);
        prop_assert!(res.stats.events_cut > 0, "seed {} traced nothing", seed);
        for f in &res.raw_files {
            let report = check_raw_bytes("scenario", &f.to_bytes().unwrap());
            let errors: Vec<_> = report
                .findings
                .iter()
                .filter(|v| v.severity == Severity::Error)
                .collect();
            prop_assert!(errors.is_empty(), "seed {}: {:?}", seed, errors);
        }
    }

    /// Spec→program determinism in isolation (no filesystem): the same
    /// seed expands to the same cluster and the same job, every time.
    #[test]
    fn same_seed_same_program(seed in 0u64..1u64 << 48) {
        let a = generate(&ScenarioSpec::from_seed(seed)).unwrap();
        let b = generate(&ScenarioSpec::from_seed(seed)).unwrap();
        prop_assert_eq!(a.job, b.job);
        prop_assert_eq!(a.config.nodes, b.config.nodes);
    }
}
