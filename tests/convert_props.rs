//! Property tests for the event→interval converter: for *any* valid
//! per-thread activity history, the produced pieces must reassemble into
//! exactly the original calls, and the pieces of each state must tile the
//! thread's dispatched time inside that state.

use proptest::prelude::*;

use ute::convert::{convert_node, MarkerMap};
use ute::core::bebits::count_states;
use ute::core::event::{EventCode, MpiOp};
use ute::core::ids::{CpuId, LogicalThreadId, NodeId, Pid, SystemThreadId, TaskId, ThreadType};
use ute::core::time::LocalTime;
use ute::format::file::{FramePolicy, IntervalFileReader};
use ute::format::profile::Profile;
use ute::format::record::Interval;
use ute::format::state::StateCode;
use ute::format::thread_table::{ThreadEntry, ThreadTable};
use ute::rawtrace::file::RawTraceFile;
use ute::rawtrace::record::{DispatchPayload, MpiPayload, RawEvent};

/// One abstract action of the generated history.
#[derive(Debug, Clone, Copy)]
enum Act {
    /// Deschedule then re-dispatch (possibly on another CPU).
    Yield { cpu: u16 },
    /// A complete MPI call with a deschedule inside iff `blocked`.
    Call { op_idx: u8, blocked: bool },
    /// Plain running time.
    Run,
}

fn arb_act() -> impl Strategy<Value = Act> {
    prop_oneof![
        (0u16..4).prop_map(|cpu| Act::Yield { cpu }),
        (0u8..4, any::<bool>()).prop_map(|(op_idx, blocked)| Act::Call { op_idx, blocked }),
        Just(Act::Run),
    ]
}

const OPS: [MpiOp; 4] = [MpiOp::Send, MpiOp::Recv, MpiOp::Barrier, MpiOp::Allreduce];

/// Renders a history into a raw event stream, returning the stream plus
/// the ground truth: number of calls per op and total in-call time.
fn render(acts: &[Act]) -> (Vec<RawEvent>, [usize; 4], u64) {
    let thread = LogicalThreadId(0);
    let mut events = Vec::new();
    let mut t = 0u64;
    let mut cpu = 0u16;
    let step = |t: &mut u64| {
        *t += 10;
        *t
    };
    let dispatch = |on: bool, cpu: u16, at: u64| {
        RawEvent::new(
            if on {
                EventCode::ThreadDispatch
            } else {
                EventCode::ThreadUndispatch
            },
            LocalTime(at),
            DispatchPayload {
                thread,
                cpu: CpuId(cpu),
            }
            .to_bytes(),
        )
    };
    let mpi = |op: MpiOp, begin: bool, at: u64| {
        RawEvent::new(
            if begin {
                EventCode::MpiBegin(op)
            } else {
                EventCode::MpiEnd(op)
            },
            LocalTime(at),
            MpiPayload::bare(thread, 0).to_bytes(),
        )
    };
    events.push(dispatch(true, cpu, step(&mut t)));
    let mut calls = [0usize; 4];
    let mut in_call = 0u64;
    for act in acts {
        match *act {
            Act::Yield { cpu: next } => {
                events.push(dispatch(false, cpu, step(&mut t)));
                cpu = next;
                events.push(dispatch(true, cpu, step(&mut t)));
            }
            Act::Run => {
                t += 25;
            }
            Act::Call { op_idx, blocked } => {
                let op = OPS[op_idx as usize];
                calls[op_idx as usize] += 1;
                let begin_at = step(&mut t);
                events.push(mpi(op, true, begin_at));
                if blocked {
                    events.push(dispatch(false, cpu, step(&mut t)));
                    // blocked gap does not count as in-call CPU time
                    let off_at = t;
                    t += 100;
                    events.push(dispatch(true, cpu, step(&mut t)));
                    let end_at = step(&mut t);
                    events.push(mpi(op, false, end_at));
                    in_call += (off_at - begin_at) + (end_at - (off_at + 100 + 10));
                } else {
                    let end_at = step(&mut t);
                    events.push(mpi(op, false, end_at));
                    in_call += end_at - begin_at;
                }
            }
        }
    }
    events.push(dispatch(false, cpu, step(&mut t)));
    (events, calls, in_call)
}

fn table() -> ThreadTable {
    let mut t = ThreadTable::new();
    t.register(ThreadEntry {
        task: TaskId(0),
        pid: Pid(1),
        system_tid: SystemThreadId(1),
        node: NodeId(0),
        logical: LogicalThreadId(0),
        ttype: ThreadType::Mpi,
    })
    .unwrap();
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pieces_reassemble_and_tile(acts in prop::collection::vec(arb_act(), 0..40)) {
        let (events, calls, in_call) = render(&acts);
        let profile = Profile::standard();
        let file = RawTraceFile::new(NodeId(0), events);
        let markers = MarkerMap::default();
        let out = convert_node(&file, &table(), &profile, &markers, FramePolicy::tiny()).unwrap();
        let r = IntervalFileReader::open(&out.interval_file, &profile).unwrap();
        let ivs: Vec<Interval> = r.intervals().map(|x| x.unwrap()).collect();

        // 1. Per MPI op: piece sequences are well-formed and count the
        //    exact number of calls the history made.
        for (i, op) in OPS.iter().enumerate() {
            let state = StateCode::mpi(*op);
            let seq: Vec<_> = ivs
                .iter()
                .filter(|iv| iv.itype.state == state)
                .map(|iv| iv.itype.bebits)
                .collect();
            let n = count_states(&seq);
            prop_assert_eq!(
                n,
                Some(calls[i]),
                "op {} pieces {:?}",
                op,
                seq
            );
        }

        // 2. The summed duration of MPI pieces equals the time the thread
        //    spent dispatched inside calls.
        let piece_time: u64 = ivs
            .iter()
            .filter(|iv| iv.itype.state.as_mpi().is_some())
            .map(|iv| iv.duration)
            .sum();
        prop_assert_eq!(piece_time, in_call);

        // 3. No two pieces on the thread overlap (they tile the timeline).
        let mut spans: Vec<(u64, u64)> = ivs
            .iter()
            .filter(|iv| iv.itype.state != StateCode::CLOCK && iv.duration > 0)
            .map(|iv| (iv.start, iv.end()))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(
                w[0].1 <= w[1].0,
                "overlapping pieces {:?} and {:?}",
                w[0],
                w[1]
            );
        }
    }
}
