//! Integration tests for the continuous-profiling layer (`ute-profile`):
//! the profiler must survive worker panics without leaking live-stack
//! registry entries, must never perturb pipeline output bytes, and the
//! `ute profile` command must publish a well-formed report.
//!
//! Own binary because the profiling flag, the sampler slot, and the
//! convert panic testhook are process-global — the lock below serializes
//! the tests that touch them.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use ute::cluster::Simulator;
use ute::convert::ConvertOptions;
use ute::format::profile::Profile;
use ute::merge::MergeOptions;
use ute::pipeline::{convert_and_merge, testhook, PipelineOutput};
use ute::workloads::micro;

static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    GLOBAL_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn run_pipeline(jobs: usize) -> PipelineOutput {
    let w = micro::stencil(4, 6, 4 << 10);
    let result = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
    let copts = ConvertOptions {
        lenient: true,
        salvage: true,
        ..ConvertOptions::default()
    };
    let mopts = MergeOptions {
        salvage: true,
        ..MergeOptions::default()
    };
    convert_and_merge(
        &result.raw_files,
        &result.threads,
        &Profile::standard(),
        &copts,
        &mopts,
        jobs,
    )
    .unwrap()
}

/// Counts live frames currently visible to the sampler.
fn live_frames() -> usize {
    let mut n = 0;
    ute::obs::sample_stacks(|_tid, frames| n += frames.len());
    n
}

#[test]
fn profiler_survives_worker_panics_and_heals_the_registry() {
    let _g = lock();
    ute::obs::set_profiling(true);
    ute::profile::start(Duration::from_micros(200));

    // A convert worker panics mid-node (one-shot hook); the salvage
    // retry must still succeed with the profiler sampling throughout.
    testhook::arm_convert_panic(1);
    let out = run_pipeline(4);
    assert!(!out.merged.merged.is_empty());

    // Unwinding ran every Span's Drop, so the panicked worker left no
    // frame behind; every other worker exited and its stack pruned.
    assert_eq!(
        live_frames(),
        0,
        "aborted spans must not leak live-stack frames"
    );

    let data = ute::profile::stop().expect("sampler was running");
    ute::obs::set_profiling(false);
    assert!(data.ticks > 0, "sampler never ticked during the run");

    // The profiler restarts cleanly after a stop — no poisoned state.
    ute::profile::start(Duration::from_micros(200));
    assert!(ute::profile::running());
    ute::profile::stop().expect("restarted sampler was running");
    assert!(
        ute::profile::stop().is_none(),
        "double stop must be a no-op"
    );
}

#[test]
fn artifacts_are_byte_identical_with_profiling_on_or_off() {
    let _g = lock();
    ute::obs::set_profiling(false);
    let baseline = run_pipeline(1);

    for jobs in [1usize, 4] {
        ute::obs::set_profiling(true);
        ute::profile::start(Duration::from_micros(200));
        let profiled = run_pipeline(jobs);
        ute::profile::stop();
        ute::obs::set_profiling(false);
        assert_eq!(
            profiled.merged.merged, baseline.merged.merged,
            "profiling must be purely observational (jobs {jobs})"
        );
    }
}

#[test]
fn ute_profile_publishes_ranked_report_and_folded_stacks() {
    let _g = lock();
    let dir = std::env::temp_dir().join(format!("ute_profile_smoke_{}", std::process::id()));
    let argv: Vec<String> = [
        "profile",
        "--workload",
        "stencil",
        "--out",
        dir.to_str().unwrap(),
        "--interval-us",
        "200",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let msg = ute::cli::run(&argv).unwrap();
    assert!(msg.contains("profile: stencil"), "missing header: {msg}");
    assert!(msg.contains("rank"), "missing ranking table: {msg}");
    assert!(msg.contains("backpressure:"), "missing stalls line: {msg}");

    let folded = std::fs::read_to_string(dir.join("profile.folded")).unwrap();
    assert!(!folded.trim().is_empty(), "profile.folded is empty");
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("folded `stack count` shape");
        assert!(!stack.is_empty());
        count.parse::<u64>().expect("folded count is a number");
    }

    let json = std::fs::read_to_string(dir.join("profile.json")).unwrap();
    for key in [
        "\"enabled\": true",
        "\"workload\": \"stencil\"",
        "\"coverage\"",
        "\"cpu_clock\"",
        "\"stages\"",
        "\"backpressure\"",
        "\"blocked_sends\"",
        "\"queue_depth_max\"",
    ] {
        assert!(json.contains(key), "profile.json missing {key}: {json}");
    }

    // Acceptance: stage self-times cover ≥90% of the sampled run. The
    // root CLI span stays open for the whole command, so only sampler
    // scheduling gaps can lower this.
    let coverage: f64 = json
        .lines()
        .find_map(|l| l.trim().strip_prefix("\"coverage\": "))
        .and_then(|v| v.trim_end_matches(',').parse().ok())
        .expect("coverage field");
    assert!(coverage >= 0.9, "self-time coverage {coverage} below 90%");
    std::fs::remove_dir_all(&dir).ok();
}
