//! Cross-crate integration tests: the full Figure 2 pipeline, exercised
//! on several workloads with invariants checked at every stage boundary.

use std::collections::HashMap;

use ute::cluster::Simulator;
use ute::convert::convert_job;
use ute::core::bebits::{count_states, BeBits};
use ute::core::event::MpiOp;
use ute::format::file::{FramePolicy, IntervalFileReader};
use ute::format::profile::Profile;
use ute::format::record::Interval;
use ute::format::state::StateCode;
use ute::merge::{merge_files, slogmerge, MergeOptions};
use ute::slog::builder::BuildOptions;
use ute::slog::record::SlogRecord;
use ute::workloads::{flash, micro, sppm};

struct Pipeline {
    profile: Profile,
    per_node: Vec<Vec<u8>>,
    merged: Vec<u8>,
    slog: ute::slog::file::SlogFile,
}

fn run_pipeline(w: ute::workloads::Workload) -> Pipeline {
    let result = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
    let profile = Profile::standard();
    let converted = convert_job(
        &result.raw_files,
        &result.threads,
        &profile,
        FramePolicy {
            max_records_per_frame: 64,
            max_frames_per_dir: 4,
        },
        true,
    )
    .unwrap();
    let per_node: Vec<Vec<u8>> = converted.into_iter().map(|c| c.interval_file).collect();
    let refs: Vec<&[u8]> = per_node.iter().map(|f| f.as_slice()).collect();
    let merged = merge_files(&refs, &profile, &MergeOptions::default())
        .unwrap()
        .merged;
    let (slog, _) = slogmerge(
        &refs,
        &profile,
        &MergeOptions::default(),
        BuildOptions {
            nframes: 16,
            preview_bins: 32,
            arrows: true,
        },
    )
    .unwrap();
    Pipeline {
        profile,
        per_node,
        merged,
        slog,
    }
}

fn merged_intervals(p: &Pipeline) -> Vec<Interval> {
    let r = IntervalFileReader::open(&p.merged, &p.profile).unwrap();
    r.intervals().map(|iv| iv.unwrap()).collect()
}

#[test]
fn merged_stream_is_end_ordered_and_complete() {
    let p = run_pipeline(micro::stencil(4, 10, 16 << 10));
    let merged = merged_intervals(&p);
    assert!(!merged.is_empty());
    for w in merged.windows(2) {
        assert!(w[0].end() <= w[1].end(), "merge order violated");
    }
    // Merged record count = sum of per-node counts + frame pseudo records.
    let per_node_total: u64 = p
        .per_node
        .iter()
        .map(|f| {
            IntervalFileReader::open(f, &p.profile)
                .unwrap()
                .total_records()
                .unwrap()
        })
        .sum();
    assert!(merged.len() as u64 >= per_node_total);
}

#[test]
fn bebits_reassemble_into_whole_states_per_thread() {
    // The §1.2 invariant the format exists for: pieces of every state,
    // taken in order per (node, thread, state), must reassemble into
    // complete calls.
    let p = run_pipeline(sppm::workload(sppm::SppmParams {
        steps: 4,
        ..sppm::SppmParams::default()
    }));
    let merged = merged_intervals(&p);
    let mut sequences: HashMap<(u16, u16, u16), Vec<BeBits>> = HashMap::new();
    for iv in &merged {
        if iv.itype.state == StateCode::CLOCK
            || iv.duration == 0 && iv.itype.bebits == BeBits::Continuation
        {
            // Skip clock records and the merge utility's zero-duration
            // frame-head pseudo continuations: they are display hints,
            // not call pieces.
            continue;
        }
        sequences
            .entry((iv.node.raw(), iv.thread.raw(), iv.itype.state.0))
            .or_default()
            .push(iv.itype.bebits);
    }
    assert!(!sequences.is_empty());
    let mut mpi_calls = 0;
    for ((node, thread, state), seq) in &sequences {
        let states = count_states(seq);
        assert!(
            states.is_some(),
            "malformed piece sequence for node {node} thread {thread} state {state:#x}: {seq:?}"
        );
        if StateCode(*state).as_mpi().is_some() {
            mpi_calls += states.unwrap();
        }
    }
    // 4 ranks × 4 steps × (2 irecv + 2 isend + waitall + allreduce) plus
    // the marker-loop bookkeeping — at minimum 96 MPI calls.
    assert!(mpi_calls >= 96, "only {mpi_calls} MPI calls reassembled");
}

#[test]
fn clock_adjustment_aligns_collectives_across_nodes() {
    // All ranks leave an Allreduce at the same simulated instant; after
    // per-node clock adjustment their merged end times must agree far
    // more tightly than the raw drift would allow.
    let p = run_pipeline(micro::allreduce_sweep(4, 8));
    let merged = merged_intervals(&p);
    let allreduce = StateCode::mpi(MpiOp::Allreduce);
    let mut ends: Vec<Vec<u64>> = Vec::new();
    let mut by_count: HashMap<u16, usize> = HashMap::new();
    for iv in merged
        .iter()
        .filter(|iv| iv.itype.state == allreduce && iv.itype.bebits.ends_state())
    {
        let k = by_count.entry(iv.node.raw()).or_insert(0);
        if ends.len() <= *k {
            ends.resize(*k + 1, Vec::new());
        }
        ends[*k].push(iv.end());
        *k += 1;
    }
    let mut checked = 0;
    for round in &ends {
        if round.len() == 4 {
            let lo = *round.iter().min().unwrap();
            let hi = *round.iter().max().unwrap();
            // Raw drift between ±12/±26 ppm nodes over seconds would be
            // tens of µs; adjusted skew should stay under ~20 µs
            // (residual = fit error + scheduling jitter at the exit).
            assert!(
                hi - lo < 100_000,
                "allreduce exit skew {} ns too large",
                hi - lo
            );
            checked += 1;
        }
    }
    assert!(checked >= 4, "only {checked} collective rounds checked");
}

#[test]
fn slog_arrows_match_send_recv_pairs() {
    let p = run_pipeline(micro::ping_pong(16, 8 << 10));
    let arrows: Vec<_> = p
        .slog
        .frames
        .iter()
        .flat_map(|f| &f.records)
        .filter_map(|r| match r {
            SlogRecord::Arrow(a) if !a.pseudo => Some(*a),
            _ => None,
        })
        .collect();
    // 16 rounds × 2 directions.
    assert_eq!(arrows.len(), 32);
    for a in &arrows {
        assert!(a.recv_time > a.send_time, "arrow goes backwards in time");
        assert_eq!(a.bytes, 8 << 10);
        assert_ne!(a.src_timeline, a.dst_timeline);
    }
}

#[test]
fn frame_windows_are_self_contained() {
    // §4's second challenge: a frame in the middle of the run must carry
    // (as pseudo records) everything needed to render it. For a FLASH
    // trace, pick the frame in the middle busy phase and check the
    // enclosing marker state is visible inside it.
    let p = run_pipeline(flash::workload(flash::FlashParams {
        iters_per_phase: 4,
        ..flash::FlashParams::default()
    }));
    // Compute the true marker spans from the merged stream (connected
    // Begin..End pieces per thread), then check that EVERY frame
    // overlapping a marker span contains a Marker record — directly or as
    // a pseudo copy. Frames in the quiet phases carry none.
    let merged = merged_intervals(&p);
    let mut open: HashMap<(u16, u16), Vec<u64>> = HashMap::new();
    let mut marker_spans: Vec<(u64, u64)> = Vec::new();
    for iv in &merged {
        // Skip the merge utility's zero-duration pseudo continuations but
        // keep genuine zero-length End pieces (a marker can close at the
        // same instant its inner state ended).
        if iv.itype.state != StateCode::MARKER
            || (iv.duration == 0 && iv.itype.bebits == BeBits::Continuation)
        {
            continue;
        }
        let key = (iv.node.raw(), iv.thread.raw());
        match iv.itype.bebits {
            BeBits::Complete => marker_spans.push((iv.start, iv.end())),
            BeBits::Begin => open.entry(key).or_default().push(iv.start),
            BeBits::End => {
                if let Some(s) = open.entry(key).or_default().pop() {
                    marker_spans.push((s, iv.end()));
                }
            }
            BeBits::Continuation => {}
        }
    }
    assert!(
        marker_spans.len() >= 12,
        "markers found: {}",
        marker_spans.len()
    );
    let mut frames_checked = 0;
    for frame in &p.slog.frames {
        let in_marker = marker_spans
            .iter()
            .any(|&(s, e)| s < frame.t_end && e > frame.t_start);
        if !in_marker {
            continue;
        }
        frames_checked += 1;
        let has_marker = frame
            .records
            .iter()
            .any(|r| matches!(r, SlogRecord::State(s) if s.state == StateCode::MARKER));
        assert!(
            has_marker,
            "frame [{}, {}) overlaps a marker span but shows none",
            frame.t_start, frame.t_end
        );
    }
    assert!(frames_checked >= 3, "only {frames_checked} frames probed");
}

#[test]
fn views_conserve_busy_time_across_groupings() {
    // The same SLOG data grouped by thread and by processor must contain
    // the same non-Running activity (same bars, different rows).
    let p = run_pipeline(micro::stencil(3, 6, 8 << 10));
    let cfg_thread = ute::view::model::ViewConfig {
        kind: ute::view::model::ViewKind::ThreadActivity,
        hide_running: true,
        ..ute::view::model::ViewConfig::default()
    };
    let cfg_cpu = ute::view::model::ViewConfig {
        kind: ute::view::model::ViewKind::ProcessorActivity,
        hide_running: true,
        ..ute::view::model::ViewConfig::default()
    };
    let tv = ute::view::model::build_view(&p.slog, &cfg_thread).unwrap();
    let cv = ute::view::model::build_view(&p.slog, &cfg_cpu).unwrap();
    let busy = |v: &ute::view::model::View| -> u64 { v.bars.iter().map(|b| b.end - b.start).sum() };
    assert_eq!(busy(&tv), busy(&cv), "total activity differs between views");
    assert_eq!(tv.bars.len(), cv.bars.len());
}

#[test]
fn marker_ids_unified_across_tasks() {
    // Every task defines the same marker strings in the same order here,
    // but the id-unification path must still produce exactly one id per
    // string in the merged marker table.
    let p = run_pipeline(flash::workload(flash::FlashParams {
        iters_per_phase: 2,
        ..flash::FlashParams::default()
    }));
    let names: Vec<&str> = p.slog.markers.iter().map(|(_, n)| n.as_str()).collect();
    let unique: std::collections::HashSet<&&str> = names.iter().collect();
    assert_eq!(
        names.len(),
        unique.len(),
        "duplicate marker strings: {names:?}"
    );
    for phase in ["Initialization", "Evolution", "Termination"] {
        assert!(names.contains(&phase), "missing marker {phase}");
    }
    // Ids are unique too.
    let ids: std::collections::HashSet<u32> = p.slog.markers.iter().map(|(i, _)| *i).collect();
    assert_eq!(ids.len(), names.len());
}

mod parallel_determinism {
    use proptest::prelude::*;
    use ute::cluster::Simulator;
    use ute::convert::ConvertOptions;
    use ute::format::file::FramePolicy;
    use ute::format::profile::Profile;
    use ute::merge::MergeOptions;
    use ute::pipeline::convert_and_merge;
    use ute::rawtrace::buffer::BufferMode;
    use ute::workloads::micro;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        // The pipeline's determinism guarantee, explored across the
        // input space: any node count, any worker count, and both trace
        // buffer behaviours (flush vs stop-when-full truncation, which
        // produces force-closed states) must yield converted and merged
        // bytes identical to the serial path.
        #[test]
        fn parallel_pipeline_equals_serial_bytes(
            nodes in 1u32..17,
            jobs in 1usize..9,
            stop_when_full in any::<bool>(),
            buffer_kib in 8usize..65,
        ) {
            let mut w = micro::stencil(nodes, 5, 4 << 10);
            w.config.trace.mode = if stop_when_full {
                BufferMode::StopWhenFull
            } else {
                BufferMode::Flush
            };
            w.config.trace.buffer_size = buffer_kib << 10;
            let result = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
            let profile = Profile::standard();
            let copts = ConvertOptions {
                policy: FramePolicy::default(),
                ..ConvertOptions::default()
            };
            let mopts = MergeOptions::default();
            let serial = convert_and_merge(
                &result.raw_files, &result.threads, &profile, &copts, &mopts, 1,
            );
            let parallel = convert_and_merge(
                &result.raw_files, &result.threads, &profile, &copts, &mopts, jobs,
            );
            match (serial, parallel) {
                (Ok(s), Ok(p)) => {
                    prop_assert_eq!(
                        &s.merged.merged, &p.merged.merged,
                        "merged bytes differ at jobs={}", jobs
                    );
                    prop_assert_eq!(s.converted.len(), p.converted.len());
                    for (a, b) in s.converted.iter().zip(&p.converted) {
                        prop_assert_eq!(a.node, b.node);
                        prop_assert_eq!(
                            &a.interval_file, &b.interval_file,
                            "converted bytes differ for node {} at jobs={}",
                            a.node.raw(), jobs
                        );
                    }
                    prop_assert_eq!(s.merged.stats.records_in, p.merged.stats.records_in);
                    prop_assert_eq!(s.merged.stats.records_out, p.merged.stats.records_out);
                }
                (Err(_), Err(_)) => {} // both reject the input — also deterministic
                (s, p) => prop_assert!(
                    false,
                    "paths disagree: serial ok={}, parallel ok={}",
                    s.is_ok(), p.is_ok()
                ),
            }
        }
    }
}

#[test]
fn statistics_agree_with_ground_truth_messages() {
    let rounds = 12u32;
    let bytes = 4 << 10;
    let p = run_pipeline(micro::ping_pong(rounds, bytes));
    let merged = merged_intervals(&p);
    let specs = ute::stats::parse_program(
        r#"table name=sent condition=(state >= 256 && msgSizeSent > 0)
           y=("bytes", msgSizeSent, sum) y=("msgs", msgSizeSent, count)"#,
    )
    .unwrap();
    let tables = ute::stats::run_tables(&specs, &p.profile, &merged).unwrap();
    let ys = tables[0].row(&[]).unwrap();
    assert_eq!(ys[0] as u64, 2 * rounds as u64 * bytes);
    assert_eq!(ys[1] as u64, 2 * rounds as u64);
}
