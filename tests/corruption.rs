//! Failure-injection tests: every file format must reject corrupt or
//! truncated input with an error — never a panic — because trace files
//! outlive the runs that wrote them and travel between systems.

use proptest::prelude::*;

use ute::cluster::Simulator;
use ute::convert::convert_job;
use ute::format::file::{FramePolicy, IntervalFileReader};
use ute::format::profile::Profile;
use ute::merge::{merge_files, MergeOptions};
use ute::rawtrace::file::RawTraceFile;
use ute::slog::builder::BuildOptions;
use ute::slog::file::SlogFile;
use ute::workloads::micro::ping_pong;

/// One small valid artifact set, built once.
fn artifacts() -> (Vec<u8>, Vec<u8>, Vec<u8>, Vec<u8>) {
    let w = ping_pong(4, 2048);
    let sim = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
    let profile = Profile::standard();
    let raw = sim.raw_files[0].to_bytes().unwrap();
    let converted = convert_job(
        &sim.raw_files,
        &sim.threads,
        &profile,
        FramePolicy::tiny(),
        false,
    )
    .unwrap();
    let ivl = converted[0].interval_file.clone();
    let refs: Vec<&[u8]> = converted
        .iter()
        .map(|c| c.interval_file.as_slice())
        .collect();
    let merged = merge_files(&refs, &profile, &MergeOptions::default())
        .unwrap()
        .merged;
    let (slog, _) = ute::merge::slogmerge(
        &refs,
        &profile,
        &MergeOptions::default(),
        BuildOptions::default(),
    )
    .unwrap();
    (raw, ivl, merged, slog.to_bytes())
}

/// Fully consuming a (possibly corrupt) interval file: open + iterate.
fn consume_interval(bytes: &[u8], profile: &Profile) {
    if let Ok(reader) = IntervalFileReader::open(bytes, profile) {
        // Any record or directory may be broken; errors are fine.
        for iv in reader.intervals() {
            if iv.is_err() {
                return;
            }
        }
        let _ = reader.total_records();
        let _ = reader.find_frame(12345);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn corrupted_files_error_but_never_panic(
        flips in prop::collection::vec((0usize..1_000_000, any::<u8>()), 1..12),
        truncate_frac in 0.0f64..1.0,
    ) {
        // Build once per case (cheap workload) to avoid cross-case state.
        let (raw, ivl, merged, slog) = artifacts();
        let profile = Profile::standard();
        for original in [&raw, &ivl, &merged, &slog] {
            let mut bytes = (*original).clone();
            for (pos, val) in &flips {
                let len = bytes.len();
                bytes[pos % len] = *val;
            }
            let cut = ((bytes.len() as f64) * truncate_frac) as usize;
            let truncated = &bytes[..cut];

            // Raw trace parser.
            let _ = RawTraceFile::from_bytes(&bytes);
            let _ = RawTraceFile::from_bytes(truncated);
            // Interval file reader.
            consume_interval(&bytes, &profile);
            consume_interval(truncated, &profile);
            // SLOG parser.
            let _ = SlogFile::from_bytes(&bytes);
            let _ = SlogFile::from_bytes(truncated);
            // Profile parser.
            let _ = Profile::from_bytes(&bytes);
        }
    }

    #[test]
    fn corrupted_profiles_never_panic(
        flips in prop::collection::vec((0usize..100_000, any::<u8>()), 1..8),
    ) {
        let mut bytes = Profile::standard().to_bytes();
        for (pos, val) in &flips {
            let len = bytes.len();
            bytes[pos % len] = *val;
        }
        // Either parses (the flip hit a don't-care byte) or errors.
        if let Ok(p) = Profile::from_bytes(&bytes) {
            // A profile that parsed must be usable without panicking.
            let _ = p.record_type_count();
            let _ = p.field_name_index("msgSizeSent");
        }
    }
}

#[test]
fn merging_mismatched_profiles_fails_cleanly() {
    let (_, ivl, _, _) = artifacts();
    let mut other = Profile::standard();
    other.version = 42;
    let refs: Vec<&[u8]> = vec![&ivl];
    let err = merge_files(&refs, &other, &MergeOptions::default()).unwrap_err();
    assert!(err.to_string().contains("version"), "{err}");
}

#[test]
fn stats_on_garbage_program_fails_cleanly() {
    for bad in [
        "",
        "tab le",
        "table name=",
        "table name=x y=(\"l\", dura, avg",
        "table name=x y=(\"l\", 1 ++ 2, sum)",
        "table name=x condition=((start) y=(\"l\", dura, sum)",
    ] {
        assert!(ute::stats::parse_program(bad).is_err(), "accepted: {bad:?}");
    }
}
