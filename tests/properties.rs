//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use ute::clock::ratio::{rms_segments, ClockFit, RatioEstimator};
use ute::clock::sample::ClockSample;
use ute::core::bebits::BeBits;
use ute::core::codec::{ByteReader, ByteWriter};
use ute::core::event::{EventCode, MpiOp};
use ute::core::ids::{CpuId, LogicalThreadId, NodeId};
use ute::core::time::{LocalTime, Time};
use ute::format::file::{FramePolicy, IntervalFileReader, IntervalFileWriter};
use ute::format::profile::{Profile, MASK_MERGED, MASK_PER_NODE};
use ute::format::record::{Interval, IntervalType};
use ute::format::state::StateCode;
use ute::format::thread_table::ThreadTable;
use ute::format::value::Value;
use ute::rawtrace::record::RawEvent;

fn arb_state() -> impl Strategy<Value = StateCode> {
    prop_oneof![
        Just(StateCode::RUNNING),
        Just(StateCode::SYSCALL),
        Just(StateCode::PAGE_FAULT),
        Just(StateCode::IO),
        Just(StateCode::INTERRUPT),
    ]
}

fn arb_bebits() -> impl Strategy<Value = BeBits> {
    prop_oneof![
        Just(BeBits::Complete),
        Just(BeBits::Begin),
        Just(BeBits::Continuation),
        Just(BeBits::End),
    ]
}

fn arb_interval() -> impl Strategy<Value = Interval> {
    (
        arb_state(),
        arb_bebits(),
        0u64..1u64 << 40,
        0u64..1u64 << 30,
        0u16..16,
        0u16..8,
        0u16..512,
    )
        .prop_map(|(state, bebits, start, dur, cpu, node, thread)| {
            Interval::basic(
                IntervalType { state, bebits },
                start,
                dur,
                CpuId(cpu),
                NodeId(node),
                LogicalThreadId(thread),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn record_bodies_round_trip_any_interval(iv in arb_interval(), merged in any::<bool>()) {
        let p = Profile::standard();
        let mask = if merged { MASK_MERGED } else { MASK_PER_NODE };
        let body = iv.encode_body(&p, mask).unwrap();
        let back = Interval::decode_body(&p, mask, &body, iv.node).unwrap();
        prop_assert_eq!(back, iv);
    }

    #[test]
    fn interval_files_round_trip_sorted_batches(
        mut ivs in prop::collection::vec(arb_interval(), 1..200),
        records_per_frame in 1usize..32,
        frames_per_dir in 1usize..8,
    ) {
        ivs.sort_by_key(|iv| iv.end());
        let p = Profile::standard();
        let mut w = IntervalFileWriter::new(
            &p,
            MASK_PER_NODE,
            0,
            &ThreadTable::new(),
            &[],
            FramePolicy { max_records_per_frame: records_per_frame, max_frames_per_dir: frames_per_dir },
        );
        for iv in &ivs {
            let mut iv = iv.clone();
            iv.node = NodeId(0);
            w.push(&iv).unwrap();
        }
        let bytes = w.finish();
        let r = IntervalFileReader::open(&bytes, &p).unwrap();
        let back: Vec<Interval> = r.intervals().map(|x| x.unwrap()).collect();
        prop_assert_eq!(back.len(), ivs.len());
        for (a, b) in back.iter().zip(&ivs) {
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(a.duration, b.duration);
            prop_assert_eq!(a.itype, b.itype);
        }
        // Metadata agrees with contents.
        prop_assert_eq!(r.total_records().unwrap(), ivs.len() as u64);
        // Every frame found by time lookup contains what it promises.
        if let Some((s, e)) = r.time_span().unwrap() {
            let mid = s + (e - s) / 2;
            if let Some(frame) = r.find_frame(mid).unwrap() {
                let in_frame = r.frame_intervals(&frame).unwrap();
                prop_assert_eq!(in_frame.len(), frame.nrecords as usize);
            }
        }
    }

    #[test]
    fn raw_events_survive_arbitrary_payloads(
        payload in prop::collection::vec(any::<u8>(), 0..300),
        ts in any::<u64>(),
    ) {
        let ev = RawEvent::new(EventCode::Syscall, LocalTime(ts), payload);
        let mut w = ByteWriter::new();
        ev.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        prop_assert_eq!(RawEvent::decode(&mut r).unwrap(), ev);
    }

    #[test]
    fn clock_fit_recovers_linear_clocks(
        ppm in -500.0f64..500.0,
        offset in 0u64..1_000_000,
        n in 3usize..60,
    ) {
        // Build exact samples of a linear clock L = offset + G·(1+ppm·1e-6).
        let rate = 1.0 + ppm * 1e-6;
        let samples: Vec<ClockSample> = (0..n as u64)
            .map(|i| {
                let g = i * 1_000_000_000;
                ClockSample::new(Time(g), LocalTime(offset + (g as f64 * rate) as u64))
            })
            .collect();
        let r = rms_segments(&samples);
        let expect = 1.0 / rate;
        prop_assert!((r - expect).abs() < 1e-6, "R {} vs {}", r, expect);
        // Adjusting any sampled local timestamp recovers its global time.
        let fit = ClockFit::fit(&samples, RatioEstimator::RmsSegments).unwrap();
        for s in &samples {
            let adj = fit.adjust(s.local);
            prop_assert!(
                (adj.ticks() as i64 - s.global.ticks() as i64).abs() < 1_000,
                "adjust error at {:?}", s
            );
        }
    }

    #[test]
    fn adjustment_is_monotone(
        ppm in -500.0f64..500.0,
        probes in prop::collection::vec(0u64..200_000_000_000, 2..20),
    ) {
        let rate = 1.0 + ppm * 1e-6;
        let samples: Vec<ClockSample> = (0..10u64)
            .map(|i| {
                let g = i * 1_000_000_000;
                ClockSample::new(Time(g), LocalTime((g as f64 * rate) as u64))
            })
            .collect();
        let fit = ClockFit::fit(&samples, RatioEstimator::RmsSegments).unwrap();
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        let adjusted: Vec<u64> = sorted.iter().map(|&l| fit.adjust(LocalTime(l)).ticks()).collect();
        for w in adjusted.windows(2) {
            prop_assert!(w[0] <= w[1], "adjustment reordered timestamps");
        }
    }

    #[test]
    fn get_item_by_name_agrees_with_decoded_struct(
        start in 0u64..1u64 << 40,
        dur in 0u64..1u64 << 30,
        bytes_sent in 0u64..1u64 << 32,
        seq in 1u64..1u64 << 32,
    ) {
        let p = Profile::standard();
        let iv = Interval::basic(
            IntervalType::complete(StateCode::mpi(MpiOp::Send)),
            start, dur, CpuId(1), NodeId(2), LogicalThreadId(3),
        )
        .with_extra(&p, "rank", Value::Uint(0))
        .with_extra(&p, "peer", Value::Uint(1))
        .with_extra(&p, "tag", Value::Uint(0))
        .with_extra(&p, "msgSizeSent", Value::Uint(bytes_sent))
        .with_extra(&p, "seq", Value::Uint(seq))
        .with_extra(&p, "address", Value::Uint(0));
        let body = iv.encode_body(&p, MASK_MERGED).unwrap();
        prop_assert_eq!(
            p.get_item_by_name(MASK_MERGED, &body, "msgSizeSent").unwrap(),
            Some(Value::Uint(bytes_sent))
        );
        prop_assert_eq!(
            p.get_item_by_name(MASK_MERGED, &body, "start").unwrap(),
            Some(Value::Uint(start))
        );
        prop_assert_eq!(
            p.get_item_by_name(MASK_MERGED, &body, "node").unwrap(),
            Some(Value::Uint(2))
        );
    }

    #[test]
    fn slog_files_round_trip(
        mut ivs in prop::collection::vec(arb_interval(), 1..100),
        nframes in 1usize..20,
    ) {
        // Give every interval the same node/thread so the thread table is
        // simple, then round-trip the whole SLOG file.
        let p = Profile::standard();
        let mut threads = ThreadTable::new();
        threads.register(ute::format::thread_table::ThreadEntry {
            task: ute::core::ids::TaskId(0),
            pid: ute::core::ids::Pid(1),
            system_tid: ute::core::ids::SystemThreadId(1),
            node: NodeId(0),
            logical: LogicalThreadId(0),
            ttype: ute::core::ids::ThreadType::Mpi,
        }).unwrap();
        for iv in &mut ivs {
            iv.node = NodeId(0);
            iv.thread = LogicalThreadId(0);
        }
        ivs.sort_by_key(|iv| iv.end());
        let slog = ute::slog::builder::SlogBuilder::new(
            &p,
            ute::slog::builder::BuildOptions { nframes, preview_bins: 8, arrows: false },
        )
        .build(&ivs, &threads, &[])
        .unwrap();
        let bytes = slog.to_bytes();
        let back = ute::slog::file::SlogFile::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, slog);
    }

    #[test]
    fn stats_sum_equals_manual_fold(
        durs in prop::collection::vec(1u64..1_000_000_000u64, 1..50),
    ) {
        let p = Profile::standard();
        let mut t = 0u64;
        let ivs: Vec<Interval> = durs.iter().map(|&d| {
            let iv = Interval::basic(
                IntervalType::complete(StateCode::SYSCALL),
                t, d, CpuId(0), NodeId(0), LogicalThreadId(0),
            );
            t += d;
            iv
        }).collect();
        let specs = ute::stats::parse_program(
            r#"table name=t y=("sum", dura, sum) y=("n", dura, count)"#
        ).unwrap();
        let tables = ute::stats::run_tables(&specs, &p, &ivs).unwrap();
        let ys = tables[0].row(&[]).unwrap();
        let manual: u64 = durs.iter().sum();
        prop_assert!((ys[0] - manual as f64 / 1e9).abs() < 1e-6);
        prop_assert_eq!(ys[1] as usize, durs.len());
    }

    #[test]
    fn cell_matches_reference_fold(
        vs in prop::collection::vec(-1e9f64..1e9f64, 0..64),
    ) {
        // The streaming Cell accumulator must agree with a from-scratch
        // fold over the same values for every aggregator. Additions
        // happen in the same order, so sum/avg are bit-exact, not just
        // close.
        use ute::stats::table::{Agg, Cell};
        let mut c = Cell::default();
        for &v in &vs {
            c.add(v);
        }
        prop_assert_eq!(c.finish(Agg::Count), vs.len() as f64);
        let sum = vs.iter().fold(0.0f64, |a, v| a + v);
        if vs.is_empty() {
            prop_assert_eq!(c.finish(Agg::Avg), 0.0);
        } else {
            prop_assert_eq!(c.finish(Agg::Sum), sum);
            prop_assert_eq!(c.finish(Agg::Avg), sum / vs.len() as f64);
            let min = vs.iter().fold(f64::INFINITY, |a, v| a.min(*v));
            let max = vs.iter().fold(f64::NEG_INFINITY, |a, v| a.max(*v));
            prop_assert_eq!(c.finish(Agg::Min), min);
            prop_assert_eq!(c.finish(Agg::Max), max);
        }
    }

    #[test]
    fn grouped_aggregates_match_reference(
        rows in prop::collection::vec((0u16..4, 1u64..2_000_000_000u64), 1..80),
    ) {
        // run_tables' grouped avg/min/max/count against a hand-rolled
        // group-by over the same (node, duration) pairs.
        let p = Profile::standard();
        let ivs: Vec<Interval> = rows.iter().enumerate().map(|(i, &(node, d))| {
            Interval::basic(
                IntervalType::complete(StateCode::SYSCALL),
                i as u64 * 10, d, CpuId(0), NodeId(node), LogicalThreadId(0),
            )
        }).collect();
        let specs = ute::stats::parse_program(
            r#"table name=t x=("node", node)
               y=("avg", dura, avg) y=("min", dura, min)
               y=("max", dura, max) y=("n", dura, count)"#
        ).unwrap();
        let tables = ute::stats::run_tables(&specs, &p, &ivs).unwrap();
        let t = &tables[0];
        let mut by_node: std::collections::BTreeMap<u16, Vec<f64>> = Default::default();
        for &(node, d) in &rows {
            by_node.entry(node).or_default().push(d as f64 / 1e9);
        }
        prop_assert_eq!(t.rows.len(), by_node.len());
        for (node, ds) in by_node {
            let ys = t.row(&[node as f64]).unwrap();
            let sum = ds.iter().fold(0.0f64, |a, v| a + v);
            prop_assert!((ys[0] - sum / ds.len() as f64).abs() < 1e-9, "avg node {}", node);
            let min = ds.iter().fold(f64::INFINITY, |a, v| a.min(*v));
            let max = ds.iter().fold(f64::NEG_INFINITY, |a, v| a.max(*v));
            prop_assert!((ys[1] - min).abs() < 1e-12, "min node {}", node);
            prop_assert!((ys[2] - max).abs() < 1e-12, "max node {}", node);
            prop_assert_eq!(ys[3] as usize, ds.len());
        }
    }
}
