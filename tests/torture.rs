//! Torture acceptance: the 256+-node `torture:SEED` preset through the
//! sharded merge. The preset's lock-step symmetric phases mint long runs
//! of equal end timestamps across nodes, and its intervals routinely
//! span the frame-directory time cuts the shard planner picks — exactly
//! the two hazards of stitching per-shard merges back together. The
//! tests pin the stitch protocol's guarantees on that workload: tie
//! groups never straddle a shard boundary, records that *cross* a
//! boundary in time still land in exactly one shard (sharding is by end
//! value, not by span), and the stitched pipeline output is
//! byte-identical to the serial merge at every job count.

use std::sync::OnceLock;

use ute::cluster::Simulator;
use ute::convert::ConvertOptions;
use ute::format::file::{FramePolicy, IntervalFileReader};
use ute::format::profile::Profile;
use ute::format::record::Interval;
use ute::format::thread_table::ThreadTable;
use ute::merge::{adjust_node, merge_sharded, plan_boundaries, split_stream, MergeOptions};
use ute::pipeline::{convert_and_merge, convert_and_merge_sharded};
use ute::rawtrace::RawTraceFile;
use ute::scenario::{generate, ScenarioSpec};

const SEED: u64 = 11;

/// Small frames so the corpus spans many frame directories — the shard
/// planner samples boundary candidates at frame-directory stride.
fn policy() -> FramePolicy {
    FramePolicy {
        max_records_per_frame: 32,
        max_frames_per_dir: 2,
    }
}

struct Torture {
    raw_files: Vec<RawTraceFile>,
    threads: ThreadTable,
    profile: Profile,
    /// Per-node clock-adjusted streams, each end-ordered — the exact
    /// inputs the sharded merge partitions.
    streams: Vec<Vec<Interval>>,
}

/// The torture corpus is expensive enough (256+ nodes) to build once.
fn torture() -> &'static Torture {
    static CORPUS: OnceLock<Torture> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let spec = ScenarioSpec::torture(SEED);
        assert!(spec.topology.nodes >= 256);
        let sc = generate(&spec).unwrap();
        let nodes = sc.config.nodes;
        let result = Simulator::new(sc.config, &sc.job).unwrap().run().unwrap();
        assert_eq!(result.raw_files.len(), nodes as usize);
        let profile = Profile::standard();
        let copts = ConvertOptions {
            policy: policy(),
            ..ConvertOptions::default()
        };
        let converted = ute::convert::convert_job_opts(
            &result.raw_files,
            &result.threads,
            &profile,
            &copts,
            false,
        )
        .unwrap();
        let mopts = MergeOptions::default();
        let streams = converted
            .iter()
            .map(|o| {
                let reader = IntervalFileReader::open(&o.interval_file, &profile).unwrap();
                let mut ivs = Vec::new();
                adjust_node(&reader, &profile, &mopts, |iv| {
                    ivs.push(iv);
                    Ok(())
                })
                .unwrap();
                ivs
            })
            .collect();
        Torture {
            raw_files: result.raw_files,
            threads: result.threads,
            profile,
            streams,
        }
    })
}

/// The preset must actually produce the hazards it exists to test:
/// cross-stream equal-end tie groups, and plenty of them.
#[test]
fn torture_workload_mints_cross_stream_ties() {
    let t = torture();
    let total: usize = t.streams.iter().map(Vec::len).sum();
    assert!(total > 30_000, "only {total} adjusted records");
    let mut ends = std::collections::BTreeMap::new();
    for (src, s) in t.streams.iter().enumerate() {
        for iv in s {
            let entry = ends
                .entry(iv.end())
                .or_insert_with(std::collections::BTreeSet::new);
            entry.insert(src);
        }
    }
    // Clock adjustment maps each node's drifting local clock to global
    // time, so exact cross-node end collisions are rare but — thanks to
    // the lock-step phases — never absent. Within-stream ties (several
    // records ending on the same adjusted tick) are common; both kinds
    // must survive sharding, and both must exist here to be tested.
    let cross_ties = ends.values().filter(|srcs| srcs.len() >= 2).count();
    assert!(
        cross_ties >= 25,
        "only {cross_ties} end values shared across streams — the preset \
         lost its lock-step symmetry"
    );
}

/// Shard planning on the torture streams: boundaries exist, intervals
/// straddle them in *time* (start < boundary <= end), yet every record
/// — tie groups included — lands in exactly one shard, and stitching
/// the per-shard merges equals the global merge record-for-record.
#[test]
fn shard_stitch_survives_straddlers_and_ties() {
    let t = torture();
    let stride = policy().max_records_per_frame * policy().max_frames_per_dir;
    let boundaries = plan_boundaries(&t.streams, stride, 8);
    assert!(
        boundaries.len() >= 2,
        "planner found only {} cut(s) in a {}-stream corpus",
        boundaries.len(),
        t.streams.len()
    );

    // Records crossing a cut in time must exist (intervals have extent)
    // and must not confuse end-value sharding.
    let straddlers = t
        .streams
        .iter()
        .flatten()
        .filter(|iv| boundaries.iter().any(|&b| iv.start < b && b <= iv.end()))
        .count();
    assert!(straddlers > 0, "no interval spans a shard cut");

    for s in &t.streams {
        let parts = split_stream(s.clone(), &boundaries);
        assert_eq!(parts.len(), boundaries.len() + 1);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), s.len());
        // Half-open partition: every tie group is contained in one part.
        for (i, part) in parts.iter().enumerate() {
            for iv in part {
                if i > 0 {
                    assert!(iv.end() >= boundaries[i - 1]);
                }
                if i < boundaries.len() {
                    assert!(iv.end() < boundaries[i]);
                }
            }
        }
    }

    let global = merge_sharded(t.streams.clone(), &[]);
    let stitched = merge_sharded(t.streams.clone(), &boundaries);
    assert_eq!(global.len(), stitched.len());
    assert_eq!(
        global, stitched,
        "stitched merge diverges from global merge"
    );
}

/// End-to-end: the sharded pipeline's merged bytes are identical to the
/// serial path at every job count, on the full torture corpus.
#[test]
fn sharded_pipeline_is_byte_identical_on_torture_corpus() {
    let t = torture();
    let copts = ConvertOptions {
        policy: policy(),
        ..ConvertOptions::default()
    };
    let mopts = MergeOptions {
        policy: policy(),
        ..MergeOptions::default()
    };
    let serial =
        convert_and_merge(&t.raw_files, &t.threads, &t.profile, &copts, &mopts, 1).unwrap();
    assert!(serial.merged.stats.records_out > 0);
    for jobs in [2, 5] {
        let sharded =
            convert_and_merge_sharded(&t.raw_files, &t.threads, &t.profile, &copts, &mopts, jobs)
                .unwrap();
        assert_eq!(
            serial.merged.merged, sharded.merged.merged,
            "merged bytes differ at jobs={jobs}"
        );
        assert_eq!(
            serial.merged.stats.pseudo_added,
            sharded.merged.stats.pseudo_added
        );
    }
}
