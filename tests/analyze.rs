//! Acceptance tests for the `ute-analyze` diagnostics layer: ground-truth
//! straggler identification through the whole pipeline, and the
//! windowed-loading ≡ full-load-then-filter equivalence that makes
//! frame-directory skipping safe.

use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;
use ute::analyze::{load_table, run_all, DiagOptions, LoadOptions, TraceTable};
use ute::cli::run;
use ute::format::profile::Profile;

fn argv(tokens: &[&str]) -> Vec<String> {
    tokens.iter().map(|s| s.to_string()).collect()
}

/// Pipeline artifacts for the straggler workload (rank 2 slowed 4×),
/// built once and shared by every test in this binary.
fn straggler_dir() -> &'static PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let d = std::env::temp_dir().join(format!("ute_analyze_accept_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        run(&argv(&[
            "pipeline",
            "--workload",
            "straggler",
            "--out",
            d.to_str().unwrap(),
        ]))
        .unwrap();
        d
    })
}

/// The merged trace loaded in full, plus its profile — cached so the
/// proptest below doesn't re-decode the whole file per case.
fn full_table() -> &'static (Profile, TraceTable) {
    static T: OnceLock<(Profile, TraceTable)> = OnceLock::new();
    T.get_or_init(|| {
        let dir = straggler_dir();
        let profile = Profile::read_from(&dir.join("profile.ute")).unwrap();
        let table = load_table(&dir.join("merged.ivl"), &profile, &LoadOptions::default()).unwrap();
        (profile, table)
    })
}

/// The injected straggler is rank 2 on node 2 (one task per node): the
/// late-sender diagnostic must charge the receiver wait to it, and the
/// imbalance diagnostic must flag its node in the `Gather` phase.
#[test]
fn ground_truth_straggler_is_named_by_both_diagnostics() {
    let (_, table) = full_table();
    assert!(!table.is_empty(), "pipeline produced an empty merged trace");
    let findings = run_all(table, &DiagOptions::default());

    let late: Vec<_> = findings
        .iter()
        .filter(|f| f.diagnostic == "late_sender")
        .collect();
    assert!(!late.is_empty(), "no late-sender findings: {findings:?}");
    // Findings are sorted by total wait, descending: the straggler must
    // top the list — nobody else stalls the root for long.
    assert_eq!(late[0].rank, Some(2), "{late:?}");
    assert_eq!(late[0].node, Some(2), "{late:?}");

    let imb: Vec<_> = findings
        .iter()
        .filter(|f| f.diagnostic == "imbalance")
        .collect();
    assert!(!imb.is_empty(), "no imbalance findings: {findings:?}");
    assert_eq!(imb[0].node, Some(2), "{imb:?}");
    assert_eq!(imb[0].phase.as_deref(), Some("Gather"), "{imb:?}");
    assert!(imb[0].value > 1.5, "straggler barely stands out: {imb:?}");
}

/// End-to-end through the CLI: `ute analyze <dir> --all --json` names the
/// straggler and classifies the gather as a hub pattern around rank 0.
#[test]
fn analyze_cli_reports_the_straggler_in_json() {
    let dir = straggler_dir();
    let out = run(&argv(&[
        "analyze",
        dir.to_str().unwrap(),
        "--all",
        "--json",
    ]))
    .unwrap();
    assert!(out.contains("\"diagnostic\": \"late_sender\""), "{out}");
    assert!(out.contains("\"rank\": 2"), "{out}");
    assert!(out.contains("\"phase\": \"Gather\""), "{out}");
    assert!(out.contains("\"diagnostic\": \"comm_pattern\""), "{out}");
    assert!(out.contains("\"hub\""), "{out}");
    assert!(out.contains("\"diagnostic\": \"critical_path\""), "{out}");
}

/// `--window` and `--nodes` restrict what gets loaded (and therefore
/// analyzed) without erroring out on a partial view.
#[test]
fn analyze_cli_window_and_nodes_restrict_rows() {
    let dir = straggler_dir();
    let dir = dir.to_str().unwrap();
    let rows = |out: &str| -> usize {
        let tail = out.split("\"rows\": ").nth(1).expect("rows key");
        tail.split(',').next().unwrap().trim().parse().unwrap()
    };
    let all = run(&argv(&["analyze", dir, "--json"])).unwrap();
    let sub = run(&argv(&[
        "analyze",
        dir,
        "--json",
        "--window",
        "0.000:0.005",
        "--nodes",
        "0..1",
    ]))
    .unwrap();
    assert!(rows(&sub) > 0, "{sub}");
    assert!(rows(&sub) < rows(&all), "window/nodes removed nothing");
}

#[test]
fn analyze_cli_rejects_bad_arguments() {
    let dir = straggler_dir();
    let dir = dir.to_str().unwrap();
    assert!(run(&argv(&["analyze", dir, "--diag", "bogus"])).is_err());
    assert!(run(&argv(&["analyze", dir, "--window", "nope"])).is_err());
    assert!(run(&argv(&["analyze", dir, "--nodes", "zero"])).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Loading through the frame directory with a window / node range is
    /// exactly the full load followed by the record-level filter — i.e.
    /// frame skipping never drops an admissible record and never admits
    /// an extra one.
    #[test]
    fn windowed_load_equals_full_load_then_filter(
        a in 0.0f64..1.05,
        b in 0.0f64..1.05,
        lo in 0u16..4,
        hi in 0u16..4,
    ) {
        let (profile, full) = full_table();
        let (s0, s1) = full.span().expect("non-empty trace");
        let span = (s1 - s0) as f64;
        let t0 = s0 + (span * a.min(b)) as u64;
        let t1 = s0 + (span * a.max(b)) as u64;
        let (na, nb) = (lo.min(hi), lo.max(hi));
        let opts = LoadOptions { window: Some((t0, t1)), nodes: Some((na, nb)) };

        let windowed = load_table(
            &straggler_dir().join("merged.ivl"),
            profile,
            &opts,
        ).unwrap();

        let keep: Vec<usize> = (0..full.len())
            .filter(|&i| {
                full.end(i) >= t0
                    && full.start[i] <= t1
                    && full.node[i] >= na
                    && full.node[i] <= nb
            })
            .collect();

        prop_assert_eq!(windowed.len(), keep.len());
        for (w, &i) in keep.iter().enumerate() {
            prop_assert_eq!(windowed.state[w], full.state[i]);
            prop_assert_eq!(windowed.bebits[w], full.bebits[i]);
            prop_assert_eq!(windowed.start[w], full.start[i]);
            prop_assert_eq!(windowed.duration[w], full.duration[i]);
            prop_assert_eq!(windowed.cpu[w], full.cpu[i]);
            prop_assert_eq!(windowed.node[w], full.node[i]);
            prop_assert_eq!(windowed.thread[w], full.thread[i]);
            prop_assert_eq!(windowed.rank[w], full.rank[i]);
            prop_assert_eq!(windowed.peer[w], full.peer[i]);
            prop_assert_eq!(windowed.seq[w], full.seq[i]);
            prop_assert_eq!(windowed.bytes[w], full.bytes[i]);
            prop_assert_eq!(windowed.marker_id[w], full.marker_id[i]);
        }
    }
}
