//! Regression test for span hygiene under worker panics (sibling of
//! `tests/faults.rs`, in its own binary because it arms a process-global
//! one-shot panic hook and captures the process-global span log — state
//! that concurrent `convert_and_merge` runs in the faults binary would
//! race on).
//!
//! A convert worker that panics mid-node must not leak its open spans:
//! unwinding runs every `Span`'s `Drop`, which closes the interval,
//! marks it aborted, and heals the thread-local span stack — and the
//! salvage retry must still produce byte-identical clean output.

use std::collections::HashSet;
use std::sync::{Mutex, MutexGuard};

use ute::cluster::Simulator;
use ute::convert::ConvertOptions;
use ute::format::profile::Profile;
use ute::merge::MergeOptions;
use ute::pipeline::{convert_and_merge, testhook};
use ute::workloads::micro;

/// The panic testhook and the span-capture switch are process-global;
/// the tests in this binary take this lock so neither trips the other.
static HOOK_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    HOOK_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[test]
fn worker_panic_marks_spans_aborted_and_retry_keeps_output_clean() {
    let _g = lock();
    let w = micro::stencil(4, 6, 4 << 10);
    let result = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
    let profile = Profile::standard();
    let copts = ConvertOptions {
        lenient: true,
        salvage: true,
        ..ConvertOptions::default()
    };
    let mopts = MergeOptions {
        salvage: true,
        ..MergeOptions::default()
    };

    let clean = convert_and_merge(
        &result.raw_files,
        &result.threads,
        &profile,
        &copts,
        &mopts,
        2,
    )
    .unwrap();

    ute::obs::set_capture(true);
    ute::obs::drain_spans();
    let retries_before = ute::obs::snapshot()
        .counter("pipeline/worker_retries")
        .unwrap_or(0);

    testhook::arm_convert_panic(1);
    let out = convert_and_merge(
        &result.raw_files,
        &result.threads,
        &profile,
        &copts,
        &mopts,
        2,
    )
    .unwrap();

    ute::obs::set_capture(false);
    let spans = ute::obs::drain_spans();

    // The injected panic was caught, the retry (hook is one-shot)
    // converted the node cleanly, and the merged bytes are unaffected.
    assert_eq!(
        out.merged.merged, clean.merged.merged,
        "retry after injected worker panic must reproduce the clean bytes"
    );
    let retries_after = ute::obs::snapshot()
        .counter("pipeline/worker_retries")
        .unwrap_or(0);
    assert!(
        retries_after > retries_before,
        "injected panic did not register a worker retry"
    );

    // The span open at panic time (the per-node convert span) was closed
    // by unwinding and marked aborted — not leaked.
    let ids: HashSet<u64> = spans.iter().map(|s| s.id).collect();
    let aborted: Vec<_> = spans
        .iter()
        .filter(|s| s.aborted && s.stage == "convert" && s.label == "convert node 1")
        .collect();
    assert!(
        !aborted.is_empty(),
        "no aborted `convert node 1` span captured ({} spans total)",
        spans.len()
    );
    // Its hierarchy survived the unwind: the parent (the worker span,
    // which outlives the caught panic) is present in the same capture.
    for s in &aborted {
        assert_ne!(s.parent, 0, "aborted span lost its parent");
        assert!(
            ids.contains(&s.parent),
            "aborted span's parent {} not in the captured set",
            s.parent
        );
    }
    // And the retry's successful span for the same node is there too,
    // un-aborted.
    assert!(
        spans
            .iter()
            .any(|s| !s.aborted && s.stage == "convert" && s.label == "convert node 1"),
        "retry did not record a clean convert span for node 1"
    );

    // The panicking thread healed its thread-local span stack (removal
    // is by id, not by pop), so this thread's stack is untouched.
    assert_eq!(ute::obs::current_span(), 0);
}

/// The crash-safety half of the same property: a worker panic caught by
/// the salvage retry must never surface as a *partial file*. The retry's
/// output, published through the atomic store, is byte-identical to the
/// clean run's — and a panic that escapes mid-stage (before the journal
/// commit) leaves no final file at all, only a temp the next run's
/// startup GC sweeps.
#[test]
fn worker_panic_never_publishes_partial_files() {
    use ute::store::{ArtifactStore, RunJournal};

    let _g = lock();
    let w = micro::stencil(4, 6, 4 << 10);
    let result = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
    let profile = Profile::standard();
    let copts = ConvertOptions {
        lenient: true,
        salvage: true,
        ..ConvertOptions::default()
    };
    let mopts = MergeOptions {
        salvage: true,
        ..MergeOptions::default()
    };
    let clean = convert_and_merge(
        &result.raw_files,
        &result.threads,
        &profile,
        &copts,
        &mopts,
        2,
    )
    .unwrap();

    let dir = std::env::temp_dir().join(format!("ute_panic_publish_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    // Retry path: the injected panic is caught, the node re-converts,
    // and what gets atomically published is the clean bytes — all of
    // them, under the final name, no temp residue.
    testhook::arm_convert_panic(1);
    let out = convert_and_merge(
        &result.raw_files,
        &result.threads,
        &profile,
        &copts,
        &mopts,
        2,
    )
    .unwrap();
    ute::store::atomic_write(&dir.join("merged.ivl"), &out.merged.merged).unwrap();
    assert_eq!(
        std::fs::read(dir.join("merged.ivl")).unwrap(),
        clean.merged.merged,
        "published bytes after a retried worker panic differ from the clean run"
    );

    // Escape path: a panic after temps are written but before the
    // journal commit unwinds out of the stage. Nothing is published;
    // the orphan temp is exactly what startup GC exists to sweep.
    let store = ArtifactStore::new(&dir);
    let _journal = RunJournal::create(&dir, &[("workload".into(), "stencil".into())]).unwrap();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut store = ArtifactStore::new(&dir);
        store
            .write_temp("convert", "trace.9.ivl", b"partial bytes")
            .unwrap();
        panic!("injected: worker died before the commit record");
    }));
    assert!(r.is_err());
    assert!(
        !dir.join("trace.9.ivl").exists(),
        "a panic before commit must not publish the final name"
    );
    let swept = store.gc_stale_temps(&[]).unwrap();
    assert_eq!(swept, 1, "startup GC must sweep the orphan temp");
    let leftover: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .filter(|n| n.contains(".tmp."))
        .collect();
    assert_eq!(leftover, Vec::<String>::new());
    std::fs::remove_dir_all(&dir).ok();
}
