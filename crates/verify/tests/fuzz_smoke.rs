//! Bounded fuzz smoke test: a fixed-seed fuzz run must complete with no
//! decoder panics and bounded peak live allocation (< 64 MiB).
//!
//! The allocation bound is enforced by a counting wrapper around the
//! system allocator installed as the test binary's global allocator —
//! a decoder that trusts an attacker-controlled count for a
//! `Vec::with_capacity` shows up here as a peak spike even if the
//! allocation itself succeeds.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use ute_verify::{run_fuzz, FuzzOptions};

struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn track(delta: usize) {
    let live = LIVE.fetch_add(delta, Ordering::Relaxed) + delta;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            track(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            track(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const PEAK_BOUND: usize = 64 << 20;

#[test]
fn fuzz_smoke() {
    let baseline = PEAK.load(Ordering::Relaxed);
    let stats = run_fuzz(&FuzzOptions {
        seed: 0x07e2_2026,
        iters: 2048,
        quiet: true,
    });
    let peak = PEAK.load(Ordering::Relaxed);
    assert_eq!(stats.iterations, 2048);
    assert!(
        stats.passed(),
        "decoder panicked under fuzzing: {}",
        stats.render()
    );
    assert!(
        stats.rejected > 0 && stats.clean > 0,
        "fuzzer should see both rejected and surviving mutants: {}",
        stats.render()
    );
    assert!(
        peak < PEAK_BOUND,
        "peak live allocation {peak} bytes (baseline {baseline}) exceeds {PEAK_BOUND}"
    );
}
