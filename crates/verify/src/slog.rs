//! Invariant rules for SLOG files.
//!
//! | rule | invariant | paper |
//! |------|-----------|-------|
//! | `slog-open` | magic, version, tables, preview, frame index decode | §4 |
//! | `slog-frame-partition` | frames tile the run's time span contiguously | §4 |
//! | `slog-record-frames` | every record overlaps its frame; real states start in theirs | §4 |
//! | `timeline-bounds` | timeline indices resolve in the thread table | §4 |
//! | `arrow-matching` | arrows point forward in time; pseudo copies have a real original | §4 |
//! | `preview-conservation` | preview bins/counts conserve state time exactly | §4, Fig. 7 |

use std::collections::{BTreeMap, HashSet};

use ute_slog::file::SlogFile;
use ute_slog::record::SlogRecord;

use crate::finding::{run_rule, ArtifactKind, Finding, Report};

/// Runs the full SLOG rule suite over serialized bytes.
pub fn check_slog_bytes(label: &str, bytes: &[u8]) -> Report {
    let mut report = Report::new(label, ArtifactKind::Slog);
    let mut file = None;
    run_rule(&mut report, "slog-open", |r| {
        match SlogFile::from_bytes(bytes) {
            Ok(f) => file = Some(f),
            Err(e) => r
                .findings
                .push(Finding::error("slog-open", format!("cannot open: {e}"))),
        }
    });
    let Some(slog) = file else {
        return report;
    };
    report.records = slog.total_records() as u64;

    run_rule(&mut report, "slog-frame-partition", |r| {
        rule_frame_partition(r, &slog)
    });
    run_rule(&mut report, "slog-record-frames", |r| {
        rule_record_frames(r, &slog)
    });
    run_rule(&mut report, "timeline-bounds", |r| {
        rule_timeline_bounds(r, &slog)
    });
    run_rule(&mut report, "arrow-matching", |r| {
        rule_arrow_matching(r, &slog)
    });
    run_rule(&mut report, "preview-conservation", |r| {
        rule_preview_conservation(r, &slog)
    });
    report
}

/// Frames must tile time: each non-degenerate (`t_start < t_end`),
/// contiguous (`frames[i].t_end == frames[i+1].t_start`), and the whole
/// chain must cover the preview span. This is what makes the §4 frame
/// lookup a binary search.
fn rule_frame_partition(report: &mut Report, slog: &SlogFile) {
    for (i, f) in slog.frames.iter().enumerate() {
        if f.t_start >= f.t_end {
            report.findings.push(Finding::error(
                "slog-frame-partition",
                format!("frame {i} is degenerate: [{}, {})", f.t_start, f.t_end),
            ));
        }
    }
    for (i, pair) in slog.frames.windows(2).enumerate() {
        if pair[0].t_end != pair[1].t_start {
            report.findings.push(Finding::error(
                "slog-frame-partition",
                format!(
                    "frames {i} and {} do not tile: [{}, {}) then [{}, {})",
                    i + 1,
                    pair[0].t_start,
                    pair[0].t_end,
                    pair[1].t_start,
                    pair[1].t_end
                ),
            ));
        }
    }
    if let (Some(first), Some(last)) = (slog.frames.first(), slog.frames.last()) {
        if first.t_start != slog.preview.span_start || last.t_end != slog.preview.span_end {
            report.findings.push(Finding::error(
                "slog-frame-partition",
                format!(
                    "frames cover [{}, {}) but preview span is [{}, {})",
                    first.t_start, last.t_end, slog.preview.span_start, slog.preview.span_end
                ),
            ));
        }
    }
}

/// Every record must overlap its frame's time span; a real (non-pseudo)
/// state must *start* in its frame — the pseudo-interval scheme places
/// the real copy in the frame of the start and pseudo copies elsewhere.
/// The last frame also absorbs clamped tail records, so its upper bound
/// is inclusive.
fn rule_record_frames(report: &mut Report, slog: &SlogFile) {
    let mut reported = 0usize;
    let nframes = slog.frames.len();
    for (i, f) in slog.frames.iter().enumerate() {
        let inclusive_end = i + 1 == nframes;
        for rec in &f.records {
            if reported >= 8 {
                return;
            }
            let overlaps = rec.start() <= f.t_end && rec.end() >= f.t_start;
            if !overlaps {
                reported += 1;
                report.findings.push(Finding::error(
                    "slog-record-frames",
                    format!(
                        "frame {i} [{}, {}): record [{}, {}] does not overlap it",
                        f.t_start,
                        f.t_end,
                        rec.start(),
                        rec.end()
                    ),
                ));
                continue;
            }
            if let SlogRecord::State(s) = rec {
                let starts_here = s.start >= f.t_start
                    && (s.start < f.t_end || (inclusive_end && s.start <= f.t_end));
                if !s.pseudo && !starts_here {
                    reported += 1;
                    report.findings.push(Finding::error(
                        "slog-record-frames",
                        format!(
                            "frame {i} [{}, {}): real state starting at {} belongs elsewhere",
                            f.t_start, f.t_end, s.start
                        ),
                    ));
                }
            }
        }
    }
}

/// Timeline indices (state `timeline`, arrow `src`/`dst`) must be valid
/// positions in the SLOG thread table.
fn rule_timeline_bounds(report: &mut Report, slog: &SlogFile) {
    let n = slog.threads.len() as u32;
    let mut reported: HashSet<u32> = HashSet::new();
    let mut flag = |report: &mut Report, t: u32, what: &str| {
        if t >= n && reported.insert(t) && reported.len() <= 8 {
            report.findings.push(Finding::error(
                "timeline-bounds",
                format!("{what} timeline {t} out of range (thread table has {n} entries)"),
            ));
        }
    };
    for f in &slog.frames {
        for rec in &f.records {
            match rec {
                SlogRecord::State(s) => flag(report, s.timeline, "state"),
                SlogRecord::Arrow(a) => {
                    flag(report, a.src_timeline, "arrow source");
                    flag(report, a.dst_timeline, "arrow destination");
                }
            }
        }
    }
}

/// Arrows must point forward in time (`recv_time >= send_time`), and
/// every pseudo arrow copy must correspond to a real arrow somewhere in
/// the file with identical endpoints — a pseudo copy "supplies whatever
/// data is needed from other frames" (§4), it never invents a message.
fn rule_arrow_matching(report: &mut Report, slog: &SlogFile) {
    type Key = (u32, u32, u64, u64, u64);
    let key = |a: &ute_slog::record::SlogArrow| -> Key {
        (
            a.src_timeline,
            a.dst_timeline,
            a.send_time,
            a.recv_time,
            a.seq,
        )
    };
    let mut real: HashSet<Key> = HashSet::new();
    let mut pseudo: Vec<Key> = Vec::new();
    let mut reported = 0usize;
    for f in &slog.frames {
        for rec in &f.records {
            let SlogRecord::Arrow(a) = rec else { continue };
            if a.recv_time < a.send_time && reported < 8 {
                reported += 1;
                report.findings.push(Finding::error(
                    "arrow-matching",
                    format!(
                        "arrow (seq {}) points backward: send {} after recv {}",
                        a.seq, a.send_time, a.recv_time
                    ),
                ));
            }
            if a.pseudo {
                pseudo.push(key(a));
            } else {
                real.insert(key(a));
            }
        }
    }
    for k in pseudo {
        if !real.contains(&k) && reported < 8 {
            reported += 1;
            report.findings.push(Finding::error(
                "arrow-matching",
                format!(
                    "pseudo arrow (seq {}, timelines {}->{}) has no real original",
                    k.4, k.0, k.1
                ),
            ));
        }
    }
}

/// The preview must conserve state time exactly: for each state, the sum
/// over its bins equals the summed duration of the state's *real*
/// records, and its counter equals the number of real records. Pseudo
/// copies are display artifacts and must not inflate the preview.
fn rule_preview_conservation(report: &mut Report, slog: &SlogFile) {
    if slog.preview.nbins == 0 {
        report.findings.push(Finding::error(
            "preview-conservation",
            "preview has zero bins",
        ));
        return;
    }
    if slog.preview.span_end <= slog.preview.span_start {
        report.findings.push(Finding::error(
            "preview-conservation",
            format!(
                "preview span [{}, {}) is empty or inverted",
                slog.preview.span_start, slog.preview.span_end
            ),
        ));
        return;
    }
    let mut durations: BTreeMap<u16, u64> = BTreeMap::new();
    let mut counts: BTreeMap<u16, u64> = BTreeMap::new();
    for f in &slog.frames {
        for rec in &f.records {
            let SlogRecord::State(s) = rec else { continue };
            if s.pseudo {
                continue;
            }
            let d = durations.entry(s.state.0).or_insert(0u64);
            *d = d.saturating_add(s.duration);
            *counts.entry(s.state.0).or_insert(0) += 1;
        }
    }
    let states: HashSet<u16> = durations
        .keys()
        .chain(slog.preview.counts.keys())
        .chain(slog.preview.bins.keys())
        .copied()
        .collect();
    for s in states {
        let binned: u64 = slog
            .preview
            .bins
            .get(&s)
            // Saturating: mutated bin values must not overflow the
            // checker before it can flag them.
            .map(|b| b.iter().fold(0u64, |acc, v| acc.saturating_add(*v)))
            .unwrap_or(0);
        let actual = durations.get(&s).copied().unwrap_or(0);
        if binned != actual {
            report.findings.push(Finding::error(
                "preview-conservation",
                format!(
                    "state {:#06x}: preview bins hold {binned} ticks but real records total {actual}",
                    s
                ),
            ));
        }
        let counted = slog.preview.counts.get(&s).copied().unwrap_or(0);
        let seen = counts.get(&s).copied().unwrap_or(0);
        if counted != seen {
            report.findings.push(Finding::error(
                "preview-conservation",
                format!(
                    "state {:#06x}: preview counts {counted} records but the file holds {seen}",
                    s
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_core::bebits::BeBits;
    use ute_core::ids::{LogicalThreadId, NodeId, Pid, SystemThreadId, TaskId, ThreadType};
    use ute_format::state::StateCode;
    use ute_format::thread_table::{ThreadEntry, ThreadTable};
    use ute_slog::file::SlogFrame;
    use ute_slog::preview::Preview;
    use ute_slog::record::{SlogArrow, SlogState};

    fn table(n: u16) -> ThreadTable {
        let mut t = ThreadTable::new();
        for node in 0..n {
            t.register(ThreadEntry {
                task: TaskId(node as u32),
                pid: Pid(1),
                system_tid: SystemThreadId(node as u64),
                node: NodeId(node),
                logical: LogicalThreadId(0),
                ttype: ThreadType::Mpi,
            })
            .unwrap();
        }
        t
    }

    fn state(timeline: u32, start: u64, dur: u64, pseudo: bool) -> SlogRecord {
        SlogRecord::State(SlogState {
            timeline,
            state: StateCode::RUNNING,
            bebits: BeBits::Complete,
            pseudo,
            start,
            duration: dur,
            node: 0,
            cpu: 0,
            marker_id: 0,
        })
    }

    fn valid() -> SlogFile {
        let mut preview = Preview::new(0, 200, 4);
        preview.add(StateCode::RUNNING, 0, 150);
        preview.add(StateCode::RUNNING, 120, 30);
        SlogFile {
            threads: table(2),
            markers: vec![],
            preview,
            frames: vec![
                SlogFrame {
                    t_start: 0,
                    t_end: 100,
                    records: vec![
                        state(0, 0, 150, false),
                        SlogRecord::Arrow(SlogArrow {
                            pseudo: true,
                            src_timeline: 0,
                            dst_timeline: 1,
                            send_time: 50,
                            recv_time: 130,
                            bytes: 64,
                            seq: 1,
                        }),
                    ],
                },
                SlogFrame {
                    t_start: 100,
                    t_end: 200,
                    records: vec![
                        state(0, 0, 150, true),
                        state(1, 120, 30, false),
                        SlogRecord::Arrow(SlogArrow {
                            pseudo: false,
                            src_timeline: 0,
                            dst_timeline: 1,
                            send_time: 50,
                            recv_time: 130,
                            bytes: 64,
                            seq: 1,
                        }),
                    ],
                },
            ],
        }
    }

    #[test]
    fn valid_slog_passes() {
        let r = check_slog_bytes("t", &valid().to_bytes());
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.rules_run.len(), 6);
        assert_eq!(r.records, 5);
    }

    #[test]
    fn gap_between_frames_flagged() {
        let mut f = valid();
        f.frames[1].t_start = 110;
        let r = check_slog_bytes("t", &f.to_bytes());
        assert!(
            r.rules_violated().contains(&"slog-frame-partition"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn real_state_in_wrong_frame_flagged() {
        let mut f = valid();
        // Move the second real state into frame 0, where it doesn't start.
        let rec = f.frames[1].records.remove(1);
        f.frames[0].records.push(rec);
        let r = check_slog_bytes("t", &f.to_bytes());
        assert!(
            r.rules_violated().contains(&"slog-record-frames"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn out_of_range_timeline_flagged() {
        let mut f = valid();
        f.frames[0].records.push(state(9, 10, 5, false));
        // Keep the preview consistent so only timeline-bounds fires.
        f.preview.add(StateCode::RUNNING, 10, 5);
        let r = check_slog_bytes("t", &f.to_bytes());
        assert_eq!(
            r.rules_violated(),
            vec!["timeline-bounds"],
            "{}",
            r.render()
        );
    }

    #[test]
    fn orphan_pseudo_arrow_flagged() {
        let mut f = valid();
        // Remove the real arrow; its pseudo copy is now an orphan.
        f.frames[1].records.pop();
        let r = check_slog_bytes("t", &f.to_bytes());
        assert!(
            r.rules_violated().contains(&"arrow-matching"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn pseudo_inflation_of_preview_flagged() {
        let mut f = valid();
        // Preview counted a record the file doesn't have for real.
        f.preview.add(StateCode::SYSCALL, 0, 40);
        let r = check_slog_bytes("t", &f.to_bytes());
        assert!(
            r.rules_violated().contains(&"preview-conservation"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn truncated_slog_is_a_finding_not_a_panic() {
        let bytes = valid().to_bytes();
        for cut in [9, bytes.len() / 2, bytes.len() - 2] {
            let r = check_slog_bytes("t", &bytes[..cut]);
            assert!(!r.passed());
            assert!(
                r.findings.iter().all(|x| x.rule != "no-panic"),
                "{}",
                r.render()
            );
        }
    }
}
