//! Invariant rules for interval files (per-node and merged).
//!
//! | rule | invariant | paper |
//! |------|-----------|-------|
//! | `ivl-open` | header magic, versions, tables decode | §2.3.3 |
//! | `frame-dir-links` | directory chain is doubly linked, in bounds | §2.3.3, Fig. 4 |
//! | `frame-metadata` | entry times/counts/sizes agree with records | §2.3.3 |
//! | `end-time-order` | records sorted by end time, file-wide | §3.1 |
//! | `thread-bounds` | every record's thread resolves in the table | §2.3.3 |
//! | `bebit-laminarity` | per-thread state pieces open/close/nest sanely | §2.3.1, §3.3 |
//! | `profile-resolution` | every record decodes against the profile | §2.3.2, §2.4 |

use std::collections::HashMap;

use ute_core::ids::{LogicalThreadId, NodeId};
use ute_format::file::IntervalFileReader;
use ute_format::frame::NO_DIR;
use ute_format::profile::Profile;
use ute_format::record::Interval;
use ute_format::state::StateCode;
use ute_format::thread_table::ThreadTable;

use crate::finding::{run_rule, ArtifactKind, Finding, Report};
use ute_core::bebits::BeBits;

/// Options for the interval-file rule suite.
#[derive(Debug, Clone, Copy, Default)]
pub struct IvlCheckOptions {
    /// Treat open states at end-of-file as a warning instead of an
    /// error (useful when checking artifacts a salvage run produced from
    /// intentionally truncated inputs — the converter force-closes open
    /// states, so clean output should still have none).
    pub lenient_tail: bool,
}

/// Runs the full interval-file rule suite over serialized bytes.
pub fn check_interval_bytes(
    label: &str,
    bytes: &[u8],
    profile: &Profile,
    opts: IvlCheckOptions,
) -> Report {
    let mut report = Report::new(label, ArtifactKind::Interval);

    // Rule: the header itself. Everything else needs an open reader, so
    // a failure here short-circuits the suite (with one finding, not a
    // cascade).
    let mut opened = false;
    run_rule(
        &mut report,
        "ivl-open",
        |r| match IntervalFileReader::open(bytes, profile) {
            Ok(_) => {}
            Err(e) => r
                .findings
                .push(Finding::error("ivl-open", format!("cannot open: {e}"))),
        },
    );
    if report.passed() {
        opened = true;
    }
    if !opened {
        return report;
    }
    let reader = match IntervalFileReader::open(bytes, profile) {
        Ok(r) => r,
        Err(_) => return report, // unreachable: checked above
    };

    run_rule(&mut report, "frame-dir-links", |r| {
        rule_frame_dir_links(r, &reader, bytes.len() as u64)
    });
    // Decode every frame once; the remaining rules all walk the decoded
    // stream. A frame that fails to decode produces a finding and is
    // skipped by the stream rules (they see what could be read).
    let mut stream: Vec<Interval> = Vec::new();
    run_rule(&mut report, "frame-metadata", |r| {
        rule_frame_metadata(r, &reader, &mut stream)
    });
    report.records = stream.len() as u64;
    run_rule(&mut report, "end-time-order", |r| {
        rule_end_time_order(r, &stream)
    });
    run_rule(&mut report, "thread-bounds", |r| {
        rule_thread_bounds(r, &stream, &reader.threads)
    });
    run_rule(&mut report, "bebit-laminarity", |r| {
        rule_bebit_laminarity(r, &stream, opts.lenient_tail)
    });
    run_rule(&mut report, "profile-resolution", |r| {
        rule_profile_resolution(r, &reader, profile)
    });
    report
}

/// Frame directories must form a doubly-linked chain: first directory's
/// `prev` is [`NO_DIR`], each directory's `prev` names its predecessor,
/// the last `next` is [`NO_DIR`], and every offset stays inside the
/// file. A cycle (a `next` pointing backwards) is also an error — it
/// would wedge any sequential reader.
fn rule_frame_dir_links(report: &mut Report, reader: &IntervalFileReader<'_>, file_len: u64) {
    let mut at = reader.first_dir;
    let mut prev_at = NO_DIR;
    let mut seen = 0usize;
    while at != NO_DIR {
        if at >= file_len {
            report.findings.push(
                Finding::error(
                    "frame-dir-links",
                    format!("directory offset {at} is past end of file ({file_len} bytes)"),
                )
                .at(at),
            );
            return;
        }
        if at <= prev_at && prev_at != NO_DIR {
            report.findings.push(
                Finding::error(
                    "frame-dir-links",
                    format!("directory chain does not advance: {prev_at} -> {at} (cycle?)"),
                )
                .at(at),
            );
            return;
        }
        let dir = match reader.read_frame_dir(at) {
            Ok(d) => d,
            Err(e) => {
                report.findings.push(
                    Finding::error("frame-dir-links", format!("directory decode failed: {e}"))
                        .at(at),
                );
                return;
            }
        };
        if dir.prev != prev_at {
            report.findings.push(
                Finding::error(
                    "frame-dir-links",
                    format!(
                        "directory at {at}: back link is {} but predecessor is at {prev_at}",
                        dir.prev
                    ),
                )
                .at(at),
            );
        }
        for (i, e) in dir.entries.iter().enumerate() {
            if e.offset.saturating_add(e.size) > file_len {
                report.findings.push(
                    Finding::error(
                        "frame-dir-links",
                        format!(
                            "directory at {at}, frame {i}: [{}, +{}) exceeds file length {file_len}",
                            e.offset, e.size
                        ),
                    )
                    .at(e.offset),
                );
            }
            if e.end_time < e.start_time {
                report.findings.push(
                    Finding::error(
                        "frame-dir-links",
                        format!(
                            "directory at {at}, frame {i}: end time {} precedes start time {}",
                            e.end_time, e.start_time
                        ),
                    )
                    .at(e.offset),
                );
            }
        }
        prev_at = at;
        at = dir.next;
        seen += 1;
        if seen > 1 << 20 {
            report.findings.push(Finding::error(
                "frame-dir-links",
                "directory chain exceeds 2^20 directories (runaway chain)",
            ));
            return;
        }
    }
}

/// Each frame entry's metadata (record count, byte size, time span) must
/// agree with the records actually stored in the frame. Decodes every
/// frame exactly once, accumulating the stream for the later rules.
fn rule_frame_metadata(
    report: &mut Report,
    reader: &IntervalFileReader<'_>,
    stream: &mut Vec<Interval>,
) {
    for dir in reader.directories() {
        let dir = match dir {
            Ok(d) => d,
            Err(_) => break, // already reported by frame-dir-links
        };
        for e in &dir.entries {
            let ivs = match reader.frame_intervals(e) {
                Ok(v) => v,
                Err(err) => {
                    report.findings.push(
                        Finding::error(
                            "frame-metadata",
                            format!("frame at {}: records do not decode: {err}", e.offset),
                        )
                        .at(e.offset),
                    );
                    continue;
                }
            };
            // frame_intervals verifies nrecords and byte size; the time
            // span is ours to check.
            let min_start = ivs.iter().map(|iv| iv.start).min();
            let max_end = ivs.iter().map(|iv| iv.end()).max();
            if let (Some(s), Some(t)) = (min_start, max_end) {
                if s != e.start_time || t != e.end_time {
                    report.findings.push(
                        Finding::error(
                            "frame-metadata",
                            format!(
                                "frame at {}: entry says [{}, {}] but records span [{s}, {t}]",
                                e.offset, e.start_time, e.end_time
                            ),
                        )
                        .at(e.offset),
                    );
                }
            }
            stream.extend(ivs);
        }
    }
}

/// Records must be sorted by end time across the whole file (§3.1:
/// "interval records in an interval file are stored in the order of
/// interval end time").
fn rule_end_time_order(report: &mut Report, stream: &[Interval]) {
    let mut last_end = 0u64;
    for (i, iv) in stream.iter().enumerate() {
        if iv.end() < last_end {
            report.findings.push(Finding::error(
                "end-time-order",
                format!(
                    "record {i} ends at {} but a previous record ended at {last_end}",
                    iv.end()
                ),
            ));
            // One finding per inversion run is enough to be useful.
            last_end = iv.end();
        } else {
            last_end = iv.end();
        }
    }
}

/// Every record's (node, logical thread) must resolve in the thread
/// table, and logical ids must respect the 512-per-node bound. Clock
/// bookkeeping and salvage Gap pseudo-records are exempt: a Gap names a
/// node whose threads were lost with the node.
fn rule_thread_bounds(report: &mut Report, stream: &[Interval], threads: &ThreadTable) {
    // An empty table (some unit-test files and self-traces) makes the
    // rule vacuous rather than flagging every record.
    if threads.is_empty() {
        return;
    }
    let mut reported: std::collections::HashSet<(u16, u16)> = std::collections::HashSet::new();
    for iv in stream {
        let state = iv.itype.state;
        if state == StateCode::CLOCK || state == StateCode::GAP {
            continue;
        }
        let key = (iv.node.raw(), iv.thread.raw());
        if threads
            .lookup(NodeId(key.0), LogicalThreadId(key.1))
            .is_none()
            && reported.insert(key)
        {
            report.findings.push(Finding::error(
                "thread-bounds",
                format!(
                    "record references thread (node {}, logical {}) missing from thread table",
                    key.0, key.1
                ),
            ));
        }
    }
}

/// Bebit sanity per thread: a Continuation or End piece requires its
/// state to have been opened by a Begin; a Begin must not reopen a state
/// already open on the same thread; and closed Begin..End spans on one
/// thread must be laminar (any two either disjoint or nested) — partial
/// overlap means the piece stream cannot be reassembled into a call
/// structure (§3.3's reassembly precondition).
fn rule_bebit_laminarity(report: &mut Report, stream: &[Interval], lenient_tail: bool) {
    type ThreadKey = (u16, u16);
    // Per thread: state -> (begin start time) for open states.
    let mut open: HashMap<ThreadKey, HashMap<u16, u64>> = HashMap::new();
    // Per thread: closed spans (start, end, state).
    let mut spans: HashMap<ThreadKey, Vec<(u64, u64, u16)>> = HashMap::new();
    let mut violations = 0usize;
    const MAX_REPORTED: usize = 8;

    for iv in stream {
        let state = iv.itype.state;
        if state == StateCode::CLOCK || state == StateCode::GAP {
            continue;
        }
        let key = (iv.node.raw(), iv.thread.raw());
        let open_here = open.entry(key).or_default();
        match iv.itype.bebits {
            BeBits::Complete => {
                spans
                    .entry(key)
                    .or_default()
                    .push((iv.start, iv.end(), state.0));
            }
            BeBits::Begin => {
                if open_here.insert(state.0, iv.start).is_some() && violations < MAX_REPORTED {
                    violations += 1;
                    report.findings.push(Finding::error(
                        "bebit-laminarity",
                        format!(
                            "thread (node {}, logical {}): state {} begun twice without ending",
                            key.0, key.1, state
                        ),
                    ));
                }
            }
            BeBits::Continuation => {
                if !open_here.contains_key(&state.0) && violations < MAX_REPORTED {
                    violations += 1;
                    report.findings.push(Finding::error(
                        "bebit-laminarity",
                        format!(
                            "thread (node {}, logical {}): continuation of {} with no open begin",
                            key.0, key.1, state
                        ),
                    ));
                }
            }
            BeBits::End => match open_here.remove(&state.0) {
                Some(begun) => {
                    spans
                        .entry(key)
                        .or_default()
                        .push((begun, iv.end(), state.0));
                }
                None => {
                    if violations < MAX_REPORTED {
                        violations += 1;
                        report.findings.push(Finding::error(
                            "bebit-laminarity",
                            format!(
                                "thread (node {}, logical {}): end of {} with no open begin",
                                key.0, key.1, state
                            ),
                        ));
                    }
                }
            },
        }
    }

    for (key, states) in &open {
        if states.is_empty() {
            continue;
        }
        let names: Vec<String> = states.keys().map(|s| StateCode(*s).to_string()).collect();
        let msg = format!(
            "thread (node {}, logical {}): {} state(s) still open at end of file: {}",
            key.0,
            key.1,
            states.len(),
            names.join(", ")
        );
        report.findings.push(if lenient_tail {
            Finding::warning("bebit-laminarity", msg)
        } else {
            Finding::error("bebit-laminarity", msg)
        });
    }

    // Laminarity of reassembled spans: sweep each thread's spans in
    // (start asc, end desc) order with a nesting stack. Zero-duration
    // spans nest trivially and are skipped.
    for (key, mut thread_spans) in spans {
        thread_spans.retain(|(s, e, _)| e > s);
        thread_spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<(u64, u64, u16)> = Vec::new();
        for (s, e, code) in thread_spans {
            while let Some(&(_, top_end, _)) = stack.last() {
                if top_end <= s {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(top_start, top_end, top_code)) = stack.last() {
                // s < top_end here; containment requires e <= top_end.
                if e > top_end && violations < MAX_REPORTED {
                    violations += 1;
                    report.findings.push(Finding::error(
                        "bebit-laminarity",
                        format!(
                            "thread (node {}, logical {}): state {} [{s}, {e}) partially \
                             overlaps state {} [{top_start}, {top_end})",
                            key.0,
                            key.1,
                            StateCode(code),
                            StateCode(top_code),
                        ),
                    ));
                    continue;
                }
            }
            stack.push((s, e, code));
        }
    }
}

/// Every record body must resolve against the profile: its record type
/// has a spec, and the paper's `getItemByName` path agrees with the
/// decoded struct for the common fields (§2.4's "once a utility reads
/// the profile, it knows all field names and record names").
fn rule_profile_resolution(
    report: &mut Report,
    reader: &IntervalFileReader<'_>,
    profile: &Profile,
) {
    let mut checked = 0usize;
    for (i, body) in reader.record_bodies().enumerate() {
        let body = match body {
            Ok(b) => b,
            Err(_) => break, // decode failure already reported upstream
        };
        let start = match profile.get_item_by_name(reader.mask, body, "start") {
            Ok(v) => v,
            Err(e) => {
                report.findings.push(Finding::error(
                    "profile-resolution",
                    format!("record {i}: getItemByName(start) failed: {e}"),
                ));
                continue;
            }
        };
        let decoded = Interval::decode_body(profile, reader.mask, body, NodeId(0));
        match (&start, &decoded) {
            (Some(v), Ok(iv)) => {
                if v.as_uint() != Some(iv.start) {
                    report.findings.push(Finding::error(
                        "profile-resolution",
                        format!(
                            "record {i}: getItemByName(start) = {v:?} disagrees with decoded {}",
                            iv.start
                        ),
                    ));
                }
            }
            (None, Ok(_)) => {
                report.findings.push(Finding::error(
                    "profile-resolution",
                    format!("record {i}: profile resolves no `start` field"),
                ));
            }
            (_, Err(e)) => {
                report.findings.push(Finding::error(
                    "profile-resolution",
                    format!("record {i} does not decode against the profile: {e}"),
                ));
            }
        }
        checked += 1;
        // The stream rules already decoded everything; sampling the
        // name-resolution path on a prefix keeps the suite linear-time
        // even on huge merged files.
        if checked >= 4096 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_core::ids::{CpuId, Pid, SystemThreadId, TaskId, ThreadType};
    use ute_format::file::{FramePolicy, IntervalFileWriter};
    use ute_format::profile::MASK_PER_NODE;
    use ute_format::record::IntervalType;
    use ute_format::thread_table::ThreadEntry;

    fn threads() -> ThreadTable {
        let mut t = ThreadTable::new();
        t.register(ThreadEntry {
            task: TaskId(0),
            pid: Pid(1),
            system_tid: SystemThreadId(1),
            node: NodeId(1),
            logical: LogicalThreadId(0),
            ttype: ThreadType::Mpi,
        })
        .unwrap();
        t
    }

    fn piece(state: StateCode, bebits: BeBits, start: u64, dur: u64) -> Interval {
        Interval::basic(
            IntervalType { state, bebits },
            start,
            dur,
            CpuId(0),
            NodeId(1),
            LogicalThreadId(0),
        )
    }

    fn build(ivs: &[Interval]) -> Vec<u8> {
        let p = Profile::standard();
        let mut w =
            IntervalFileWriter::new(&p, MASK_PER_NODE, 1, &threads(), &[], FramePolicy::tiny());
        let mut sorted = ivs.to_vec();
        sorted.sort_by_key(|iv| iv.end());
        for iv in &sorted {
            w.push(iv).unwrap();
        }
        w.finish()
    }

    #[test]
    fn clean_file_passes_all_rules() {
        let ivs: Vec<Interval> = (0..40)
            .map(|i| piece(StateCode::RUNNING, BeBits::Complete, i * 10, 10))
            .collect();
        let bytes = build(&ivs);
        let p = Profile::standard();
        let r = check_interval_bytes("t", &bytes, &p, IvlCheckOptions::default());
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.records, 40);
        assert_eq!(r.rules_run.len(), 7);
    }

    #[test]
    fn piece_chains_pass_laminarity() {
        let ivs = vec![
            piece(StateCode::RUNNING, BeBits::Begin, 0, 10),
            piece(StateCode::SYSCALL, BeBits::Complete, 10, 5),
            piece(StateCode::RUNNING, BeBits::Continuation, 15, 5),
            piece(StateCode::RUNNING, BeBits::End, 20, 10),
        ];
        let bytes = build(&ivs);
        let p = Profile::standard();
        let r = check_interval_bytes("t", &bytes, &p, IvlCheckOptions::default());
        assert!(r.passed(), "{}", r.render());
    }

    #[test]
    fn orphan_end_and_open_begin_flagged() {
        let ivs = vec![
            piece(StateCode::SYSCALL, BeBits::End, 0, 5),
            piece(StateCode::IO, BeBits::Begin, 10, 5),
        ];
        let bytes = build(&ivs);
        let p = Profile::standard();
        let r = check_interval_bytes("t", &bytes, &p, IvlCheckOptions::default());
        assert_eq!(r.errors(), 2, "{}", r.render());
        assert!(r.rules_violated().contains(&"bebit-laminarity"));
        // Lenient tail downgrades only the open-at-EOF half.
        let r = check_interval_bytes("t", &bytes, &p, IvlCheckOptions { lenient_tail: true });
        assert_eq!(r.errors(), 1, "{}", r.render());
        assert_eq!(r.warnings(), 1);
    }

    #[test]
    fn unknown_thread_flagged_once() {
        let mut iv = piece(StateCode::RUNNING, BeBits::Complete, 0, 10);
        iv.thread = LogicalThreadId(3); // not in the table
        let bytes = build(&[iv.clone(), iv]);
        let p = Profile::standard();
        let r = check_interval_bytes("t", &bytes, &p, IvlCheckOptions::default());
        assert_eq!(
            r.findings
                .iter()
                .filter(|f| f.rule == "thread-bounds")
                .count(),
            1,
            "{}",
            r.render()
        );
    }

    #[test]
    fn corrupted_directory_link_detected() {
        let ivs: Vec<Interval> = (0..40)
            .map(|i| piece(StateCode::RUNNING, BeBits::Complete, i * 10, 10))
            .collect();
        let mut bytes = build(&ivs);
        let p = Profile::standard();
        let reader = IntervalFileReader::open(&bytes, &p).unwrap();
        let first = reader.first_dir;
        drop(reader);
        // Mangle the first directory's `next` pointer to point far past
        // the end of the file.
        let next_at = (first + ute_format::frame::FrameDirectory::NEXT_FIELD_OFFSET) as usize;
        bytes[next_at..next_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let r = check_interval_bytes("t", &bytes, &p, IvlCheckOptions::default());
        assert!(!r.passed());
        assert!(
            r.rules_violated().contains(&"frame-dir-links"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn truncated_file_reports_findings_not_panics() {
        let ivs: Vec<Interval> = (0..100)
            .map(|i| piece(StateCode::RUNNING, BeBits::Complete, i * 10, 10))
            .collect();
        let bytes = build(&ivs);
        let p = Profile::standard();
        for cut in [bytes.len() / 4, bytes.len() / 2, bytes.len() - 3] {
            let r = check_interval_bytes("t", &bytes[..cut], &p, IvlCheckOptions::default());
            assert!(!r.passed(), "cut at {cut} should fail");
            assert!(r.findings.iter().all(|f| f.rule != "no-panic"));
        }
    }
}
