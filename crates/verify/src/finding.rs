//! Structured findings: what the invariant engine reports instead of
//! panicking.
//!
//! Every rule violation becomes a [`Finding`] — a named rule, a severity,
//! a message, and the byte offset when one is known — collected into a
//! per-artifact [`Report`]. A decoder panic caught by the engine's
//! backstop is itself a finding (rule `no-panic`), so `ute check` can
//! make the "never panics on untrusted bytes" guarantee observable.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but tolerable (e.g. salvage damage already accounted
    /// for by a Gap record).
    Warning,
    /// The artifact violates a format invariant.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The invariant rule that fired (stable kebab-case name).
    pub rule: &'static str,
    /// Severity of the violation.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the artifact, when known.
    pub offset: Option<u64>,
}

impl Finding {
    /// An error-severity finding.
    pub fn error(rule: &'static str, message: impl Into<String>) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            message: message.into(),
            offset: None,
        }
    }

    /// A warning-severity finding.
    pub fn warning(rule: &'static str, message: impl Into<String>) -> Finding {
        Finding {
            rule,
            severity: Severity::Warning,
            message: message.into(),
            offset: None,
        }
    }

    /// Attaches a byte offset.
    pub fn at(mut self, offset: u64) -> Finding {
        self.offset = Some(offset);
        self
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.severity, self.rule, self.message)?;
        if let Some(o) = self.offset {
            write!(f, " (at byte {o})")?;
        }
        Ok(())
    }
}

/// What kind of artifact a report covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A `trace.N.raw` event trace file.
    Raw,
    /// A per-node or merged interval file.
    Interval,
    /// A SLOG visualization file.
    Slog,
    /// A differential oracle run (two pipelines compared, not one file).
    Oracle,
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactKind::Raw => write!(f, "raw"),
            ArtifactKind::Interval => write!(f, "interval"),
            ArtifactKind::Slog => write!(f, "slog"),
            ArtifactKind::Oracle => write!(f, "oracle"),
        }
    }
}

/// The outcome of checking one artifact against a rule suite.
#[derive(Debug, Clone)]
pub struct Report {
    /// Label for the artifact (usually its path).
    pub artifact: String,
    /// What kind of artifact was checked.
    pub kind: ArtifactKind,
    /// The rules that ran, in order.
    pub rules_run: Vec<&'static str>,
    /// Violations found.
    pub findings: Vec<Finding>,
    /// Records examined (0 when the artifact failed to open).
    pub records: u64,
}

impl Report {
    /// A fresh report for an artifact.
    pub fn new(artifact: impl Into<String>, kind: ArtifactKind) -> Report {
        Report {
            artifact: artifact.into(),
            kind,
            rules_run: Vec::new(),
            findings: Vec::new(),
            records: 0,
        }
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }

    /// Whether the artifact passed (no error findings; warnings allowed).
    pub fn passed(&self) -> bool {
        self.errors() == 0
    }

    /// The distinct rules that produced at least one finding.
    pub fn rules_violated(&self) -> Vec<&'static str> {
        let mut rules: Vec<&'static str> = self.findings.iter().map(|f| f.rule).collect();
        rules.sort_unstable();
        rules.dedup();
        rules
    }

    /// Renders the report as indented text (one artifact block of the
    /// `ute check` output).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} [{}]: {} records, {} rules, {} error(s), {} warning(s)\n",
            self.artifact,
            self.kind,
            self.records,
            self.rules_run.len(),
            self.errors(),
            self.warnings()
        );
        for f in &self.findings {
            out.push_str(&format!("  {f}\n"));
        }
        out
    }
}

/// Runs one rule body under a panic backstop: a panic inside the rule
/// becomes a `no-panic` error finding instead of unwinding out of the
/// engine. This is what makes `ute check` (and salvage mode built on the
/// same decoders) structurally unable to crash on untrusted bytes.
pub fn run_rule<F>(report: &mut Report, rule: &'static str, body: F)
where
    F: FnOnce(&mut Report),
{
    report.rules_run.push(rule);
    // The rule runs on a clone: on success the clone (with whatever the
    // rule added) replaces the report; on panic the pre-rule state is
    // kept and the panic itself becomes a finding.
    let mut local = report.clone();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        body(&mut local);
        local
    }));
    match outcome {
        Ok(local) => *report = local,
        Err(payload) => {
            let what = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            report.findings.push(Finding::error(
                "no-panic",
                format!("rule {rule} panicked: {what}"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_and_counts() {
        let mut r = Report::new("x.ivl", ArtifactKind::Interval);
        r.findings.push(Finding::error("a", "bad"));
        r.findings.push(Finding::warning("b", "meh").at(12));
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert!(!r.passed());
        assert_eq!(r.rules_violated(), vec!["a", "b"]);
        let text = r.render();
        assert!(text.contains("[error] a: bad"));
        assert!(text.contains("(at byte 12)"));
    }

    #[test]
    fn run_rule_converts_panics_to_findings() {
        let mut r = Report::new("x", ArtifactKind::Raw);
        run_rule(&mut r, "boom", |_r| panic!("kaboom {}", 7));
        assert_eq!(r.errors(), 1);
        assert_eq!(r.findings[0].rule, "no-panic");
        assert!(r.findings[0].message.contains("kaboom 7"));
        // A well-behaved rule keeps its findings.
        let mut r = Report::new("y", ArtifactKind::Raw);
        run_rule(&mut r, "ok", |r| {
            r.findings.push(Finding::warning("ok", "note"))
        });
        assert_eq!(r.warnings(), 1);
        assert_eq!(r.rules_run, vec!["ok"]);
    }
}
