//! Differential oracles: two implementations that must agree.
//!
//! Each oracle runs the same workload through two paths that the design
//! guarantees are equivalent, and reports any divergence as a finding —
//! the conformance counterpart of the paper's Table 1 claim that the
//! parallel utilities change throughput, never bytes.
//!
//! | rule | the two paths | guarantee |
//! |------|---------------|-----------|
//! | `oracle-jobs-determinism` | serial merge vs `--jobs N` | byte-identical output |
//! | `oracle-fused-staged` | fused convert+merge vs staged | byte-identical output |
//! | `oracle-salvage-subset` | salvage over lossy inputs vs strict over clean | record multiset ⊆ |
//! | `oracle-clock-monotone` | clock-adjusted stream vs its own order | end times non-decreasing |
//! | `oracle-fast-vs-reference` | zero-copy decode vs pre-zero-copy decode | identical files, errors, and salvage reports |

use std::collections::BTreeMap;

use ute_cluster::Simulator;
use ute_convert::{convert_job_opts, ConvertOptions, ConvertOutput};
use ute_faults::{FaultKind, FaultPlan, SplitMix64};
use ute_format::file::{FramePolicy, IntervalFileReader};
use ute_format::profile::Profile;
use ute_format::record::Interval;
use ute_format::state::StateCode;
use ute_format::thread_table::ThreadTable;
use ute_merge::{adjust_node, merge_files, slogmerge, MergeOptions};
use ute_pipeline::{convert_and_merge, merge_files_jobs, slogmerge_jobs};
use ute_rawtrace::RawTraceFile;
use ute_slog::builder::BuildOptions;
use ute_workloads::micro;

use crate::finding::{run_rule, ArtifactKind, Finding, Report};

/// A deterministic corpus for the oracles: a small simulated job's raw
/// traces plus its converted per-node interval files.
struct Corpus {
    profile: Profile,
    raw_files: Vec<ute_rawtrace::file::RawTraceFile>,
    threads: ThreadTable,
    converted: Vec<ConvertOutput>,
}

fn corpus() -> ute_core::error::Result<Corpus> {
    let w = micro::stencil(4, 5, 4 << 10);
    let result = Simulator::new(w.config, &w.job)?.run()?;
    let profile = Profile::standard();
    let copts = ConvertOptions {
        // Small frames so the corpus exercises multi-frame, multi-dir
        // layouts without needing a big workload.
        policy: FramePolicy {
            max_records_per_frame: 64,
            max_frames_per_dir: 4,
        },
        ..ConvertOptions::default()
    };
    let converted = convert_job_opts(&result.raw_files, &result.threads, &profile, &copts, false)?;
    Ok(Corpus {
        profile,
        raw_files: result.raw_files,
        threads: result.threads,
        converted,
    })
}

/// Serial merge and `--jobs N` merge must produce byte-identical output
/// (interval and SLOG alike), for every job count.
pub fn oracle_jobs_determinism() -> Report {
    let mut report = Report::new("serial vs --jobs", ArtifactKind::Oracle);
    run_rule(&mut report, "oracle-jobs-determinism", |r| {
        let c = match corpus() {
            Ok(c) => c,
            Err(e) => {
                r.findings.push(Finding::error(
                    "oracle-jobs-determinism",
                    format!("corpus generation failed: {e}"),
                ));
                return;
            }
        };
        let refs: Vec<&[u8]> = c
            .converted
            .iter()
            .map(|o| o.interval_file.as_slice())
            .collect();
        let opts = MergeOptions::default();
        let serial = match merge_files(&refs, &c.profile, &opts) {
            Ok(m) => m,
            Err(e) => {
                r.findings.push(Finding::error(
                    "oracle-jobs-determinism",
                    format!("serial merge failed: {e}"),
                ));
                return;
            }
        };
        r.records = serial.stats.records_out;
        for jobs in [2, 3, 8] {
            match merge_files_jobs(&refs, &c.profile, &opts, jobs) {
                Ok(p) if p.merged == serial.merged => {}
                Ok(_) => r.findings.push(Finding::error(
                    "oracle-jobs-determinism",
                    format!("merged bytes differ between jobs=1 and jobs={jobs}"),
                )),
                Err(e) => r.findings.push(Finding::error(
                    "oracle-jobs-determinism",
                    format!("parallel merge failed at jobs={jobs}: {e}"),
                )),
            }
        }
        let build = BuildOptions {
            nframes: 8,
            preview_bins: 16,
            arrows: true,
        };
        let serial_slog = slogmerge(&refs, &c.profile, &opts, build).map(|(s, _)| s.to_bytes());
        let parallel_slog =
            slogmerge_jobs(&refs, &c.profile, &opts, build, 4).map(|(s, _)| s.to_bytes());
        match (serial_slog, parallel_slog) {
            (Ok(a), Ok(b)) if a == b => {}
            (Ok(_), Ok(_)) => r.findings.push(Finding::error(
                "oracle-jobs-determinism",
                "SLOG bytes differ between serial and jobs=4 slogmerge",
            )),
            (Err(e), _) | (_, Err(e)) => r.findings.push(Finding::error(
                "oracle-jobs-determinism",
                format!("slogmerge failed: {e}"),
            )),
        }
    });
    report
}

/// The fused convert+merge pipeline and the staged path (convert every
/// node, then merge the files) must produce the same converted bytes and
/// the same merged bytes.
pub fn oracle_fused_staged() -> Report {
    let mut report = Report::new("fused vs staged", ArtifactKind::Oracle);
    run_rule(&mut report, "oracle-fused-staged", |r| {
        let c = match corpus() {
            Ok(c) => c,
            Err(e) => {
                r.findings.push(Finding::error(
                    "oracle-fused-staged",
                    format!("corpus generation failed: {e}"),
                ));
                return;
            }
        };
        let copts = ConvertOptions {
            policy: FramePolicy {
                max_records_per_frame: 64,
                max_frames_per_dir: 4,
            },
            ..ConvertOptions::default()
        };
        let mopts = MergeOptions::default();
        // jobs == 1 short-circuits to the staged serial path inside the
        // pipeline crate; jobs == 4 runs the genuinely fused topology.
        let staged = convert_and_merge(&c.raw_files, &c.threads, &c.profile, &copts, &mopts, 1);
        let fused = convert_and_merge(&c.raw_files, &c.threads, &c.profile, &copts, &mopts, 4);
        let (staged, fused) = match (staged, fused) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                r.findings.push(Finding::error(
                    "oracle-fused-staged",
                    format!("pipeline failed: {e}"),
                ));
                return;
            }
        };
        r.records = staged.merged.stats.records_out;
        if staged.merged.merged != fused.merged.merged {
            r.findings.push(Finding::error(
                "oracle-fused-staged",
                "merged bytes differ between staged and fused pipelines",
            ));
        }
        if staged.converted.len() != fused.converted.len() {
            r.findings.push(Finding::error(
                "oracle-fused-staged",
                format!(
                    "converted file count differs: staged {} vs fused {}",
                    staged.converted.len(),
                    fused.converted.len()
                ),
            ));
            return;
        }
        for (a, b) in staged.converted.iter().zip(&fused.converted) {
            if a.interval_file != b.interval_file {
                r.findings.push(Finding::error(
                    "oracle-fused-staged",
                    format!("converted bytes differ for node {}", a.node.raw()),
                ));
            }
        }
    });
    report
}

/// A loss-only fault plan: damage that removes data without rewriting
/// any surviving byte (truncation and missing files), always leaving at
/// least one node intact. Under such a plan salvage output can only
/// *lose* records relative to strict output over the clean inputs —
/// never invent or alter them.
pub fn loss_only_plan(seed: u64, nodes: u16) -> FaultPlan {
    let mut rng = SplitMix64::new(seed);
    let mut faults = Vec::new();
    if nodes >= 2 {
        // Victims are drawn from nodes 1.., so node 0 always survives.
        let truncated = 1 + rng.below(nodes as u64 - 1) as u16;
        faults.push((
            truncated,
            FaultKind::Truncate {
                keep: rng.below(1 << 14),
            },
        ));
        if nodes >= 3 {
            let mut missing = 1 + rng.below(nodes as u64 - 1) as u16;
            if missing == truncated {
                missing = 1 + (missing % (nodes - 1));
            }
            faults.push((missing, FaultKind::Missing));
        }
    }
    FaultPlan { faults }
}

/// Multiset of records in a merged interval file, keyed by debug
/// rendering (stable, total, and cheap). GAP and CLOCK bookkeeping
/// records are excluded: salvage paths may add gap markers, and a lost
/// node takes its clock records with it.
fn record_multiset(
    bytes: &[u8],
    profile: &Profile,
) -> ute_core::error::Result<BTreeMap<String, u64>> {
    let reader = IntervalFileReader::open(bytes, profile)?;
    let mut set = BTreeMap::new();
    for iv in reader.intervals() {
        let iv: Interval = iv?;
        if iv.itype.state == StateCode::GAP || iv.itype.state == StateCode::CLOCK {
            continue;
        }
        *set.entry(format!("{iv:?}")).or_insert(0) += 1;
    }
    Ok(set)
}

/// Under a loss-only fault plan, every record salvage mode recovers must
/// also appear in the strict merge of the undamaged inputs: salvage may
/// drop data, never fabricate it.
pub fn oracle_salvage_subset(seed: u64) -> Report {
    let mut report = Report::new(
        format!("salvage ⊆ strict (seed {seed})"),
        ArtifactKind::Oracle,
    );
    run_rule(&mut report, "oracle-salvage-subset", |r| {
        let c = match corpus() {
            Ok(c) => c,
            Err(e) => {
                r.findings.push(Finding::error(
                    "oracle-salvage-subset",
                    format!("corpus generation failed: {e}"),
                ));
                return;
            }
        };
        // Frame-head pseudo intervals depend on frame boundaries, which
        // shift when inputs are lost; compare the real records only.
        let opts = MergeOptions {
            frame_pseudo_intervals: false,
            ..MergeOptions::default()
        };
        let salvage_opts = MergeOptions {
            salvage: true,
            ..opts.clone()
        };
        let clean_refs: Vec<&[u8]> = c
            .converted
            .iter()
            .map(|o| o.interval_file.as_slice())
            .collect();
        let plan = loss_only_plan(seed, c.converted.len() as u16);
        let damaged: Vec<Vec<u8>> = c
            .converted
            .iter()
            .enumerate()
            .filter_map(|(i, o)| plan.apply_to_file(i as u16, o.interval_file.clone(), 0))
            .collect();
        let damaged_refs: Vec<&[u8]> = damaged.iter().map(|d| d.as_slice()).collect();
        let strict = merge_files(&clean_refs, &c.profile, &opts);
        let salvaged = merge_files(&damaged_refs, &c.profile, &salvage_opts);
        let (strict, salvaged) = match (strict, salvaged) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) => {
                r.findings.push(Finding::error(
                    "oracle-salvage-subset",
                    format!("strict merge of clean inputs failed: {e}"),
                ));
                return;
            }
            (_, Err(e)) => {
                r.findings.push(Finding::error(
                    "oracle-salvage-subset",
                    format!("salvage merge of lossy inputs failed: {e}"),
                ));
                return;
            }
        };
        let strict_set = record_multiset(&strict.merged, &c.profile);
        let salvaged_set = record_multiset(&salvaged.merged, &c.profile);
        let (strict_set, salvaged_set) = match (strict_set, salvaged_set) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                r.findings.push(Finding::error(
                    "oracle-salvage-subset",
                    format!("merged output does not decode: {e}"),
                ));
                return;
            }
        };
        r.records = salvaged_set.values().sum();
        let mut extras = 0u64;
        let mut example = None;
        for (key, &n) in &salvaged_set {
            let in_strict = strict_set.get(key).copied().unwrap_or(0);
            if n > in_strict {
                extras += n - in_strict;
                example.get_or_insert_with(|| key.clone());
            }
        }
        if extras > 0 {
            r.findings.push(Finding::error(
                "oracle-salvage-subset",
                format!(
                    "salvage output has {extras} record(s) absent from strict output \
                     (plan `{plan}`), e.g. {}",
                    example.unwrap_or_default()
                ),
            ));
        }
    });
    report
}

/// Clock adjustment maps each node's end-ordered local stream to global
/// time; the map is affine and increasing, so the adjusted stream must
/// still be end-ordered — the k-way merge depends on it.
pub fn oracle_clock_monotone() -> Report {
    let mut report = Report::new("clock-adjusted order", ArtifactKind::Oracle);
    run_rule(&mut report, "oracle-clock-monotone", |r| {
        let c = match corpus() {
            Ok(c) => c,
            Err(e) => {
                r.findings.push(Finding::error(
                    "oracle-clock-monotone",
                    format!("corpus generation failed: {e}"),
                ));
                return;
            }
        };
        let opts = MergeOptions::default();
        let mut total = 0u64;
        for out in &c.converted {
            let reader = match IntervalFileReader::open(&out.interval_file, &c.profile) {
                Ok(rd) => rd,
                Err(e) => {
                    r.findings.push(Finding::error(
                        "oracle-clock-monotone",
                        format!("node {} does not open: {e}", out.node.raw()),
                    ));
                    continue;
                }
            };
            let mut last = 0u64;
            let mut inversions = 0u64;
            let adjusted = adjust_node(&reader, &c.profile, &opts, |iv| {
                total += 1;
                let end = iv.end();
                if end < last {
                    inversions += 1;
                } else {
                    last = end;
                }
                Ok(())
            });
            if let Err(e) = adjusted {
                r.findings.push(Finding::error(
                    "oracle-clock-monotone",
                    format!("node {} fails clock adjustment: {e}", out.node.raw()),
                ));
            }
            if inversions > 0 {
                r.findings.push(Finding::error(
                    "oracle-clock-monotone",
                    format!(
                        "node {}: {inversions} end-time inversion(s) after clock adjustment",
                        out.node.raw()
                    ),
                ));
            }
        }
        r.records = total;
    });
    report
}

/// The zero-copy decode path (`RawTraceFile::from_bytes` /
/// `from_bytes_salvage`, built on validated borrowed views) and the
/// pre-zero-copy reference decoders (kept behind `ute-rawtrace`'s
/// `reference-decode` feature) must be observationally identical: the
/// same decoded file or the same error text on strict decode, and the
/// same recovered events plus the same [`ute_rawtrace::SalvageReport`]
/// in salvage mode. Checked over the corpus's clean raw files and over
/// every byte-level fault-plan mutation of them — including plans that
/// damage the header, where both decoders must fail identically.
pub fn oracle_fast_vs_reference(seed: u64) -> Report {
    let mut report = Report::new(
        format!("fast vs reference decode (seed {seed})"),
        ArtifactKind::Oracle,
    );
    run_rule(&mut report, "oracle-fast-vs-reference", |r| {
        let c = match corpus() {
            Ok(c) => c,
            Err(e) => {
                r.findings.push(Finding::error(
                    "oracle-fast-vs-reference",
                    format!("corpus generation failed: {e}"),
                ));
                return;
            }
        };
        let mut inputs: Vec<(String, Vec<u8>)> = Vec::new();
        for f in &c.raw_files {
            match f.to_bytes() {
                Ok(b) => inputs.push((format!("node {} clean", f.node.raw()), b)),
                Err(e) => {
                    r.findings.push(Finding::error(
                        "oracle-fast-vs-reference",
                        format!("node {} does not serialize: {e}", f.node.raw()),
                    ));
                    return;
                }
            }
        }
        let clean = inputs.clone();
        for plan_seed in seed..seed + 4 {
            let plan = FaultPlan::byte_level_from_seed(plan_seed, clean.len() as u16);
            for (node, (label, bytes)) in clean.iter().enumerate() {
                // protect == 0: header damage is in scope — the two
                // decoders must reject it with the same error.
                if let Some(damaged) = plan.apply_to_file(node as u16, bytes.clone(), 0) {
                    if damaged != *bytes {
                        inputs.push((format!("{label} + plan `{plan}`"), damaged));
                    }
                }
            }
        }
        for (label, bytes) in &inputs {
            match (
                RawTraceFile::from_bytes(bytes),
                RawTraceFile::from_bytes_reference(bytes),
            ) {
                (Ok(fast), Ok(reference)) => {
                    if fast == reference {
                        r.records += fast.events.len() as u64;
                    } else {
                        r.findings.push(Finding::error(
                            "oracle-fast-vs-reference",
                            format!("strict decode of {label}: fast and reference files differ"),
                        ));
                    }
                }
                (Err(fast), Err(reference)) => {
                    if fast.to_string() != reference.to_string() {
                        r.findings.push(Finding::error(
                            "oracle-fast-vs-reference",
                            format!(
                                "strict decode of {label}: fast error `{fast}` vs \
                                 reference error `{reference}`"
                            ),
                        ));
                    }
                }
                (fast, reference) => r.findings.push(Finding::error(
                    "oracle-fast-vs-reference",
                    format!(
                        "strict decode of {label}: fast {} but reference {}",
                        if fast.is_ok() { "accepts" } else { "rejects" },
                        if reference.is_ok() {
                            "accepts"
                        } else {
                            "rejects"
                        },
                    ),
                )),
            }
            match (
                RawTraceFile::from_bytes_salvage(bytes),
                RawTraceFile::from_bytes_salvage_reference(bytes),
            ) {
                (Ok((fast, fast_rep)), Ok((reference, ref_rep))) => {
                    if fast != reference {
                        r.findings.push(Finding::error(
                            "oracle-fast-vs-reference",
                            format!("salvage of {label}: recovered events differ"),
                        ));
                    }
                    if fast_rep != ref_rep {
                        r.findings.push(Finding::error(
                            "oracle-fast-vs-reference",
                            format!(
                                "salvage of {label}: reports differ \
                                 (fast {fast_rep:?} vs reference {ref_rep:?})"
                            ),
                        ));
                    }
                }
                (Err(fast), Err(reference)) => {
                    if fast.to_string() != reference.to_string() {
                        r.findings.push(Finding::error(
                            "oracle-fast-vs-reference",
                            format!(
                                "salvage of {label}: fast error `{fast}` vs \
                                 reference error `{reference}`"
                            ),
                        ));
                    }
                }
                (fast, reference) => r.findings.push(Finding::error(
                    "oracle-fast-vs-reference",
                    format!(
                        "salvage of {label}: fast {} but reference {}",
                        if fast.is_ok() { "recovers" } else { "rejects" },
                        if reference.is_ok() {
                            "recovers"
                        } else {
                            "rejects"
                        },
                    ),
                )),
            }
        }
    });
    report
}

/// Runs every differential oracle; `seed` varies the loss plan of the
/// salvage-subset oracle and the corruption plans of the decode oracle.
pub fn run_all_oracles(seed: u64) -> Vec<Report> {
    vec![
        oracle_jobs_determinism(),
        oracle_fused_staged(),
        oracle_salvage_subset(seed),
        oracle_clock_monotone(),
        oracle_fast_vs_reference(seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_oracles_pass() {
        for report in run_all_oracles(7) {
            assert!(report.passed(), "{}", report.render());
            assert!(
                report.records > 0,
                "{} examined no records",
                report.artifact
            );
        }
    }

    #[test]
    fn salvage_subset_holds_across_seeds() {
        for seed in [1u64, 2, 3] {
            let r = oracle_salvage_subset(seed);
            assert!(r.passed(), "{}", r.render());
        }
    }

    #[test]
    fn fast_vs_reference_holds_across_seeds() {
        for seed in [1u64, 11, 29] {
            let r = oracle_fast_vs_reference(seed);
            assert!(r.passed(), "{}", r.render());
            assert!(r.records > 0, "decode oracle examined no records");
        }
    }

    #[test]
    fn loss_only_plans_never_rewrite_bytes() {
        for seed in 0..20u64 {
            let plan = loss_only_plan(seed, 4);
            assert!(plan
                .faults
                .iter()
                .all(|(_, k)| matches!(k, FaultKind::Truncate { .. } | FaultKind::Missing)));
            // Node 0 always survives.
            assert!(plan.faults.iter().all(|(n, _)| *n != 0));
        }
    }
}
