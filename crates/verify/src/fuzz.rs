//! Structure-aware decoder fuzzer (`ute fuzz`).
//!
//! Starts from small *valid* artifacts of each kind (raw trace, interval
//! file, SLOG) and applies seeded structure-aware mutations — bit flips,
//! truncations, splices, span duplications, and planted extreme integers
//! at header/length/offset positions — then drives every decoder the
//! toolchain has (strict, salvage, and the `ute check` rule suites) over
//! each mutant. The contract under test: decoders must *reject* damage
//! with a typed error or a structured finding, never panic, and never
//! allocate unboundedly (the smoke test bounds peak live allocation).
//!
//! Everything is a pure function of the seed: a failing seed reproduces
//! the same mutant bytes on any machine.

use ute_core::bebits::BeBits;
use ute_core::event::{EventCode, MpiOp};
use ute_core::ids::{CpuId, LogicalThreadId, NodeId, Pid, SystemThreadId, TaskId, ThreadType};
use ute_core::time::{LocalTime, Time};
use ute_faults::SplitMix64;
use ute_format::file::{FramePolicy, IntervalFileWriter};
use ute_format::profile::{Profile, MASK_PER_NODE};
use ute_format::record::{Interval, IntervalType};
use ute_format::state::StateCode;
use ute_format::thread_table::{ThreadEntry, ThreadTable};
use ute_rawtrace::file::RawTraceFile;
use ute_rawtrace::record::{ClockPayload, DispatchPayload, MpiPayload, RawEvent};
use ute_slog::builder::{BuildOptions, SlogBuilder};
use ute_slog::file::SlogFile;

use crate::finding::ArtifactKind;
use crate::ivl::{check_interval_bytes, IvlCheckOptions};
use crate::raw::check_raw_bytes;
use crate::slog::check_slog_bytes;

/// Fuzzer configuration.
#[derive(Debug, Clone, Copy)]
pub struct FuzzOptions {
    /// PRNG seed; the whole run is a pure function of it.
    pub seed: u64,
    /// Mutants to generate and drive.
    pub iters: u64,
    /// Suppress panic backtrace output for the duration of the run
    /// (single-threaded drivers only — the hook is process-global).
    pub quiet: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 1,
            iters: 256,
            quiet: false,
        }
    }
}

/// What a fuzz run observed.
#[derive(Debug, Clone, Default)]
pub struct FuzzStats {
    /// Mutants driven.
    pub iterations: u64,
    /// Mutants on which some decoder panicked (the failure mode the
    /// fuzzer exists to catch). Includes panics the check engine's
    /// backstop converted into `no-panic` findings.
    pub panics: u64,
    /// Reproduction info for the first panic seen.
    pub first_panic: Option<String>,
    /// Mutants every decoder still accepted with zero error findings
    /// (mutation landed somewhere harmless).
    pub clean: u64,
    /// Mutants rejected with a typed error or error finding.
    pub rejected: u64,
}

impl FuzzStats {
    /// Whether the run met the fuzzer's contract.
    pub fn passed(&self) -> bool {
        self.panics == 0
    }

    /// One-line summary.
    pub fn render(&self) -> String {
        format!(
            "{} mutants: {} rejected cleanly, {} still valid, {} panic(s){}",
            self.iterations,
            self.rejected,
            self.clean,
            self.panics,
            match &self.first_panic {
                Some(p) => format!(" — first: {p}"),
                None => String::new(),
            }
        )
    }
}

/// One base artifact the mutator starts from.
struct Seed {
    kind: ArtifactKind,
    bytes: Vec<u8>,
}

fn corpus_threads() -> ThreadTable {
    let mut t = ThreadTable::new();
    for logical in 0..2u16 {
        t.register(ThreadEntry {
            task: TaskId(0),
            pid: Pid(100),
            system_tid: SystemThreadId(1000 + logical as u64),
            node: NodeId(1),
            logical: LogicalThreadId(logical),
            ttype: if logical == 0 {
                ThreadType::Mpi
            } else {
                ThreadType::User
            },
        })
        .expect("corpus thread table is consistent");
    }
    t
}

/// A small valid interval file: nested piece chains over two threads,
/// multiple frames and directories ([`FramePolicy::tiny`]).
fn corpus_interval(profile: &Profile) -> Vec<u8> {
    let threads = corpus_threads();
    let mut w = IntervalFileWriter::new(
        profile,
        MASK_PER_NODE,
        1,
        &threads,
        &[(1, "Phase".to_string())],
        FramePolicy::tiny(),
    );
    let mut ivs = Vec::new();
    for i in 0..24u64 {
        let t0 = i * 100;
        ivs.push(Interval::basic(
            IntervalType::complete(StateCode::SYSCALL),
            t0 + 10,
            30,
            CpuId(0),
            NodeId(1),
            LogicalThreadId((i % 2) as u16),
        ));
        ivs.push(Interval::basic(
            IntervalType::complete(StateCode::RUNNING),
            t0,
            100,
            CpuId(0),
            NodeId(1),
            LogicalThreadId((i % 2) as u16),
        ));
    }
    ivs.sort_by_key(|iv| iv.end());
    for iv in &ivs {
        w.push(iv).expect("corpus intervals are end-ordered");
    }
    w.finish()
}

/// A small valid raw trace: clock samples, dispatches, MPI begin/end.
fn corpus_raw() -> Vec<u8> {
    let mut events = Vec::new();
    let mut t = 0u64;
    events.push(RawEvent::new(
        EventCode::GlobalClock,
        LocalTime(t),
        ClockPayload { global: Time(5000) }.to_bytes(),
    ));
    for i in 0..20u64 {
        t += 50;
        events.push(RawEvent::new(
            EventCode::ThreadDispatch,
            LocalTime(t),
            DispatchPayload {
                thread: LogicalThreadId((i % 2) as u16),
                cpu: CpuId(0),
            }
            .to_bytes(),
        ));
        t += 10;
        events.push(RawEvent::new(
            EventCode::MpiBegin(MpiOp::Send),
            LocalTime(t),
            MpiPayload::bare(LogicalThreadId((i % 2) as u16), 0).to_bytes(),
        ));
        t += 25;
        events.push(RawEvent::new(
            EventCode::MpiEnd(MpiOp::Send),
            LocalTime(t),
            MpiPayload::bare(LogicalThreadId((i % 2) as u16), 0).to_bytes(),
        ));
    }
    RawTraceFile::new(NodeId(1), events)
        .to_bytes()
        .expect("corpus raw trace serializes")
}

/// A small valid SLOG file, built by the real builder from the interval
/// corpus's shape.
fn corpus_slog(profile: &Profile) -> Vec<u8> {
    let threads = corpus_threads();
    let mut ivs = Vec::new();
    for i in 0..16u64 {
        ivs.push(Interval::basic(
            IntervalType {
                state: StateCode::RUNNING,
                bebits: BeBits::Complete,
            },
            i * 100,
            100,
            CpuId(0),
            NodeId(1),
            LogicalThreadId((i % 2) as u16),
        ));
    }
    SlogBuilder::new(
        profile,
        BuildOptions {
            nframes: 4,
            preview_bins: 8,
            arrows: false,
        },
    )
    .build(&ivs, &threads, &[])
    .expect("corpus slog builds")
    .to_bytes()
}

/// Applies one seeded mutation in place; returns a description for
/// reproduction messages.
fn mutate_once(rng: &mut SplitMix64, data: &mut Vec<u8>) -> String {
    if data.is_empty() {
        data.push(rng.next_u64() as u8);
        return "append to empty".into();
    }
    let len = data.len() as u64;
    match rng.below(8) {
        0 => {
            let at = rng.below(len) as usize;
            let bit = rng.below(8) as u8;
            data[at] ^= 1 << bit;
            format!("bitflip@{at}.{bit}")
        }
        1 => {
            let at = rng.below(len) as usize;
            let v = rng.next_u64() as u8;
            data[at] = v;
            format!("byteset@{at}={v}")
        }
        2 => {
            let keep = rng.below(len) as usize;
            data.truncate(keep);
            format!("truncate@{keep}")
        }
        3 => {
            let at = rng.below(len) as usize;
            let span = (1 + rng.below(64)) as usize;
            let end = (at + span).min(data.len());
            data.drain(at..end);
            format!("splice@{at}+{span}")
        }
        4 => {
            let at = rng.below(len) as usize;
            let span = (1 + rng.below(64)) as usize;
            let end = (at + span).min(data.len());
            let copy: Vec<u8> = data[at..end].to_vec();
            let dst = rng.below(data.len() as u64 + 1) as usize;
            data.splice(dst..dst, copy);
            format!("dup@{at}+{span}->{dst}")
        }
        5 => {
            let at = rng.below(len) as usize;
            let span = (1 + rng.below(64)) as usize;
            let end = (at + span).min(data.len());
            data[at..end].fill(0);
            format!("zero@{at}+{span}")
        }
        6 => {
            // Structure-aware: plant an extreme integer where a count,
            // length, or offset field might live.
            let extremes = [
                0u64,
                1,
                u64::from(u16::MAX),
                u64::from(u32::MAX),
                u64::MAX,
                len,
                len.wrapping_sub(1),
                len.wrapping_add(1),
            ];
            let v = extremes[rng.below(extremes.len() as u64) as usize];
            let width = [2usize, 4, 8][rng.below(3) as usize];
            let at = rng.below(len.saturating_sub(width as u64).max(1)) as usize;
            let bytes = v.to_le_bytes();
            let end = (at + width).min(data.len());
            data[at..end].copy_from_slice(&bytes[..end - at]);
            format!("plant@{at}w{width}={v}")
        }
        _ => {
            // Structure-aware: smash the header region, where magic,
            // versions, masks, and table counts live.
            let at = rng.below(64.min(len)) as usize;
            let v = rng.next_u64() as u8;
            data[at] = v;
            format!("header@{at}={v}")
        }
    }
}

/// Drives every decoder for `kind` over the mutant. Returns
/// `(panicked, accepted)` — `accepted` meaning zero error findings.
fn drive(kind: ArtifactKind, bytes: &[u8], profile: &Profile) -> (bool, bool) {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match kind {
        ArtifactKind::Raw => {
            let _ = RawTraceFile::from_bytes(bytes);
            let _ = RawTraceFile::from_bytes_salvage(bytes);
            check_raw_bytes("fuzz", bytes)
        }
        ArtifactKind::Interval => {
            check_interval_bytes("fuzz", bytes, profile, IvlCheckOptions::default())
        }
        ArtifactKind::Slog => {
            let _ = SlogFile::from_bytes(bytes);
            check_slog_bytes("fuzz", bytes)
        }
        ArtifactKind::Oracle => unreachable!("oracles are not fuzz targets"),
    }));
    match outcome {
        Ok(report) => {
            // A panic the engine's backstop converted is still a panic.
            let backstopped = report.findings.iter().any(|f| f.rule == "no-panic");
            (backstopped, report.passed())
        }
        Err(_) => (true, false),
    }
}

/// Runs the fuzzer. Deterministic in `opts.seed`.
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzStats {
    let saved_hook = if opts.quiet {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        Some(hook)
    } else {
        None
    };
    let profile = Profile::standard();
    let seeds = [
        Seed {
            kind: ArtifactKind::Interval,
            bytes: corpus_interval(&profile),
        },
        Seed {
            kind: ArtifactKind::Raw,
            bytes: corpus_raw(),
        },
        Seed {
            kind: ArtifactKind::Slog,
            bytes: corpus_slog(&profile),
        },
    ];
    let mut rng = SplitMix64::new(opts.seed);
    let mut stats = FuzzStats::default();
    for i in 0..opts.iters {
        let seed = &seeds[rng.below(seeds.len() as u64) as usize];
        let mut mutant = seed.bytes.clone();
        let nmut = 1 + rng.below(3);
        let mut desc = Vec::with_capacity(nmut as usize);
        for _ in 0..nmut {
            desc.push(mutate_once(&mut rng, &mut mutant));
        }
        let (panicked, accepted) = drive(seed.kind, &mutant, &profile);
        stats.iterations += 1;
        if panicked {
            stats.panics += 1;
            if stats.first_panic.is_none() {
                stats.first_panic = Some(format!(
                    "iter {i} (seed {}): {} artifact, mutations [{}]",
                    opts.seed,
                    seed.kind,
                    desc.join(", ")
                ));
            }
        } else if accepted {
            stats.clean += 1;
        } else {
            stats.rejected += 1;
        }
    }
    if let Some(hook) = saved_hook {
        std::panic::set_hook(hook);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_artifacts_are_valid() {
        let p = Profile::standard();
        let r = check_interval_bytes("c", &corpus_interval(&p), &p, IvlCheckOptions::default());
        assert!(r.passed(), "{}", r.render());
        let r = check_raw_bytes("c", &corpus_raw());
        assert!(r.passed(), "{}", r.render());
        let r = check_slog_bytes("c", &corpus_slog(&p));
        assert!(r.passed(), "{}", r.render());
    }

    #[test]
    fn fuzz_is_deterministic() {
        let opts = FuzzOptions {
            seed: 42,
            iters: 64,
            quiet: false,
        };
        let a = run_fuzz(&opts);
        let b = run_fuzz(&opts);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.panics, b.panics);
        assert_eq!(a.clean, b.clean);
        assert_eq!(a.rejected, b.rejected);
    }

    #[test]
    fn short_run_finds_no_panics_and_rejects_damage() {
        let stats = run_fuzz(&FuzzOptions {
            seed: 7,
            iters: 128,
            quiet: false,
        });
        assert!(stats.passed(), "{}", stats.render());
        assert!(stats.rejected > 0, "{}", stats.render());
    }
}
