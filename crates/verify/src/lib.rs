//! # ute-verify — the conformance subsystem
//!
//! The paper's format guarantees (§2.3, §3.1, §3.3, §4) are easy to
//! state and easy to silently violate. This crate makes them checkable:
//!
//! * **Invariant engine** — named rule suites over serialized artifacts
//!   ([`ivl::check_interval_bytes`], [`slog::check_slog_bytes`],
//!   [`raw::check_raw_bytes`]): frame-directory link integrity, end-time
//!   sort order, bebit laminarity per thread, thread-table bounds,
//!   send/recv arrow matching, preview time conservation, profile field
//!   resolution. Violations come back as structured [`Finding`]s in a
//!   [`Report`] — never as panics ([`finding::run_rule`] backstops every
//!   rule).
//! * **Differential oracles** ([`oracle`]) — pairs of pipelines the
//!   design guarantees are equivalent (serial vs `--jobs N`, fused vs
//!   staged, salvage ⊆ strict under loss-only faults, clock-adjusted
//!   order, zero-copy decode vs the `reference-decode` baseline), run
//!   and compared.
//! * **Structure-aware fuzzer** ([`fuzz`]) — seeded mutations over valid
//!   corpora, driving every decoder; decoders must reject damage with
//!   typed errors, never panic, never allocate unboundedly.
//!
//! `ute check` and `ute fuzz` expose all three from the CLI.

pub mod finding;
pub mod fuzz;
pub mod ivl;
pub mod oracle;
pub mod raw;
pub mod slog;

pub use finding::{ArtifactKind, Finding, Report, Severity};
pub use fuzz::{run_fuzz, FuzzOptions, FuzzStats};
pub use ivl::{check_interval_bytes, IvlCheckOptions};
pub use oracle::{loss_only_plan, oracle_fast_vs_reference, run_all_oracles};
pub use raw::{check_raw_bytes, check_salvage_agrees};
pub use slog::check_slog_bytes;
