//! Invariant rules for raw trace files.
//!
//! | rule | invariant | paper |
//! |------|-----------|-------|
//! | `raw-open` | magic, version, header fields decode | §2.1 |
//! | `raw-record-chain` | hookword lengths chain record-to-record to EOF | §2.1 |
//! | `raw-payload-shape` | typed payloads (dispatch/clock/marker/MPI) parse | §2.1 |
//! | `raw-timestamps` | local timestamps non-decreasing in cut order | §2.1, §2.2 |

use ute_core::event::EventCode;
use ute_rawtrace::file::{RawTraceFile, RawTraceReader, HEADER_LEN};
use ute_rawtrace::record::{
    ClockPayload, DispatchPayload, MarkerDefPayload, MarkerPayload, MpiPayload, RawEvent,
};

use crate::finding::{run_rule, ArtifactKind, Finding, Report};

/// Runs the full raw-trace rule suite over serialized bytes.
pub fn check_raw_bytes(label: &str, bytes: &[u8]) -> Report {
    let mut report = Report::new(label, ArtifactKind::Raw);
    let mut header_ok = false;
    run_rule(&mut report, "raw-open", |r| {
        match RawTraceReader::open(bytes) {
            Ok(_) => header_ok = true,
            Err(e) => r
                .findings
                .push(Finding::error("raw-open", format!("cannot open: {e}"))),
        }
    });
    if !header_ok {
        return report;
    }

    let mut events: Vec<RawEvent> = Vec::new();
    run_rule(&mut report, "raw-record-chain", |r| {
        rule_record_chain(r, bytes, &mut events)
    });
    report.records = events.len() as u64;
    run_rule(&mut report, "raw-payload-shape", |r| {
        rule_payload_shape(r, &events)
    });
    run_rule(&mut report, "raw-timestamps", |r| {
        rule_timestamps(r, &events)
    });
    report
}

/// Records must chain via their hookword lengths: decoding from the
/// first record must consume exactly the declared count and land exactly
/// on end-of-file — "a program reader can always find the next interval
/// record" holds for raw records too, via the hookword length.
fn rule_record_chain(report: &mut Report, bytes: &[u8], events: &mut Vec<RawEvent>) {
    let mut reader = match RawTraceReader::open(bytes) {
        Ok(r) => r,
        Err(_) => return, // raw-open already reported
    };
    let declared = reader.record_count;
    loop {
        match reader.next_event() {
            Ok(Some(ev)) => events.push(ev),
            Ok(None) => break,
            Err(e) => {
                report.findings.push(Finding::error(
                    "raw-record-chain",
                    format!("record {} does not decode: {e}", events.len()),
                ));
                return;
            }
        }
    }
    if (events.len() as u64) != declared {
        report.findings.push(Finding::error(
            "raw-record-chain",
            format!(
                "header declares {declared} records but {} decoded",
                events.len()
            ),
        ));
    }
    let consumed: usize = HEADER_LEN + events.iter().map(|e| e.encoded_len()).sum::<usize>();
    if consumed != bytes.len() {
        report.findings.push(
            Finding::error(
                "raw-record-chain",
                format!(
                    "{} trailing bytes after the last declared record",
                    bytes.len() - consumed
                ),
            )
            .at(consumed as u64),
        );
    }
}

/// Payload-bearing events must carry a payload their typed decoder
/// accepts — a dispatch record with a 3-byte payload is damage even
/// though the hookword chain is intact.
fn rule_payload_shape(report: &mut Report, events: &[RawEvent]) {
    let mut reported = 0usize;
    for (i, ev) in events.iter().enumerate() {
        if reported >= 8 {
            return;
        }
        let result = match ev.code {
            EventCode::ThreadDispatch | EventCode::ThreadUndispatch => {
                DispatchPayload::from_bytes(&ev.payload).map(|_| ())
            }
            EventCode::GlobalClock => ClockPayload::from_bytes(&ev.payload).map(|_| ()),
            EventCode::MarkerDef => MarkerDefPayload::from_bytes(&ev.payload).map(|_| ()),
            EventCode::MarkerBegin | EventCode::MarkerEnd => {
                MarkerPayload::from_bytes(&ev.payload).map(|_| ())
            }
            EventCode::MpiBegin(_) | EventCode::MpiEnd(_) => {
                MpiPayload::from_bytes(&ev.payload).map(|_| ())
            }
            _ => Ok(()),
        };
        if let Err(e) = result {
            reported += 1;
            report.findings.push(Finding::error(
                "raw-payload-shape",
                format!("record {i} ({}): payload does not parse: {e}", ev.code),
            ));
        }
    }
}

/// Local timestamps should be non-decreasing in cut order — the buffer
/// cuts records as they happen. An inversion is a warning, not an error:
/// per-CPU cut races can legally reorder neighbors by a few ticks.
fn rule_timestamps(report: &mut Report, events: &[RawEvent]) {
    let mut last = 0u64;
    let mut inversions = 0usize;
    for ev in events {
        let t = ev.timestamp.ticks();
        if t < last {
            inversions += 1;
        } else {
            last = t;
        }
    }
    if inversions > 0 {
        report.findings.push(Finding::warning(
            "raw-timestamps",
            format!("{inversions} timestamp inversion(s) in cut order"),
        ));
    }
}

/// Salvage-consistency check used by the differential oracles: the
/// strict decode of an undamaged file and its salvage decode must agree
/// exactly, and salvage must report a clean bill.
pub fn check_salvage_agrees(label: &str, bytes: &[u8]) -> Report {
    let mut report = Report::new(label, ArtifactKind::Raw);
    run_rule(&mut report, "salvage-identity", |r| {
        let strict = RawTraceFile::from_bytes(bytes);
        let salvaged = RawTraceFile::from_bytes_salvage(bytes);
        match (strict, salvaged) {
            (Ok(s), Ok((v, rep))) => {
                if s != v {
                    r.findings.push(Finding::error(
                        "salvage-identity",
                        "salvage decode of a clean file differs from strict decode",
                    ));
                }
                if !rep.is_clean() {
                    r.findings.push(Finding::error(
                        "salvage-identity",
                        format!("salvage reported damage on a strict-clean file: {rep:?}"),
                    ));
                }
                r.records = s.events.len() as u64;
            }
            (Err(_), _) => r.findings.push(Finding::warning(
                "salvage-identity",
                "file does not decode strictly; identity not applicable",
            )),
            (Ok(_), Err(e)) => r.findings.push(Finding::error(
                "salvage-identity",
                format!("strict decode succeeded but salvage failed: {e}"),
            )),
        }
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_core::event::MpiOp;
    use ute_core::ids::{LogicalThreadId, NodeId};
    use ute_core::time::LocalTime;

    fn sample() -> RawTraceFile {
        let mut events = Vec::new();
        for t in 0..30u64 {
            events.push(RawEvent::new(
                EventCode::MpiBegin(MpiOp::Send),
                LocalTime(t * 100),
                MpiPayload::bare(LogicalThreadId(0), 0).to_bytes(),
            ));
        }
        RawTraceFile::new(NodeId(1), events)
    }

    #[test]
    fn clean_raw_passes() {
        let bytes = sample().to_bytes().unwrap();
        let r = check_raw_bytes("t", &bytes);
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.records, 30);
        assert_eq!(r.rules_run.len(), 4);
    }

    #[test]
    fn bitflipped_hookword_is_a_finding() {
        let mut bytes = sample().to_bytes().unwrap();
        let at = HEADER_LEN + 5 * (12 + 38);
        bytes[at + 2] ^= 0xff; // event-code half of the hookword
        let r = check_raw_bytes("t", &bytes);
        assert!(!r.passed());
        assert!(
            r.rules_violated().contains(&"raw-record-chain"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn short_payload_flagged_by_shape_rule() {
        let mut f = sample();
        f.events[3].payload.truncate(10);
        let bytes = f.to_bytes().unwrap();
        let r = check_raw_bytes("t", &bytes);
        assert!(
            r.rules_violated().contains(&"raw-payload-shape"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn timestamp_inversion_is_a_warning_only() {
        let mut f = sample();
        f.events.swap(4, 5);
        let bytes = f.to_bytes().unwrap();
        let r = check_raw_bytes("t", &bytes);
        assert!(r.passed(), "{}", r.render()); // warnings allowed
        assert_eq!(r.warnings(), 1);
        assert!(r.rules_violated().contains(&"raw-timestamps"));
    }

    #[test]
    fn truncation_reported_without_panic() {
        let bytes = sample().to_bytes().unwrap();
        for cut in [10, HEADER_LEN + 5, bytes.len() - 3] {
            let r = check_raw_bytes("t", &bytes[..cut]);
            assert!(!r.passed(), "cut {cut}");
            assert!(r.findings.iter().all(|x| x.rule != "no-panic"));
        }
    }

    #[test]
    fn salvage_identity_on_clean_file() {
        let bytes = sample().to_bytes().unwrap();
        let r = check_salvage_agrees("t", &bytes);
        assert!(r.passed(), "{}", r.render());
        assert_eq!(r.records, 30);
    }
}
