//! Sidecar file I/O for the thread table.
//!
//! The AIX trace facility knew process/thread identity from the kernel;
//! our simulator hands the same information over as a ground-truth thread
//! table, persisted next to the raw trace files so the convert utility
//! can run as a separate process (the `threads.utt` sidecar).

use ute_core::codec::{ByteReader, ByteWriter};
use ute_core::error::{PathContext, Result, UteError};

use crate::thread_table::ThreadTable;

/// Magic bytes opening a thread-table sidecar file.
pub const MAGIC: &[u8; 8] = b"UTETHRD\0";

/// Serializes a thread table to sidecar-file bytes.
pub fn thread_table_to_bytes(table: &ThreadTable) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(MAGIC);
    table.encode(&mut w);
    w.into_bytes()
}

/// Serializes a thread table to a sidecar file.
pub fn write_thread_table_file(path: &std::path::Path, table: &ThreadTable) -> Result<()> {
    std::fs::write(path, thread_table_to_bytes(table)).in_file(path)
}

/// Reads a thread-table sidecar file.
pub fn read_thread_table_file(path: &std::path::Path) -> Result<ThreadTable> {
    let data = std::fs::read(path).in_file(path)?;
    let mut r = ByteReader::new(&data);
    if r.get_bytes(8)? != MAGIC {
        return Err(UteError::corrupt("thread table sidecar: bad magic").in_file(path));
    }
    ThreadTable::decode(&mut r).map_err(|e| e.in_file(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread_table::ThreadEntry;
    use ute_core::ids::{LogicalThreadId, NodeId, Pid, SystemThreadId, TaskId, ThreadType};

    #[test]
    fn sidecar_round_trip() {
        let mut t = ThreadTable::new();
        t.register(ThreadEntry {
            task: TaskId(0),
            pid: Pid(42),
            system_tid: SystemThreadId(7),
            node: NodeId(0),
            logical: LogicalThreadId(0),
            ttype: ThreadType::Mpi,
        })
        .unwrap();
        let path = std::env::temp_dir().join(format!("ute_tt_{}.utt", std::process::id()));
        write_thread_table_file(&path, &t).unwrap();
        let back = read_thread_table_file(&path).unwrap();
        assert_eq!(back, t);
        std::fs::write(&path, b"garbage!").unwrap();
        assert!(read_thread_table_file(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
