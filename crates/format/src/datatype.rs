//! Field data types of the description profile.
//!
//! Each field of an interval record has "a fixed data type, as specified in
//! the description profile" (§2.3.2). The type code occupies 4 bits of the
//! field description word, the element length 8 bits.

use ute_core::error::{Result, UteError};

/// The scalar element types a field can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// Unsigned 8-bit integer.
    U8,
    /// Unsigned 16-bit integer.
    U16,
    /// Unsigned 32-bit integer.
    U32,
    /// Unsigned 64-bit integer.
    U64,
    /// Signed 64-bit integer.
    I64,
    /// IEEE-754 double.
    F64,
    /// A single byte of character data (vector of `Char` = string).
    Char,
}

impl FieldType {
    /// 4-bit type code for the field description word.
    pub fn code(self) -> u8 {
        match self {
            FieldType::U8 => 0,
            FieldType::U16 => 1,
            FieldType::U32 => 2,
            FieldType::U64 => 3,
            FieldType::I64 => 4,
            FieldType::F64 => 5,
            FieldType::Char => 6,
        }
    }

    /// Inverse of [`FieldType::code`].
    pub fn from_code(code: u8) -> Result<FieldType> {
        Ok(match code {
            0 => FieldType::U8,
            1 => FieldType::U16,
            2 => FieldType::U32,
            3 => FieldType::U64,
            4 => FieldType::I64,
            5 => FieldType::F64,
            6 => FieldType::Char,
            other => {
                return Err(UteError::corrupt(format!(
                    "field description word: unknown data type code {other}"
                )))
            }
        })
    }

    /// Element size in bytes.
    pub fn elem_len(self) -> u8 {
        match self {
            FieldType::U8 | FieldType::Char => 1,
            FieldType::U16 => 2,
            FieldType::U32 => 4,
            FieldType::U64 | FieldType::I64 | FieldType::F64 => 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [FieldType; 7] = [
        FieldType::U8,
        FieldType::U16,
        FieldType::U32,
        FieldType::U64,
        FieldType::I64,
        FieldType::F64,
        FieldType::Char,
    ];

    #[test]
    fn code_round_trip() {
        for t in ALL {
            assert_eq!(FieldType::from_code(t.code()).unwrap(), t);
        }
        assert!(FieldType::from_code(7).is_err());
        assert!(FieldType::from_code(15).is_err());
    }

    #[test]
    fn element_lengths() {
        assert_eq!(FieldType::U8.elem_len(), 1);
        assert_eq!(FieldType::U16.elem_len(), 2);
        assert_eq!(FieldType::U32.elem_len(), 4);
        assert_eq!(FieldType::U64.elem_len(), 8);
        assert_eq!(FieldType::I64.elem_len(), 8);
        assert_eq!(FieldType::F64.elem_len(), 8);
        assert_eq!(FieldType::Char.elem_len(), 1);
    }
}
