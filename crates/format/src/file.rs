//! Interval files: writer and reader (§2.3.3, §2.4, Figure 4).
//!
//! "A valid interval file contains a header, a thread table, and interval
//! records partitioned into multiple frames and frame directories. ...
//! The header of an interval file includes a profile version number, a
//! header version number, the number of thread entries in the thread
//! table, and the field selection mask."
//!
//! The writer streams records (which must arrive in ascending end-time
//! order, §3.1), closes a frame whenever the frame policy says so, and
//! whenever a directory's worth of frames has accumulated writes the
//! directory followed by its frames, back-patching the previous
//! directory's `next` pointer — producing the doubly-linked directory
//! chain of Figure 4.
//!
//! The reader mirrors the paper's API (§2.4): `read_header` →
//! `read_frame_dir` → `get_interval` loop, plus random access by time.

use ute_core::codec::{ByteReader, ByteWriter};
use ute_core::error::{Result, UteError};
use ute_core::ids::NodeId;

use crate::frame::{FrameDirectory, FrameEntry, NO_DIR};
use crate::plan::PlanSet;
use crate::profile::Profile;
use crate::record::{read_record, write_record, Interval};
use crate::thread_table::ThreadTable;

/// Magic bytes opening an interval file.
pub const MAGIC: &[u8; 8] = b"UTEIVL\0\0";

/// Current header version.
pub const HEADER_VERSION: u32 = 1;

/// Node id stored in merged files (which span all nodes).
pub const MERGED_NODE: u16 = u16::MAX;

/// When to close frames and directories.
#[derive(Debug, Clone, Copy)]
pub struct FramePolicy {
    /// Maximum records per frame.
    pub max_records_per_frame: usize,
    /// Maximum frame entries per directory.
    pub max_frames_per_dir: usize,
}

impl Default for FramePolicy {
    fn default() -> Self {
        FramePolicy {
            max_records_per_frame: 1024,
            max_frames_per_dir: 64,
        }
    }
}

impl FramePolicy {
    /// A tiny policy useful in tests to force many frames/directories.
    pub fn tiny() -> FramePolicy {
        FramePolicy {
            max_records_per_frame: 4,
            max_frames_per_dir: 2,
        }
    }
}

/// Accumulates one frame's encoded records.
#[derive(Debug, Default)]
struct PendingFrame {
    bytes: ByteWriter,
    nrecords: u32,
    start_time: u64,
    end_time: u64,
}

/// Streaming interval-file writer.
pub struct IntervalFileWriter<'p> {
    profile: &'p Profile,
    mask: u32,
    /// Precompiled field plans — the per-record encode path writes
    /// straight into the frame buffer with no name lookups and no
    /// intermediate body allocation. Record types without a plan fall
    /// back to [`Interval::encode_body`].
    plans: PlanSet,
    policy: FramePolicy,
    out: ByteWriter,
    /// Offset of the first-directory pointer in the header (to patch).
    first_dir_ptr_at: u64,
    /// Offset of the previous directory (to patch its `next`).
    prev_dir_at: u64,
    current: PendingFrame,
    pending: Vec<PendingFrame>,
    last_end: u64,
    total_records: u64,
    /// Cached metric handles — resolved once so the per-record path
    /// stays a single atomic add.
    obs_records: &'static ute_obs::Counter,
    obs_frames: &'static ute_obs::Counter,
    obs_dirs: &'static ute_obs::Counter,
}

impl<'p> IntervalFileWriter<'p> {
    /// Starts a file. `node` is the producing node for per-node files or
    /// [`MERGED_NODE`] for merged files; `markers` is the marker
    /// id→string table.
    pub fn new(
        profile: &'p Profile,
        mask: u32,
        node: u16,
        threads: &ThreadTable,
        markers: &[(u32, String)],
        policy: FramePolicy,
    ) -> IntervalFileWriter<'p> {
        let mut out = ByteWriter::with_capacity(1 << 16);
        out.put_bytes(MAGIC);
        out.put_u32(profile.version);
        out.put_u32(HEADER_VERSION);
        out.put_u32(mask);
        out.put_u16(node);
        threads.encode(&mut out);
        out.put_u32(markers.len() as u32);
        for (id, name) in markers {
            out.put_u32(*id);
            out.put_str(name);
        }
        let first_dir_ptr_at = out.pos();
        out.put_u64(NO_DIR); // patched when the first directory lands
        IntervalFileWriter {
            profile,
            mask,
            plans: PlanSet::build(profile, mask),
            policy,
            out,
            first_dir_ptr_at,
            prev_dir_at: NO_DIR,
            current: PendingFrame::default(),
            pending: Vec::new(),
            last_end: 0,
            total_records: 0,
            obs_records: ute_obs::counter("format/records_written"),
            obs_frames: ute_obs::counter("format/frames_written"),
            obs_dirs: ute_obs::counter("format/dirs_written"),
        }
    }

    /// Appends a record. Records must arrive in ascending end-time order.
    pub fn push(&mut self, iv: &Interval) -> Result<()> {
        if iv.end() < self.last_end {
            return Err(UteError::Invalid(format!(
                "record end {} precedes previous end {}; interval files are end-time ordered",
                iv.end(),
                self.last_end
            )));
        }
        self.last_end = iv.end();
        match self.plans.plan(iv.itype.to_u32()) {
            Some(plan) => plan.encode_record_into(iv, &mut self.current.bytes)?,
            None => {
                let body = iv.encode_body(self.profile, self.mask)?;
                write_record(&mut self.current.bytes, &body)?;
            }
        }
        if self.current.nrecords == 0 {
            self.current.start_time = iv.start;
            self.current.end_time = iv.end();
        } else {
            self.current.start_time = self.current.start_time.min(iv.start);
            self.current.end_time = self.current.end_time.max(iv.end());
        }
        self.current.nrecords += 1;
        self.total_records += 1;
        self.obs_records.inc();
        if self.current.nrecords as usize >= self.policy.max_records_per_frame {
            self.close_frame();
        }
        Ok(())
    }

    fn close_frame(&mut self) {
        if self.current.nrecords == 0 {
            return;
        }
        let frame = std::mem::take(&mut self.current);
        self.obs_frames.inc();
        self.pending.push(frame);
        if self.pending.len() >= self.policy.max_frames_per_dir {
            self.flush_directory();
        }
    }

    fn flush_directory(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let frames = std::mem::take(&mut self.pending);
        self.obs_dirs.inc();
        let dir_at = self.out.pos();
        let header_len =
            crate::frame::DIR_HEADER_LEN + frames.len() * crate::frame::FRAME_ENTRY_LEN;
        // Frame offsets follow the directory contiguously.
        let mut offset = dir_at + header_len as u64;
        let entries: Vec<FrameEntry> = frames
            .iter()
            .map(|f| {
                let e = FrameEntry {
                    offset,
                    size: f.bytes.pos(),
                    nrecords: f.nrecords,
                    start_time: f.start_time,
                    end_time: f.end_time,
                };
                offset += f.bytes.pos();
                e
            })
            .collect();
        let dir = FrameDirectory {
            prev: self.prev_dir_at,
            next: NO_DIR,
            entries,
        };
        dir.encode(&mut self.out);
        for f in &frames {
            self.out.put_bytes(f.bytes.as_bytes());
        }
        // Link the chain.
        if self.prev_dir_at == NO_DIR {
            self.out.patch_u64(self.first_dir_ptr_at, dir_at);
        } else {
            self.out
                .patch_u64(self.prev_dir_at + FrameDirectory::NEXT_FIELD_OFFSET, dir_at);
        }
        self.prev_dir_at = dir_at;
    }

    /// Closes the file, returning its bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.close_frame();
        self.flush_directory();
        ute_obs::counter("format/bytes_written").add(self.out.pos());
        self.out.into_bytes()
    }

    /// Records written so far.
    pub fn record_count(&self) -> u64 {
        self.total_records
    }
}

/// A parsed interval-file header plus the means to walk its records.
pub struct IntervalFileReader<'a> {
    data: &'a [u8],
    profile: &'a Profile,
    /// Precompiled field plans for this file's mask; decode falls back
    /// to [`Interval::decode_body`] for record types without one.
    plans: PlanSet,
    /// Field selection mask of this file.
    pub mask: u32,
    /// Producing node ([`MERGED_NODE`] for merged files).
    pub node: u16,
    /// The thread table.
    pub threads: ThreadTable,
    /// Marker id → string pairs.
    pub markers: Vec<(u32, String)>,
    /// Offset of the first frame directory.
    pub first_dir: u64,
}

impl<'a> IntervalFileReader<'a> {
    /// The paper's `readHeader`: validates magic and profile version and
    /// loads the thread and marker tables.
    pub fn open(data: &'a [u8], profile: &'a Profile) -> Result<IntervalFileReader<'a>> {
        let mut r = ByteReader::new(data);
        if r.get_bytes(8)? != MAGIC {
            return Err(UteError::corrupt("interval file: bad magic"));
        }
        let profile_version = r.get_u32()?;
        if profile_version != profile.version {
            return Err(UteError::VersionMismatch {
                profile: profile.version,
                file: profile_version,
            });
        }
        let header_version = r.get_u32()?;
        if header_version != HEADER_VERSION {
            return Err(UteError::corrupt(format!(
                "interval file: unsupported header version {header_version}"
            )));
        }
        let mask = r.get_u32()?;
        let node = r.get_u16()?;
        let threads = ThreadTable::decode(&mut r)?;
        let nmarkers = r.get_u32()?;
        let cap = ute_core::codec::clamped_capacity(nmarkers as usize, 6, r.remaining());
        let mut markers = Vec::with_capacity(cap);
        for _ in 0..nmarkers {
            let id = r.get_u32()?;
            markers.push((id, r.get_str()?));
        }
        let first_dir = r.get_u64()?;
        ute_obs::counter("format/files_opened").inc();
        Ok(IntervalFileReader {
            data,
            profile,
            plans: PlanSet::build(profile, mask),
            mask,
            node,
            threads,
            markers,
            first_dir,
        })
    }

    /// The default node used when decoding records of this file.
    fn default_node(&self) -> NodeId {
        NodeId(if self.node == MERGED_NODE {
            0
        } else {
            self.node
        })
    }

    /// Decodes one record body through the plan cache (reference-path
    /// fallback for unplanned record types).
    fn decode_record(&self, body: &[u8], node: NodeId) -> Result<Interval> {
        if body.len() >= 4 {
            let itype_raw = u32::from_le_bytes([body[0], body[1], body[2], body[3]]);
            if let Some(plan) = self.plans.plan(itype_raw) {
                return plan.decode_body(body, node);
            }
        }
        Interval::decode_body(self.profile, self.mask, body, node)
    }

    /// Retrieves a marker string by identifier (§2.4).
    pub fn marker_name(&self, id: u32) -> Option<&str> {
        self.markers
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, n)| n.as_str())
    }

    /// The paper's `readFrameDir`: reads the directory at `offset`
    /// ([`NO_DIR`] → the first directory).
    pub fn read_frame_dir(&self, offset: u64) -> Result<FrameDirectory> {
        let at = if offset == NO_DIR {
            self.first_dir
        } else {
            offset
        };
        if at == NO_DIR {
            return Err(UteError::NotFound("interval file has no frames".into()));
        }
        ute_obs::counter("format/dir_lookups").inc();
        let mut r = ByteReader::new(self.data);
        r.seek(at)?;
        FrameDirectory::decode(&mut r)
    }

    /// Iterates every directory in chain order.
    pub fn directories(&self) -> DirIter<'a, '_> {
        DirIter {
            reader: self,
            next: self.first_dir,
            prev: NO_DIR,
        }
    }

    /// Decodes the records of one frame (random access — nothing before
    /// the frame is touched).
    pub fn frame_intervals(&self, entry: &FrameEntry) -> Result<Vec<Interval>> {
        ute_obs::counter("format/frames_read").inc();
        ute_obs::counter("format/bytes_read").add(entry.size);
        let mut r = ByteReader::new(self.data);
        r.seek(entry.offset)?;
        let cap = ute_core::codec::clamped_capacity(entry.nrecords as usize, 2, r.remaining());
        let mut out = Vec::with_capacity(cap);
        let node = self.default_node();
        for _ in 0..entry.nrecords {
            let body = read_record(&mut r)?;
            out.push(self.decode_record(body, node)?);
        }
        if Some(r.pos()) != entry.offset.checked_add(entry.size) {
            return Err(UteError::corrupt_at(
                "frame size disagrees with its records",
                entry.offset,
            ));
        }
        Ok(out)
    }

    /// Retrieves the interval record at an absolute file offset — §2.4's
    /// "to retrieve an interval at a specific location". Returns the
    /// record plus the offset of the byte just past it, so callers can
    /// step through a frame themselves.
    pub fn interval_at(&self, offset: u64) -> Result<(Interval, u64)> {
        let mut r = ByteReader::new(self.data);
        r.seek(offset)?;
        let body = read_record(&mut r)?;
        let iv = self.decode_record(body, self.default_node())?;
        Ok((iv, r.pos()))
    }

    /// Sequential access hiding all frame and directory structure — the
    /// paper's `getInterval` loop. Yields raw record bodies.
    pub fn record_bodies(&self) -> RecordIter<'a, '_> {
        RecordIter {
            reader: self,
            dirs: self.directories(),
            frames: Vec::new(),
            frame_idx: 0,
            in_frame: None,
            remaining: 0,
            failed: false,
        }
    }

    /// Sequential access yielding decoded [`Interval`]s.
    pub fn intervals(&self) -> impl Iterator<Item = Result<Interval>> + '_ {
        let node = self.default_node();
        self.record_bodies()
            .map(move |body| body.and_then(|b| self.decode_record(b, node)))
    }

    /// Finds the frame containing (or next after) time `t` by walking the
    /// directory chain — never touching frame contents.
    pub fn find_frame(&self, t: u64) -> Result<Option<FrameEntry>> {
        ute_obs::counter("format/frame_lookups").inc();
        for dir in self.directories() {
            let dir = dir?;
            if let Some(e) = dir.find_frame(t) {
                return Ok(Some(*e));
            }
        }
        Ok(None)
    }

    /// Total records, from directory metadata alone.
    pub fn total_records(&self) -> Result<u64> {
        let mut n = 0;
        for dir in self.directories() {
            n += dir?.total_records();
        }
        Ok(n)
    }

    /// Trace time span (first frame start, last frame end), from metadata
    /// alone.
    pub fn time_span(&self) -> Result<Option<(u64, u64)>> {
        let mut span: Option<(u64, u64)> = None;
        for dir in self.directories() {
            let dir = dir?;
            for e in &dir.entries {
                span = Some(match span {
                    None => (e.start_time, e.end_time),
                    Some((s, t)) => (s.min(e.start_time), t.max(e.end_time)),
                });
            }
        }
        Ok(span)
    }
}

/// Iterator over the directory chain.
pub struct DirIter<'a, 'r> {
    reader: &'r IntervalFileReader<'a>,
    next: u64,
    prev: u64,
}

impl Iterator for DirIter<'_, '_> {
    type Item = Result<FrameDirectory>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next == NO_DIR {
            return None;
        }
        // The writer appends directories in file order, so a chain that
        // does not strictly advance is damage — and following it would
        // loop forever.
        if self.prev != NO_DIR && self.next <= self.prev {
            let at = self.next;
            self.next = NO_DIR;
            return Some(Err(UteError::corrupt_at(
                "frame directory chain does not advance",
                at,
            )));
        }
        match self.reader.read_frame_dir(self.next) {
            Ok(dir) => {
                self.prev = self.next;
                self.next = dir.next;
                Some(Ok(dir))
            }
            Err(e) => {
                self.next = NO_DIR;
                Some(Err(e))
            }
        }
    }
}

/// Iterator over raw record bodies, hiding frames and directories.
pub struct RecordIter<'a, 'r> {
    reader: &'r IntervalFileReader<'a>,
    dirs: DirIter<'a, 'r>,
    frames: Vec<FrameEntry>,
    frame_idx: usize,
    in_frame: Option<ByteReader<'a>>,
    remaining: u32,
    failed: bool,
}

impl<'a> Iterator for RecordIter<'a, '_> {
    type Item = Result<&'a [u8]>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(r) = self.in_frame.as_mut() {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    match read_record(r) {
                        Ok(body) => return Some(Ok(body)),
                        Err(e) => {
                            self.failed = true;
                            return Some(Err(e));
                        }
                    }
                }
                self.in_frame = None;
            }
            // Next frame in the current directory?
            if self.frame_idx < self.frames.len() {
                let entry = self.frames[self.frame_idx];
                self.frame_idx += 1;
                ute_obs::counter("format/frames_read").inc();
                ute_obs::counter("format/bytes_read").add(entry.size);
                let mut r = ByteReader::new(self.reader.data);
                if let Err(e) = r.seek(entry.offset) {
                    self.failed = true;
                    return Some(Err(e));
                }
                self.remaining = entry.nrecords;
                self.in_frame = Some(r);
                continue;
            }
            // Next directory?
            match self.dirs.next() {
                Some(Ok(dir)) => {
                    self.frames = dir.entries;
                    self.frame_idx = 0;
                }
                Some(Err(e)) => {
                    self.failed = true;
                    return Some(Err(e));
                }
                None => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{MASK_MERGED, MASK_PER_NODE};
    use crate::record::IntervalType;
    use crate::state::StateCode;
    use ute_core::ids::{CpuId, LogicalThreadId, Pid, SystemThreadId, TaskId, ThreadType};

    fn threads() -> ThreadTable {
        let mut t = ThreadTable::new();
        t.register(crate::thread_table::ThreadEntry {
            task: TaskId(0),
            pid: Pid(100),
            system_tid: SystemThreadId(5000),
            node: NodeId(1),
            logical: LogicalThreadId(0),
            ttype: ThreadType::Mpi,
        })
        .unwrap();
        t
    }

    fn running(start: u64, dur: u64) -> Interval {
        Interval::basic(
            IntervalType::complete(StateCode::RUNNING),
            start,
            dur,
            CpuId(0),
            NodeId(1),
            LogicalThreadId(0),
        )
    }

    fn build_file(profile: &Profile, n: u64, policy: FramePolicy) -> Vec<u8> {
        let markers = vec![(1u32, "Initial Phase".to_string())];
        let mut w =
            IntervalFileWriter::new(profile, MASK_PER_NODE, 1, &threads(), &markers, policy);
        for i in 0..n {
            w.push(&running(i * 10, 10)).unwrap();
        }
        w.finish()
    }

    #[test]
    fn header_round_trip() {
        let p = Profile::standard();
        let bytes = build_file(&p, 10, FramePolicy::default());
        let r = IntervalFileReader::open(&bytes, &p).unwrap();
        assert_eq!(r.mask, MASK_PER_NODE);
        assert_eq!(r.node, 1);
        assert_eq!(r.threads.len(), 1);
        assert_eq!(r.marker_name(1), Some("Initial Phase"));
        assert_eq!(r.marker_name(2), None);
    }

    #[test]
    fn sequential_iteration_hides_frames() {
        let p = Profile::standard();
        let bytes = build_file(&p, 100, FramePolicy::tiny());
        let r = IntervalFileReader::open(&bytes, &p).unwrap();
        let ivs: Vec<Interval> = r.intervals().map(|x| x.unwrap()).collect();
        assert_eq!(ivs.len(), 100);
        for (i, iv) in ivs.iter().enumerate() {
            assert_eq!(iv.start, i as u64 * 10);
            assert_eq!(iv.node, NodeId(1)); // restored from header
        }
    }

    #[test]
    fn directory_chain_is_doubly_linked() {
        let p = Profile::standard();
        let bytes = build_file(&p, 100, FramePolicy::tiny());
        let r = IntervalFileReader::open(&bytes, &p).unwrap();
        let dirs: Vec<FrameDirectory> = r.directories().map(|d| d.unwrap()).collect();
        // 100 records / 4 per frame = 25 frames / 2 per dir = 13 dirs.
        assert_eq!(dirs.len(), 13);
        assert_eq!(dirs[0].prev, NO_DIR);
        assert_eq!(dirs.last().unwrap().next, NO_DIR);
        // Forward links visit in order; back links mirror them.
        let mut offsets = vec![r.first_dir];
        for d in &dirs[..dirs.len() - 1] {
            offsets.push(d.next);
        }
        for (i, d) in dirs.iter().enumerate().skip(1) {
            assert_eq!(d.prev, offsets[i - 1], "dir {i} back link");
        }
    }

    #[test]
    fn random_access_by_time() {
        let p = Profile::standard();
        let bytes = build_file(&p, 200, FramePolicy::tiny());
        let r = IntervalFileReader::open(&bytes, &p).unwrap();
        // Time 1500 lives in record 150's interval [1500, 1510].
        let frame = r.find_frame(1505).unwrap().unwrap();
        assert!(frame.contains_time(1505));
        let ivs = r.frame_intervals(&frame).unwrap();
        assert!(ivs.iter().any(|iv| iv.start <= 1505 && 1505 <= iv.end()));
        // Past the end: no frame.
        assert!(r.find_frame(999_999).unwrap().is_none());
    }

    #[test]
    fn aggregates_from_metadata() {
        let p = Profile::standard();
        let bytes = build_file(&p, 64, FramePolicy::tiny());
        let r = IntervalFileReader::open(&bytes, &p).unwrap();
        assert_eq!(r.total_records().unwrap(), 64);
        assert_eq!(r.time_span().unwrap(), Some((0, 640)));
    }

    #[test]
    fn out_of_order_push_rejected() {
        let p = Profile::standard();
        let mut w = IntervalFileWriter::new(
            &p,
            MASK_PER_NODE,
            1,
            &threads(),
            &[],
            FramePolicy::default(),
        );
        w.push(&running(100, 10)).unwrap();
        assert!(w.push(&running(0, 10)).is_err());
    }

    #[test]
    fn version_mismatch_detected() {
        let p = Profile::standard();
        let bytes = build_file(&p, 5, FramePolicy::default());
        let mut other = Profile::standard();
        other.version = 2;
        assert!(matches!(
            IntervalFileReader::open(&bytes, &other),
            Err(UteError::VersionMismatch {
                profile: 2,
                file: 1
            })
        ));
    }

    #[test]
    fn truncated_file_fails_cleanly() {
        let p = Profile::standard();
        let bytes = build_file(&p, 50, FramePolicy::tiny());
        // Cut mid-way through the record area.
        let cut = &bytes[..bytes.len() / 2];
        match IntervalFileReader::open(cut, &p) {
            Err(_) => {} // header itself truncated — fine
            Ok(r) => {
                let res: Result<Vec<_>> = r.intervals().collect();
                assert!(res.is_err());
            }
        }
    }

    #[test]
    fn empty_file_has_no_frames() {
        let p = Profile::standard();
        let w = IntervalFileWriter::new(
            &p,
            MASK_PER_NODE,
            1,
            &threads(),
            &[],
            FramePolicy::default(),
        );
        let bytes = w.finish();
        let r = IntervalFileReader::open(&bytes, &p).unwrap();
        assert_eq!(r.total_records().unwrap(), 0);
        assert_eq!(r.time_span().unwrap(), None);
        assert_eq!(r.intervals().count(), 0);
        assert!(r.read_frame_dir(NO_DIR).is_err());
    }

    #[test]
    fn merged_mask_round_trip_preserves_node() {
        let p = Profile::standard();
        let mut w = IntervalFileWriter::new(
            &p,
            MASK_MERGED,
            MERGED_NODE,
            &ThreadTable::new(),
            &[],
            FramePolicy::default(),
        );
        let mut iv = running(0, 5);
        iv.node = NodeId(7);
        w.push(&iv).unwrap();
        let bytes = w.finish();
        let r = IntervalFileReader::open(&bytes, &p).unwrap();
        let ivs: Vec<Interval> = r.intervals().map(|x| x.unwrap()).collect();
        assert_eq!(ivs[0].node, NodeId(7));
    }
}

#[cfg(test)]
mod api_completeness_tests {
    use super::*;
    use crate::profile::MASK_PER_NODE;
    use crate::record::IntervalType;
    use crate::state::StateCode;
    use ute_core::ids::{CpuId, LogicalThreadId};

    #[test]
    fn interval_at_steps_through_a_frame() {
        let p = Profile::standard();
        let mut w = IntervalFileWriter::new(
            &p,
            MASK_PER_NODE,
            0,
            &ThreadTable::new(),
            &[],
            FramePolicy::default(),
        );
        for i in 0..10u64 {
            w.push(&Interval::basic(
                IntervalType::complete(StateCode::RUNNING),
                i * 100,
                50,
                CpuId(0),
                NodeId(0),
                LogicalThreadId(0),
            ))
            .unwrap();
        }
        let bytes = w.finish();
        let r = IntervalFileReader::open(&bytes, &p).unwrap();
        let dir = r.read_frame_dir(NO_DIR).unwrap();
        let frame = dir.entries[0];
        // Walk the frame record by record via interval_at.
        let mut at = frame.offset;
        for i in 0..frame.nrecords as u64 {
            let (iv, next) = r.interval_at(at).unwrap();
            assert_eq!(iv.start, i * 100);
            assert!(next > at);
            at = next;
        }
        assert_eq!(at, frame.offset + frame.size);
        // A bogus offset fails, it does not panic.
        assert!(r.interval_at(bytes.len() as u64 + 5).is_err());
    }
}
