//! File-backed streaming access to interval files.
//!
//! [`crate::file::IntervalFileReader`] wants the whole file in memory;
//! that is fine for utilities that read everything anyway, but the whole
//! point of frames and frame directories (§2.3.3) is that a viewer can
//! work with files far larger than memory, touching only the directories
//! and the one frame it displays. [`FileIntervalReader`] does exactly
//! that over a [`std::fs::File`]: the header, thread table and marker
//! table are read once; every frame directory and frame is fetched with
//! a seek + bounded read.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

use ute_core::codec::ByteReader;
use ute_core::error::{Result, UteError};
use ute_core::ids::NodeId;

use crate::file::{HEADER_VERSION, MAGIC, MERGED_NODE};
use crate::frame::{FrameDirectory, FrameEntry, DIR_HEADER_LEN, FRAME_ENTRY_LEN, NO_DIR};
use crate::profile::Profile;
use crate::record::{read_record, Interval};
use crate::thread_table::ThreadTable;

/// Incremental reader over a [`File`] with the codec's vocabulary.
struct FileCursor {
    file: File,
}

impl FileCursor {
    fn read_at(&mut self, offset: u64, len: usize, what: &str) -> Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        self.file.read_exact(&mut buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                UteError::corrupt_at(format!("{what}: short read of {len} bytes"), offset)
            } else {
                UteError::Io(e)
            }
        })?;
        Ok(buf)
    }
}

/// The fixed header fields: (mask, node, thread table, marker table).
type ParsedHeader = (u32, u16, ThreadTable, Vec<(u32, String)>);

/// Streaming interval-file reader over an open file.
pub struct FileIntervalReader<'p> {
    cursor: FileCursor,
    profile: &'p Profile,
    /// Field selection mask of this file.
    pub mask: u32,
    /// Producing node ([`MERGED_NODE`] for merged files).
    pub node: u16,
    /// The thread table.
    pub threads: ThreadTable,
    /// Marker id → string pairs.
    pub markers: Vec<(u32, String)>,
    /// Offset of the first frame directory.
    pub first_dir: u64,
}

impl<'p> FileIntervalReader<'p> {
    /// Opens an interval file, reading only its header region.
    pub fn open(path: &Path, profile: &'p Profile) -> Result<FileIntervalReader<'p>> {
        use ute_core::error::PathContext;
        let file = File::open(path).in_file(path)?;
        let total = file.metadata().in_file(path)?.len();
        let mut cursor = FileCursor { file };
        // The header is variable-length (thread table + marker strings).
        // Read a generous prefix and parse it with the slice reader; grow
        // if it turns out to be longer.
        let mut prefix_len = 64 * 1024;
        loop {
            let len = prefix_len.min(total) as usize;
            let buf = cursor.read_at(0, len, "interval file header")?;
            let mut r = ByteReader::new(&buf);
            match Self::parse_header(&mut r) {
                Ok((mask, node, threads, markers)) => {
                    // first_dir pointer follows the marker table.
                    let first_dir = r.get_u64()?;
                    return Ok(FileIntervalReader {
                        cursor,
                        profile,
                        mask,
                        node,
                        threads,
                        markers,
                        first_dir,
                    });
                }
                Err(_) if (len as u64) < total => {
                    prefix_len *= 4; // header longer than the prefix: retry
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn parse_header(r: &mut ByteReader<'_>) -> Result<ParsedHeader> {
        if r.get_bytes(8)? != MAGIC {
            return Err(UteError::corrupt("interval file: bad magic"));
        }
        let _profile_version = r.get_u32()?;
        let header_version = r.get_u32()?;
        if header_version != HEADER_VERSION {
            return Err(UteError::corrupt(format!(
                "interval file: unsupported header version {header_version}"
            )));
        }
        let mask = r.get_u32()?;
        let node = r.get_u16()?;
        let threads = ThreadTable::decode(r)?;
        let nmarkers = r.get_u32()?;
        let cap = ute_core::codec::clamped_capacity(nmarkers as usize, 6, r.remaining());
        let mut markers = Vec::with_capacity(cap);
        for _ in 0..nmarkers {
            let id = r.get_u32()?;
            markers.push((id, r.get_str()?));
        }
        Ok((mask, node, threads, markers))
    }

    fn default_node(&self) -> NodeId {
        NodeId(if self.node == MERGED_NODE {
            0
        } else {
            self.node
        })
    }

    /// Reads the frame directory at `offset` ([`NO_DIR`] → the first)
    /// with two bounded reads: the fixed header, then the entries.
    pub fn read_frame_dir(&mut self, offset: u64) -> Result<FrameDirectory> {
        let at = if offset == NO_DIR {
            self.first_dir
        } else {
            offset
        };
        if at == NO_DIR {
            return Err(UteError::NotFound("interval file has no frames".into()));
        }
        let head = self
            .cursor
            .read_at(at, DIR_HEADER_LEN, "frame directory header")?;
        let mut r = ByteReader::new(&head);
        let size = r.get_u32()? as usize;
        let nframes = r.get_u32()? as usize;
        if size != DIR_HEADER_LEN + nframes * FRAME_ENTRY_LEN {
            return Err(UteError::corrupt_at("frame directory size mismatch", at));
        }
        let body = self.cursor.read_at(at, size, "frame directory")?;
        let mut r = ByteReader::new(&body);
        FrameDirectory::decode(&mut r)
    }

    /// Decodes one frame's records with a single bounded read.
    pub fn frame_intervals(&mut self, entry: &FrameEntry) -> Result<Vec<Interval>> {
        let buf = self
            .cursor
            .read_at(entry.offset, entry.size as usize, "frame")?;
        let mut r = ByteReader::new(&buf);
        let mut out = Vec::with_capacity(ute_core::codec::clamped_capacity(
            entry.nrecords as usize,
            2,
            buf.len(),
        ));
        for _ in 0..entry.nrecords {
            let body = read_record(&mut r)?;
            out.push(Interval::decode_body(
                self.profile,
                self.mask,
                body,
                self.default_node(),
            )?);
        }
        Ok(out)
    }

    /// Finds the frame containing (or next after) `t` by walking the
    /// directory chain — reading directories only.
    pub fn find_frame(&mut self, t: u64) -> Result<Option<FrameEntry>> {
        let mut at = self.first_dir;
        while at != NO_DIR {
            let dir = self.read_frame_dir(at)?;
            if let Some(e) = dir.find_frame(t) {
                return Ok(Some(*e));
            }
            at = dir.next;
        }
        Ok(None)
    }

    /// Total records, from directory metadata alone.
    pub fn total_records(&mut self) -> Result<u64> {
        let mut n = 0;
        let mut at = self.first_dir;
        while at != NO_DIR {
            let dir = self.read_frame_dir(at)?;
            n += dir.total_records();
            at = dir.next;
        }
        Ok(n)
    }

    /// Streams every record in order, frame by frame, calling `f` for
    /// each — the sequential `getInterval` loop without holding more than
    /// one frame in memory.
    pub fn for_each_interval(&mut self, mut f: impl FnMut(Interval)) -> Result<u64> {
        let mut n = 0;
        let mut at = self.first_dir;
        while at != NO_DIR {
            let dir = self.read_frame_dir(at)?;
            for entry in &dir.entries {
                for iv in self.frame_intervals(entry)? {
                    f(iv);
                    n += 1;
                }
            }
            at = dir.next;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::{FramePolicy, IntervalFileReader, IntervalFileWriter};
    use crate::profile::MASK_PER_NODE;
    use crate::record::IntervalType;
    use crate::state::StateCode;
    use ute_core::ids::{CpuId, LogicalThreadId};

    fn write_sample(path: &Path, n: u64) -> Profile {
        let p = Profile::standard();
        let mut w = IntervalFileWriter::new(
            &p,
            MASK_PER_NODE,
            2,
            &ThreadTable::new(),
            &[(1, "Phase".into())],
            FramePolicy::tiny(),
        );
        for i in 0..n {
            w.push(&Interval::basic(
                IntervalType::complete(StateCode::RUNNING),
                i * 10,
                8,
                CpuId(0),
                NodeId(2),
                LogicalThreadId(0),
            ))
            .unwrap();
        }
        std::fs::write(path, w.finish()).unwrap();
        p
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ute_fileio_{name}_{}.ivl", std::process::id()))
    }

    #[test]
    fn streaming_reader_agrees_with_in_memory_reader() {
        let path = tmp("agree");
        let profile = write_sample(&path, 123);
        let bytes = std::fs::read(&path).unwrap();
        let mem = IntervalFileReader::open(&bytes, &profile).unwrap();
        let mem_ivs: Vec<Interval> = mem.intervals().map(|x| x.unwrap()).collect();

        let mut f = FileIntervalReader::open(&path, &profile).unwrap();
        assert_eq!(f.mask, mem.mask);
        assert_eq!(f.node, mem.node);
        assert_eq!(f.markers, mem.markers);
        let mut streamed = Vec::new();
        let n = f.for_each_interval(|iv| streamed.push(iv)).unwrap();
        assert_eq!(n, 123);
        assert_eq!(streamed, mem_ivs);
        assert_eq!(f.total_records().unwrap(), 123);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn random_access_reads_one_frame() {
        let path = tmp("random");
        let profile = write_sample(&path, 200);
        let mut f = FileIntervalReader::open(&path, &profile).unwrap();
        let entry = f.find_frame(1_500).unwrap().unwrap();
        assert!(entry.contains_time(1_500));
        let ivs = f.frame_intervals(&entry).unwrap();
        assert_eq!(ivs.len(), entry.nrecords as usize);
        assert!(ivs.iter().any(|iv| iv.start <= 1_500 && 1_500 <= iv.end()));
        assert!(f.find_frame(10_000_000).unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_and_truncated_files_fail_cleanly() {
        let profile = Profile::standard();
        assert!(FileIntervalReader::open(Path::new("/nonexistent/x.ivl"), &profile).is_err());
        let path = tmp("trunc");
        write_sample(&path, 50);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let mut f = FileIntervalReader::open(&path, &profile).unwrap();
        // Streaming over the truncated tail errors rather than panicking.
        assert!(f.for_each_interval(|_| {}).is_err());
        std::fs::remove_file(&path).ok();
    }
}
