//! The thread table (§2.3.3).
//!
//! "The thread table consists of a number of thread entries. Each thread
//! entry contains the MPI task ID, process ID, system thread ID, node ID,
//! the logical thread ID, and a thread type. Each interval record has a
//! logical thread ID to identify the associated thread, thus helps reduce
//! the size of the interval file. Threads in a thread table are
//! partitioned into three categories: MPI threads, user-defined threads,
//! and system threads."

use std::collections::HashMap;

use ute_core::codec::{ByteReader, ByteWriter};
use ute_core::error::{Result, UteError};
use ute_core::ids::{
    LogicalThreadId, NodeId, Pid, SystemThreadId, TaskId, ThreadType, MAX_THREADS_PER_NODE,
};

/// One thread-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadEntry {
    /// The MPI task (rank) the thread belongs to; `u32::MAX` for system
    /// threads that belong to no task.
    pub task: TaskId,
    /// Owning process id.
    pub pid: Pid,
    /// Operating-system thread id.
    pub system_tid: SystemThreadId,
    /// The node the thread runs on.
    pub node: NodeId,
    /// Compact per-node id used by interval records.
    pub logical: LogicalThreadId,
    /// MPI / user / system category.
    pub ttype: ThreadType,
}

impl ThreadEntry {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.task.raw());
        w.put_u32(self.pid.raw());
        w.put_u64(self.system_tid.raw());
        w.put_u16(self.node.raw());
        w.put_u16(self.logical.raw());
        w.put_u8(self.ttype.to_u8());
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<ThreadEntry> {
        Ok(ThreadEntry {
            task: TaskId(r.get_u32()?),
            pid: Pid(r.get_u32()?),
            system_tid: SystemThreadId(r.get_u64()?),
            node: NodeId(r.get_u16()?),
            logical: LogicalThreadId(r.get_u16()?),
            ttype: {
                let b = r.get_u8()?;
                ThreadType::from_u8(b)
                    .ok_or_else(|| UteError::corrupt(format!("thread entry: bad type byte {b}")))?
            },
        })
    }
}

/// The thread table of an interval file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadTable {
    entries: Vec<ThreadEntry>,
    by_key: HashMap<(NodeId, LogicalThreadId), usize>,
}

impl ThreadTable {
    /// An empty table.
    pub fn new() -> ThreadTable {
        ThreadTable::default()
    }

    /// Registers a thread. Enforces the paper's 512-threads-per-node bound
    /// and uniqueness of (node, logical id).
    pub fn register(&mut self, entry: ThreadEntry) -> Result<()> {
        if entry.logical.raw() >= MAX_THREADS_PER_NODE {
            return Err(UteError::Invalid(format!(
                "logical thread id {} exceeds the {MAX_THREADS_PER_NODE}-per-node bound",
                entry.logical
            )));
        }
        let key = (entry.node, entry.logical);
        if self.by_key.contains_key(&key) {
            return Err(UteError::Invalid(format!(
                "duplicate thread (node {}, logical {})",
                entry.node, entry.logical
            )));
        }
        self.by_key.insert(key, self.entries.len());
        self.entries.push(entry);
        Ok(())
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[ThreadEntry] {
        &self.entries
    }

    /// Number of threads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a thread by (node, logical id).
    pub fn lookup(&self, node: NodeId, logical: LogicalThreadId) -> Option<&ThreadEntry> {
        self.by_key.get(&(node, logical)).map(|&i| &self.entries[i])
    }

    /// All threads of one category — "This provides a way to choose
    /// specific threads for merging" (§2.3.3).
    pub fn of_type(&self, ttype: ThreadType) -> impl Iterator<Item = &ThreadEntry> {
        self.entries.iter().filter(move |e| e.ttype == ttype)
    }

    /// Merges another table into this one (used by the merge utility);
    /// duplicate (node, logical) pairs are an error.
    pub fn absorb(&mut self, other: &ThreadTable) -> Result<()> {
        for e in &other.entries {
            self.register(*e)?;
        }
        Ok(())
    }

    /// Serializes: entry count then entries.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            e.encode(w);
        }
    }

    /// Deserializes.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<ThreadTable> {
        let n = r.get_u32()?;
        let mut t = ThreadTable::new();
        for _ in 0..n {
            t.register(ThreadEntry::decode(r)?)?;
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(node: u16, logical: u16, ttype: ThreadType) -> ThreadEntry {
        ThreadEntry {
            task: TaskId(node as u32 * 10 + logical as u32),
            pid: Pid(1000 + logical as u32),
            system_tid: SystemThreadId(77_000 + logical as u64),
            node: NodeId(node),
            logical: LogicalThreadId(logical),
            ttype,
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut t = ThreadTable::new();
        t.register(entry(0, 0, ThreadType::Mpi)).unwrap();
        t.register(entry(0, 1, ThreadType::User)).unwrap();
        t.register(entry(1, 0, ThreadType::System)).unwrap();
        assert_eq!(t.len(), 3);
        let e = t.lookup(NodeId(0), LogicalThreadId(1)).unwrap();
        assert_eq!(e.ttype, ThreadType::User);
        assert!(t.lookup(NodeId(2), LogicalThreadId(0)).is_none());
    }

    #[test]
    fn duplicate_rejected() {
        let mut t = ThreadTable::new();
        t.register(entry(0, 0, ThreadType::Mpi)).unwrap();
        assert!(t.register(entry(0, 0, ThreadType::User)).is_err());
    }

    #[test]
    fn per_node_bound_enforced() {
        let mut t = ThreadTable::new();
        assert!(t.register(entry(0, 511, ThreadType::User)).is_ok());
        assert!(t.register(entry(0, 512, ThreadType::User)).is_err());
    }

    #[test]
    fn categories() {
        let mut t = ThreadTable::new();
        t.register(entry(0, 0, ThreadType::Mpi)).unwrap();
        t.register(entry(0, 1, ThreadType::User)).unwrap();
        t.register(entry(0, 2, ThreadType::User)).unwrap();
        t.register(entry(0, 3, ThreadType::System)).unwrap();
        assert_eq!(t.of_type(ThreadType::User).count(), 2);
        assert_eq!(t.of_type(ThreadType::Mpi).count(), 1);
        assert_eq!(t.of_type(ThreadType::System).count(), 1);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut t = ThreadTable::new();
        for n in 0..3u16 {
            for l in 0..4u16 {
                let ty = match l {
                    0 => ThreadType::Mpi,
                    3 => ThreadType::System,
                    _ => ThreadType::User,
                };
                t.register(entry(n, l, ty)).unwrap();
            }
        }
        let mut w = ByteWriter::new();
        t.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = ThreadTable::decode(&mut r).unwrap();
        assert_eq!(back, t);
        assert!(r.is_empty());
    }

    #[test]
    fn absorb_merges_distinct_nodes() {
        let mut a = ThreadTable::new();
        a.register(entry(0, 0, ThreadType::Mpi)).unwrap();
        let mut b = ThreadTable::new();
        b.register(entry(1, 0, ThreadType::Mpi)).unwrap();
        a.absorb(&b).unwrap();
        assert_eq!(a.len(), 2);
        // Absorbing the same table again collides.
        assert!(a.absorb(&b).is_err());
    }

    #[test]
    fn corrupt_type_byte_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(1);
        entry(0, 0, ThreadType::Mpi).encode(&mut w);
        let mut bytes = w.into_bytes();
        let last = bytes.len() - 1;
        bytes[last] = 9; // invalid ThreadType
        let mut r = ByteReader::new(&bytes);
        assert!(ThreadTable::decode(&mut r).is_err());
    }
}
