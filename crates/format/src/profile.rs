//! The description profile (§2.3.1, Figure 3).
//!
//! "A description profile file contains a header followed by interval
//! record specifications. The header includes a version ID, the number of
//! interval record types, and arrays of strings for record and field
//! names. ... Each field in a record is described through the use of one
//! field description word, including a vector bit, a counter length, a
//! data type, an element length, a field selection attribute, and a field
//! name index."
//!
//! The field-selection attribute is a bit index into the *field selection
//! mask* stored in each interval file's header; a field exists in a given
//! file only when its bit is set. "This design accommodates the case that
//! a given record type may have a different number of fields in individual
//! and merged interval files" — per-node files omit the `node` field (the
//! whole file belongs to one node), the merged file includes it.

use std::collections::BTreeMap;

use ute_core::bebits::BeBits;
use ute_core::codec::{ByteReader, ByteWriter};
use ute_core::error::{Result, UteError};
use ute_core::event::MpiOp;

use crate::datatype::FieldType;
use crate::record::IntervalType;
use crate::state::StateCode;
use crate::value::{decode_value, Value};

/// Magic bytes opening a profile file.
pub const MAGIC: &[u8; 8] = b"UTEPRF\0\0";

/// Version of the standard profile built by [`Profile::standard`].
pub const STANDARD_VERSION: u32 = 1;

/// Selection bit shared by every field that exists in all interval files.
pub const SELECT_CORE: u8 = 0;
/// Selection bit of the `node` field (merged files only).
pub const SELECT_NODE: u8 = 1;

/// Field selection mask of a per-node interval file (no `node` field).
pub const MASK_PER_NODE: u32 = 1 << SELECT_CORE;
/// Field selection mask of a merged interval file.
pub const MASK_MERGED: u32 = (1 << SELECT_CORE) | (1 << SELECT_NODE);

/// One field description, packed on disk into a single 32-bit word:
///
/// ```text
/// bit 31      vector bit
/// bits 30-29  counter length code (0→1, 1→2, 2→4 bytes)
/// bits 28-25  data type code
/// bits 24-17  element length in bytes
/// bits 16-12  field selection attribute (bit index into the mask)
/// bits 11-0   field name index
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSpec {
    /// Index into the profile's field-name array.
    pub name_idx: u16,
    /// Element data type.
    pub ftype: FieldType,
    /// Whether the field is a vector (counter + elements).
    pub vector: bool,
    /// Vector counter length in bytes (1, 2, or 4); meaningless if scalar.
    pub counter_len: u8,
    /// Which bit of the file's selection mask gates this field.
    pub select_bit: u8,
}

impl FieldSpec {
    /// A scalar field gated by [`SELECT_CORE`].
    pub fn scalar(name_idx: u16, ftype: FieldType) -> FieldSpec {
        FieldSpec {
            name_idx,
            ftype,
            vector: false,
            counter_len: 0,
            select_bit: SELECT_CORE,
        }
    }

    /// A vector field gated by [`SELECT_CORE`].
    pub fn vector(name_idx: u16, ftype: FieldType, counter_len: u8) -> FieldSpec {
        FieldSpec {
            name_idx,
            ftype,
            vector: true,
            counter_len,
            select_bit: SELECT_CORE,
        }
    }

    /// Packs into the on-disk field description word.
    pub fn to_word(self) -> u32 {
        let counter_code: u32 = match self.counter_len {
            0 | 1 => 0,
            2 => 1,
            4 => 2,
            other => panic!("unsupported counter length {other}"),
        };
        ((self.vector as u32) << 31)
            | (counter_code << 29)
            | ((self.ftype.code() as u32) << 25)
            | ((self.ftype.elem_len() as u32) << 17)
            | (((self.select_bit & 0x1f) as u32) << 12)
            | (self.name_idx as u32 & 0x0fff)
    }

    /// Unpacks the on-disk field description word.
    pub fn from_word(word: u32) -> Result<FieldSpec> {
        let vector = word >> 31 == 1;
        let counter_len = match (word >> 29) & 0b11 {
            0 => 1,
            1 => 2,
            2 => 4,
            _ => return Err(UteError::corrupt("field word: bad counter length code")),
        };
        let ftype = FieldType::from_code(((word >> 25) & 0x0f) as u8)?;
        let elem_len = ((word >> 17) & 0xff) as u8;
        if elem_len != ftype.elem_len() {
            return Err(UteError::corrupt(format!(
                "field word: element length {elem_len} inconsistent with type {ftype:?}"
            )));
        }
        Ok(FieldSpec {
            name_idx: (word & 0x0fff) as u16,
            ftype,
            vector,
            counter_len: if vector { counter_len } else { 0 },
            select_bit: ((word >> 12) & 0x1f) as u8,
        })
    }

    /// Whether this field exists in a file with the given selection mask.
    pub fn present_in(self, mask: u32) -> bool {
        mask & (1 << self.select_bit) != 0
    }
}

/// One interval-record specification (Figure 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordSpec {
    /// The interval type this spec describes.
    pub itype: IntervalType,
    /// Index into the profile's record-name array.
    pub name_idx: u16,
    /// Field descriptions, in on-disk order.
    pub fields: Vec<FieldSpec>,
}

/// A parsed description profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Version ID, cross-checked against interval-file headers.
    pub version: u32,
    /// Record name array.
    pub record_names: Vec<String>,
    /// Field name array.
    pub field_names: Vec<String>,
    /// Record specifications keyed by packed interval type.
    pub specs: BTreeMap<u32, RecordSpec>,
}

impl Profile {
    /// An empty profile with the given version.
    pub fn new(version: u32) -> Profile {
        Profile {
            version,
            record_names: Vec::new(),
            field_names: Vec::new(),
            specs: BTreeMap::new(),
        }
    }

    /// Interns a field name, returning its index.
    pub fn intern_field_name(&mut self, name: &str) -> u16 {
        if let Some(i) = self.field_names.iter().position(|n| n == name) {
            return i as u16;
        }
        assert!(
            self.field_names.len() < 0x1000,
            "field name space exhausted"
        );
        self.field_names.push(name.to_string());
        (self.field_names.len() - 1) as u16
    }

    /// Interns a record name, returning its index.
    pub fn intern_record_name(&mut self, name: &str) -> u16 {
        if let Some(i) = self.record_names.iter().position(|n| n == name) {
            return i as u16;
        }
        self.record_names.push(name.to_string());
        (self.record_names.len() - 1) as u16
    }

    /// Looks up a field name's index.
    pub fn field_name_index(&self, name: &str) -> Option<u16> {
        self.field_names
            .iter()
            .position(|n| n == name)
            .map(|i| i as u16)
    }

    /// Registers a record spec.
    pub fn add_record(&mut self, spec: RecordSpec) {
        self.specs.insert(spec.itype.to_u32(), spec);
    }

    /// The spec for an interval type, if defined.
    pub fn spec_for(&self, itype: IntervalType) -> Option<&RecordSpec> {
        self.specs.get(&itype.to_u32())
    }

    /// Number of record types defined.
    pub fn record_type_count(&self) -> usize {
        self.specs.len()
    }

    /// The record name of an interval type.
    pub fn record_name(&self, itype: IntervalType) -> Option<&str> {
        self.spec_for(itype)
            .and_then(|s| self.record_names.get(s.name_idx as usize))
            .map(|s| s.as_str())
    }

    /// Reads a named scalar item straight out of an encoded record body —
    /// the Rust form of the paper's `getItemByName` (§2.4). Returns
    /// `Ok(None)` when the record's type has no such field or the field is
    /// masked out of this file.
    pub fn get_item_by_name(&self, mask: u32, body: &[u8], name: &str) -> Result<Option<Value>> {
        let Some(target) = self.field_name_index(name) else {
            return Ok(None);
        };
        let mut r = ByteReader::new(body);
        let itype_raw = r.get_u32()?;
        let itype = IntervalType::from_u32(itype_raw)?;
        let Some(spec) = self.spec_for(itype) else {
            return Err(UteError::NotFound(format!(
                "record spec for interval type {itype_raw:#010x}"
            )));
        };
        // The leading u32 we just consumed *is* the first field (recType);
        // report it directly if asked for.
        let mut fields = spec.fields.iter();
        match fields.next() {
            Some(first) if first.present_in(mask) => {
                if first.name_idx == target {
                    return Ok(Some(Value::Uint(itype_raw as u64)));
                }
            }
            _ => {
                return Err(UteError::corrupt(
                    "record spec must begin with a present recType field",
                ))
            }
        }
        for f in fields {
            if !f.present_in(mask) {
                continue;
            }
            let v = decode_value(&mut r, f.ftype, f.vector, f.counter_len)?;
            if f.name_idx == target {
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    /// Whether the named field of an interval type is a vector field —
    /// §2.4's "to determine if a field is a vector field".
    pub fn field_is_vector(&self, itype: IntervalType, name: &str) -> Option<bool> {
        let idx = self.field_name_index(name)?;
        self.spec_for(itype)?
            .fields
            .iter()
            .find(|f| f.name_idx == idx)
            .map(|f| f.vector)
    }

    /// Reads a character-vector field straight off a record body as a
    /// string — §2.4's "to get a vector field such as a character string".
    pub fn get_string_by_name(&self, mask: u32, body: &[u8], name: &str) -> Result<Option<String>> {
        Ok(self
            .get_item_by_name(mask, body, name)?
            .and_then(|v| v.as_str().map(str::to_string)))
    }

    /// Serializes the profile file.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC);
        w.put_u32(self.version);
        w.put_u16(self.record_names.len() as u16);
        for n in &self.record_names {
            w.put_str(n);
        }
        w.put_u16(self.field_names.len() as u16);
        for n in &self.field_names {
            w.put_str(n);
        }
        w.put_u32(self.specs.len() as u32);
        for spec in self.specs.values() {
            // Figure 3 layout: record type (4), num fields (1),
            // record name index (2), reserved (1), field words (4 each).
            w.put_u32(spec.itype.to_u32());
            w.put_u8(spec.fields.len() as u8);
            w.put_u16(spec.name_idx);
            w.put_u8(0);
            for f in &spec.fields {
                w.put_u32(f.to_word());
            }
        }
        w.into_bytes()
    }

    /// Parses a profile file.
    pub fn from_bytes(data: &[u8]) -> Result<Profile> {
        let mut r = ByteReader::new(data);
        if r.get_bytes(8)? != MAGIC {
            return Err(UteError::corrupt("profile file: bad magic"));
        }
        let version = r.get_u32()?;
        let mut p = Profile::new(version);
        let nrec = r.get_u16()?;
        for _ in 0..nrec {
            p.record_names.push(r.get_str()?);
        }
        let nfld = r.get_u16()?;
        for _ in 0..nfld {
            p.field_names.push(r.get_str()?);
        }
        let nspec = r.get_u32()?;
        for _ in 0..nspec {
            let itype = IntervalType::from_u32(r.get_u32()?)?;
            let nfields = r.get_u8()?;
            let name_idx = r.get_u16()?;
            r.skip(1)?; // reserved
            let mut fields = Vec::with_capacity(nfields as usize);
            for _ in 0..nfields {
                fields.push(FieldSpec::from_word(r.get_u32()?)?);
            }
            if name_idx as usize >= p.record_names.len() {
                return Err(UteError::corrupt("record spec: name index out of range"));
            }
            p.add_record(RecordSpec {
                itype,
                name_idx,
                fields,
            });
        }
        Ok(p)
    }

    /// Writes the profile to disk (conventionally `profile.ute`).
    pub fn write_to(&self, path: &std::path::Path) -> Result<()> {
        use ute_core::error::PathContext;
        std::fs::write(path, self.to_bytes()).in_file(path)
    }

    /// Reads a profile from disk.
    pub fn read_from(path: &std::path::Path) -> Result<Profile> {
        use ute_core::error::PathContext;
        let data = std::fs::read(path).in_file(path)?;
        Profile::from_bytes(&data).in_file(path)
    }

    /// Builds the standard UTE profile covering every state the tracing
    /// environment produces. All four bebits variants of a state share the
    /// same field layout.
    pub fn standard() -> Profile {
        let mut p = Profile::new(STANDARD_VERSION);
        // Intern common field names first so their indices are stable.
        let f_rectype = p.intern_field_name("recType");
        let f_start = p.intern_field_name("start");
        let f_dura = p.intern_field_name("dura");
        let f_cpu = p.intern_field_name("cpu");
        let f_node = p.intern_field_name("node");
        let f_thread = p.intern_field_name("thread");
        let f_rank = p.intern_field_name("rank");
        let f_peer = p.intern_field_name("peer");
        let f_tag = p.intern_field_name("tag");
        let f_sent = p.intern_field_name("msgSizeSent");
        let f_recvd = p.intern_field_name("msgSizeRecvd");
        let f_seq = p.intern_field_name("seq");
        let f_addr = p.intern_field_name("address");
        let f_addr_end = p.intern_field_name("addressEnd");
        let f_marker = p.intern_field_name("markerId");
        let f_gtime = p.intern_field_name("globalTime");
        let f_reqseqs = p.intern_field_name("reqSeqs");

        let common = |_p: &Profile| -> Vec<FieldSpec> {
            vec![
                FieldSpec::scalar(f_rectype, FieldType::U32),
                FieldSpec::scalar(f_start, FieldType::U64),
                FieldSpec::scalar(f_dura, FieldType::U64),
                FieldSpec::scalar(f_cpu, FieldType::U16),
                FieldSpec {
                    select_bit: SELECT_NODE,
                    ..FieldSpec::scalar(f_node, FieldType::U16)
                },
                FieldSpec::scalar(f_thread, FieldType::U16),
            ]
        };

        let register = |p: &mut Profile, state: StateCode, extras: Vec<FieldSpec>| {
            let name_idx = p.intern_record_name(&state.name());
            for bebits in [
                BeBits::Complete,
                BeBits::Begin,
                BeBits::Continuation,
                BeBits::End,
            ] {
                let mut fields = common(p);
                fields.extend(extras.iter().copied());
                p.add_record(RecordSpec {
                    itype: IntervalType { state, bebits },
                    name_idx,
                    fields,
                });
            }
        };

        // Plain states with no extra fields. GAP is the salvage-mode
        // pseudo-record for a degraded node; it carries no payload.
        for s in [
            StateCode::RUNNING,
            StateCode::GAP,
            StateCode::SYSCALL,
            StateCode::PAGE_FAULT,
            StateCode::IO,
            StateCode::INTERRUPT,
        ] {
            register(&mut p, s, vec![]);
        }
        // User markers: marker id plus begin/end instruction addresses
        // ("A user marker interval may have up to two such fields",
        // §2.3.2).
        register(
            &mut p,
            StateCode::MARKER,
            vec![
                FieldSpec::scalar(f_marker, FieldType::U32),
                FieldSpec::scalar(f_addr, FieldType::U64),
                FieldSpec::scalar(f_addr_end, FieldType::U64),
            ],
        );
        // Global-clock records: the paired global timestamp.
        register(
            &mut p,
            StateCode::CLOCK,
            vec![FieldSpec::scalar(f_gtime, FieldType::U64)],
        );
        // MPI states.
        for op in MpiOp::ALL {
            let mut extras = vec![FieldSpec::scalar(f_rank, FieldType::U32)];
            if op.is_p2p_send() || op.is_p2p_recv() {
                extras.push(FieldSpec::scalar(f_peer, FieldType::U32));
                extras.push(FieldSpec::scalar(f_tag, FieldType::U32));
                if op.is_p2p_send() {
                    extras.push(FieldSpec::scalar(f_sent, FieldType::U64));
                }
                if op.is_p2p_recv() {
                    extras.push(FieldSpec::scalar(f_recvd, FieldType::U64));
                }
                extras.push(FieldSpec::scalar(f_seq, FieldType::U64));
            } else if op.is_collective() {
                extras.push(FieldSpec::scalar(f_peer, FieldType::U32));
                extras.push(FieldSpec::scalar(f_sent, FieldType::U64));
            }
            if op == MpiOp::Waitall {
                extras.push(FieldSpec::vector(f_reqseqs, FieldType::U64, 2));
            }
            extras.push(FieldSpec::scalar(f_addr, FieldType::U64));
            register(&mut p, StateCode::mpi(op), extras);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_word_round_trip() {
        let specs = [
            FieldSpec::scalar(0, FieldType::U32),
            FieldSpec::scalar(4095, FieldType::F64),
            FieldSpec::vector(7, FieldType::Char, 2),
            FieldSpec::vector(9, FieldType::U64, 4),
            FieldSpec {
                select_bit: 31,
                ..FieldSpec::scalar(1, FieldType::U16)
            },
        ];
        for s in specs {
            let back = FieldSpec::from_word(s.to_word()).unwrap();
            assert_eq!(back, s, "word {:#010x}", s.to_word());
        }
    }

    #[test]
    fn corrupt_field_words_rejected() {
        // Type code 7 is unknown.
        let word = 7u32 << 25 | (1 << 17);
        assert!(FieldSpec::from_word(word).is_err());
        // Element length inconsistent with type (U32 says 4).
        let s = FieldSpec::scalar(0, FieldType::U32);
        let word = s.to_word() & !(0xff << 17) | (2 << 17);
        assert!(FieldSpec::from_word(word).is_err());
    }

    #[test]
    fn standard_profile_structure() {
        let p = Profile::standard();
        // 8 basic states + 17 MPI ops, times 4 bebits variants.
        assert_eq!(p.record_type_count(), (8 + 17) * 4);
        // Figure 6's field names exist.
        for n in ["start", "node", "cpu", "dura", "thread", "recType"] {
            assert!(p.field_name_index(n).is_some(), "missing field {n}");
        }
        assert!(p.field_name_index("msgSizeSent").is_some());
        // The node field is gated by the NODE selection bit.
        let spec = p
            .spec_for(IntervalType {
                state: StateCode::RUNNING,
                bebits: BeBits::Complete,
            })
            .unwrap();
        let node_idx = p.field_name_index("node").unwrap();
        let node_field = spec.fields.iter().find(|f| f.name_idx == node_idx).unwrap();
        assert!(!node_field.present_in(MASK_PER_NODE));
        assert!(node_field.present_in(MASK_MERGED));
    }

    #[test]
    fn profile_file_round_trip() {
        let p = Profile::standard();
        let bytes = p.to_bytes();
        let back = Profile::from_bytes(&bytes).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn profile_rejects_bad_magic_and_truncation() {
        let mut bytes = Profile::standard().to_bytes();
        let ok_len = bytes.len();
        bytes[2] = b'X';
        assert!(Profile::from_bytes(&bytes).is_err());
        bytes[2] = b'E';
        assert!(Profile::from_bytes(&bytes[..ok_len - 3]).is_err());
    }

    #[test]
    fn record_name_lookup() {
        let p = Profile::standard();
        let itype = IntervalType {
            state: StateCode::mpi(MpiOp::Send),
            bebits: BeBits::Begin,
        };
        assert_eq!(p.record_name(itype), Some("MPI_Send"));
        // All four variants share the name.
        let itype2 = IntervalType {
            state: StateCode::mpi(MpiOp::Send),
            bebits: BeBits::End,
        };
        assert_eq!(p.record_name(itype2), Some("MPI_Send"));
    }

    #[test]
    fn spec_sizes_match_figure_3() {
        // Figure 3: record type (4) + num fields (1) + name index (2)
        // + reserved (1) + 4 bytes per field.
        let mut p = Profile::new(9);
        let f = p.intern_field_name("recType");
        let n = p.intern_record_name("X");
        let spec = RecordSpec {
            itype: IntervalType {
                state: StateCode(0x42),
                bebits: BeBits::Complete,
            },
            name_idx: n,
            fields: vec![
                FieldSpec::scalar(f, FieldType::U32),
                FieldSpec::scalar(f, FieldType::U64),
            ],
        };
        p.add_record(spec);
        let with = p.to_bytes().len();
        let empty = {
            let mut q = Profile::new(9);
            q.intern_field_name("recType");
            q.intern_record_name("X");
            q.to_bytes().len()
        };
        assert_eq!(with - empty, 4 + 1 + 2 + 1 + 2 * 4);
    }
}

#[cfg(test)]
mod api_completeness_tests {
    use super::*;
    use ute_core::ids::{CpuId, LogicalThreadId, NodeId};

    #[test]
    fn field_is_vector_distinguishes() {
        let p = Profile::standard();
        let waitall = IntervalType::complete(StateCode::mpi(MpiOp::Waitall));
        assert_eq!(p.field_is_vector(waitall, "reqSeqs"), Some(true));
        assert_eq!(p.field_is_vector(waitall, "rank"), Some(false));
        assert_eq!(p.field_is_vector(waitall, "nope"), None);
        let send = IntervalType::complete(StateCode::mpi(MpiOp::Send));
        assert_eq!(p.field_is_vector(send, "reqSeqs"), None);
    }

    #[test]
    fn get_string_by_name_reads_char_vectors() {
        // Build a one-off profile with a string field to exercise the
        // char-vector path end to end.
        let mut p = Profile::new(7);
        let f_rectype = p.intern_field_name("recType");
        let f_label = p.intern_field_name("label");
        let n = p.intern_record_name("Tagged");
        let itype = IntervalType {
            state: StateCode(0x60),
            bebits: ute_core::bebits::BeBits::Complete,
        };
        p.add_record(RecordSpec {
            itype,
            name_idx: n,
            fields: vec![
                FieldSpec::scalar(f_rectype, FieldType::U32),
                FieldSpec::vector(f_label, FieldType::Char, 2),
            ],
        });
        let iv =
            crate::record::Interval::basic(itype, 0, 0, CpuId(0), NodeId(0), LogicalThreadId(0))
                .with_extra(&p, "label", Value::Str("hello world".into()));
        let body = iv.encode_body(&p, MASK_PER_NODE).unwrap();
        assert_eq!(
            p.get_string_by_name(MASK_PER_NODE, &body, "label").unwrap(),
            Some("hello world".to_string())
        );
        assert_eq!(
            p.get_string_by_name(MASK_PER_NODE, &body, "recType")
                .unwrap(),
            None
        );
    }
}
