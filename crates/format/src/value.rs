//! Runtime values of interval-record fields.
//!
//! A field is either a single element or "a vector field with a vector
//! counter followed by the data elements of the same type and size"
//! (§2.3.2). [`Value`] is the decoded in-memory form; encoding and decoding
//! are driven by the owning [`crate::profile::FieldSpec`].

use ute_core::codec::{ByteReader, ByteWriter};
use ute_core::error::{Result, UteError};

use crate::datatype::FieldType;

/// A decoded field value.
///
/// The vector variants box their payloads so a `Value` is 24 bytes
/// instead of 32: values travel by the hundred-thousand inside
/// [`crate::record::Interval`] through the reorder buffer and the k-way
/// merge, where element size is memory traffic. Scalars — the
/// overwhelming majority — never touch the heap either way.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Any unsigned scalar (U8/U16/U32/U64), widened.
    Uint(u64),
    /// Signed 64-bit scalar.
    Int(i64),
    /// Floating-point scalar.
    Float(f64),
    /// A `Char` vector decoded as UTF-8 text.
    Str(Box<str>),
    /// A vector of unsigned scalars, widened.
    UintVec(Box<[u64]>),
    /// A vector of floats.
    FloatVec(Box<[f64]>),
}

impl Value {
    /// The value as an unsigned integer, if it is one.
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            Value::Uint(v) => Some(*v),
            Value::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, widening unsigned when it fits.
    /// Mirrors the paper's `getItemByName` returning a `long long`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Uint(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a float (ints convert).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Uint(v) => Some(*v as f64),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as text, if it is a string field.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is a vector value.
    pub fn is_vector(&self) -> bool {
        matches!(self, Value::Str(_) | Value::UintVec(_) | Value::FloatVec(_))
    }
}

fn write_counter(w: &mut ByteWriter, counter_len: u8, n: usize) -> Result<()> {
    match counter_len {
        1 => {
            if n > u8::MAX as usize {
                return Err(UteError::Invalid(format!(
                    "vector of {n} overflows u8 counter"
                )));
            }
            w.put_u8(n as u8);
        }
        2 => {
            if n > u16::MAX as usize {
                return Err(UteError::Invalid(format!(
                    "vector of {n} overflows u16 counter"
                )));
            }
            w.put_u16(n as u16);
        }
        4 => w.put_u32(n as u32),
        other => {
            return Err(UteError::Invalid(format!(
                "unsupported vector counter length {other}"
            )))
        }
    }
    Ok(())
}

fn read_counter(r: &mut ByteReader<'_>, counter_len: u8) -> Result<usize> {
    Ok(match counter_len {
        1 => r.get_u8()? as usize,
        2 => r.get_u16()? as usize,
        4 => r.get_u32()? as usize,
        other => {
            return Err(UteError::corrupt(format!(
                "unsupported vector counter length {other}"
            )))
        }
    })
}

fn write_scalar(w: &mut ByteWriter, ftype: FieldType, v: &Value) -> Result<()> {
    match (ftype, v) {
        (FieldType::U8, Value::Uint(x)) => w.put_u8(*x as u8),
        (FieldType::U16, Value::Uint(x)) => w.put_u16(*x as u16),
        (FieldType::U32, Value::Uint(x)) => w.put_u32(*x as u32),
        (FieldType::U64, Value::Uint(x)) => w.put_u64(*x),
        (FieldType::I64, Value::Int(x)) => w.put_i64(*x),
        (FieldType::F64, Value::Float(x)) => w.put_f64(*x),
        (FieldType::Char, Value::Uint(x)) => w.put_u8(*x as u8),
        (t, v) => {
            return Err(UteError::Invalid(format!(
                "value {v:?} does not fit field type {t:?}"
            )))
        }
    }
    Ok(())
}

fn read_scalar(r: &mut ByteReader<'_>, ftype: FieldType) -> Result<Value> {
    Ok(match ftype {
        FieldType::U8 | FieldType::Char => Value::Uint(r.get_u8()? as u64),
        FieldType::U16 => Value::Uint(r.get_u16()? as u64),
        FieldType::U32 => Value::Uint(r.get_u32()? as u64),
        FieldType::U64 => Value::Uint(r.get_u64()?),
        FieldType::I64 => Value::Int(r.get_i64()?),
        FieldType::F64 => Value::Float(r.get_f64()?),
    })
}

/// Encodes a value under a field's (type, vector, counter) description.
pub fn encode_value(
    w: &mut ByteWriter,
    ftype: FieldType,
    vector: bool,
    counter_len: u8,
    v: &Value,
) -> Result<()> {
    if !vector {
        return write_scalar(w, ftype, v);
    }
    match (ftype, v) {
        (FieldType::Char, Value::Str(s)) => {
            write_counter(w, counter_len, s.len())?;
            w.put_bytes(s.as_bytes());
        }
        (FieldType::F64, Value::FloatVec(xs)) => {
            write_counter(w, counter_len, xs.len())?;
            for x in xs {
                w.put_f64(*x);
            }
        }
        (t, Value::UintVec(xs)) if !matches!(t, FieldType::F64 | FieldType::I64) => {
            write_counter(w, counter_len, xs.len())?;
            for x in xs {
                write_scalar(w, t, &Value::Uint(*x))?;
            }
        }
        (t, v) => {
            return Err(UteError::Invalid(format!(
                "vector value {v:?} does not fit field type {t:?}"
            )))
        }
    }
    Ok(())
}

/// Decodes a value under a field's (type, vector, counter) description.
pub fn decode_value(
    r: &mut ByteReader<'_>,
    ftype: FieldType,
    vector: bool,
    counter_len: u8,
) -> Result<Value> {
    if !vector {
        return read_scalar(r, ftype);
    }
    let n = read_counter(r, counter_len)?;
    match ftype {
        FieldType::Char => {
            let pos = r.pos();
            let bytes = r.get_bytes(n)?;
            let s = String::from_utf8(bytes.to_vec())
                .map_err(|_| UteError::corrupt_at("char vector: invalid utf-8", pos))?;
            Ok(Value::Str(s.into()))
        }
        FieldType::F64 => {
            let mut xs = Vec::with_capacity(ute_core::codec::clamped_capacity(n, 8, r.remaining()));
            for _ in 0..n {
                xs.push(r.get_f64()?);
            }
            Ok(Value::FloatVec(xs.into()))
        }
        t => {
            let mut xs = Vec::with_capacity(ute_core::codec::clamped_capacity(
                n,
                t.elem_len() as usize,
                r.remaining(),
            ));
            for _ in 0..n {
                match read_scalar(r, t)? {
                    Value::Uint(x) => xs.push(x),
                    other => {
                        return Err(UteError::corrupt(format!(
                            "unexpected element {other:?} in uint vector"
                        )))
                    }
                }
            }
            Ok(Value::UintVec(xs.into()))
        }
    }
}

/// Encoded size of a value under a field description, used by the writer
/// to size record-length prefixes.
pub fn encoded_len(ftype: FieldType, vector: bool, counter_len: u8, v: &Value) -> usize {
    if !vector {
        return ftype.elem_len() as usize;
    }
    let n = match v {
        Value::Str(s) => s.len(),
        Value::UintVec(xs) => xs.len(),
        Value::FloatVec(xs) => xs.len(),
        _ => 1,
    };
    counter_len as usize + n * ftype.elem_len() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(ftype: FieldType, vector: bool, counter_len: u8, v: Value) {
        let mut w = ByteWriter::new();
        encode_value(&mut w, ftype, vector, counter_len, &v).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(
            bytes.len(),
            encoded_len(ftype, vector, counter_len, &v),
            "length mismatch for {v:?}"
        );
        let mut r = ByteReader::new(&bytes);
        let back = decode_value(&mut r, ftype, vector, counter_len).unwrap();
        assert_eq!(back, v);
        assert!(r.is_empty());
    }

    #[test]
    fn scalar_round_trips() {
        round_trip(FieldType::U8, false, 0, Value::Uint(200));
        round_trip(FieldType::U16, false, 0, Value::Uint(65000));
        round_trip(FieldType::U32, false, 0, Value::Uint(4_000_000_000));
        round_trip(FieldType::U64, false, 0, Value::Uint(u64::MAX));
        round_trip(FieldType::I64, false, 0, Value::Int(-123456789));
        round_trip(FieldType::F64, false, 0, Value::Float(3.5));
    }

    #[test]
    fn vector_round_trips() {
        round_trip(FieldType::Char, true, 2, Value::Str("msgSizeSent".into()));
        round_trip(
            FieldType::U64,
            true,
            1,
            Value::UintVec(vec![1, 2, 3].into()),
        );
        round_trip(FieldType::U16, true, 4, Value::UintVec(vec![9; 100].into()));
        round_trip(
            FieldType::F64,
            true,
            2,
            Value::FloatVec(vec![1.5, -2.5].into()),
        );
        round_trip(FieldType::U32, true, 1, Value::UintVec(Vec::new().into()));
    }

    #[test]
    fn counter_overflow_rejected() {
        let mut w = ByteWriter::new();
        let big = Value::UintVec(vec![0; 300].into());
        assert!(encode_value(&mut w, FieldType::U8, true, 1, &big).is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut w = ByteWriter::new();
        assert!(encode_value(&mut w, FieldType::U32, false, 0, &Value::Float(1.0)).is_err());
        assert!(encode_value(&mut w, FieldType::F64, true, 2, &Value::Str("x".into())).is_err());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Uint(7).as_int(), Some(7));
        assert_eq!(Value::Uint(u64::MAX).as_int(), None);
        assert_eq!(Value::Int(-1).as_uint(), None);
        assert_eq!(Value::Int(5).as_uint(), Some(5));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Uint(2).as_float(), Some(2.0));
        assert_eq!(Value::Str("a".into()).as_str(), Some("a"));
        assert!(Value::Str("a".into()).is_vector());
        assert!(!Value::Uint(0).is_vector());
    }
}
