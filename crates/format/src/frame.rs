//! Frames and frame directories (§2.3.3, Figure 4).
//!
//! "An interval file has multiple frame directories so that utilities and
//! tools can jump into a specific frame without reading or processing any
//! record ahead of the frame. The header of a frame directory contains the
//! size of the frame directory, the number of frames in the frame
//! directory, and the starting offsets of the previous and next frame
//! directories. A frame directory has a number of frame entries. Each
//! entry contains a frame pointer indicating the starting offset of the
//! frame, the size of the frame, the number of records in the frame, and
//! the start time and end time of the frame."

use ute_core::codec::{ByteReader, ByteWriter};
use ute_core::error::{Result, UteError};

/// Sentinel offset meaning "no previous/next directory".
pub const NO_DIR: u64 = 0;

/// Encoded size of a directory header: size (4) + nframes (4) + prev (8)
/// + next (8).
pub const DIR_HEADER_LEN: usize = 24;

/// Encoded size of one frame entry.
pub const FRAME_ENTRY_LEN: usize = 36;

/// One frame entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameEntry {
    /// Absolute file offset of the frame's first record.
    pub offset: u64,
    /// Frame size in bytes.
    pub size: u64,
    /// Number of records in the frame.
    pub nrecords: u32,
    /// Earliest record start time in the frame, in ticks.
    pub start_time: u64,
    /// Latest record end time in the frame, in ticks.
    pub end_time: u64,
}

impl FrameEntry {
    /// Whether a timestamp falls within this frame's time span.
    pub fn contains_time(&self, t: u64) -> bool {
        self.start_time <= t && t <= self.end_time
    }

    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.offset);
        w.put_u64(self.size);
        w.put_u32(self.nrecords);
        w.put_u64(self.start_time);
        w.put_u64(self.end_time);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<FrameEntry> {
        Ok(FrameEntry {
            offset: r.get_u64()?,
            size: r.get_u64()?,
            nrecords: r.get_u32()?,
            start_time: r.get_u64()?,
            end_time: r.get_u64()?,
        })
    }
}

/// A decoded frame directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameDirectory {
    /// Absolute offset of the previous directory ([`NO_DIR`] if first).
    pub prev: u64,
    /// Absolute offset of the next directory ([`NO_DIR`] if last).
    pub next: u64,
    /// The frames this directory indexes, in time order.
    pub entries: Vec<FrameEntry>,
}

impl FrameDirectory {
    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        DIR_HEADER_LEN + self.entries.len() * FRAME_ENTRY_LEN
    }

    /// Serializes the directory.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.encoded_len() as u32);
        w.put_u32(self.entries.len() as u32);
        w.put_u64(self.prev);
        w.put_u64(self.next);
        for e in &self.entries {
            e.encode(w);
        }
    }

    /// Byte offset of the `next` pointer within an encoded directory,
    /// used by the writer to back-patch the chain.
    pub const NEXT_FIELD_OFFSET: u64 = 16;

    /// Deserializes a directory.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<FrameDirectory> {
        let at = r.pos();
        let size = r.get_u32()? as usize;
        let nframes = r.get_u32()? as usize;
        if size != DIR_HEADER_LEN + nframes * FRAME_ENTRY_LEN {
            return Err(UteError::corrupt_at(
                format!("frame directory: size {size} inconsistent with {nframes} frames"),
                at,
            ));
        }
        if r.remaining() < nframes * FRAME_ENTRY_LEN {
            return Err(UteError::corrupt_at(
                format!("frame directory: {nframes} entries exceed remaining bytes"),
                at,
            ));
        }
        let prev = r.get_u64()?;
        let next = r.get_u64()?;
        let mut entries = Vec::with_capacity(nframes);
        for _ in 0..nframes {
            entries.push(FrameEntry::decode(r)?);
        }
        Ok(FrameDirectory {
            prev,
            next,
            entries,
        })
    }

    /// Finds the frame whose time span contains `t`, if any; otherwise the
    /// first frame starting after `t` (so lookups between frames land on
    /// the next activity). `None` if `t` is past every frame here.
    pub fn find_frame(&self, t: u64) -> Option<&FrameEntry> {
        // Entries are time-ordered: binary search on end_time.
        let i = self.entries.partition_point(|e| e.end_time < t);
        self.entries.get(i)
    }

    /// Total records across this directory's frames.
    pub fn total_records(&self) -> u64 {
        self.entries.iter().map(|e| e.nrecords as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> FrameDirectory {
        FrameDirectory {
            prev: NO_DIR,
            next: 4096,
            entries: vec![
                FrameEntry {
                    offset: 100,
                    size: 500,
                    nrecords: 10,
                    start_time: 0,
                    end_time: 99,
                },
                FrameEntry {
                    offset: 600,
                    size: 700,
                    nrecords: 14,
                    start_time: 100,
                    end_time: 250,
                },
                FrameEntry {
                    offset: 1300,
                    size: 300,
                    nrecords: 6,
                    start_time: 300,
                    end_time: 420,
                },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let d = dir();
        let mut w = ByteWriter::new();
        d.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), d.encoded_len());
        let mut r = ByteReader::new(&bytes);
        assert_eq!(FrameDirectory::decode(&mut r).unwrap(), d);
    }

    #[test]
    fn inconsistent_size_rejected() {
        let d = dir();
        let mut w = ByteWriter::new();
        d.encode(&mut w);
        let mut bytes = w.into_bytes();
        bytes[0] = bytes[0].wrapping_add(1); // corrupt size
        let mut r = ByteReader::new(&bytes);
        assert!(FrameDirectory::decode(&mut r).is_err());
    }

    #[test]
    fn find_frame_by_time() {
        let d = dir();
        assert_eq!(d.find_frame(0).unwrap().offset, 100);
        assert_eq!(d.find_frame(99).unwrap().offset, 100);
        assert_eq!(d.find_frame(150).unwrap().offset, 600);
        // Gap between 250 and 300 resolves to the following frame.
        assert_eq!(d.find_frame(275).unwrap().offset, 1300);
        assert_eq!(d.find_frame(420).unwrap().offset, 1300);
        assert!(d.find_frame(421).is_none());
    }

    #[test]
    fn totals() {
        assert_eq!(dir().total_records(), 30);
    }

    #[test]
    fn next_field_offset_is_where_next_lives() {
        let mut d = dir();
        let mut w = ByteWriter::new();
        d.encode(&mut w);
        // Patch next via the documented offset and re-decode.
        w.patch_u64(FrameDirectory::NEXT_FIELD_OFFSET, 9999);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = FrameDirectory::decode(&mut r).unwrap();
        d.next = 9999;
        assert_eq!(back, d);
    }
}
