//! Interval records (§2.3.2).
//!
//! "An interval record includes a number of common fields: record type,
//! start time, duration, processor ID, node ID, and logical thread ID."
//! Additional fields per record type (MPI arguments, marker ids, the
//! global timestamp of clock records) are defined by the profile.
//!
//! On disk, "each interval record is associated with a one-byte record
//! length. A zero length indicates a record with more than 255 bytes. In
//! such a case, the actual record length is stored in the next two bytes.
//! Thus, a program reader can always find the next interval record without
//! examining the current record in detail."

use ute_core::bebits::BeBits;
use ute_core::codec::{ByteReader, ByteWriter};
use ute_core::error::{Result, UteError};
use ute_core::ids::{CpuId, LogicalThreadId, NodeId};

use crate::profile::Profile;
use crate::state::StateCode;
use crate::value::{decode_value, encode_value, encoded_len, Value};

/// An interval type: "the event type and two bits called bebits" (§2.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntervalType {
    /// The state this interval belongs to.
    pub state: StateCode,
    /// Whether the record is a complete interval or a begin /
    /// continuation / end piece.
    pub bebits: BeBits,
}

impl IntervalType {
    /// A complete (uninterrupted) interval of a state.
    pub fn complete(state: StateCode) -> IntervalType {
        IntervalType {
            state,
            bebits: BeBits::Complete,
        }
    }

    /// Packs to the on-disk 32-bit record type: state code shifted left
    /// over the two bebits.
    pub fn to_u32(self) -> u32 {
        ((self.state.0 as u32) << 2) | self.bebits.to_bits() as u32
    }

    /// Unpacks the on-disk record type.
    pub fn from_u32(v: u32) -> Result<IntervalType> {
        if v >> 18 != 0 {
            return Err(UteError::corrupt(format!(
                "interval type {v:#010x} exceeds 16-bit state space"
            )));
        }
        let bebits = BeBits::from_bits((v & 0b11) as u8).ok_or_else(|| {
            UteError::corrupt(format!("interval type {v:#010x} has invalid bebits"))
        })?;
        Ok(IntervalType {
            state: StateCode((v >> 2) as u16),
            bebits,
        })
    }
}

/// A decoded interval record.
#[derive(Debug, Clone, PartialEq)]
pub struct Interval {
    /// State + bebits.
    pub itype: IntervalType,
    /// Start timestamp in ticks. Local ticks in per-node files, global
    /// ticks after merging.
    pub start: u64,
    /// Duration in ticks (same axis as `start`).
    pub duration: u64,
    /// Processor the thread was dispatched on during this piece.
    pub cpu: CpuId,
    /// Producing node. In per-node files this field is masked out on disk
    /// and filled in by the reader from the file header.
    pub node: NodeId,
    /// Logical thread id within the node.
    pub thread: LogicalThreadId,
    /// Extra fields in profile order: (field name index, value).
    ///
    /// Kept on the heap, exact-sized by the plan decoder: an earlier
    /// revision held six entries inline, which removed the per-record
    /// allocation but grew `Interval` to 304 bytes — and the differential
    /// bench showed the k-way merge and reorder buffer paying ~40% more
    /// wall time moving the fat struct than the allocation ever cost.
    /// `Interval` must stay small; the merge path copies it constantly.
    pub extras: Extras,
}

/// The extras container: `(field name index, value)` pairs.
pub type Extras = Vec<(u16, Value)>;

impl Interval {
    /// A record with no extra fields.
    pub fn basic(
        itype: IntervalType,
        start: u64,
        duration: u64,
        cpu: CpuId,
        node: NodeId,
        thread: LogicalThreadId,
    ) -> Interval {
        Interval {
            itype,
            start,
            duration,
            cpu,
            node,
            thread,
            extras: Extras::new(),
        }
    }

    /// End timestamp (`start + duration`). Records in an interval file are
    /// ordered by this (§3.1).
    #[inline]
    pub fn end(&self) -> u64 {
        // Saturating: a corrupt record decoded in salvage mode must not
        // overflow here before validation can reject it.
        self.start.saturating_add(self.duration)
    }

    /// Adds an extra field by name, interning through the profile.
    ///
    /// Panics when the field is unknown — convenient for tests and
    /// builders over [`Profile::standard`]. Production paths handling
    /// untrusted profiles should use [`Interval::try_with_extra`].
    pub fn with_extra(self, profile: &Profile, name: &str, v: Value) -> Interval {
        self.try_with_extra(profile, name, v)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Interval::with_extra`]: unknown field names become a
    /// typed [`UteError::NotFound`] instead of a panic.
    pub fn try_with_extra(mut self, profile: &Profile, name: &str, v: Value) -> Result<Interval> {
        let idx = profile
            .field_name_index(name)
            .ok_or_else(|| UteError::NotFound(format!("field {name} not in profile")))?;
        self.extras.push((idx, v));
        Ok(self)
    }

    /// Looks up an extra field by name.
    pub fn extra<'a>(&'a self, profile: &Profile, name: &str) -> Option<&'a Value> {
        let idx = profile.field_name_index(name)?;
        self.extras.iter().find(|(i, _)| *i == idx).map(|(_, v)| v)
    }

    /// Encodes the record body per the profile spec and selection mask
    /// (no length prefix).
    pub fn encode_body(&self, profile: &Profile, mask: u32) -> Result<Vec<u8>> {
        let spec = profile.spec_for(self.itype).ok_or_else(|| {
            UteError::NotFound(format!(
                "record spec for {} ({:#010x})",
                self.itype.state,
                self.itype.to_u32()
            ))
        })?;
        let mut w = ByteWriter::with_capacity(64);
        for f in &spec.fields {
            if !f.present_in(mask) {
                continue;
            }
            let name = profile
                .field_names
                .get(f.name_idx as usize)
                .ok_or_else(|| UteError::corrupt("field name index out of range"))?;
            let owned;
            let value: &Value = match name.as_str() {
                "recType" => {
                    owned = Value::Uint(self.itype.to_u32() as u64);
                    &owned
                }
                "start" => {
                    owned = Value::Uint(self.start);
                    &owned
                }
                "dura" => {
                    owned = Value::Uint(self.duration);
                    &owned
                }
                "cpu" => {
                    owned = Value::Uint(self.cpu.raw() as u64);
                    &owned
                }
                "node" => {
                    owned = Value::Uint(self.node.raw() as u64);
                    &owned
                }
                "thread" => {
                    owned = Value::Uint(self.thread.raw() as u64);
                    &owned
                }
                _ => self
                    .extras
                    .iter()
                    .find(|(i, _)| *i == f.name_idx)
                    .map(|(_, v)| v)
                    .ok_or_else(|| {
                        UteError::Invalid(format!(
                            "interval of type {} missing required field {name}",
                            self.itype.state
                        ))
                    })?,
            };
            encode_value(&mut w, f.ftype, f.vector, f.counter_len, value)?;
        }
        Ok(w.into_bytes())
    }

    /// Decodes a record body. `default_node` supplies the node id when the
    /// `node` field is masked out (per-node files).
    pub fn decode_body(
        profile: &Profile,
        mask: u32,
        body: &[u8],
        default_node: NodeId,
    ) -> Result<Interval> {
        let mut r = ByteReader::new(body);
        let itype_raw = r.get_u32()?;
        let itype = IntervalType::from_u32(itype_raw)?;
        let spec = profile.spec_for(itype).ok_or_else(|| {
            UteError::NotFound(format!("record spec for interval type {itype_raw:#010x}"))
        })?;
        let mut out = Interval::basic(itype, 0, 0, CpuId(0), default_node, LogicalThreadId(0));
        let mut fields = spec.fields.iter();
        // First field is recType, already consumed.
        let first = fields
            .next()
            .ok_or_else(|| UteError::corrupt("record spec has no fields"))?;
        if !first.present_in(mask) {
            return Err(UteError::corrupt("recType field masked out"));
        }
        for f in fields {
            if !f.present_in(mask) {
                continue;
            }
            let v = decode_value(&mut r, f.ftype, f.vector, f.counter_len)?;
            let name = profile
                .field_names
                .get(f.name_idx as usize)
                .ok_or_else(|| UteError::corrupt("field name index out of range"))?;
            match name.as_str() {
                "start" => out.start = v.as_uint().unwrap_or(0),
                "dura" => out.duration = v.as_uint().unwrap_or(0),
                "cpu" => out.cpu = CpuId(v.as_uint().unwrap_or(0) as u16),
                "node" => out.node = NodeId(v.as_uint().unwrap_or(0) as u16),
                "thread" => out.thread = LogicalThreadId(v.as_uint().unwrap_or(0) as u16),
                _ => out.extras.push((f.name_idx, v)),
            }
        }
        if !r.is_empty() {
            return Err(UteError::corrupt(format!(
                "record body has {} trailing bytes",
                r.remaining()
            )));
        }
        Ok(out)
    }

    /// Size of the encoded body, used for frame accounting.
    pub fn body_len(&self, profile: &Profile, mask: u32) -> Result<usize> {
        let spec = profile
            .spec_for(self.itype)
            .ok_or_else(|| UteError::NotFound("record spec".into()))?;
        let mut total = 0usize;
        for f in &spec.fields {
            if !f.present_in(mask) {
                continue;
            }
            let name = &profile.field_names[f.name_idx as usize];
            let v = match name.as_str() {
                "recType" | "start" | "dura" | "cpu" | "node" | "thread" => Value::Uint(0),
                _ => self
                    .extras
                    .iter()
                    .find(|(i, _)| *i == f.name_idx)
                    .map(|(_, v)| v.clone())
                    .unwrap_or(Value::Uint(0)),
            };
            total += encoded_len(f.ftype, f.vector, f.counter_len, &v);
        }
        Ok(total)
    }
}

/// Writes a record body with its length prefix (§2.3.2 escape: one byte,
/// or zero followed by a two-byte length for bodies over 255 bytes).
pub fn write_record(w: &mut ByteWriter, body: &[u8]) -> Result<()> {
    if body.len() > u16::MAX as usize {
        return Err(UteError::Invalid(format!(
            "record body of {} bytes exceeds 65535",
            body.len()
        )));
    }
    if body.len() <= u8::MAX as usize && !body.is_empty() {
        w.put_u8(body.len() as u8);
    } else {
        w.put_u8(0);
        w.put_u16(body.len() as u16);
    }
    w.put_bytes(body);
    Ok(())
}

/// Reads a record body (handles the length escape).
pub fn read_record<'a>(r: &mut ByteReader<'a>) -> Result<&'a [u8]> {
    let len = r.get_u8()? as usize;
    let len = if len == 0 { r.get_u16()? as usize } else { len };
    r.get_bytes(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{MASK_MERGED, MASK_PER_NODE};
    use ute_core::event::MpiOp;

    fn send_interval(profile: &Profile) -> Interval {
        Interval::basic(
            IntervalType::complete(StateCode::mpi(MpiOp::Send)),
            1_000,
            250,
            CpuId(3),
            NodeId(2),
            LogicalThreadId(5),
        )
        .with_extra(profile, "rank", Value::Uint(4))
        .with_extra(profile, "peer", Value::Uint(1))
        .with_extra(profile, "tag", Value::Uint(99))
        .with_extra(profile, "msgSizeSent", Value::Uint(65536))
        .with_extra(profile, "seq", Value::Uint(7))
        .with_extra(profile, "address", Value::Uint(0xdead))
    }

    #[test]
    fn interval_type_round_trip() {
        for state in StateCode::standard_states() {
            for bebits in [
                BeBits::Complete,
                BeBits::Begin,
                BeBits::Continuation,
                BeBits::End,
            ] {
                let t = IntervalType { state, bebits };
                assert_eq!(IntervalType::from_u32(t.to_u32()).unwrap(), t);
            }
        }
        assert!(IntervalType::from_u32(u32::MAX).is_err());
    }

    #[test]
    fn record_round_trip_merged_mask() {
        let p = Profile::standard();
        let iv = send_interval(&p);
        let body = iv.encode_body(&p, MASK_MERGED).unwrap();
        assert_eq!(body.len(), iv.body_len(&p, MASK_MERGED).unwrap());
        let back = Interval::decode_body(&p, MASK_MERGED, &body, NodeId(0)).unwrap();
        assert_eq!(back, iv);
    }

    #[test]
    fn per_node_mask_omits_node_field() {
        let p = Profile::standard();
        let iv = send_interval(&p);
        let merged = iv.encode_body(&p, MASK_MERGED).unwrap();
        let per_node = iv.encode_body(&p, MASK_PER_NODE).unwrap();
        assert_eq!(merged.len() - per_node.len(), 2); // the u16 node field
                                                      // Reader restores the node from context.
        let back = Interval::decode_body(&p, MASK_PER_NODE, &per_node, NodeId(2)).unwrap();
        assert_eq!(back, iv);
        // Wrong default node shows up (proving the field really is absent).
        let other = Interval::decode_body(&p, MASK_PER_NODE, &per_node, NodeId(9)).unwrap();
        assert_eq!(other.node, NodeId(9));
    }

    #[test]
    fn missing_required_extra_is_an_error() {
        let p = Profile::standard();
        let iv = Interval::basic(
            IntervalType::complete(StateCode::mpi(MpiOp::Send)),
            0,
            1,
            CpuId(0),
            NodeId(0),
            LogicalThreadId(0),
        );
        assert!(iv.encode_body(&p, MASK_MERGED).is_err());
    }

    #[test]
    fn vector_field_round_trips_in_record() {
        let p = Profile::standard();
        let iv = Interval::basic(
            IntervalType::complete(StateCode::mpi(MpiOp::Waitall)),
            10,
            5,
            CpuId(0),
            NodeId(1),
            LogicalThreadId(2),
        )
        .with_extra(&p, "rank", Value::Uint(0))
        .with_extra(&p, "reqSeqs", Value::UintVec(vec![3, 4, 5, 6].into()))
        .with_extra(&p, "address", Value::Uint(0));
        let body = iv.encode_body(&p, MASK_MERGED).unwrap();
        let back = Interval::decode_body(&p, MASK_MERGED, &body, NodeId(0)).unwrap();
        assert_eq!(
            back.extra(&p, "reqSeqs"),
            Some(&Value::UintVec(vec![3, 4, 5, 6].into()))
        );
    }

    #[test]
    fn length_prefix_escape() {
        let mut w = ByteWriter::new();
        let small = vec![7u8; 200];
        let large = vec![8u8; 300];
        write_record(&mut w, &small).unwrap();
        write_record(&mut w, &large).unwrap();
        write_record(&mut w, &[]).unwrap();
        let bytes = w.into_bytes();
        // small: 1 + 200; large: 3 + 300; empty: 3 + 0.
        assert_eq!(bytes.len(), 201 + 303 + 3);
        let mut r = ByteReader::new(&bytes);
        assert_eq!(read_record(&mut r).unwrap(), &small[..]);
        assert_eq!(read_record(&mut r).unwrap(), &large[..]);
        assert_eq!(read_record(&mut r).unwrap(), &[] as &[u8]);
        assert!(r.is_empty());
    }

    #[test]
    fn reader_skips_unknown_records_via_length() {
        // The length prefix lets a reader hop over records it cannot
        // decode — write garbage with a valid prefix, then a real record.
        let p = Profile::standard();
        let iv = send_interval(&p);
        let mut w = ByteWriter::new();
        write_record(&mut w, &[0xff; 40]).unwrap();
        write_record(&mut w, &iv.encode_body(&p, MASK_MERGED).unwrap()).unwrap();
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let _garbage = read_record(&mut r).unwrap();
        let body = read_record(&mut r).unwrap();
        let back = Interval::decode_body(&p, MASK_MERGED, body, NodeId(0)).unwrap();
        assert_eq!(back, iv);
    }

    #[test]
    fn get_item_by_name_reads_straight_from_bytes() {
        // Figure 5's core operation.
        let p = Profile::standard();
        let iv = send_interval(&p);
        let body = iv.encode_body(&p, MASK_MERGED).unwrap();
        let sent = p
            .get_item_by_name(MASK_MERGED, &body, "msgSizeSent")
            .unwrap();
        assert_eq!(sent, Some(Value::Uint(65536)));
        let start = p.get_item_by_name(MASK_MERGED, &body, "start").unwrap();
        assert_eq!(start, Some(Value::Uint(1_000)));
        let rectype = p.get_item_by_name(MASK_MERGED, &body, "recType").unwrap();
        assert_eq!(rectype, Some(Value::Uint(iv.itype.to_u32() as u64)));
        // A field this record type doesn't have.
        let none = p.get_item_by_name(MASK_MERGED, &body, "markerId").unwrap();
        assert_eq!(none, None);
        // An unknown name.
        let none = p.get_item_by_name(MASK_MERGED, &body, "nope").unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let p = Profile::standard();
        let iv = send_interval(&p);
        let mut body = iv.encode_body(&p, MASK_MERGED).unwrap();
        body.push(0);
        assert!(Interval::decode_body(&p, MASK_MERGED, &body, NodeId(0)).is_err());
    }

    #[test]
    fn end_is_start_plus_duration() {
        let p = Profile::standard();
        let iv = send_interval(&p);
        assert_eq!(iv.end(), 1_250);
        drop(p);
    }
}
