//! # ute-format — the self-defining interval file format
//!
//! The heart of the framework (§2.3–§2.4): a *self-defining* trace format
//! designed around **intervals** (records with a duration, far friendlier
//! to visualization than point events) and around **frames** (so tools can
//! jump into the middle of a huge file without reading what precedes it).
//!
//! Two kinds of file exist:
//!
//! * the **description profile** ([`profile`]) — the meta-format: for each
//!   interval type, the list of field descriptions (data type, element
//!   length, vector bit, field selection attribute, name). "Once a utility
//!   reads the profile, it knows all field names and record names, along
//!   with field sizes, data types, etc."
//! * the **interval file** ([`mod@file`]) — a header (with the profile version
//!   it was written against and a field-selection mask), a thread table
//!   ([`thread_table`]), a marker-string table, and interval records
//!   ([`record`]) partitioned into frames linked by doubly-linked frame
//!   directories ([`frame`]).
//!
//! The reader API mirrors the paper's §2.4 utility library: read the
//! header, read the first frame directory, read the profile, then iterate
//! records with frames hidden ([`file::IntervalFileReader::record_bodies`])
//! and pull fields out by name ([`profile::Profile::get_item_by_name`]).

pub mod codecio;
pub mod datatype;
pub mod file;
pub mod file_io;
pub mod frame;
pub mod plan;
pub mod profile;
pub mod record;
pub mod state;
pub mod thread_table;
pub mod value;

pub use datatype::FieldType;
pub use file::{FramePolicy, IntervalFileReader, IntervalFileWriter};
pub use file_io::FileIntervalReader;
pub use frame::{FrameDirectory, FrameEntry};
pub use plan::{PlanSet, RecordPlan};
pub use profile::{FieldSpec, Profile, RecordSpec};
pub use record::{Interval, IntervalType};
pub use state::StateCode;
pub use thread_table::{ThreadEntry, ThreadTable};
pub use value::Value;
