//! Interval state codes.
//!
//! An interval represents "a time span or region for a running thread.
//! Typical time spans include MPI routines, user marker regions, and a
//! Running state if a thread is running but not inside any MPI routine or
//! user-marked code segments" (§3.3). Each such state kind gets a 16-bit
//! code; combined with the two bebits it forms the on-disk interval type.

use std::fmt;

use ute_core::event::MpiOp;

/// Base of the MPI state block.
pub const MPI_STATE_BASE: u16 = 0x0100;

/// A 16-bit interval state code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateCode(pub u16);

impl StateCode {
    /// The default state: thread running outside any traced region.
    pub const RUNNING: StateCode = StateCode(0x0001);
    /// A user-marked region (the marker id is a record field).
    pub const MARKER: StateCode = StateCode(0x0002);
    /// A global-clock record carried through into the interval file
    /// (zero duration; the global timestamp is a record field).
    pub const CLOCK: StateCode = StateCode(0x0003);
    /// A salvage-mode gap pseudo-record: marks a node whose data is
    /// missing or unreadable in a degraded merge (zero duration). Like
    /// CLOCK, it is bookkeeping rather than thread activity.
    pub const GAP: StateCode = StateCode(0x0004);
    /// Kernel activity: system call.
    pub const SYSCALL: StateCode = StateCode(0x0010);
    /// Kernel activity: page-fault service.
    pub const PAGE_FAULT: StateCode = StateCode(0x0011);
    /// Kernel activity: I/O operation.
    pub const IO: StateCode = StateCode(0x0012);
    /// Kernel activity: interrupt handling.
    pub const INTERRUPT: StateCode = StateCode(0x0013);

    /// The state code for an MPI routine.
    pub fn mpi(op: MpiOp) -> StateCode {
        StateCode(MPI_STATE_BASE + op.code())
    }

    /// If this is an MPI state, which routine.
    pub fn as_mpi(self) -> Option<MpiOp> {
        if self.0 >= MPI_STATE_BASE {
            MpiOp::from_code(self.0 - MPI_STATE_BASE)
        } else {
            None
        }
    }

    /// Whether this state is "interesting" in the sense of the statistics
    /// utility's pre-defined tables: "an interesting interval is one for a
    /// state other than the default state of Running" (§3.2). Clock and
    /// gap records are bookkeeping, not activity, so they are excluded
    /// too.
    pub fn is_interesting(self) -> bool {
        self != StateCode::RUNNING && self != StateCode::CLOCK && self != StateCode::GAP
    }

    /// Display name of the state.
    pub fn name(self) -> String {
        match self {
            StateCode::RUNNING => "Running".to_string(),
            StateCode::MARKER => "Marker".to_string(),
            StateCode::CLOCK => "GlobalClock".to_string(),
            StateCode::GAP => "Gap".to_string(),
            StateCode::SYSCALL => "Syscall".to_string(),
            StateCode::PAGE_FAULT => "PageFault".to_string(),
            StateCode::IO => "IO".to_string(),
            StateCode::INTERRUPT => "Interrupt".to_string(),
            other => match other.as_mpi() {
                Some(op) => op.name().to_string(),
                None => format!("State({:#06x})", other.0),
            },
        }
    }

    /// All state codes the standard profile defines.
    pub fn standard_states() -> Vec<StateCode> {
        let mut v = vec![
            StateCode::RUNNING,
            StateCode::MARKER,
            StateCode::CLOCK,
            StateCode::GAP,
            StateCode::SYSCALL,
            StateCode::PAGE_FAULT,
            StateCode::IO,
            StateCode::INTERRUPT,
        ];
        v.extend(MpiOp::ALL.iter().map(|&op| StateCode::mpi(op)));
        v
    }
}

impl fmt::Display for StateCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpi_states_round_trip() {
        for op in MpiOp::ALL {
            let s = StateCode::mpi(op);
            assert_eq!(s.as_mpi(), Some(op));
            assert_eq!(s.name(), op.name());
        }
        assert_eq!(StateCode::RUNNING.as_mpi(), None);
    }

    #[test]
    fn standard_states_are_distinct() {
        let all = StateCode::standard_states();
        let set: std::collections::HashSet<u16> = all.iter().map(|s| s.0).collect();
        assert_eq!(set.len(), all.len());
        assert_eq!(all.len(), 8 + MpiOp::ALL.len());
    }

    #[test]
    fn interesting_excludes_running_and_clock() {
        assert!(!StateCode::RUNNING.is_interesting());
        assert!(!StateCode::CLOCK.is_interesting());
        assert!(!StateCode::GAP.is_interesting());
        assert!(StateCode::mpi(MpiOp::Send).is_interesting());
        assert!(StateCode::MARKER.is_interesting());
        assert!(StateCode::SYSCALL.is_interesting());
    }

    #[test]
    fn names() {
        assert_eq!(StateCode::RUNNING.name(), "Running");
        assert_eq!(StateCode::mpi(MpiOp::Allreduce).name(), "MPI_Allreduce");
        assert_eq!(StateCode(0x7777).name(), "State(0x7777)");
    }
}
