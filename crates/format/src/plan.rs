//! Precompiled per-record-type field plans for the hot encode/decode path.
//!
//! [`Interval::encode_body`] and [`Interval::decode_body`] resolve every
//! field of every record by *name* — a string match per field per record,
//! plus a heap-allocated body per encode. At millions of records per
//! second that lookup dominates the pipeline. A [`PlanSet`] does the name
//! resolution, mask filtering, and length precomputation **once** per
//! `(profile, mask)` pair; after that, encoding a record is a straight
//! walk over enum-dispatched fields written directly into the caller's
//! buffer, and decoding is the mirror walk.
//!
//! The plans are a pure acceleration layer: for every record they produce
//! exactly the bytes (and exactly the decoded [`Interval`]) the reference
//! string-matching path produces — property-tested in this module and
//! cross-checked end-to-end by the `fast-vs-reference` oracle in
//! `ute-verify`. Record types the plan builder cannot resolve (a spec
//! naming a field index outside the profile's name table) simply get no
//! plan, and callers fall back to the reference path, which reports the
//! same errors it always did.

use std::sync::atomic::{AtomicUsize, Ordering};

use ute_core::codec::{ByteReader, ByteWriter};
use ute_core::error::{Result, UteError};
use ute_core::ids::{CpuId, LogicalThreadId, NodeId};

use crate::datatype::FieldType;
use crate::profile::Profile;
use crate::record::{Interval, IntervalType};
use crate::value::{decode_value, encode_value, encoded_len, Value};

/// Where a planned field's value comes from (encode) or goes (decode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// The record type word (`itype`); consumed before decode dispatch.
    RecType,
    /// `Interval::start`.
    Start,
    /// `Interval::duration`.
    Dura,
    /// `Interval::cpu`.
    Cpu,
    /// `Interval::node`.
    Node,
    /// `Interval::thread`.
    Thread,
    /// An extra field, matched by name index.
    Extra,
}

/// One mask-filtered field of a record plan.
#[derive(Debug, Clone)]
pub struct PlanField {
    /// Dispatch target.
    pub kind: FieldKind,
    /// Field name index in the profile (extras key).
    pub name_idx: u16,
    /// Field name, kept for error messages only.
    pub name: String,
    /// Element type.
    pub ftype: FieldType,
    /// Whether the field is a counted vector.
    pub vector: bool,
    /// Vector counter width in bytes.
    pub counter_len: u8,
}

/// The compiled plan for one record type under one selection mask.
#[derive(Debug, Clone)]
pub struct RecordPlan {
    /// The on-disk record type word this plan serves.
    pub itype_raw: u32,
    /// All mask-present fields in spec order (encode walks these).
    encode_fields: Vec<PlanField>,
    /// Mask-present fields after the leading record-type field (decode
    /// walks these once the type word has been consumed).
    decode_fields: Vec<PlanField>,
    /// Body length when every present field is fixed-size.
    fixed_len: Option<usize>,
    /// Number of extras the decode walk produces — lets decode size the
    /// extras vector exactly, one allocation, no growth.
    extras_count: usize,
    /// Whether the spec's first field is present under the mask — the
    /// decode path requires the leading record-type word on disk.
    first_present: bool,
    /// True when every present field is a fixed-width scalar and the
    /// leading record-type word is the 4 bytes the decoder consumes:
    /// decode can then walk precomputed byte offsets with one length
    /// check instead of a bounds-checked reader per field.
    fixed_decode: bool,
}

impl RecordPlan {
    /// Encoded body length of `iv` under this plan (cheap arithmetic; no
    /// allocation, no string matching).
    pub fn body_len(&self, iv: &Interval) -> Result<usize> {
        if let Some(n) = self.fixed_len {
            return Ok(n);
        }
        let mut total = 0usize;
        let mut cursor = 0usize;
        for f in &self.encode_fields {
            if f.kind == FieldKind::Extra {
                // Mirror the reference `body_len`: a missing extra counts
                // as Uint(0) here and only errors at encode time.
                let v = lookup_extra(iv, f.name_idx, &mut cursor);
                total += match v {
                    Some(v) => encoded_len(f.ftype, f.vector, f.counter_len, v),
                    None => encoded_len(f.ftype, f.vector, f.counter_len, &Value::Uint(0)),
                };
            } else {
                total += encoded_len(f.ftype, f.vector, f.counter_len, &Value::Uint(0));
            }
        }
        Ok(total)
    }

    /// Encodes `iv`'s body **with its record-length prefix** directly
    /// into `w` — the zero-intermediate-buffer replacement for
    /// `encode_body` + `write_record`. On any error the writer is
    /// restored to its starting position.
    pub fn encode_record_into(&self, iv: &Interval, w: &mut ByteWriter) -> Result<()> {
        let rollback = w.pos();
        if let Some(len) = self.fixed_len {
            if self.encode_fixed(iv, w, len) {
                return Ok(());
            }
            // A missing or type-mismatched extra: rewind and let the
            // general walk below produce the reference error.
            w.truncate(rollback);
        }
        match self.encode_record_inner(iv, w) {
            Ok(()) => Ok(()),
            Err(e) => {
                w.truncate(rollback);
                Err(e)
            }
        }
    }

    /// The all-scalar encode walk: length prefix then direct puts, no
    /// `Value` construction for the common slots. Returns `false` —
    /// having written a prefix the caller must rewind — on any condition
    /// the general walk reports as an error (missing extra, value that
    /// does not fit its field type), so error text stays byte-identical
    /// to the reference path.
    fn encode_fixed(&self, iv: &Interval, w: &mut ByteWriter, len: usize) -> bool {
        if len > u16::MAX as usize {
            return false; // general walk reports the oversize error
        }
        if len > u8::MAX as usize || len == 0 {
            w.put_u8(0);
            w.put_u16(len as u16);
        } else {
            w.put_u8(len as u8);
        }
        let mut cursor = 0usize;
        for f in &self.encode_fields {
            let x: u64 = match f.kind {
                FieldKind::RecType => iv.itype.to_u32() as u64,
                FieldKind::Start => iv.start,
                FieldKind::Dura => iv.duration,
                FieldKind::Cpu => iv.cpu.raw() as u64,
                FieldKind::Node => iv.node.raw() as u64,
                FieldKind::Thread => iv.thread.raw() as u64,
                FieldKind::Extra => match lookup_extra(iv, f.name_idx, &mut cursor) {
                    Some(Value::Uint(x)) => *x,
                    Some(Value::Int(x)) if f.ftype == FieldType::I64 => {
                        w.put_i64(*x);
                        continue;
                    }
                    Some(Value::Float(x)) if f.ftype == FieldType::F64 => {
                        w.put_f64(*x);
                        continue;
                    }
                    _ => return false,
                },
            };
            match f.ftype {
                FieldType::U8 | FieldType::Char => w.put_u8(x as u8),
                FieldType::U16 => w.put_u16(x as u16),
                FieldType::U32 => w.put_u32(x as u32),
                FieldType::U64 => w.put_u64(x),
                // An unsigned value in an I64/F64 slot: the reference
                // walk rejects it.
                FieldType::I64 | FieldType::F64 => return false,
            }
        }
        true
    }

    fn encode_record_inner(&self, iv: &Interval, w: &mut ByteWriter) -> Result<()> {
        let len = self.body_len(iv)?;
        if len > u16::MAX as usize {
            return Err(UteError::Invalid(format!(
                "record body of {len} bytes exceeds 65535"
            )));
        }
        if len <= u8::MAX as usize && len > 0 {
            w.put_u8(len as u8);
        } else {
            w.put_u8(0);
            w.put_u16(len as u16);
        }
        let body_at = w.pos();
        let mut cursor = 0usize;
        for f in &self.encode_fields {
            let owned;
            let value: &Value = match f.kind {
                FieldKind::RecType => {
                    owned = Value::Uint(iv.itype.to_u32() as u64);
                    &owned
                }
                FieldKind::Start => {
                    owned = Value::Uint(iv.start);
                    &owned
                }
                FieldKind::Dura => {
                    owned = Value::Uint(iv.duration);
                    &owned
                }
                FieldKind::Cpu => {
                    owned = Value::Uint(iv.cpu.raw() as u64);
                    &owned
                }
                FieldKind::Node => {
                    owned = Value::Uint(iv.node.raw() as u64);
                    &owned
                }
                FieldKind::Thread => {
                    owned = Value::Uint(iv.thread.raw() as u64);
                    &owned
                }
                FieldKind::Extra => lookup_extra(iv, f.name_idx, &mut cursor).ok_or_else(|| {
                    UteError::Invalid(format!(
                        "interval of type {} missing required field {}",
                        iv.itype.state, f.name
                    ))
                })?,
            };
            encode_value(w, f.ftype, f.vector, f.counter_len, value)?;
        }
        let written = (w.pos() - body_at) as usize;
        if written != len {
            return Err(UteError::Invalid(format!(
                "planned body length {len} but encoded {written} bytes"
            )));
        }
        Ok(())
    }

    /// Decodes a record body previously sized by [`read_record`]'s length
    /// prefix. `body` starts at the record-type word. Produces exactly
    /// what [`Interval::decode_body`] produces for the same input.
    ///
    /// [`read_record`]: crate::record::read_record
    pub fn decode_body(&self, body: &[u8], default_node: NodeId) -> Result<Interval> {
        // Offset-walk fast path for all-scalar records of exactly the
        // planned length. Any other length falls through to the reader
        // path, which reports the same truncation / trailing-bytes
        // errors the reference decoder always has.
        if self.fixed_decode && Some(body.len()) == self.fixed_len {
            return self.decode_body_fixed(body, default_node);
        }
        let mut r = ByteReader::new(body);
        let itype_raw = r.get_u32()?;
        let itype = IntervalType::from_u32(itype_raw)?;
        if !self.first_present {
            return Err(UteError::corrupt("recType field masked out"));
        }
        let mut out = Interval::basic(itype, 0, 0, CpuId(0), default_node, LogicalThreadId(0));
        out.extras = Vec::with_capacity(self.extras_count);
        for f in &self.decode_fields {
            let v = decode_value(&mut r, f.ftype, f.vector, f.counter_len)?;
            match f.kind {
                FieldKind::Start => out.start = v.as_uint().unwrap_or(0),
                FieldKind::Dura => out.duration = v.as_uint().unwrap_or(0),
                FieldKind::Cpu => out.cpu = CpuId(v.as_uint().unwrap_or(0) as u16),
                FieldKind::Node => out.node = NodeId(v.as_uint().unwrap_or(0) as u16),
                FieldKind::Thread => out.thread = LogicalThreadId(v.as_uint().unwrap_or(0) as u16),
                _ => out.extras.push((f.name_idx, v)),
            }
        }
        if !r.is_empty() {
            return Err(UteError::corrupt(format!(
                "record body has {} trailing bytes",
                r.remaining()
            )));
        }
        Ok(out)
    }

    /// The all-scalar decode walk: one length check up front (done by the
    /// caller), then direct little-endian reads at precomputed offsets.
    /// Field-for-field this computes exactly what the reader path does —
    /// same `Value` per field, same `as_uint` widening into the common
    /// slots — it only skips the per-field bounds bookkeeping.
    fn decode_body_fixed(&self, body: &[u8], default_node: NodeId) -> Result<Interval> {
        let itype_raw = u32::from_le_bytes([body[0], body[1], body[2], body[3]]);
        let itype = IntervalType::from_u32(itype_raw)?;
        let mut out = Interval::basic(itype, 0, 0, CpuId(0), default_node, LogicalThreadId(0));
        out.extras = Vec::with_capacity(self.extras_count);
        let mut off = 4usize;
        for f in &self.decode_fields {
            let w = f.ftype.elem_len() as usize;
            let b = &body[off..off + w];
            off += w;
            let v = match f.ftype {
                FieldType::U8 | FieldType::Char => Value::Uint(b[0] as u64),
                FieldType::U16 => Value::Uint(u16::from_le_bytes([b[0], b[1]]) as u64),
                FieldType::U32 => Value::Uint(u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as u64),
                FieldType::U64 => Value::Uint(u64::from_le_bytes(b.try_into().unwrap())),
                FieldType::I64 => Value::Int(i64::from_le_bytes(b.try_into().unwrap())),
                FieldType::F64 => Value::Float(f64::from_le_bytes(b.try_into().unwrap())),
            };
            match f.kind {
                FieldKind::Start => out.start = v.as_uint().unwrap_or(0),
                FieldKind::Dura => out.duration = v.as_uint().unwrap_or(0),
                FieldKind::Cpu => out.cpu = CpuId(v.as_uint().unwrap_or(0) as u16),
                FieldKind::Node => out.node = NodeId(v.as_uint().unwrap_or(0) as u16),
                FieldKind::Thread => out.thread = LogicalThreadId(v.as_uint().unwrap_or(0) as u16),
                _ => out.extras.push((f.name_idx, v)),
            }
        }
        Ok(out)
    }
}

/// Finds an extra by name index. `cursor` exploits that both the
/// converter and the decoder push extras in spec order, so the common
/// case is a single comparison; out-of-order extras fall back to a
/// linear scan without disturbing the cursor.
#[inline]
fn lookup_extra<'a>(iv: &'a Interval, name_idx: u16, cursor: &mut usize) -> Option<&'a Value> {
    if let Some((i, v)) = iv.extras.get(*cursor) {
        if *i == name_idx {
            *cursor += 1;
            return Some(v);
        }
    }
    iv.extras
        .iter()
        .find(|(i, _)| *i == name_idx)
        .map(|(_, v)| v)
}

/// All record plans for one `(profile, mask)` pair, keyed by the on-disk
/// record type word.
pub struct PlanSet {
    plans: Vec<RecordPlan>,
    /// Last plan index hit — record streams run the same type for long
    /// stretches, so this turns most lookups into one comparison.
    last: AtomicUsize,
}

impl PlanSet {
    /// Compiles plans for every resolvable record spec in the profile.
    /// Specs referencing out-of-range field names get no plan; users fall
    /// back to the reference path for those (and its exact errors).
    pub fn build(profile: &Profile, mask: u32) -> PlanSet {
        let mut plans = Vec::with_capacity(profile.specs.len());
        'spec: for (&itype_raw, spec) in &profile.specs {
            let mut encode_fields = Vec::with_capacity(spec.fields.len());
            let mut decode_fields = Vec::with_capacity(spec.fields.len());
            let mut fixed_len = Some(0usize);
            if spec.fields.is_empty() {
                continue; // reference path reports "record spec has no fields"
            }
            let first_present = spec.fields[0].present_in(mask);
            for (i, f) in spec.fields.iter().enumerate() {
                if !f.present_in(mask) {
                    continue;
                }
                let Some(name) = profile.field_names.get(f.name_idx as usize) else {
                    continue 'spec; // unresolvable: reference path errors
                };
                let kind = match name.as_str() {
                    "recType" => FieldKind::RecType,
                    "start" => FieldKind::Start,
                    "dura" => FieldKind::Dura,
                    "cpu" => FieldKind::Cpu,
                    "node" => FieldKind::Node,
                    "thread" => FieldKind::Thread,
                    _ => FieldKind::Extra,
                };
                let pf = PlanField {
                    kind,
                    name_idx: f.name_idx,
                    name: name.clone(),
                    ftype: f.ftype,
                    vector: f.vector,
                    counter_len: f.counter_len,
                };
                if f.vector {
                    fixed_len = None;
                } else if let Some(n) = fixed_len.as_mut() {
                    *n += f.ftype.elem_len() as usize;
                }
                if i > 0 {
                    // The decode path consumes the leading type word
                    // itself; any later field named recType decodes by
                    // the reference rules (i.e. as an extra).
                    let mut df = pf.clone();
                    if df.kind == FieldKind::RecType {
                        df.kind = FieldKind::Extra;
                    }
                    decode_fields.push(df);
                }
                encode_fields.push(pf);
            }
            let extras_count = decode_fields
                .iter()
                .filter(|f| f.kind == FieldKind::Extra)
                .count();
            let first = &spec.fields[0];
            let fixed_decode = fixed_len.is_some()
                && first_present
                && !first.vector
                && first.ftype.elem_len() == 4;
            plans.push(RecordPlan {
                itype_raw,
                encode_fields,
                decode_fields,
                fixed_len,
                extras_count,
                first_present,
                fixed_decode,
            });
        }
        plans.sort_by_key(|p| p.itype_raw);
        PlanSet {
            plans,
            last: AtomicUsize::new(0),
        }
    }

    /// The plan for a record type word, if one was compiled.
    #[inline]
    pub fn plan(&self, itype_raw: u32) -> Option<&RecordPlan> {
        let last = self.last.load(Ordering::Relaxed);
        if let Some(p) = self.plans.get(last) {
            if p.itype_raw == itype_raw {
                return Some(p);
            }
        }
        let idx = self
            .plans
            .binary_search_by_key(&itype_raw, |p| p.itype_raw)
            .ok()?;
        self.last.store(idx, Ordering::Relaxed);
        Some(&self.plans[idx])
    }

    /// Number of compiled plans (diagnostics).
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when no specs could be compiled.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{MASK_MERGED, MASK_PER_NODE};
    use crate::record::write_record;
    use crate::state::StateCode;
    use ute_core::bebits::BeBits;
    use ute_core::event::MpiOp;

    fn sample_intervals(p: &Profile) -> Vec<Interval> {
        let mut out = vec![Interval::basic(
            IntervalType::complete(StateCode::RUNNING),
            5,
            10,
            CpuId(1),
            NodeId(3),
            LogicalThreadId(2),
        )];
        out.push(
            Interval::basic(
                IntervalType {
                    state: StateCode::mpi(MpiOp::Send),
                    bebits: BeBits::Begin,
                },
                1_000,
                250,
                CpuId(3),
                NodeId(2),
                LogicalThreadId(5),
            )
            .with_extra(p, "rank", Value::Uint(4))
            .with_extra(p, "peer", Value::Uint(1))
            .with_extra(p, "tag", Value::Uint(99))
            .with_extra(p, "msgSizeSent", Value::Uint(65536))
            .with_extra(p, "seq", Value::Uint(7))
            .with_extra(p, "address", Value::Uint(0xdead)),
        );
        out.push(
            Interval::basic(
                IntervalType::complete(StateCode::mpi(MpiOp::Waitall)),
                10,
                5,
                CpuId(0),
                NodeId(1),
                LogicalThreadId(2),
            )
            .with_extra(p, "rank", Value::Uint(0))
            .with_extra(p, "reqSeqs", Value::UintVec(vec![3, 4, 5, 6].into()))
            .with_extra(p, "address", Value::Uint(0)),
        );
        out
    }

    #[test]
    fn plan_encode_matches_reference_bytes() {
        let p = Profile::standard();
        for mask in [MASK_PER_NODE, MASK_MERGED] {
            let plans = PlanSet::build(&p, mask);
            for iv in sample_intervals(&p) {
                let body = iv.encode_body(&p, mask).unwrap();
                let mut reference = ByteWriter::new();
                write_record(&mut reference, &body).unwrap();
                let mut fast = ByteWriter::new();
                let plan = plans.plan(iv.itype.to_u32()).unwrap();
                plan.encode_record_into(&iv, &mut fast).unwrap();
                assert_eq!(fast.as_bytes(), reference.as_bytes(), "mask {mask}");
                assert_eq!(plan.body_len(&iv).unwrap(), body.len());
            }
        }
    }

    #[test]
    fn plan_decode_matches_reference_interval() {
        let p = Profile::standard();
        for (mask, default_node) in [(MASK_PER_NODE, NodeId(2)), (MASK_MERGED, NodeId(0))] {
            let plans = PlanSet::build(&p, mask);
            for iv in sample_intervals(&p) {
                let body = iv.encode_body(&p, mask).unwrap();
                let reference = Interval::decode_body(&p, mask, &body, default_node).unwrap();
                let plan = plans.plan(iv.itype.to_u32()).unwrap();
                let fast = plan.decode_body(&body, default_node).unwrap();
                assert_eq!(fast, reference);
            }
        }
    }

    #[test]
    fn plan_rejects_what_reference_rejects() {
        let p = Profile::standard();
        let plans = PlanSet::build(&p, MASK_MERGED);
        // Missing required extra.
        let iv = Interval::basic(
            IntervalType::complete(StateCode::mpi(MpiOp::Send)),
            0,
            1,
            CpuId(0),
            NodeId(0),
            LogicalThreadId(0),
        );
        let plan = plans.plan(iv.itype.to_u32()).unwrap();
        let mut w = ByteWriter::new();
        w.put_u8(0xAA); // pre-existing content must survive the rollback
        assert!(plan.encode_record_into(&iv, &mut w).is_err());
        assert_eq!(w.as_bytes(), &[0xAA]);
        // Trailing bytes.
        let good = sample_intervals(&p).remove(1);
        let mut body = good.encode_body(&p, MASK_MERGED).unwrap();
        body.push(0);
        let plan = plans.plan(good.itype.to_u32()).unwrap();
        assert!(plan.decode_body(&body, NodeId(0)).is_err());
    }

    #[test]
    fn lookup_serves_every_standard_spec() {
        let p = Profile::standard();
        let plans = PlanSet::build(&p, MASK_MERGED);
        assert_eq!(plans.len(), p.specs.len());
        for &itype_raw in p.specs.keys() {
            assert!(plans.plan(itype_raw).is_some());
        }
        assert!(plans.plan(0xffff_0000).is_none());
    }
}
