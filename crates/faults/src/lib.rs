//! # ute-faults — deterministic, seedable fault injection
//!
//! The paper's tracing facility runs with wraparound buffers, delayed
//! starts, and asynchronous flushing (§2.1) — so real raw traces are
//! routinely truncated mid-record, missing whole nodes, or carry damaged
//! regions where the write cursor overran unflushed data. This crate
//! produces those conditions *on purpose* and *reproducibly*, so the
//! salvage paths in `rawtrace`/`convert`/`merge` can be exercised by
//! tests and CI instead of waiting for a damaged trace from the field.
//!
//! A [`FaultPlan`] is a list of `(node, FaultKind)` pairs. It can be
//! parsed from a compact spec string (`"0:truncate@500,2:missing"`),
//! generated from a seed ([`FaultPlan::from_seed`]), and applied two
//! ways:
//!
//! * **byte level** — [`FaultPlan::apply_to_file`] mutates a serialized
//!   trace file (truncate / bit-flip / overrun-splice / drop entirely);
//!   this is what `ute corrupt` and the post-write hook of `ute trace`
//!   use.
//! * **buffer level** — [`FaultPlan::dropped_flushes`] and
//!   [`FaultPlan::clock_jump`] are queried by the live
//!   `ute_rawtrace::TraceBuffer` while records are being cut, producing
//!   losses that byte surgery cannot (a flushed region that never
//!   reached the backing store; a local clock that stepped mid-run).
//!
//! Everything is a pure function of the plan — no global state, no
//! entropy source — so a seed reproduces the exact same damage on the
//! exact same input bytes, which is what lets CI assert on salvage
//! behaviour.

use ute_core::error::{Result, UteError};

pub mod chaos;

/// One way to damage one node's trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Truncate the file, keeping `keep` bytes past the protected header
    /// region (reduced modulo the body length at apply time, so any
    /// `keep` lands mid-body). Models a flush that never completed.
    Truncate {
        /// Bytes to keep, counted past the protected prefix.
        keep: u64,
    },
    /// Flip bit `bit % 8` of byte `offset % len`. Models a single-event
    /// upset or a bad block on the backing store.
    BitFlip {
        /// Byte offset (reduced modulo the file length).
        offset: u64,
        /// Bit index within the byte.
        bit: u8,
    },
    /// Splice `span` bytes out of the middle of the body: the wraparound
    /// buffer's write cursor overran records that were never flushed, so
    /// the file resumes mid-record at an arbitrary boundary.
    Overrun {
        /// Start of the removed region, counted past the protected prefix
        /// (reduced modulo the body length).
        offset: u64,
        /// Bytes removed.
        span: u32,
    },
    /// The node's file is not written (or is deleted): a node crashed
    /// before trace collection, or its file system was unreachable.
    Missing,
    /// Buffer flush number `index` (0-based) is discarded instead of
    /// appended to the backing store — a whole contiguous run of records
    /// silently vanishes, but every surviving record is intact.
    DroppedFlush {
        /// Which flush to discard.
        index: u32,
    },
    /// From record `after` onward, the node's local clock reads jump by
    /// `delta` ticks — an NTP step or firmware counter glitch that breaks
    /// the linear clock-fit assumption.
    ClockJump {
        /// First affected record index.
        after: u64,
        /// Tick offset added to later timestamps (saturating).
        delta: i64,
    },
}

impl FaultKind {
    /// Whether this kind damages serialized bytes (as opposed to the live
    /// trace buffer).
    pub fn is_byte_level(&self) -> bool {
        matches!(
            self,
            FaultKind::Truncate { .. }
                | FaultKind::BitFlip { .. }
                | FaultKind::Overrun { .. }
                | FaultKind::Missing
        )
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Truncate { keep } => write!(f, "truncate@{keep}"),
            FaultKind::BitFlip { offset, bit } => write!(f, "bitflip@{offset}.{bit}"),
            FaultKind::Overrun { offset, span } => write!(f, "overrun@{offset}+{span}"),
            FaultKind::Missing => write!(f, "missing"),
            FaultKind::DroppedFlush { index } => write!(f, "dropflush@{index}"),
            FaultKind::ClockJump { after, delta } => write!(f, "clockjump@{after}+{delta}"),
        }
    }
}

/// A deterministic fault plan: which nodes get damaged, and how.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The planned faults, in application order.
    pub faults: Vec<(u16, FaultKind)>,
}

/// The xorshift-free splitmix64 generator — tiny, seedable, and good
/// enough to scatter fault sites; no external RNG dependency.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n == 0` returns 0).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Derives a plan from a seed for a job of `nodes` nodes. Damages up
    /// to three distinct nodes, always leaving at least one node intact,
    /// and always including one truncation — so strict-mode ingestion is
    /// guaranteed to fail while salvage mode has survivors to merge. At
    /// most one node goes missing entirely.
    pub fn from_seed(seed: u64, nodes: u16) -> FaultPlan {
        FaultPlan::seeded(seed, nodes, false)
    }

    /// [`FaultPlan::from_seed`] restricted to byte-level kinds — the form
    /// `ute corrupt` uses, since it only sees files already on disk.
    pub fn byte_level_from_seed(seed: u64, nodes: u16) -> FaultPlan {
        FaultPlan::seeded(seed, nodes, true)
    }

    fn seeded(seed: u64, nodes: u16, byte_only: bool) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let victims = if nodes <= 1 {
            u16::from(nodes == 1)
        } else {
            (nodes - 1).min(3)
        };
        let mut chosen: Vec<u16> = Vec::new();
        while (chosen.len() as u16) < victims {
            let n = rng.below(nodes as u64) as u16;
            if !chosen.contains(&n) {
                chosen.push(n);
            }
        }
        let mut faults = Vec::new();
        let mut missing_used = nodes <= 1; // never drop the only node
        for (i, node) in chosen.into_iter().enumerate() {
            let kind = if i == 0 {
                FaultKind::Truncate {
                    keep: rng.below(1 << 16),
                }
            } else {
                let n_kinds = if byte_only { 3 } else { 5 };
                match rng.below(n_kinds) {
                    // Offsets are reduced modulo the file length at apply
                    // time; keep them small so printed plans stay legible.
                    0 => FaultKind::BitFlip {
                        offset: rng.below(1 << 20),
                        bit: rng.below(8) as u8,
                    },
                    1 => FaultKind::Overrun {
                        offset: rng.below(1 << 20),
                        span: 16 + rng.below(1 << 12) as u32,
                    },
                    2 if !missing_used => {
                        missing_used = true;
                        FaultKind::Missing
                    }
                    2 => FaultKind::Truncate {
                        keep: rng.below(1 << 16),
                    },
                    3 => FaultKind::DroppedFlush {
                        index: rng.below(4) as u32,
                    },
                    _ => FaultKind::ClockJump {
                        after: rng.below(256),
                        delta: rng.below(1 << 30) as i64 - (1 << 29),
                    },
                }
            };
            faults.push((node, kind));
        }
        FaultPlan { faults }
    }

    /// Parses the compact spec syntax: comma-separated `NODE:KIND`
    /// entries, e.g. `0:truncate@500,1:bitflip@37.3,2:missing`. Kinds:
    /// `truncate@KEEP`, `bitflip@OFFSET.BIT`, `overrun@OFFSET+SPAN`,
    /// `missing`, `dropflush@INDEX`, `clockjump@AFTER+DELTA`.
    pub fn parse(spec: &str) -> Result<FaultPlan> {
        let bad = |what: &str| UteError::Invalid(format!("fault plan: {what} in `{spec}`"));
        let mut faults = Vec::new();
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let entry = entry.trim();
            let (node, rest) = entry
                .split_once(':')
                .ok_or_else(|| bad("entry without `node:`"))?;
            let node: u16 = node.parse().map_err(|_| bad("bad node id"))?;
            let (kind, arg) = match rest.split_once('@') {
                Some((k, a)) => (k, Some(a)),
                None => (rest, None),
            };
            let int = |s: Option<&str>| -> Result<u64> {
                s.ok_or_else(|| bad("missing @argument"))?
                    .parse()
                    .map_err(|_| bad("bad numeric argument"))
            };
            let pair = |s: Option<&str>, sep: char| -> Result<(u64, i64)> {
                let s = s.ok_or_else(|| bad("missing @argument"))?;
                let (a, b) = s
                    .split_once(sep)
                    .ok_or_else(|| bad("argument wants two values"))?;
                Ok((
                    a.parse().map_err(|_| bad("bad numeric argument"))?,
                    b.parse().map_err(|_| bad("bad numeric argument"))?,
                ))
            };
            let kind = match kind {
                "truncate" => FaultKind::Truncate { keep: int(arg)? },
                "bitflip" => {
                    let (offset, bit) = pair(arg, '.')?;
                    FaultKind::BitFlip {
                        offset,
                        bit: (bit as u64 % 8) as u8,
                    }
                }
                "overrun" => {
                    let (offset, span) = pair(arg, '+')?;
                    FaultKind::Overrun {
                        offset,
                        span: span.max(1) as u32,
                    }
                }
                "missing" => FaultKind::Missing,
                "dropflush" => FaultKind::DroppedFlush {
                    index: int(arg)? as u32,
                },
                "clockjump" => {
                    let (after, delta) = pair(arg, '+')?;
                    FaultKind::ClockJump { after, delta }
                }
                other => return Err(bad(&format!("unknown fault kind `{other}`"))),
            };
            faults.push((node, kind));
        }
        Ok(FaultPlan { faults })
    }

    /// The faults planned for one node.
    pub fn for_node(&self, node: u16) -> impl Iterator<Item = &FaultKind> {
        self.faults
            .iter()
            .filter(move |(n, _)| *n == node)
            .map(|(_, k)| k)
    }

    /// Restricts the plan to one node (what a per-node trace buffer
    /// carries).
    pub fn node_plan(&self, node: u16) -> FaultPlan {
        FaultPlan {
            faults: self
                .faults
                .iter()
                .filter(|(n, _)| *n == node)
                .cloned()
                .collect(),
        }
    }

    /// Whether the node's file should not be written at all.
    pub fn is_missing(&self, node: u16) -> bool {
        self.for_node(node).any(|k| *k == FaultKind::Missing)
    }

    /// Flush indices the node's trace buffer must discard.
    pub fn dropped_flushes(&self, node: u16) -> Vec<u32> {
        self.for_node(node)
            .filter_map(|k| match k {
                FaultKind::DroppedFlush { index } => Some(*index),
                _ => None,
            })
            .collect()
    }

    /// The node's clock-jump fault, if planned.
    pub fn clock_jump(&self, node: u16) -> Option<(u64, i64)> {
        self.for_node(node).find_map(|k| match k {
            FaultKind::ClockJump { after, delta } => Some((*after, *delta)),
            _ => None,
        })
    }

    /// Applies every byte-level fault planned for `node` to a serialized
    /// file. `protect` bytes at the front are shielded from truncation
    /// and overruns (pass the fixed header length so damage lands in the
    /// body; bit flips may still hit the header — an unreadable file is a
    /// legitimate fault). Returns `None` when the file should not exist.
    pub fn apply_to_file(&self, node: u16, mut data: Vec<u8>, protect: usize) -> Option<Vec<u8>> {
        for kind in self.for_node(node) {
            match *kind {
                FaultKind::Missing => return None,
                FaultKind::Truncate { keep } => {
                    if data.len() > protect {
                        let body = (data.len() - protect) as u64;
                        data.truncate(protect + (keep % body) as usize);
                    }
                }
                FaultKind::BitFlip { offset, bit } => {
                    if !data.is_empty() {
                        let at = (offset % data.len() as u64) as usize;
                        data[at] ^= 1 << (bit % 8);
                    }
                }
                FaultKind::Overrun { offset, span } => {
                    if data.len() > protect + 1 {
                        let body = (data.len() - protect) as u64;
                        let at = protect + (offset % body) as usize;
                        let end = (at + span.max(1) as usize).min(data.len());
                        data.drain(at..end);
                    }
                }
                FaultKind::DroppedFlush { .. } | FaultKind::ClockJump { .. } => {}
            }
        }
        Some(data)
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, (node, kind)) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{node}:{kind}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_display() {
        let spec = "0:truncate@500,1:bitflip@37.3,2:missing,3:overrun@100+64,\
                    4:dropflush@1,5:clockjump@50+-100000";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.faults.len(), 6);
        let printed = plan.to_string();
        assert_eq!(FaultPlan::parse(&printed).unwrap(), plan);
    }

    #[test]
    fn bad_specs_rejected() {
        for bad in [
            "truncate@5",       // no node
            "0:frobnicate@1",   // unknown kind
            "0:truncate",       // missing argument
            "0:bitflip@7",      // wants offset.bit
            "x:missing",        // bad node id
            "0:truncate@horse", // bad number
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted `{bad}`");
        }
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        for seed in 0..50u64 {
            let a = FaultPlan::from_seed(seed, 8);
            let b = FaultPlan::from_seed(seed, 8);
            assert_eq!(a, b);
            assert!(!a.is_empty() && a.faults.len() <= 3);
            // Always one truncation, at most one missing node, and at
            // least one node untouched.
            assert!(a
                .faults
                .iter()
                .any(|(_, k)| matches!(k, FaultKind::Truncate { .. })));
            let missing = a.faults.iter().filter(|(_, k)| *k == FaultKind::Missing);
            assert!(missing.count() <= 1);
            let touched: std::collections::HashSet<u16> =
                a.faults.iter().map(|(n, _)| *n).collect();
            assert!(touched.len() < 8);
        }
    }

    #[test]
    fn byte_level_plans_stay_byte_level() {
        for seed in 0..50u64 {
            let plan = FaultPlan::byte_level_from_seed(seed, 4);
            assert!(plan.faults.iter().all(|(_, k)| k.is_byte_level()));
        }
    }

    #[test]
    fn single_node_jobs_never_lose_their_only_file() {
        for seed in 0..50u64 {
            assert!(!FaultPlan::from_seed(seed, 1).is_missing(0));
        }
    }

    #[test]
    fn truncate_respects_protected_prefix() {
        let plan = FaultPlan::parse("0:truncate@0").unwrap();
        let data = vec![7u8; 100];
        let out = plan.apply_to_file(0, data, 30).unwrap();
        assert_eq!(out.len(), 30);
        // keep is reduced modulo the body length.
        let plan = FaultPlan::parse("0:truncate@1000").unwrap();
        let out = plan.apply_to_file(0, vec![7u8; 100], 30).unwrap();
        assert_eq!(out.len(), 30 + 1000 % 70);
    }

    #[test]
    fn bitflip_flips_exactly_one_bit() {
        let plan = FaultPlan::parse("0:bitflip@205.2").unwrap();
        let data = vec![0u8; 100];
        let out = plan.apply_to_file(0, data.clone(), 0).unwrap();
        let diffs: Vec<usize> = (0..100).filter(|&i| out[i] != data[i]).collect();
        assert_eq!(diffs, vec![205 % 100]);
        assert_eq!(out[5], 1 << 2);
    }

    #[test]
    fn overrun_splices_out_a_span() {
        let plan = FaultPlan::parse("0:overrun@10+20").unwrap();
        let data: Vec<u8> = (0..100u8).collect();
        let out = plan.apply_to_file(0, data, 30).unwrap();
        assert_eq!(out.len(), 80);
        assert_eq!(out[39], 39); // before the splice
        assert_eq!(out[40], 60); // splice joins 40 → 60
    }

    #[test]
    fn missing_file_drops_the_node() {
        let plan = FaultPlan::parse("2:missing").unwrap();
        assert!(plan.apply_to_file(2, vec![1, 2, 3], 0).is_none());
        assert!(plan.apply_to_file(1, vec![1, 2, 3], 0).is_some());
        assert!(plan.is_missing(2));
        assert!(!plan.is_missing(1));
    }

    #[test]
    fn node_plan_narrows() {
        let plan = FaultPlan::parse("0:missing,1:dropflush@0,1:clockjump@5+9").unwrap();
        let one = plan.node_plan(1);
        assert_eq!(one.faults.len(), 2);
        assert_eq!(one.dropped_flushes(1), vec![0]);
        assert_eq!(one.clock_jump(1), Some((5, 9)));
        assert_eq!(plan.clock_jump(0), None);
    }

    #[test]
    fn buffer_level_faults_leave_bytes_alone() {
        let plan = FaultPlan::parse("0:dropflush@0,0:clockjump@1+2").unwrap();
        let data: Vec<u8> = (0..50u8).collect();
        assert_eq!(plan.apply_to_file(0, data.clone(), 0).unwrap(), data);
    }
}
