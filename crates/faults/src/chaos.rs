//! Process-kill chaos harness machinery behind `ute chaos`.
//!
//! The store's numbered abort points (`ute_store::chaos`) give every
//! durability transition of a pipeline run a stable index. This module
//! supplies the rest of the harness: seeded point selection, spawning a
//! pipeline child armed to die at a chosen point (or SIGKILLed on a
//! timer), and the directory diff that proves a resumed run converged
//! to the clean run's exact bytes. Everything is deterministic in the
//! seed, matching the crate's charter: reproducible damage on purpose.

use std::path::Path;
use std::process::{Command, ExitStatus, Stdio};

use ute_core::error::{PathContext, Result, UteError};

/// splitmix64 — the same cheap, well-distributed mixer the fault plans
/// use for seed derivation.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Picks the abort-point index for kill number `kill` of `seed`, given
/// the clean run's total point count.
pub fn pick_point(seed: u64, kill: u64, points: u64) -> u64 {
    mix64(seed ^ mix64(kill)) % points.max(1)
}

/// Runs `exe args` with the store's hard-abort env var armed at `point`.
/// The child crosses store abort point `point` and dies via
/// `process::abort` — no unwinding, no flushes: `kill -9` at an exactly
/// reproducible protocol state. Returns the child's exit status.
pub fn spawn_hard_kill(exe: &Path, args: &[String], point: u64) -> Result<ExitStatus> {
    Command::new(exe)
        .args(args)
        .env(ute_store::chaos::ENV_ABORT, point.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .in_file(exe)
}

/// Runs `exe args` and kills the child (SIGKILL on Unix) after
/// `delay_ms` — the genuinely asynchronous variant: the kill lands
/// wherever the child happens to be, mid-write included. Returns the
/// child's exit status (success if it finished before the timer).
pub fn spawn_timed_kill(exe: &Path, args: &[String], delay_ms: u64) -> Result<ExitStatus> {
    let mut child = Command::new(exe)
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .in_file(exe)?;
    std::thread::sleep(std::time::Duration::from_millis(delay_ms));
    // Kill errors mean the child already exited — that is a pass, not a
    // failure (the timer raced completion).
    let _ = child.kill();
    child.wait().map_err(UteError::Io)
}

/// File names in `dir` (not recursing), sorted.
fn names_in(dir: &Path) -> Result<Vec<String>> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .in_file(dir)?
        .filter_map(|e| e.ok())
        .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
        .filter_map(|e| e.file_name().into_string().ok())
        .collect();
    names.sort();
    Ok(names)
}

/// Compares two directories file by file, ignoring names for which
/// `ignore` returns true. Returns the names that differ — present in
/// only one directory, or present in both with different bytes.
pub fn diff_dirs(a: &Path, b: &Path, ignore: impl Fn(&str) -> bool) -> Result<Vec<String>> {
    let mut names = names_in(a)?;
    names.extend(names_in(b)?);
    names.sort();
    names.dedup();
    let mut diffs = Vec::new();
    for n in names {
        if ignore(&n) {
            continue;
        }
        let (pa, pb) = (a.join(&n), b.join(&n));
        let same = match (std::fs::read(&pa), std::fs::read(&pb)) {
            (Ok(ba), Ok(bb)) => ba == bb,
            _ => false,
        };
        if !same {
            diffs.push(n);
        }
    }
    Ok(diffs)
}

/// The `*.tmp.*` (in-flight artifact) names left in `dir`.
pub fn list_temps(dir: &Path) -> Result<Vec<String>> {
    Ok(names_in(dir)?
        .into_iter()
        .filter(|n| n.contains(".tmp."))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_selection_is_deterministic_and_in_range() {
        for seed in [0u64, 1, 42, u64::MAX] {
            for kill in 0..8 {
                let p = pick_point(seed, kill, 37);
                assert!(p < 37);
                assert_eq!(p, pick_point(seed, kill, 37));
            }
        }
        // Different kills of the same seed spread over the range.
        let picks: std::collections::HashSet<u64> =
            (0..16).map(|k| pick_point(7, k, 1000)).collect();
        assert!(picks.len() > 8, "picks collapsed: {picks:?}");
        // Degenerate range never divides by zero.
        assert_eq!(pick_point(1, 1, 0), 0);
    }

    #[test]
    fn diff_dirs_reports_missing_and_differing_files() {
        let base = std::env::temp_dir().join(format!("ute_chaos_diff_{}", std::process::id()));
        let (a, b) = (base.join("a"), base.join("b"));
        std::fs::create_dir_all(&a).unwrap();
        std::fs::create_dir_all(&b).unwrap();
        std::fs::write(a.join("same"), b"x").unwrap();
        std::fs::write(b.join("same"), b"x").unwrap();
        std::fs::write(a.join("differs"), b"1").unwrap();
        std::fs::write(b.join("differs"), b"2").unwrap();
        std::fs::write(a.join("only_a"), b"z").unwrap();
        std::fs::write(a.join("skip.tmp.1"), b"t").unwrap();
        let diffs = diff_dirs(&a, &b, |n| n.contains(".tmp.")).unwrap();
        assert_eq!(diffs, vec!["differs".to_string(), "only_a".to_string()]);
        assert_eq!(list_temps(&a).unwrap(), vec!["skip.tmp.1".to_string()]);
        std::fs::remove_dir_all(&base).ok();
    }
}
