//! The per-node event→interval state machine.
//!
//! Per thread the matcher keeps a stack of open states over the implicit
//! *Running* bottom state. Pieces are closed (emitted) whenever:
//!
//! * the thread is descheduled (every open state closes a piece);
//! * a nested state begins (the enclosing state's current piece closes);
//! * the state itself ends (its final piece closes — `End`, or `Complete`
//!   if it never lost the CPU).
//!
//! Emission happens in event-time order, so the produced records are
//! naturally "in ascending order based on their end time" (§3.1), which
//! the interval-file writer enforces.

use std::collections::HashMap;

use ute_core::bebits::BeBits;
use ute_core::error::{Result, UteError};
use ute_core::event::{EventCode, MpiOp};
use ute_core::ids::{CpuId, LogicalThreadId, NodeId};
use ute_core::time::LocalTime;
use ute_format::file::{FramePolicy, IntervalFileWriter};
use ute_format::profile::{Profile, MASK_PER_NODE};
use ute_format::record::{Interval, IntervalType};
use ute_format::state::StateCode;
use ute_format::thread_table::ThreadTable;
use ute_format::value::Value;
use ute_rawtrace::file::RawTraceFile;
use ute_rawtrace::record::{ClockPayload, DispatchPayload, MarkerPayload, MpiPayload, RawEvent};

use crate::marker::MarkerMap;
use crate::node_threads;

/// Conversion options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvertOptions {
    /// Frame policy for the produced interval files.
    pub policy: FramePolicy,
    /// Tolerate *partial traces*: when tracing was delayed past program
    /// start (§2.1: "delay trace generation until a later point to trace
    /// only a portion of the code"), the stream opens mid-execution and
    /// end events may arrive without their begins. Leniently, such states
    /// are clipped to the start of the trace (an `End` piece from the
    /// first event's timestamp); strictly, they are format errors.
    ///
    /// Clipped pieces are best-effort: the enclosing structure before the
    /// trace start is unknown, so a clipped state may overlap the Running
    /// time synthesized for the same thread.
    pub lenient: bool,
    /// Salvage mode: the input stream may have been cut short by
    /// truncation or resynchronization, so states force-closed at end of
    /// trace are counted as `salvage/intervals_truncated` — they stand
    /// in for intervals whose ends were lost. Does not change the
    /// emitted bytes (EOF force-close always runs); only the accounting.
    pub salvage: bool,
}

/// Conversion statistics (Table 1 measures events/second through here).
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvertStats {
    /// Raw events consumed.
    pub events_in: u64,
    /// Interval records produced.
    pub intervals_out: u64,
    /// States force-closed at end of trace.
    pub force_closed: u64,
    /// Unmatched ends clipped to trace start (lenient mode only).
    pub clipped_starts: u64,
    /// Deepest open-state stack seen on any thread.
    pub max_stack: u64,
}

/// One node's conversion result.
#[derive(Debug)]
pub struct ConvertOutput {
    /// The node converted.
    pub node: NodeId,
    /// Serialized per-node interval file.
    pub interval_file: Vec<u8>,
    /// Statistics.
    pub stats: ConvertStats,
}

/// Extra fields attached to an open state, completed at its end event.
#[derive(Debug, Clone, Default)]
struct StateExtras {
    rank: Option<u32>,
    peer: Option<u32>,
    tag: Option<u32>,
    sent: Option<u64>,
    recvd: Option<u64>,
    seq: Option<u64>,
    address: Option<u64>,
    address_end: Option<u64>,
    marker_id: Option<u32>,
    req_seqs: Option<Vec<u64>>,
}

#[derive(Debug)]
struct OpenState {
    state: StateCode,
    /// Start of the current (not yet emitted) piece; `None` while the
    /// thread is descheduled.
    piece_start: Option<LocalTime>,
    /// Whether any piece has been emitted for this state yet.
    emitted: bool,
    extras: StateExtras,
}

#[derive(Debug, Default)]
struct ThreadCursor {
    cpu: Option<CpuId>,
    stack: Vec<OpenState>,
    /// Piece start of the implicit Running state (open only while
    /// dispatched with an empty stack).
    running_since: Option<LocalTime>,
}

/// Where an emitted record's extra field takes its value from — the
/// enum-dispatched replacement for matching field *names* per record.
#[derive(Debug, Clone)]
enum FillKind {
    Rank,
    Peer,
    Tag,
    Sent,
    Recvd,
    Seq,
    Address,
    AddressEnd,
    MarkerId,
    /// `globalTime` rides in the seq slot (clock records).
    GlobalTime,
    ReqSeqs,
    /// A field the converter has no source for; emitting a record that
    /// demands it reports the same error the name-matching path did.
    Unknown(String),
}

/// Per-record-type fill plans, compiled once per conversion. Each plan
/// lists the non-core fields of the spec in order with their value
/// source, so `emit` fills extras without touching the name table.
struct FillPlans {
    plans: Vec<(u32, Vec<(u16, FillKind)>)>,
    last: std::cell::Cell<usize>,
}

impl FillPlans {
    fn build(profile: &Profile) -> FillPlans {
        let mut plans = Vec::with_capacity(profile.specs.len());
        for (&itype_raw, spec) in &profile.specs {
            let mut fields = Vec::new();
            for f in &spec.fields {
                let name = profile
                    .field_names
                    .get(f.name_idx as usize)
                    .map(|s| s.as_str())
                    .unwrap_or("");
                let kind = match name {
                    "recType" | "start" | "dura" | "cpu" | "node" | "thread" => continue,
                    "rank" => FillKind::Rank,
                    "peer" => FillKind::Peer,
                    "tag" => FillKind::Tag,
                    "msgSizeSent" => FillKind::Sent,
                    "msgSizeRecvd" => FillKind::Recvd,
                    "seq" => FillKind::Seq,
                    "address" => FillKind::Address,
                    "addressEnd" => FillKind::AddressEnd,
                    "markerId" => FillKind::MarkerId,
                    "globalTime" => FillKind::GlobalTime,
                    "reqSeqs" => FillKind::ReqSeqs,
                    other => FillKind::Unknown(other.to_string()),
                };
                fields.push((f.name_idx, kind));
            }
            plans.push((itype_raw, fields));
        }
        plans.sort_by_key(|(t, _)| *t);
        FillPlans {
            plans,
            last: std::cell::Cell::new(0),
        }
    }

    fn plan(&self, itype_raw: u32) -> Option<&[(u16, FillKind)]> {
        if let Some((t, fields)) = self.plans.get(self.last.get()) {
            if *t == itype_raw {
                return Some(fields);
            }
        }
        let idx = self
            .plans
            .binary_search_by_key(&itype_raw, |(t, _)| *t)
            .ok()?;
        self.last.set(idx);
        Some(&self.plans[idx].1)
    }
}

struct Emitter<'a, 't> {
    writer: IntervalFileWriter<'a>,
    fills: FillPlans,
    node: NodeId,
    stats: ConvertStats,
    /// Observes every interval accepted by the writer, in file order —
    /// lets the fused pipeline consume the records without re-decoding
    /// the encoded bytes.
    tap: Option<&'t mut dyn FnMut(&Interval)>,
}

impl Emitter<'_, '_> {
    #[allow(clippy::too_many_arguments)] // the seven pieces of an interval record
    fn emit(
        &mut self,
        state: StateCode,
        bebits: BeBits,
        start: LocalTime,
        end: LocalTime,
        cpu: CpuId,
        thread: LogicalThreadId,
        extras: &StateExtras,
    ) -> Result<()> {
        let itype = IntervalType { state, bebits };
        let mut iv = Interval::basic(
            itype,
            start.ticks(),
            end.ticks().saturating_sub(start.ticks()),
            cpu,
            self.node,
            thread,
        );
        // Fill the fields the profile demands for this state. A missing
        // plan (no spec) leaves the extras empty, exactly as before —
        // the writer then rejects the unknown record type.
        if let Some(fields) = self.fills.plan(itype.to_u32()) {
            for (name_idx, kind) in fields {
                let v = match kind {
                    FillKind::Rank => Value::Uint(extras.rank.unwrap_or(0) as u64),
                    FillKind::Peer => Value::Uint(extras.peer.unwrap_or(u32::MAX) as u64),
                    FillKind::Tag => Value::Uint(extras.tag.unwrap_or(0) as u64),
                    FillKind::Sent => Value::Uint(extras.sent.unwrap_or(0)),
                    FillKind::Recvd => Value::Uint(extras.recvd.unwrap_or(0)),
                    FillKind::Seq => Value::Uint(extras.seq.unwrap_or(0)),
                    FillKind::Address => Value::Uint(extras.address.unwrap_or(0)),
                    FillKind::AddressEnd => Value::Uint(extras.address_end.unwrap_or(0)),
                    FillKind::MarkerId => Value::Uint(extras.marker_id.unwrap_or(0) as u64),
                    FillKind::GlobalTime => Value::Uint(extras.seq.unwrap_or(0)),
                    FillKind::ReqSeqs => {
                        Value::UintVec(extras.req_seqs.clone().unwrap_or_default().into())
                    }
                    FillKind::Unknown(other) => {
                        return Err(UteError::Invalid(format!(
                            "converter does not know how to fill field {other}"
                        )))
                    }
                };
                iv.extras.push((*name_idx, v));
            }
        }
        self.writer.push(&iv)?;
        if let Some(tap) = self.tap.as_mut() {
            tap(&iv);
        }
        self.stats.intervals_out += 1;
        Ok(())
    }
}

/// Converts one node's raw trace into a per-node interval file
/// (strict mode; see [`convert_node_opts`] for partial traces).
pub fn convert_node(
    file: &RawTraceFile,
    threads: &ThreadTable,
    profile: &Profile,
    markers: &MarkerMap,
    policy: FramePolicy,
) -> Result<ConvertOutput> {
    convert_node_opts(
        file,
        threads,
        profile,
        markers,
        &ConvertOptions {
            policy,
            ..ConvertOptions::default()
        },
    )
}

/// Converts one node's raw trace with explicit options.
pub fn convert_node_opts(
    file: &RawTraceFile,
    threads: &ThreadTable,
    profile: &Profile,
    markers: &MarkerMap,
    opts: &ConvertOptions,
) -> Result<ConvertOutput> {
    convert_node_inner(file, threads, profile, markers, opts, None)
}

/// [`convert_node_opts`] that additionally hands every emitted interval
/// to `tap`, in file order, as it is written. The encoded file is
/// unchanged; the tap is how the fused pipeline feeds the merge stage
/// without decoding the bytes it just encoded.
pub fn convert_node_tapped(
    file: &RawTraceFile,
    threads: &ThreadTable,
    profile: &Profile,
    markers: &MarkerMap,
    opts: &ConvertOptions,
    tap: &mut dyn FnMut(&Interval),
) -> Result<ConvertOutput> {
    convert_node_inner(file, threads, profile, markers, opts, Some(tap))
}

fn convert_node_inner(
    file: &RawTraceFile,
    threads: &ThreadTable,
    profile: &Profile,
    markers: &MarkerMap,
    opts: &ConvertOptions,
    tap: Option<&mut dyn FnMut(&Interval)>,
) -> Result<ConvertOutput> {
    let policy = opts.policy;
    let node = file.node;
    let _span = ute_obs::Span::enter("convert", format!("convert node {}", node.raw()));
    let table = node_threads(threads, node);
    let writer = IntervalFileWriter::new(
        profile,
        MASK_PER_NODE,
        node.raw(),
        &table,
        markers.table(),
        policy,
    );
    let mut em = Emitter {
        writer,
        fills: FillPlans::build(profile),
        node,
        stats: ConvertStats::default(),
        tap,
    };
    let mut cursors: HashMap<LogicalThreadId, ThreadCursor> = HashMap::new();
    let mut last_time = LocalTime(0);
    let trace_start = file
        .events
        .first()
        .map(|e| e.timestamp)
        .unwrap_or(LocalTime(0));

    for ev in &file.events {
        em.stats.events_in += 1;
        last_time = last_time.max(ev.timestamp);
        step(
            &mut em,
            &mut cursors,
            &table,
            markers,
            ev,
            opts,
            trace_start,
        )?;
    }
    // Force-close anything still open at the end of the trace.
    let mut leftover: Vec<LogicalThreadId> = cursors.keys().copied().collect();
    leftover.sort();
    for tid in leftover {
        let cur = cursors.get_mut(&tid).expect("cursor exists");
        let cpu = cur.cpu.unwrap_or(CpuId(0));
        if let Some(since) = cur.running_since.take() {
            em.emit(
                StateCode::RUNNING,
                BeBits::Complete,
                since,
                last_time,
                cpu,
                tid,
                &StateExtras::default(),
            )?;
            em.stats.force_closed += 1;
        }
        while let Some(mut open) = cur.stack.pop() {
            if let Some(ps) = open.piece_start.take() {
                let bebits = if open.emitted {
                    BeBits::End
                } else {
                    BeBits::Complete
                };
                em.emit(open.state, bebits, ps, last_time, cpu, tid, &open.extras)?;
                em.stats.force_closed += 1;
            }
        }
    }
    ute_obs::counter("convert/records_in").add(em.stats.events_in);
    ute_obs::counter("convert/intervals_out").add(em.stats.intervals_out);
    ute_obs::counter("convert/force_closed").add(em.stats.force_closed);
    if opts.salvage && em.stats.force_closed > 0 {
        ute_obs::counter("salvage/intervals_truncated").add(em.stats.force_closed);
    }
    ute_obs::counter("convert/clipped_starts").add(em.stats.clipped_starts);
    ute_obs::gauge("convert/match_stack_max").set_max(em.stats.max_stack as f64);
    Ok(ConvertOutput {
        node,
        interval_file: em.writer.finish(),
        stats: em.stats,
    })
}

/// Closes the piece of the top open state (or Running) at `now`, because
/// a nested state begins or the thread is descheduled.
fn pause_top(
    em: &mut Emitter,
    cur: &mut ThreadCursor,
    tid: LogicalThreadId,
    now: LocalTime,
) -> Result<()> {
    let cpu = cur.cpu.unwrap_or(CpuId(0));
    if let Some(open) = cur.stack.last_mut() {
        if let Some(ps) = open.piece_start.take() {
            let bebits = if open.emitted {
                BeBits::Continuation
            } else {
                BeBits::Begin
            };
            let extras = open.extras.clone();
            open.emitted = true;
            em.emit(open.state, bebits, ps, now, cpu, tid, &extras)?;
        }
    } else if let Some(since) = cur.running_since.take() {
        // Running pieces are independent complete intervals; the Running
        // "state" conceptually spans gaps but each burst stands alone.
        em.emit(
            StateCode::RUNNING,
            BeBits::Complete,
            since,
            now,
            cpu,
            tid,
            &StateExtras::default(),
        )?;
    }
    Ok(())
}

/// Resumes the top open state (or Running) at `now`, after a dispatch or
/// after a nested state ended.
fn resume_top(cur: &mut ThreadCursor, now: LocalTime) {
    if cur.cpu.is_none() {
        return;
    }
    if let Some(open) = cur.stack.last_mut() {
        open.piece_start = Some(now);
    } else {
        cur.running_since = Some(now);
    }
}

fn mpi_extras(p: &MpiPayload, op: MpiOp) -> StateExtras {
    StateExtras {
        rank: Some(p.rank),
        peer: Some(p.peer),
        tag: Some(p.tag),
        sent: if op.is_p2p_send() || op.is_collective() {
            Some(p.bytes)
        } else {
            None
        },
        recvd: if op.is_p2p_recv() {
            Some(p.bytes)
        } else {
            None
        },
        seq: Some(p.seq),
        address: Some(p.address),
        ..StateExtras::default()
    }
}

fn step(
    em: &mut Emitter,
    cursors: &mut HashMap<LogicalThreadId, ThreadCursor>,
    table: &ThreadTable,
    markers: &MarkerMap,
    ev: &RawEvent,
    opts: &ConvertOptions,
    trace_start: LocalTime,
) -> Result<()> {
    let now = ev.timestamp;
    match ev.code {
        EventCode::TraceStart | EventCode::TraceStop | EventCode::MarkerDef => Ok(()),

        EventCode::GlobalClock => {
            let p = ClockPayload::from_bytes(&ev.payload)?;
            // Clock records ride along as zero-duration CLOCK intervals on
            // pseudo-thread 0; `seq` carries the global timestamp into the
            // profile's globalTime field.
            let extras = StateExtras {
                seq: Some(p.global.ticks()),
                ..StateExtras::default()
            };
            em.emit(
                StateCode::CLOCK,
                BeBits::Complete,
                now,
                now,
                CpuId(0),
                LogicalThreadId(0),
                &extras,
            )
        }

        EventCode::ThreadDispatch => {
            let p = DispatchPayload::from_bytes(&ev.payload)?;
            let cur = cursors.entry(p.thread).or_default();
            if cur.cpu.is_some() {
                if !opts.lenient {
                    return Err(UteError::corrupt(format!(
                        "thread {} dispatched while already running",
                        p.thread
                    )));
                }
                // Partial trace lost the undispatch: treat as migration.
                pause_top(em, cur, p.thread, now)?;
            }
            cur.cpu = Some(p.cpu);
            resume_top(cur, now);
            Ok(())
        }

        EventCode::ThreadUndispatch => {
            let p = DispatchPayload::from_bytes(&ev.payload)?;
            let cur = cursors.entry(p.thread).or_default();
            if cur.cpu.is_none() {
                if !opts.lenient {
                    return Err(UteError::corrupt(format!(
                        "thread {} undispatched while not running",
                        p.thread
                    )));
                }
                // Thread was running since before the trace started.
                em.stats.clipped_starts += 1;
                cur.cpu = Some(p.cpu);
                cur.running_since = Some(trace_start);
            }
            pause_top(em, cur, p.thread, now)?;
            cur.cpu = None;
            Ok(())
        }

        EventCode::MpiBegin(op) => {
            let p = MpiPayload::from_bytes(&ev.payload)?;
            let cur = cursors.entry(p.thread).or_default();
            pause_top(em, cur, p.thread, now)?;
            cur.stack.push(OpenState {
                state: StateCode::mpi(op),
                piece_start: Some(now),
                emitted: false,
                extras: mpi_extras(&p, op),
            });
            em.stats.max_stack = em.stats.max_stack.max(cur.stack.len() as u64);
            Ok(())
        }

        EventCode::MpiEnd(op) => {
            let p = MpiPayload::from_bytes(&ev.payload)?;
            let cur = cursors.entry(p.thread).or_default();
            let popped = match cur.stack.pop() {
                Some(open) => Some(open),
                None if opts.lenient => {
                    // The begin predates the trace: clip to trace start.
                    em.stats.clipped_starts += 1;
                    Some(OpenState {
                        state: StateCode::mpi(op),
                        piece_start: Some(trace_start.min(now)),
                        emitted: true, // never saw the Begin piece
                        extras: StateExtras::default(),
                    })
                }
                None => None,
            };
            let mut open = popped.ok_or_else(|| {
                UteError::corrupt(format!("{}: end without begin on thread {}", op, p.thread))
            })?;
            if open.state != StateCode::mpi(op) {
                return Err(UteError::corrupt(format!(
                    "mismatched end: open state {} closed by {}",
                    open.state,
                    op.name()
                )));
            }
            // The end event carries the completed call's arguments.
            open.extras = mpi_extras(&p, op);
            let cpu = cur.cpu.unwrap_or(CpuId(0));
            let ps = open.piece_start.take().ok_or_else(|| {
                UteError::corrupt(format!(
                    "{} ended while its thread was descheduled",
                    op.name()
                ))
            })?;
            let bebits = if open.emitted {
                BeBits::End
            } else {
                BeBits::Complete
            };
            em.emit(open.state, bebits, ps, now, cpu, p.thread, &open.extras)?;
            resume_top(cur, now);
            Ok(())
        }

        EventCode::MarkerBegin => {
            let p = MarkerPayload::from_bytes(&ev.payload)?;
            let rank = table
                .lookup(em.node, p.thread)
                .map(|e| e.task.raw())
                .unwrap_or(u32::MAX);
            let unified = markers.unify(rank, p.local_id).ok_or_else(|| {
                UteError::corrupt(format!(
                    "marker begin for undefined id {} (rank {rank})",
                    p.local_id
                ))
            })?;
            let cur = cursors.entry(p.thread).or_default();
            pause_top(em, cur, p.thread, now)?;
            cur.stack.push(OpenState {
                state: StateCode::MARKER,
                piece_start: Some(now),
                emitted: false,
                extras: StateExtras {
                    marker_id: Some(unified),
                    address: Some(p.address),
                    ..StateExtras::default()
                },
            });
            em.stats.max_stack = em.stats.max_stack.max(cur.stack.len() as u64);
            Ok(())
        }

        EventCode::MarkerEnd => {
            let p = MarkerPayload::from_bytes(&ev.payload)?;
            let cur = cursors.entry(p.thread).or_default();
            let popped = match cur.stack.pop() {
                Some(open) => Some(open),
                None if opts.lenient => {
                    // Marker opened before the (delayed) trace started.
                    em.stats.clipped_starts += 1;
                    let rank = table
                        .lookup(em.node, p.thread)
                        .map(|e| e.task.raw())
                        .unwrap_or(u32::MAX);
                    Some(OpenState {
                        state: StateCode::MARKER,
                        piece_start: Some(trace_start.min(now)),
                        emitted: true,
                        extras: StateExtras {
                            marker_id: markers.unify(rank, p.local_id).or(Some(0)),
                            ..StateExtras::default()
                        },
                    })
                }
                None => None,
            };
            let mut open = popped.ok_or_else(|| {
                UteError::corrupt(format!("marker end without begin on thread {}", p.thread))
            })?;
            if open.state != StateCode::MARKER {
                return Err(UteError::corrupt(format!(
                    "marker end closed a {} state",
                    open.state
                )));
            }
            open.extras.address_end = Some(p.address);
            let cpu = cur.cpu.unwrap_or(CpuId(0));
            let ps = open.piece_start.take().ok_or_else(|| {
                UteError::corrupt("marker ended while its thread was descheduled".to_string())
            })?;
            let bebits = if open.emitted {
                BeBits::End
            } else {
                BeBits::Complete
            };
            em.emit(open.state, bebits, ps, now, cpu, p.thread, &open.extras)?;
            resume_top(cur, now);
            Ok(())
        }

        EventCode::Syscall | EventCode::PageFault | EventCode::Interrupt => {
            let p = DispatchPayload::from_bytes(&ev.payload)?;
            let state = match ev.code {
                EventCode::Syscall => StateCode::SYSCALL,
                EventCode::PageFault => StateCode::PAGE_FAULT,
                _ => StateCode::INTERRUPT,
            };
            let cpu = cursors
                .get(&p.thread)
                .and_then(|c| c.cpu)
                .unwrap_or(CpuId(0));
            // Point system events become zero-duration complete intervals
            // without splitting the enclosing state.
            em.emit(
                state,
                BeBits::Complete,
                now,
                now,
                cpu,
                p.thread,
                &StateExtras::default(),
            )
        }

        EventCode::IoStart => {
            let p = DispatchPayload::from_bytes(&ev.payload)?;
            let cur = cursors.entry(p.thread).or_default();
            pause_top(em, cur, p.thread, now)?;
            cur.stack.push(OpenState {
                state: StateCode::IO,
                piece_start: Some(now),
                emitted: false,
                extras: StateExtras::default(),
            });
            em.stats.max_stack = em.stats.max_stack.max(cur.stack.len() as u64);
            Ok(())
        }

        EventCode::IoEnd => {
            let p = DispatchPayload::from_bytes(&ev.payload)?;
            let cur = cursors.entry(p.thread).or_default();
            let popped = match cur.stack.pop() {
                Some(open) => Some(open),
                None if opts.lenient => {
                    em.stats.clipped_starts += 1;
                    Some(OpenState {
                        state: StateCode::IO,
                        piece_start: Some(trace_start.min(now)),
                        emitted: true,
                        extras: StateExtras::default(),
                    })
                }
                None => None,
            };
            let mut open = popped.ok_or_else(|| {
                UteError::corrupt(format!("IoEnd without IoStart on thread {}", p.thread))
            })?;
            if open.state != StateCode::IO {
                return Err(UteError::corrupt("IoEnd closed a non-IO state"));
            }
            let cpu = cur.cpu.unwrap_or(CpuId(0));
            let ps = open.piece_start.take().unwrap_or(now);
            let bebits = if open.emitted {
                BeBits::End
            } else {
                BeBits::Complete
            };
            em.emit(open.state, bebits, ps, now, cpu, p.thread, &open.extras)?;
            resume_top(cur, now);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_core::ids::{Pid, SystemThreadId, TaskId, ThreadType};
    use ute_format::file::IntervalFileReader;
    use ute_format::thread_table::ThreadEntry;

    fn table() -> ThreadTable {
        let mut t = ThreadTable::new();
        t.register(ThreadEntry {
            task: TaskId(0),
            pid: Pid(1),
            system_tid: SystemThreadId(1),
            node: NodeId(0),
            logical: LogicalThreadId(0),
            ttype: ThreadType::Mpi,
        })
        .unwrap();
        t
    }

    fn dispatch(t: u16, cpu: u16, at: u64, on: bool) -> RawEvent {
        RawEvent::new(
            if on {
                EventCode::ThreadDispatch
            } else {
                EventCode::ThreadUndispatch
            },
            LocalTime(at),
            DispatchPayload {
                thread: LogicalThreadId(t),
                cpu: CpuId(cpu),
            }
            .to_bytes(),
        )
    }

    fn mpi(op: MpiOp, begin: bool, t: u16, at: u64, bytes: u64, seq: u64) -> RawEvent {
        let mut p = MpiPayload::bare(LogicalThreadId(t), 0);
        p.bytes = bytes;
        p.seq = seq;
        p.peer = 1;
        RawEvent::new(
            if begin {
                EventCode::MpiBegin(op)
            } else {
                EventCode::MpiEnd(op)
            },
            LocalTime(at),
            p.to_bytes(),
        )
    }

    fn convert(events: Vec<RawEvent>) -> (Profile, Vec<u8>, ConvertStats) {
        let profile = Profile::standard();
        let file = RawTraceFile::new(NodeId(0), events);
        let markers = MarkerMap::build(std::slice::from_ref(&file)).unwrap();
        let out =
            convert_node(&file, &table(), &profile, &markers, FramePolicy::default()).unwrap();
        (profile, out.interval_file, out.stats)
    }

    fn decode(profile: &Profile, bytes: &[u8]) -> Vec<Interval> {
        let r = IntervalFileReader::open(bytes, profile).unwrap();
        r.intervals().map(|x| x.unwrap()).collect()
    }

    #[test]
    fn uninterrupted_call_is_one_complete_interval() {
        let (p, bytes, stats) = convert(vec![
            dispatch(0, 0, 0, true),
            mpi(MpiOp::Send, true, 0, 100, 0, 0),
            mpi(MpiOp::Send, false, 0, 300, 4096, 7),
            dispatch(0, 0, 400, false),
        ]);
        let ivs = decode(&p, &bytes);
        // Running [0,100], Send [100,300] complete, Running [300,400].
        assert_eq!(stats.intervals_out, 3);
        let send = ivs
            .iter()
            .find(|iv| iv.itype.state == StateCode::mpi(MpiOp::Send))
            .unwrap();
        assert_eq!(send.itype.bebits, BeBits::Complete);
        assert_eq!(send.start, 100);
        assert_eq!(send.duration, 200);
        assert_eq!(send.extra(&p, "msgSizeSent"), Some(&Value::Uint(4096)));
        assert_eq!(send.extra(&p, "seq"), Some(&Value::Uint(7)));
        let runnings: Vec<_> = ivs
            .iter()
            .filter(|iv| iv.itype.state == StateCode::RUNNING)
            .collect();
        assert_eq!(runnings.len(), 2);
    }

    #[test]
    fn descheduled_call_splits_into_begin_and_end_pieces() {
        // The §1.2 scenario: Recv begins, thread is descheduled while
        // blocked, resumes, Recv ends.
        let (p, bytes, _) = convert(vec![
            dispatch(0, 0, 0, true),
            mpi(MpiOp::Recv, true, 0, 100, 0, 0),
            dispatch(0, 0, 150, false),
            dispatch(0, 1, 500, true), // resumes on another CPU
            mpi(MpiOp::Recv, false, 0, 600, 2048, 3),
            dispatch(0, 1, 700, false),
        ]);
        let ivs = decode(&p, &bytes);
        let pieces: Vec<_> = ivs
            .iter()
            .filter(|iv| iv.itype.state == StateCode::mpi(MpiOp::Recv))
            .collect();
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].itype.bebits, BeBits::Begin);
        assert_eq!(pieces[0].start, 100);
        assert_eq!(pieces[0].end(), 150);
        assert_eq!(pieces[0].cpu, CpuId(0));
        assert_eq!(pieces[1].itype.bebits, BeBits::End);
        assert_eq!(pieces[1].start, 500);
        assert_eq!(pieces[1].end(), 600);
        assert_eq!(pieces[1].cpu, CpuId(1)); // migrated
        assert_eq!(
            pieces[1].extra(&p, "msgSizeRecvd"),
            Some(&Value::Uint(2048))
        );
    }

    #[test]
    fn double_deschedule_produces_continuation() {
        let (p, bytes, _) = convert(vec![
            dispatch(0, 0, 0, true),
            mpi(MpiOp::Recv, true, 0, 10, 0, 0),
            dispatch(0, 0, 20, false),
            dispatch(0, 0, 30, true),
            dispatch(0, 0, 40, false),
            dispatch(0, 0, 50, true),
            mpi(MpiOp::Recv, false, 0, 60, 128, 1),
            dispatch(0, 0, 70, false),
        ]);
        let ivs = decode(&p, &bytes);
        let bebits: Vec<BeBits> = ivs
            .iter()
            .filter(|iv| iv.itype.state == StateCode::mpi(MpiOp::Recv))
            .map(|iv| iv.itype.bebits)
            .collect();
        assert_eq!(
            bebits,
            vec![BeBits::Begin, BeBits::Continuation, BeBits::End]
        );
        assert_eq!(ute_core::bebits::count_states(&bebits), Some(1));
    }

    #[test]
    fn nested_states_split_the_outer() {
        // Marker around an MPI call: the marker gets Begin + End pieces
        // around the send, the send is Complete.
        let marker_def = RawEvent::new(
            EventCode::MarkerDef,
            LocalTime(5),
            ute_rawtrace::record::MarkerDefPayload {
                local_id: 1,
                rank: 0,
                name: "Phase".into(),
            }
            .to_bytes(),
        );
        let mb = RawEvent::new(
            EventCode::MarkerBegin,
            LocalTime(10),
            MarkerPayload {
                thread: LogicalThreadId(0),
                local_id: 1,
                address: 0x40,
            }
            .to_bytes(),
        );
        let me = RawEvent::new(
            EventCode::MarkerEnd,
            LocalTime(90),
            MarkerPayload {
                thread: LogicalThreadId(0),
                local_id: 1,
                address: 0x80,
            }
            .to_bytes(),
        );
        let (p, bytes, _) = convert(vec![
            dispatch(0, 0, 0, true),
            marker_def,
            mb,
            mpi(MpiOp::Send, true, 0, 30, 0, 0),
            mpi(MpiOp::Send, false, 0, 60, 512, 1),
            me,
            dispatch(0, 0, 100, false),
        ]);
        let ivs = decode(&p, &bytes);
        let marker_pieces: Vec<_> = ivs
            .iter()
            .filter(|iv| iv.itype.state == StateCode::MARKER)
            .collect();
        assert_eq!(marker_pieces.len(), 2);
        assert_eq!(marker_pieces[0].itype.bebits, BeBits::Begin);
        assert_eq!((marker_pieces[0].start, marker_pieces[0].end()), (10, 30));
        assert_eq!(marker_pieces[1].itype.bebits, BeBits::End);
        assert_eq!((marker_pieces[1].start, marker_pieces[1].end()), (60, 90));
        assert_eq!(
            marker_pieces[1].extra(&p, "addressEnd"),
            Some(&Value::Uint(0x80))
        );
        let send = ivs
            .iter()
            .find(|iv| iv.itype.state == StateCode::mpi(MpiOp::Send))
            .unwrap();
        assert_eq!(send.itype.bebits, BeBits::Complete);
    }

    #[test]
    fn clock_records_pass_through() {
        let clock = RawEvent::new(
            EventCode::GlobalClock,
            LocalTime(42),
            ClockPayload {
                global: ute_core::time::Time(40),
            }
            .to_bytes(),
        );
        let (p, bytes, _) = convert(vec![clock]);
        let ivs = decode(&p, &bytes);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].itype.state, StateCode::CLOCK);
        assert_eq!(ivs[0].start, 42);
        assert_eq!(ivs[0].duration, 0);
        assert_eq!(ivs[0].extra(&p, "globalTime"), Some(&Value::Uint(40)));
    }

    #[test]
    fn point_system_events_do_not_split_states() {
        let sys = RawEvent::new(
            EventCode::Syscall,
            LocalTime(50),
            DispatchPayload {
                thread: LogicalThreadId(0),
                cpu: CpuId(0),
            }
            .to_bytes(),
        );
        let (p, bytes, _) = convert(vec![
            dispatch(0, 0, 0, true),
            mpi(MpiOp::Send, true, 0, 10, 0, 0),
            sys,
            mpi(MpiOp::Send, false, 0, 100, 64, 1),
            dispatch(0, 0, 120, false),
        ]);
        let ivs = decode(&p, &bytes);
        let send_pieces = ivs
            .iter()
            .filter(|iv| iv.itype.state == StateCode::mpi(MpiOp::Send))
            .count();
        assert_eq!(send_pieces, 1, "syscall must not split the MPI interval");
        assert!(ivs.iter().any(|iv| iv.itype.state == StateCode::SYSCALL));
    }

    #[test]
    fn unmatched_end_is_corrupt() {
        let events = vec![
            dispatch(0, 0, 0, true),
            mpi(MpiOp::Send, false, 0, 10, 0, 0),
        ];
        let profile = Profile::standard();
        let file = RawTraceFile::new(NodeId(0), events);
        let markers = MarkerMap::default();
        assert!(convert_node(&file, &table(), &profile, &markers, FramePolicy::default()).is_err());
    }

    #[test]
    fn open_states_force_closed_at_eof() {
        let (p, bytes, stats) = convert(vec![
            dispatch(0, 0, 0, true),
            mpi(MpiOp::Recv, true, 0, 10, 0, 0),
            // trace ends with the call (and Running beneath it) open
        ]);
        let ivs = decode(&p, &bytes);
        assert!(stats.force_closed >= 1);
        let recv = ivs
            .iter()
            .find(|iv| iv.itype.state == StateCode::mpi(MpiOp::Recv))
            .unwrap();
        assert_eq!(recv.itype.bebits, BeBits::Complete);
    }

    #[test]
    fn output_is_end_time_ordered() {
        let (p, bytes, _) = convert(vec![
            dispatch(0, 0, 0, true),
            mpi(MpiOp::Send, true, 0, 10, 0, 0),
            mpi(MpiOp::Send, false, 0, 20, 1, 1),
            mpi(MpiOp::Recv, true, 0, 30, 0, 0),
            dispatch(0, 0, 35, false),
            dispatch(0, 0, 80, true),
            mpi(MpiOp::Recv, false, 0, 90, 1, 2),
            dispatch(0, 0, 95, false),
        ]);
        let ivs = decode(&p, &bytes);
        for w in ivs.windows(2) {
            assert!(w[0].end() <= w[1].end());
        }
    }
}

#[cfg(test)]
mod lenient_tests {
    use super::*;
    use ute_core::ids::{Pid, SystemThreadId, TaskId, ThreadType};
    use ute_format::file::IntervalFileReader;
    use ute_format::thread_table::ThreadEntry;

    fn table() -> ThreadTable {
        let mut t = ThreadTable::new();
        t.register(ThreadEntry {
            task: TaskId(0),
            pid: Pid(1),
            system_tid: SystemThreadId(1),
            node: NodeId(0),
            logical: LogicalThreadId(0),
            ttype: ThreadType::Mpi,
        })
        .unwrap();
        t
    }

    fn mpi_end(op: MpiOp, t: u16, at: u64) -> RawEvent {
        let mut p = MpiPayload::bare(LogicalThreadId(t), 0);
        p.bytes = 64;
        p.seq = 9;
        RawEvent::new(EventCode::MpiEnd(op), LocalTime(at), p.to_bytes())
    }

    fn undispatch(t: u16, cpu: u16, at: u64) -> RawEvent {
        RawEvent::new(
            EventCode::ThreadUndispatch,
            LocalTime(at),
            DispatchPayload {
                thread: LogicalThreadId(t),
                cpu: CpuId(cpu),
            }
            .to_bytes(),
        )
    }

    fn run(events: Vec<RawEvent>, lenient: bool) -> Result<(Profile, ConvertOutput)> {
        let profile = Profile::standard();
        let file = RawTraceFile::new(NodeId(0), events);
        let markers = MarkerMap::default();
        let out = convert_node_opts(
            &file,
            &table(),
            &profile,
            &markers,
            &ConvertOptions {
                policy: FramePolicy::default(),
                lenient,
                ..ConvertOptions::default()
            },
        )?;
        Ok((profile, out))
    }

    #[test]
    fn partial_trace_end_without_begin_clips_to_trace_start() {
        // A delayed-start trace opening in the middle of a Recv: the first
        // event is the undispatch of the blocked thread, then later the
        // Recv end. Strict mode rejects it; lenient mode clips.
        let events = vec![
            undispatch(0, 1, 1_000),
            RawEvent::new(
                EventCode::ThreadDispatch,
                LocalTime(2_000),
                DispatchPayload {
                    thread: LogicalThreadId(0),
                    cpu: CpuId(1),
                }
                .to_bytes(),
            ),
            mpi_end(MpiOp::Recv, 0, 2_500),
        ];
        assert!(run(events.clone(), false).is_err());
        let (p, out) = run(events, true).unwrap();
        assert!(out.stats.clipped_starts >= 2); // undispatch + recv end
        let r = IntervalFileReader::open(&out.interval_file, &p).unwrap();
        let ivs: Vec<Interval> = r.intervals().map(|x| x.unwrap()).collect();
        let recv = ivs
            .iter()
            .find(|iv| iv.itype.state == StateCode::mpi(MpiOp::Recv))
            .unwrap();
        // Clipped piece: an End from the trace's first timestamp.
        assert_eq!(recv.itype.bebits, BeBits::End);
        assert_eq!(recv.start, 1_000);
        assert_eq!(recv.end(), 2_500);
        // The pre-trace Running burst was also synthesized.
        assert!(ivs
            .iter()
            .any(|iv| iv.itype.state == StateCode::RUNNING && iv.start == 1_000));
    }

    #[test]
    fn lenient_double_dispatch_treated_as_migration() {
        let d = |cpu: u16, at: u64| {
            RawEvent::new(
                EventCode::ThreadDispatch,
                LocalTime(at),
                DispatchPayload {
                    thread: LogicalThreadId(0),
                    cpu: CpuId(cpu),
                }
                .to_bytes(),
            )
        };
        let events = vec![d(0, 10), d(1, 50), undispatch(0, 1, 90)];
        assert!(run(events.clone(), false).is_err());
        let (p, out) = run(events, true).unwrap();
        let r = IntervalFileReader::open(&out.interval_file, &p).unwrap();
        let runnings: Vec<Interval> = r
            .intervals()
            .map(|x| x.unwrap())
            .filter(|iv| iv.itype.state == StateCode::RUNNING)
            .collect();
        // Two Running bursts: [10,50] on cpu0, [50,90] on cpu1.
        assert_eq!(runnings.len(), 2);
        assert_eq!(runnings[0].cpu, CpuId(0));
        assert_eq!(runnings[1].cpu, CpuId(1));
    }
}

#[cfg(test)]
mod lenient_marker_io_tests {
    use super::*;
    use ute_core::ids::{Pid, SystemThreadId, TaskId, ThreadType};
    use ute_format::file::IntervalFileReader;
    use ute_format::thread_table::ThreadEntry;

    #[test]
    fn lenient_marker_and_io_ends_clip_to_trace_start() {
        let mut table = ThreadTable::new();
        table
            .register(ThreadEntry {
                task: TaskId(0),
                pid: Pid(1),
                system_tid: SystemThreadId(1),
                node: NodeId(0),
                logical: LogicalThreadId(0),
                ttype: ThreadType::Mpi,
            })
            .unwrap();
        let d = |on: bool, at: u64| {
            RawEvent::new(
                if on {
                    EventCode::ThreadDispatch
                } else {
                    EventCode::ThreadUndispatch
                },
                LocalTime(at),
                DispatchPayload {
                    thread: LogicalThreadId(0),
                    cpu: CpuId(0),
                }
                .to_bytes(),
            )
        };
        // Trace opens inside marker 1 and an IO; both close mid-trace.
        let events = vec![
            d(true, 1_000),
            RawEvent::new(
                EventCode::IoEnd,
                LocalTime(1_500),
                DispatchPayload {
                    thread: LogicalThreadId(0),
                    cpu: CpuId(0),
                }
                .to_bytes(),
            ),
            RawEvent::new(
                EventCode::MarkerEnd,
                LocalTime(2_000),
                MarkerPayload {
                    thread: LogicalThreadId(0),
                    local_id: 1,
                    address: 0x80,
                }
                .to_bytes(),
            ),
            d(false, 2_500),
        ];
        let profile = Profile::standard();
        let file = RawTraceFile::new(NodeId(0), events);
        let markers = MarkerMap::default();
        let strict = convert_node(&file, &table, &profile, &markers, FramePolicy::default());
        assert!(strict.is_err());
        let out = convert_node_opts(
            &file,
            &table,
            &profile,
            &markers,
            &ConvertOptions {
                policy: FramePolicy::default(),
                lenient: true,
                ..ConvertOptions::default()
            },
        )
        .unwrap();
        assert_eq!(out.stats.clipped_starts, 2);
        let r = IntervalFileReader::open(&out.interval_file, &profile).unwrap();
        let ivs: Vec<Interval> = r.intervals().map(|x| x.unwrap()).collect();
        let io = ivs
            .iter()
            .find(|iv| iv.itype.state == StateCode::IO)
            .unwrap();
        assert_eq!(
            (io.start, io.end(), io.itype.bebits),
            (1_000, 1_500, BeBits::End)
        );
        let marker = ivs
            .iter()
            .find(|iv| iv.itype.state == StateCode::MARKER)
            .unwrap();
        assert_eq!(marker.itype.bebits, BeBits::End);
        assert_eq!(marker.end(), 2_000);
        // Unknown pre-trace marker id falls back to 0.
        assert_eq!(
            marker.extra(&profile, "markerId"),
            Some(&ute_format::value::Value::Uint(0))
        );
    }
}
