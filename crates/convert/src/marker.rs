//! Marker-id unification (§3.1).
//!
//! Scans every raw trace file's `MarkerDef` records and assigns one
//! globally unique identifier per distinct marker *string*. The mapping
//! from each task's local id to the unified id is kept so begin/end marker
//! events can be rewritten during conversion.

use std::collections::HashMap;

use ute_core::error::Result;
use ute_core::event::EventCode;
use ute_rawtrace::file::RawTraceFile;
use ute_rawtrace::record::MarkerDefPayload;

/// Job-wide marker identifier assignment.
#[derive(Debug, Clone, Default)]
pub struct MarkerMap {
    /// Unified id per marker string, in first-seen order (ids from 1).
    by_name: HashMap<String, u32>,
    /// (task rank, task-local id) → unified id.
    by_task_local: HashMap<(u32, u32), u32>,
    /// Unified id → string, for the interval file's marker table.
    names: Vec<(u32, String)>,
}

impl MarkerMap {
    /// Scans all files' MarkerDef records.
    pub fn build(files: &[RawTraceFile]) -> Result<MarkerMap> {
        let mut m = MarkerMap::default();
        for f in files {
            for e in &f.events {
                if e.code == EventCode::MarkerDef {
                    let def = MarkerDefPayload::from_bytes(&e.payload)?;
                    let next = m.by_name.len() as u32 + 1;
                    let id = *m.by_name.entry(def.name.clone()).or_insert_with(|| {
                        m.names.push((next, def.name.clone()));
                        next
                    });
                    m.by_task_local.insert((def.rank, def.local_id), id);
                }
            }
        }
        Ok(m)
    }

    /// The unified id of a task-local marker id.
    pub fn unify(&self, rank: u32, local_id: u32) -> Option<u32> {
        self.by_task_local.get(&(rank, local_id)).copied()
    }

    /// The unified id of a marker string.
    pub fn id_of(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// The unified (id, string) table, for interval-file headers.
    pub fn table(&self) -> &[(u32, String)] {
        &self.names
    }

    /// Number of distinct marker strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no markers were defined.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_core::ids::NodeId;
    use ute_core::time::LocalTime;
    use ute_rawtrace::record::RawEvent;

    fn def(rank: u32, local_id: u32, name: &str, t: u64) -> RawEvent {
        RawEvent::new(
            EventCode::MarkerDef,
            LocalTime(t),
            MarkerDefPayload {
                local_id,
                rank,
                name: name.into(),
            }
            .to_bytes(),
        )
    }

    #[test]
    fn same_string_different_tasks_unify() {
        // Task 0 defines "Init" as local id 1; task 1 defines "Other" as
        // 1 and "Init" as 2 — the §3.1 collision.
        let f0 = RawTraceFile::new(NodeId(0), vec![def(0, 1, "Init", 10)]);
        let f1 = RawTraceFile::new(NodeId(1), vec![def(1, 1, "Other", 5), def(1, 2, "Init", 6)]);
        let m = MarkerMap::build(&[f0, f1]).unwrap();
        assert_eq!(m.len(), 2);
        let init = m.id_of("Init").unwrap();
        let other = m.id_of("Other").unwrap();
        assert_ne!(init, other);
        assert_eq!(m.unify(0, 1), Some(init));
        assert_eq!(m.unify(1, 2), Some(init));
        assert_eq!(m.unify(1, 1), Some(other));
        assert_eq!(m.unify(9, 9), None);
    }

    #[test]
    fn table_lists_each_string_once() {
        let f0 = RawTraceFile::new(
            NodeId(0),
            vec![def(0, 1, "A", 1), def(1, 1, "A", 2), def(1, 2, "B", 3)],
        );
        let m = MarkerMap::build(&[f0]).unwrap();
        assert_eq!(m.table().len(), 2);
        let names: Vec<&str> = m.table().iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, vec!["A", "B"]);
    }

    #[test]
    fn empty_files_empty_map() {
        let m = MarkerMap::build(&[]).unwrap();
        assert!(m.is_empty());
    }
}
