//! # ute-convert — event-to-interval conversion (§3.1)
//!
//! "Matching events is the first step in the conversion process. A begin
//! event is matched with its end event to create an interval, provided
//! that there is no other events in between. If there are other events,
//! such as user marker events and thread dispatch events, the interval is
//! divided into multiple interval pieces."
//!
//! The converter walks each node's raw event stream in time order keeping,
//! per thread, a stack of open states (MPI call, user markers, I/O) plus
//! the implicit *Running* bottom state. Thread dispatch boundaries and
//! nested state transitions close the current piece of every affected
//! state; the piece's bebits record whether it is the first (`Begin`),
//! an interior (`Continuation`), the final (`End`), or the only
//! (`Complete`) piece of its state.
//!
//! The converter also re-assigns **globally unique marker identifiers**:
//! the tracing library hands out ids per task without cross-task
//! communication, so "the identifier for a marker with the string, say
//! 'Initial Phase', may be different in different tasks. The convert
//! utility re-assigns a unique identifier to each user-defined marker
//! string in the trace files."

pub mod marker;
pub mod matcher;

use crossbeam::thread as cb_thread;

use ute_core::error::{Result, UteError};
use ute_core::ids::NodeId;
use ute_format::file::FramePolicy;
use ute_format::profile::Profile;
use ute_format::thread_table::ThreadTable;
use ute_rawtrace::file::RawTraceFile;

pub use marker::MarkerMap;
pub use matcher::{
    convert_node, convert_node_opts, convert_node_tapped, ConvertOptions, ConvertOutput,
    ConvertStats,
};

/// Converts a whole job's raw trace files into per-node interval files.
///
/// The marker map is built over *all* files first (so identical marker
/// strings from different tasks share one id), then each node is
/// converted — in parallel when `parallel` is set, one worker per node.
///
/// `threads` supplies process/thread identity, which the AIX trace
/// facility recorded as side metadata; our simulator hands over its
/// ground-truth table.
pub fn convert_job(
    files: &[RawTraceFile],
    threads: &ThreadTable,
    profile: &Profile,
    policy: FramePolicy,
    parallel: bool,
) -> Result<Vec<ConvertOutput>> {
    convert_job_opts(
        files,
        threads,
        profile,
        &ConvertOptions {
            policy,
            ..ConvertOptions::default()
        },
        parallel,
    )
}

/// [`convert_job`] with explicit [`ConvertOptions`] (e.g. lenient mode
/// for delayed-start partial traces).
pub fn convert_job_opts(
    files: &[RawTraceFile],
    threads: &ThreadTable,
    profile: &Profile,
    opts: &ConvertOptions,
    parallel: bool,
) -> Result<Vec<ConvertOutput>> {
    let markers = MarkerMap::build(files)?;
    if !parallel || files.len() <= 1 {
        return files
            .iter()
            .map(|f| convert_node_opts(f, threads, profile, &markers, opts))
            .collect();
    }
    let markers = &markers;
    cb_thread::scope(|s| {
        let handles: Vec<_> = files
            .iter()
            .map(|f| s.spawn(move |_| convert_node_opts(f, threads, profile, markers, opts)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(UteError::Invalid("convert worker panicked".into())),
            })
            .collect()
    })
    .map_err(|_| UteError::Invalid("convert scope panicked".into()))?
}

/// [`convert_job_opts`] on a bounded worker pool: one task per node
/// file, at most `jobs` running at once, results collected in input
/// order. `jobs == 1` runs the plain serial loop on the calling thread.
///
/// The per-node conversion is a pure function of `(file, tables, opts)`
/// — workers share no mutable state — so the output vector is identical
/// for every `jobs` value; only wall time changes.
pub fn convert_job_pooled(
    files: &[RawTraceFile],
    threads: &ThreadTable,
    profile: &Profile,
    opts: &ConvertOptions,
    jobs: usize,
) -> Result<Vec<ConvertOutput>> {
    let jobs = jobs.max(1).min(files.len().max(1));
    let markers = MarkerMap::build(files)?;
    if jobs == 1 || files.len() <= 1 {
        return files
            .iter()
            .map(|f| convert_node_opts(f, threads, profile, &markers, opts))
            .collect();
    }
    let markers = &markers;
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<ConvertOutput>>> = Vec::new();
    slots.resize_with(files.len(), || None);
    let slots = std::sync::Mutex::new(slots);
    // The thread-local span stack does not cross the spawn: adopt the
    // calling thread's span as each worker's explicit parent.
    let parent = ute_obs::current_span();
    cb_thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                let next = &next;
                let slots = &slots;
                s.spawn(move |_| {
                    let _span = ute_obs::Span::enter_under(
                        "pipeline",
                        format!("convert worker {w}"),
                        parent,
                    );
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= files.len() {
                            break;
                        }
                        let r = convert_node_opts(&files[i], threads, profile, markers, opts);
                        slots.lock().expect("slot lock")[i] = Some(r);
                    }
                })
            })
            .collect();
        for h in handles {
            if h.join().is_err() {
                return Err(UteError::Invalid("convert worker panicked".into()));
            }
        }
        Ok(())
    })
    .map_err(|_| UteError::Invalid("convert scope panicked".into()))??;
    slots
        .into_inner()
        .expect("slot lock")
        .into_iter()
        .map(|r| r.expect("every index was claimed by a worker"))
        .collect()
}

/// Restricts a job-wide thread table to one node's threads.
pub fn node_threads(threads: &ThreadTable, node: NodeId) -> ThreadTable {
    let mut t = ThreadTable::new();
    for e in threads.entries() {
        if e.node == node {
            t.register(*e).expect("source table was consistent");
        }
    }
    t
}
