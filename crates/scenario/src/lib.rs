//! # ute-scenario — seeded random workload generation
//!
//! The stock workloads (`ute-workloads`) are a handful of hand-written
//! shapes; every invariant and diagnostic in the tree is only ever
//! exercised on traces a human designed. This crate makes "as many
//! scenarios as you can imagine" systematic: a [`ScenarioSpec`] captures
//! the knobs of a synthetic distributed workload — topology,
//! communication structure, phase schedule, imbalance — and
//! [`generate`] expands it into a deterministic `(ClusterConfig,
//! JobProgram)` pair ready for the simulator.
//!
//! Two determinism layers stack to make scenarios reproducible bug
//! reports:
//!
//! 1. **spec → program**: every random choice in [`ScenarioSpec::from_seed`]
//!    and [`generate`] is drawn from a `SmallRng` seeded purely from the
//!    scenario seed (per-phase/per-rank streams are derived by hashing the
//!    seed with the phase and rank indices, so generation order never
//!    matters). Same seed ⇒ identical spec ⇒ identical op lists.
//! 2. **program → trace bytes**: the cluster simulator is itself a
//!    seeded discrete-event simulation, so an identical program on an
//!    identical config yields byte-identical raw trace files.
//!
//! `ute scenario --seed N` is therefore a complete, shareable repro: the
//! seed (plus any explicit knob overrides) names the trace corpus
//! exactly.
//!
//! Ground-truth hooks for the diagnostics layer: a spec with a straggler
//! knob always carries a `Collect` phase whose blocking gather traffic
//! exposes the slow rank to the late-sender and imbalance diagnostics,
//! and a hub-patterned spec routes every point-to-point message through
//! rank 0 so the communication-pattern classifier must report `hub`.

mod gen;

pub use gen::{generate, Scenario};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ute_core::error::{Result, UteError};

/// Machine shape of the scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologySpec {
    /// SMP node count (the DES is sparse in events, so thousands work).
    pub nodes: u16,
    /// CPUs per node.
    pub cpus_per_node: u16,
    /// MPI tasks per node (ranks are node-major).
    pub tasks_per_node: u16,
    /// Threads per task; thread 0 makes the MPI calls, the rest compute.
    pub threads_per_task: u16,
}

impl TopologySpec {
    /// Total MPI ranks.
    pub fn ntasks(&self) -> u32 {
        self.nodes as u32 * self.tasks_per_node as u32
    }
}

/// Communication structure of a busy phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// Halo exchange with both ring neighbours (Irecv/Isend/Waitall).
    NearestNeighbor,
    /// Sendrecv shift around the ring.
    Ring,
    /// k-ary reduction up a rank tree and broadcast back down.
    Tree,
    /// Request/reply farm through rank 0.
    Hub,
    /// Pairwise full exchange (plus a small allreduce).
    AllToAll,
    /// Service-graph request/reply chains: rank 0 is the client, ranks
    /// form a call tree of the spec's depth/width/fan-out, and each
    /// request recurses depth-first before its reply returns.
    ServiceGraph,
}

impl PatternKind {
    /// Every pattern, in the order `from_seed` samples them.
    pub const ALL: [PatternKind; 6] = [
        PatternKind::NearestNeighbor,
        PatternKind::Ring,
        PatternKind::Tree,
        PatternKind::Hub,
        PatternKind::AllToAll,
        PatternKind::ServiceGraph,
    ];

    /// Stable lower-case name (also the CLI spelling).
    pub fn name(&self) -> &'static str {
        match self {
            PatternKind::NearestNeighbor => "nearest_neighbor",
            PatternKind::Ring => "ring",
            PatternKind::Tree => "tree",
            PatternKind::Hub => "hub",
            PatternKind::AllToAll => "all_to_all",
            PatternKind::ServiceGraph => "service_graph",
        }
    }

    /// Parses a CLI spelling (several aliases per pattern).
    pub fn parse(s: &str) -> Option<PatternKind> {
        Some(match s {
            "nn" | "nearest" | "nearest_neighbor" | "stencil" => PatternKind::NearestNeighbor,
            "ring" | "shift" => PatternKind::Ring,
            "tree" | "reduce" => PatternKind::Tree,
            "hub" | "star" | "masterworker" => PatternKind::Hub,
            "alltoall" | "all_to_all" | "a2a" => PatternKind::AllToAll,
            "service" | "service_graph" | "chain" => PatternKind::ServiceGraph,
            _ => return None,
        })
    }
}

/// What a phase does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Pure computation — nothing "interesting" (FLASH's quiet stretch).
    Quiet,
    /// Pattern traffic interleaved with compute.
    Busy,
    /// A few hot senders fire message bursts at rank 0.
    Bursty,
    /// Blocking gather to rank 0 — the straggler ground-truth phase.
    Collect,
}

impl PhaseKind {
    /// Stable lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            PhaseKind::Quiet => "quiet",
            PhaseKind::Busy => "busy",
            PhaseKind::Bursty => "bursty",
            PhaseKind::Collect => "collect",
        }
    }
}

/// One phase of the schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpec {
    /// Quiet, busy, bursty, or the straggler collect phase.
    pub kind: PhaseKind,
    /// Communication structure of a busy phase (ignored by quiet phases).
    pub pattern: PatternKind,
    /// Iterations of the phase's inner loop.
    pub rounds: u32,
    /// Base compute per iteration, microseconds.
    pub compute_us: u64,
    /// Message payload bytes.
    pub bytes: u64,
}

/// Imbalance knobs layered over every phase.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ImbalanceSpec {
    /// `Some((rank, factor))`: that rank computes `factor`× longer
    /// everywhere. A spec with a straggler always has a `Collect` phase.
    pub straggler: Option<(u32, u64)>,
    /// Message-size multiplier applied to the upper half of the ranks
    /// (1 = no skew).
    pub size_skew: u64,
    /// Messages per burst in `Bursty` phases.
    pub burst_len: u32,
    /// Hot senders in `Bursty` phases.
    pub bursty_senders: u32,
}

/// A fully-specified scenario. `PartialEq`/`Eq` make the determinism
/// guarantee testable at the spec level too.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// The seed everything is derived from.
    pub seed: u64,
    /// Machine shape.
    pub topology: TopologySpec,
    /// Service-graph depth (levels below the client).
    pub chain_depth: u32,
    /// Service-graph width (max services per level).
    pub chain_width: u32,
    /// Fan-out: children per service, and the tree pattern's arity.
    pub fanout: u32,
    /// The phase schedule, in execution order.
    pub phases: Vec<PhaseSpec>,
    /// Imbalance knobs.
    pub imbalance: ImbalanceSpec,
}

impl ScenarioSpec {
    /// Samples a complete random spec from a seed. Sizes are bounded so
    /// the scenario runs in well under a second — scale up explicitly
    /// via the topology knobs (`ute scenario --nodes 512 ...`).
    pub fn from_seed(seed: u64) -> ScenarioSpec {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5ce0_a210_0000_5eed);
        let nodes = rng.gen_range(2u16..13);
        let tasks_per_node = if nodes <= 6 && rng.gen_bool(0.3) {
            2
        } else {
            1
        };
        let threads_per_task = rng.gen_range(1u16..3);
        let cpus_per_node = (tasks_per_node * threads_per_task).max(2);
        let topology = TopologySpec {
            nodes,
            cpus_per_node,
            tasks_per_node,
            threads_per_task,
        };
        let ntasks = topology.ntasks();

        let chain_depth = rng.gen_range(1u32..4);
        let chain_width = rng.gen_range(1u32..5);
        let fanout = rng.gen_range(2u32..4);

        let nphases = rng.gen_range(2usize..6);
        let mut phases = Vec::with_capacity(nphases);
        for _ in 0..nphases {
            let roll = rng.gen_range(0u32..10);
            let kind = match roll {
                0..=5 => PhaseKind::Busy,
                6..=7 => PhaseKind::Quiet,
                _ => PhaseKind::Bursty,
            };
            let pattern = PatternKind::ALL[rng.gen_range(0usize..PatternKind::ALL.len())];
            phases.push(PhaseSpec {
                kind,
                pattern,
                rounds: rng.gen_range(2u32..9),
                compute_us: rng.gen_range(200u64..1500),
                bytes: 1u64 << rng.gen_range(8u32..17),
            });
        }
        // A schedule with no traffic at all exercises nothing; force at
        // least one busy phase.
        if phases.iter().all(|p| matches!(p.kind, PhaseKind::Quiet)) {
            phases.last_mut().expect("nphases >= 2").kind = PhaseKind::Busy;
        }

        let straggler = if ntasks >= 3 && rng.gen_bool(0.35) {
            Some((rng.gen_range(1u32..ntasks), rng.gen_range(3u64..7)))
        } else {
            None
        };
        let size_skew = if rng.gen_bool(0.25) {
            rng.gen_range(2u64..5)
        } else {
            1
        };
        let imbalance = ImbalanceSpec {
            straggler,
            size_skew,
            burst_len: rng.gen_range(4u32..13),
            bursty_senders: rng.gen_range(1u32..3),
        };

        let mut spec = ScenarioSpec {
            seed,
            topology,
            chain_depth,
            chain_width,
            fanout,
            phases,
            imbalance,
        };
        if spec.imbalance.straggler.is_some() {
            spec.ensure_collect_phase();
        }
        spec
    }

    /// The torture preset: a deliberately nasty merge workload at scale.
    /// 256+ nodes (the DES is sparse in events, so this stays CI-sized),
    /// symmetric ring/stencil/tree phases whose lock-step traffic mints
    /// long runs of equal end timestamps across every node, a bursty
    /// phase to pile ties onto rank 0, and a straggler so the schedule
    /// ends in a blocking `Collect`. Built to stress the sharded merge:
    /// tie groups must never straddle a shard boundary, and the stitched
    /// output must be byte-identical to the serial merge.
    pub fn torture(seed: u64) -> ScenarioSpec {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7047_u64.rotate_left(33) ^ 0x5eed);
        let nodes = 256 + rng.gen_range(0u16..65);
        let topology = TopologySpec {
            nodes,
            cpus_per_node: 2,
            tasks_per_node: 1,
            threads_per_task: 1,
        };
        let ntasks = topology.ntasks();
        // O(ranks) patterns only — all-to-all at 256+ ranks would square
        // the record count without stressing the merge any harder.
        let symmetric = [
            PatternKind::NearestNeighbor,
            PatternKind::Ring,
            PatternKind::Tree,
        ];
        let mut phases = Vec::new();
        for i in 0..5usize {
            phases.push(PhaseSpec {
                kind: PhaseKind::Busy,
                pattern: symmetric[(seed as usize).wrapping_add(i) % symmetric.len()],
                rounds: rng.gen_range(3u32..6),
                // Identical compute on every rank keeps the lock-step
                // symmetry that makes end-timestamp ties common.
                compute_us: 400 + 100 * i as u64,
                bytes: 1u64 << rng.gen_range(8u32..13),
            });
        }
        phases.push(PhaseSpec {
            kind: PhaseKind::Bursty,
            pattern: PatternKind::Hub,
            rounds: rng.gen_range(3u32..5),
            compute_us: 300,
            bytes: 512,
        });
        let spec = ScenarioSpec {
            seed,
            topology,
            chain_depth: 1,
            chain_width: 1,
            fanout: 2,
            phases,
            imbalance: ImbalanceSpec {
                straggler: None,
                size_skew: 2,
                burst_len: 8,
                bursty_senders: 2,
            },
        };
        spec.with_straggler(1 + rng.gen_range(0u32..(ntasks - 1)), 4)
    }

    /// Sets the straggler knob and guarantees the `Collect` ground-truth
    /// phase exists (appending one sized like the busiest phase if not).
    pub fn with_straggler(mut self, rank: u32, slowdown: u64) -> ScenarioSpec {
        self.imbalance.straggler = Some((rank, slowdown));
        self.ensure_collect_phase();
        self
    }

    /// Forces every phase onto one pattern (the CLI's `--pattern`
    /// override). Bursty and Collect phases already target rank 0, so a
    /// forced-`hub` spec routes *all* point-to-point traffic through
    /// rank 0 and must classify as `hub`.
    pub fn force_pattern(&mut self, pattern: PatternKind) {
        for p in &mut self.phases {
            p.pattern = pattern;
        }
    }

    fn ensure_collect_phase(&mut self) {
        if self.phases.iter().any(|p| p.kind == PhaseKind::Collect) {
            return;
        }
        let rounds = self.phases.iter().map(|p| p.rounds).max().unwrap_or(4);
        self.phases.push(PhaseSpec {
            kind: PhaseKind::Collect,
            pattern: PatternKind::Hub,
            rounds,
            compute_us: 1000,
            bytes: 4096,
        });
    }

    /// Checks the spec is generatable, with errors naming the bad knob.
    pub fn validate(&self) -> Result<()> {
        let t = &self.topology;
        if t.nodes == 0 || t.tasks_per_node == 0 || t.threads_per_task == 0 {
            return Err(UteError::Invalid(
                "scenario: nodes, tasks-per-node, and threads must be >= 1".into(),
            ));
        }
        let ntasks = t.ntasks();
        if ntasks < 2 {
            return Err(UteError::Invalid(
                "scenario: need at least 2 MPI ranks for any pattern".into(),
            ));
        }
        if let Some((rank, slowdown)) = self.imbalance.straggler {
            if rank == 0 || rank >= ntasks {
                return Err(UteError::Invalid(format!(
                    "scenario: straggler rank {rank} must be a worker rank (1..{ntasks})"
                )));
            }
            if slowdown < 2 {
                return Err(UteError::Invalid(
                    "scenario: straggler slowdown must be >= 2".into(),
                ));
            }
            if ntasks < 3 {
                return Err(UteError::Invalid(
                    "scenario: straggler scenarios need >= 3 ranks".into(),
                ));
            }
        }
        if self.phases.is_empty() {
            return Err(UteError::Invalid("scenario: no phases".into()));
        }
        if self.fanout == 0 || self.chain_width == 0 {
            return Err(UteError::Invalid(
                "scenario: fanout and chain-width must be >= 1".into(),
            ));
        }
        if self.imbalance.size_skew == 0 {
            return Err(UteError::Invalid("scenario: size skew must be >= 1".into()));
        }
        Ok(())
    }

    /// Renders the spec as JSON — the `--describe` output and the
    /// `scenario.json` provenance file a scenario run leaves next to its
    /// artifacts. Hand-rolled (no serde in the tree); key order is fixed
    /// so the output is byte-stable.
    pub fn to_json(&self) -> String {
        let t = &self.topology;
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!(
            "  \"topology\": {{\"nodes\": {}, \"cpus_per_node\": {}, \"tasks_per_node\": {}, \
             \"threads_per_task\": {}, \"ranks\": {}}},\n",
            t.nodes,
            t.cpus_per_node,
            t.tasks_per_node,
            t.threads_per_task,
            t.ntasks()
        ));
        s.push_str(&format!(
            "  \"chain\": {{\"depth\": {}, \"width\": {}, \"fanout\": {}}},\n",
            self.chain_depth, self.chain_width, self.fanout
        ));
        s.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"kind\": \"{}\", \"pattern\": \"{}\", \
                 \"rounds\": {}, \"compute_us\": {}, \"bytes\": {}}}{}\n",
                phase_name(i, p),
                p.kind.name(),
                p.pattern.name(),
                p.rounds,
                p.compute_us,
                p.bytes,
                if i + 1 < self.phases.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        let im = &self.imbalance;
        match im.straggler {
            Some((rank, slowdown)) => s.push_str(&format!(
                "  \"imbalance\": {{\"straggler_rank\": {rank}, \"straggler_slowdown\": \
                 {slowdown}, \"size_skew\": {}, \"burst_len\": {}, \"bursty_senders\": {}}}\n",
                im.size_skew, im.burst_len, im.bursty_senders
            )),
            None => s.push_str(&format!(
                "  \"imbalance\": {{\"straggler_rank\": null, \"straggler_slowdown\": null, \
                 \"size_skew\": {}, \"burst_len\": {}, \"bursty_senders\": {}}}\n",
                im.size_skew, im.burst_len, im.bursty_senders
            )),
        }
        s.push('}');
        s
    }
}

/// The marker name wrapping phase `i` (`Collect` keeps its bare name so
/// ground-truth assertions can find it).
pub fn phase_name(i: usize, p: &PhaseSpec) -> String {
    match p.kind {
        PhaseKind::Collect => "Collect".to_string(),
        PhaseKind::Quiet => format!("P{i}_quiet"),
        kind => format!("P{i}_{}_{}", kind.name(), p.pattern.name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_spec() {
        for seed in [0u64, 1, 42, 0xdead_beef, u64::MAX] {
            assert_eq!(ScenarioSpec::from_seed(seed), ScenarioSpec::from_seed(seed));
        }
    }

    #[test]
    fn different_seeds_differ() {
        // Not guaranteed for every pair, but these must not collide.
        assert_ne!(ScenarioSpec::from_seed(1), ScenarioSpec::from_seed(2));
        assert_ne!(ScenarioSpec::from_seed(41), ScenarioSpec::from_seed(42));
    }

    #[test]
    fn sampled_specs_validate() {
        for seed in 0..200u64 {
            let spec = ScenarioSpec::from_seed(seed);
            spec.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(
                spec.phases
                    .iter()
                    .any(|p| !matches!(p.kind, PhaseKind::Quiet)),
                "seed {seed}: all-quiet schedule"
            );
        }
    }

    #[test]
    fn straggler_spec_always_has_collect_phase() {
        let mut saw_straggler = false;
        for seed in 0..200u64 {
            let spec = ScenarioSpec::from_seed(seed);
            if spec.imbalance.straggler.is_some() {
                saw_straggler = true;
                assert!(
                    spec.phases.iter().any(|p| p.kind == PhaseKind::Collect),
                    "seed {seed}: straggler without Collect phase"
                );
            }
        }
        assert!(
            saw_straggler,
            "no sampled spec had a straggler in 200 seeds"
        );
        let spec = ScenarioSpec::from_seed(3).with_straggler(1, 4);
        assert!(spec.phases.iter().any(|p| p.kind == PhaseKind::Collect));
    }

    #[test]
    fn torture_preset_is_large_deterministic_and_valid() {
        for seed in [0u64, 9, 77, u64::MAX] {
            let spec = ScenarioSpec::torture(seed);
            assert_eq!(spec, ScenarioSpec::torture(seed), "seed {seed}");
            assert!(spec.topology.nodes >= 256, "seed {seed}: too small");
            spec.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(
                spec.phases.iter().any(|p| p.kind == PhaseKind::Collect),
                "seed {seed}: torture schedule must end in a Collect"
            );
            assert!(
                spec.phases
                    .iter()
                    .all(|p| p.pattern != PatternKind::AllToAll),
                "seed {seed}: all-to-all would square the record count"
            );
        }
        assert_ne!(ScenarioSpec::torture(1), ScenarioSpec::torture(2));
    }

    #[test]
    fn pattern_parse_round_trips() {
        for p in PatternKind::ALL {
            assert_eq!(PatternKind::parse(p.name()), Some(p), "{}", p.name());
        }
        assert_eq!(PatternKind::parse("nn"), Some(PatternKind::NearestNeighbor));
        assert_eq!(PatternKind::parse("a2a"), Some(PatternKind::AllToAll));
        assert_eq!(PatternKind::parse("bogus"), None);
    }

    #[test]
    fn json_is_stable_and_shaped() {
        let spec = ScenarioSpec::from_seed(7);
        let a = spec.to_json();
        assert_eq!(a, ScenarioSpec::from_seed(7).to_json());
        assert!(a.starts_with('{') && a.ends_with('}'));
        for key in ["\"seed\"", "\"topology\"", "\"phases\"", "\"imbalance\""] {
            assert!(a.contains(key), "missing {key} in {a}");
        }
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let mut spec = ScenarioSpec::from_seed(1);
        spec.topology.nodes = 0;
        assert!(spec.validate().is_err());
        let spec = ScenarioSpec::from_seed(1).with_straggler(0, 4);
        assert!(spec.validate().is_err());
        let mut spec = ScenarioSpec::from_seed(1);
        spec.phases.clear();
        assert!(spec.validate().is_err());
    }
}
