//! Spec → program expansion.
//!
//! Everything here is a pure function of the [`ScenarioSpec`]: random
//! jitter is drawn from per-`(phase, rank)` RNG streams derived by
//! mixing the scenario seed with the phase and rank indices, so the op
//! lists are identical no matter what order ranks are built in, and a
//! given seed always expands to the same program.
//!
//! Every pattern is deadlock-free by construction: the simulator's
//! standard sends complete eagerly (the message is queued at the
//! receiver), so the only blocking edges are receives — and each
//! builder emits receives only for messages some rank's script is
//! guaranteed to send.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ute_cluster::{ClusterConfig, JobProgram, Op, TaskProgram};
use ute_core::error::Result;
use ute_core::time::Duration;

use crate::{phase_name, PatternKind, PhaseKind, PhaseSpec, ScenarioSpec};

/// A generated scenario: the machine and the job to run on it.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The simulated cluster.
    pub config: ClusterConfig,
    /// The generated program.
    pub job: JobProgram,
}

/// Expands a spec into a runnable scenario. Fails (never panics) on
/// invalid knob combinations — see [`ScenarioSpec::validate`].
pub fn generate(spec: &ScenarioSpec) -> Result<Scenario> {
    spec.validate()?;
    let t = &spec.topology;
    let mut config = ClusterConfig::scaled(
        t.nodes,
        t.cpus_per_node,
        t.tasks_per_node,
        t.threads_per_task,
    );
    // Distinct scenarios get distinct clock-jitter streams; the same
    // seed gets the same stream.
    config.seed = spec.seed ^ 0x5ce0_c10c_c0de_0000;
    let ntasks = t.ntasks();
    let (parent, children) = service_tree(ntasks, spec.chain_depth, spec.chain_width, spec.fanout);
    let job = JobProgram::spmd(ntasks, |rank| {
        build_task(spec, rank, ntasks, &parent, &children)
    });
    Ok(Scenario { config, job })
}

/// Per-`(phase, rank)` jitter stream — order-independent determinism.
fn phase_rng(spec: &ScenarioSpec, phase: usize, rank: u32) -> SmallRng {
    SmallRng::seed_from_u64(spec.seed ^ ((phase as u64) << 40) ^ ((rank as u64) << 8) ^ 0xa5)
}

/// A compute op with the straggler slowdown applied.
fn compute(spec: &ScenarioSpec, rank: u32, us: u64) -> Op {
    let us = match spec.imbalance.straggler {
        Some((r, factor)) if r == rank => us * factor,
        _ => us,
    };
    Op::Compute(Duration::from_micros(us.max(1)))
}

/// Payload bytes with the size skew applied to the upper half of ranks.
fn msg_bytes(spec: &ScenarioSpec, rank: u32, ntasks: u32, base: u64) -> u64 {
    if spec.imbalance.size_skew > 1 && rank >= ntasks / 2 {
        base * spec.imbalance.size_skew
    } else {
        base
    }
}

fn build_task(
    spec: &ScenarioSpec,
    rank: u32,
    ntasks: u32,
    parent: &[Option<u32>],
    children: &[Vec<u32>],
) -> TaskProgram {
    let mut ops = vec![Op::Init];
    for (i, p) in spec.phases.iter().enumerate() {
        let name = phase_name(i, p);
        let tag0 = (i as u32) << 16;
        let mut rng = phase_rng(spec, i, rank);
        ops.push(Op::MarkerBegin(name.clone()));
        match p.kind {
            PhaseKind::Quiet => {
                // One long, slightly jittered stretch of pure compute.
                let us = p.compute_us * p.rounds as u64 * 8;
                let us = us * rng.gen_range(85u64..116) / 100;
                ops.push(compute(spec, rank, us));
            }
            PhaseKind::Busy => busy_ops(
                spec, p, rank, ntasks, tag0, &mut rng, parent, children, &mut ops,
            ),
            PhaseKind::Bursty => bursty_ops(spec, p, rank, ntasks, tag0, &mut ops),
            PhaseKind::Collect => collect_ops(spec, p, rank, ntasks, tag0, &mut ops),
        }
        ops.push(Op::MarkerEnd(name));
    }
    ops.push(Op::Finalize);

    // Worker threads shadow the MPI thread with pure compute sized to
    // the schedule, so SMP scenarios exercise dispatch/preemption.
    let total_us: u64 = spec
        .phases
        .iter()
        .map(|p| p.rounds as u64 * p.compute_us)
        .sum();
    let worker = vec![Op::Compute(Duration::from_micros(total_us.max(100)))];
    TaskProgram::with_workers(
        ops,
        worker,
        spec.topology.threads_per_task.saturating_sub(1) as usize,
    )
}

/// Jittered per-round compute (±25%).
fn round_compute(spec: &ScenarioSpec, rank: u32, base_us: u64, rng: &mut SmallRng) -> Op {
    let us = base_us * rng.gen_range(75u64..126) / 100;
    compute(spec, rank, us)
}

#[allow(clippy::too_many_arguments)]
fn busy_ops(
    spec: &ScenarioSpec,
    p: &PhaseSpec,
    rank: u32,
    ntasks: u32,
    tag0: u32,
    rng: &mut SmallRng,
    parent: &[Option<u32>],
    children: &[Vec<u32>],
    ops: &mut Vec<Op>,
) {
    let bytes = msg_bytes(spec, rank, ntasks, p.bytes);
    let left = (rank + ntasks - 1) % ntasks;
    let right = (rank + 1) % ntasks;
    match p.pattern {
        PatternKind::NearestNeighbor => {
            for r in 0..p.rounds {
                ops.push(round_compute(spec, rank, p.compute_us, rng));
                ops.push(Op::Irecv {
                    from: left,
                    tag: tag0 + 2 * r,
                });
                ops.push(Op::Irecv {
                    from: right,
                    tag: tag0 + 2 * r + 1,
                });
                ops.push(Op::Isend {
                    to: right,
                    bytes,
                    tag: tag0 + 2 * r,
                });
                ops.push(Op::Isend {
                    to: left,
                    bytes,
                    tag: tag0 + 2 * r + 1,
                });
                ops.push(Op::Waitall);
            }
        }
        PatternKind::Ring => {
            for r in 0..p.rounds {
                ops.push(round_compute(spec, rank, p.compute_us, rng));
                ops.push(Op::Sendrecv {
                    to: right,
                    from: left,
                    bytes,
                    tag: tag0 + r,
                });
            }
        }
        PatternKind::Tree => {
            let k = spec.fanout.max(2);
            let par = if rank == 0 {
                None
            } else {
                Some((rank - 1) / k)
            };
            let kids: Vec<u32> = (k * rank + 1..=k * rank + k)
                .filter(|&c| c < ntasks)
                .collect();
            for r in 0..p.rounds {
                ops.push(round_compute(spec, rank, p.compute_us, rng));
                // Reduce up the k-ary tree...
                for &c in &kids {
                    ops.push(Op::Recv {
                        from: c,
                        tag: tag0 + 2 * r,
                    });
                }
                if let Some(par) = par {
                    ops.push(Op::Send {
                        to: par,
                        bytes,
                        tag: tag0 + 2 * r,
                    });
                    // ...and broadcast back down.
                    ops.push(Op::Recv {
                        from: par,
                        tag: tag0 + 2 * r + 1,
                    });
                }
                for &c in &kids {
                    ops.push(Op::Send {
                        to: c,
                        bytes,
                        tag: tag0 + 2 * r + 1,
                    });
                }
            }
        }
        PatternKind::Hub => {
            for r in 0..p.rounds {
                if rank == 0 {
                    ops.push(round_compute(spec, rank, p.compute_us / 4 + 1, rng));
                    for w in 1..ntasks {
                        ops.push(Op::Send {
                            to: w,
                            bytes,
                            tag: tag0 + 2 * r,
                        });
                    }
                    for w in 1..ntasks {
                        ops.push(Op::Recv {
                            from: w,
                            tag: tag0 + 2 * r + 1,
                        });
                    }
                } else {
                    ops.push(Op::Recv {
                        from: 0,
                        tag: tag0 + 2 * r,
                    });
                    ops.push(round_compute(spec, rank, p.compute_us, rng));
                    ops.push(Op::Send {
                        to: 0,
                        bytes,
                        tag: tag0 + 2 * r + 1,
                    });
                }
            }
        }
        PatternKind::AllToAll => {
            // Pairwise shifted exchange; capped past 16 ranks so message
            // count stays O(ranks), not O(ranks²).
            let shifts = (ntasks - 1).min(if ntasks <= 16 { ntasks - 1 } else { 8 });
            for r in 0..p.rounds {
                ops.push(round_compute(spec, rank, p.compute_us, rng));
                for k in 1..=shifts {
                    ops.push(Op::Sendrecv {
                        to: (rank + k) % ntasks,
                        from: (rank + ntasks - k) % ntasks,
                        bytes,
                        tag: tag0 + r * 32 + k,
                    });
                }
                ops.push(Op::Allreduce { bytes: 64 });
            }
        }
        PatternKind::ServiceGraph => {
            // Depth-first request/reply traversal of the service tree.
            // Ranks outside the tree idle on compute so the phase's
            // markers still cover every node.
            let par = parent[rank as usize];
            let kids = &children[rank as usize];
            let in_graph = rank == 0 || par.is_some();
            for r in 0..p.rounds {
                if !in_graph {
                    ops.push(round_compute(spec, rank, p.compute_us, rng));
                    continue;
                }
                let req = tag0 + 2 * r;
                let rep = tag0 + 2 * r + 1;
                if let Some(par) = par {
                    ops.push(Op::Recv {
                        from: par,
                        tag: req,
                    });
                }
                ops.push(round_compute(spec, rank, p.compute_us, rng));
                for &c in kids {
                    ops.push(Op::Send {
                        to: c,
                        bytes,
                        tag: req,
                    });
                    ops.push(Op::Recv { from: c, tag: rep });
                }
                if let Some(par) = par {
                    ops.push(Op::Send {
                        to: par,
                        bytes: (bytes / 2).max(64),
                        tag: rep,
                    });
                }
            }
        }
    }
}

/// Bursty phase: the first `bursty_senders` worker ranks fire
/// `burst_len`-message volleys at rank 0 every round.
fn bursty_ops(
    spec: &ScenarioSpec,
    p: &PhaseSpec,
    rank: u32,
    ntasks: u32,
    tag0: u32,
    ops: &mut Vec<Op>,
) {
    let nb = spec.imbalance.bursty_senders.max(1).min(ntasks - 1);
    let burst = spec.imbalance.burst_len.max(1);
    let bytes = msg_bytes(spec, rank, ntasks, p.bytes);
    for r in 0..p.rounds {
        if rank == 0 {
            ops.push(compute(spec, rank, p.compute_us / 4 + 1));
            for s in 1..=nb {
                for _ in 0..burst {
                    ops.push(Op::Recv {
                        from: s,
                        tag: tag0 + r,
                    });
                }
            }
        } else if rank <= nb {
            ops.push(compute(spec, rank, p.compute_us));
            for _ in 0..burst {
                ops.push(Op::Send {
                    to: 0,
                    bytes,
                    tag: tag0 + r,
                });
            }
        } else {
            ops.push(compute(spec, rank, p.compute_us));
        }
    }
}

/// Collect phase: the straggler ground truth. Blocking sends into a
/// rank-0 gather, every round — the shape the late-sender and imbalance
/// diagnostics are tested against (see `ute-workloads::micro::straggler`).
fn collect_ops(
    spec: &ScenarioSpec,
    p: &PhaseSpec,
    rank: u32,
    ntasks: u32,
    tag0: u32,
    ops: &mut Vec<Op>,
) {
    for r in 0..p.rounds {
        ops.push(compute(spec, rank, p.compute_us));
        if rank == 0 {
            for src in 1..ntasks {
                ops.push(Op::Recv {
                    from: src,
                    tag: tag0 + r,
                });
            }
        } else {
            ops.push(Op::Send {
                to: 0,
                bytes: msg_bytes(spec, rank, ntasks, p.bytes),
                tag: tag0 + r,
            });
        }
    }
}

/// Builds the service call tree: rank 0 is the client; each level holds
/// at most `width` services, each parent fans out to at most `fanout`
/// children, down to `depth` levels. Returns `(parent, children)` per
/// rank; ranks that don't fit stay outside the graph.
fn service_tree(
    ntasks: u32,
    depth: u32,
    width: u32,
    fanout: u32,
) -> (Vec<Option<u32>>, Vec<Vec<u32>>) {
    let mut parent: Vec<Option<u32>> = vec![None; ntasks as usize];
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); ntasks as usize];
    let mut level = vec![0u32];
    let mut next = 1u32;
    for _ in 0..depth {
        let mut next_level = Vec::new();
        'level: for &p in &level {
            for _ in 0..fanout {
                if next >= ntasks || next_level.len() as u32 >= width {
                    break 'level;
                }
                parent[next as usize] = Some(p);
                children[p as usize].push(next);
                next_level.push(next);
                next += 1;
            }
        }
        if next_level.is_empty() {
            break;
        }
        level = next_level;
    }
    (parent, children)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ImbalanceSpec, ScenarioSpec, TopologySpec};
    use ute_cluster::Simulator;

    #[test]
    fn same_seed_same_job() {
        for seed in [0u64, 7, 42, 1337] {
            let a = generate(&ScenarioSpec::from_seed(seed)).unwrap();
            let b = generate(&ScenarioSpec::from_seed(seed)).unwrap();
            assert_eq!(a.job, b.job, "seed {seed}");
            assert_eq!(a.config.nodes, b.config.nodes);
            assert_eq!(a.config.seed, b.config.seed);
        }
    }

    #[test]
    fn sampled_scenarios_run_to_completion() {
        for seed in 0..24u64 {
            let sc = generate(&ScenarioSpec::from_seed(seed)).unwrap();
            let nodes = sc.config.nodes;
            let res = Simulator::new(sc.config, &sc.job)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"))
                .run()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(res.stats.events_cut > 0, "seed {seed}: empty trace");
            assert_eq!(res.raw_files.len(), nodes as usize, "seed {seed}");
        }
    }

    #[test]
    fn every_pattern_generates_and_runs() {
        for pattern in PatternKind::ALL {
            let mut spec = ScenarioSpec::from_seed(5);
            spec.force_pattern(pattern);
            for p in &mut spec.phases {
                p.kind = PhaseKind::Busy;
            }
            let sc = generate(&spec).unwrap();
            let res = Simulator::new(sc.config, &sc.job)
                .unwrap_or_else(|e| panic!("{}: {e}", pattern.name()))
                .run()
                .unwrap_or_else(|e| panic!("{}: {e}", pattern.name()));
            assert!(res.stats.messages > 0, "{}: no messages", pattern.name());
        }
    }

    #[test]
    fn service_tree_respects_knobs() {
        let (parent, children) = service_tree(16, 2, 3, 2);
        // Level 1: at most 3 services, each a child of the client.
        let l1: Vec<u32> = (1..16).filter(|&r| parent[r as usize] == Some(0)).collect();
        assert!(!l1.is_empty() && l1.len() <= 3, "{l1:?}");
        for (r, kids) in children.iter().enumerate() {
            assert!(kids.len() <= 3, "rank {r} fan-out {kids:?}");
        }
        // Nothing deeper than depth 2: children of level-2 nodes are empty.
        for &r in &l1 {
            for &c in &children[r as usize] {
                assert!(children[c as usize].is_empty(), "depth overflow at {c}");
            }
        }
    }

    #[test]
    fn straggler_slows_only_its_rank() {
        let spec = ScenarioSpec::from_seed(9).with_straggler(2, 5);
        assert_eq!(
            compute(&spec, 2, 100),
            Op::Compute(Duration::from_micros(500))
        );
        assert_eq!(
            compute(&spec, 1, 100),
            Op::Compute(Duration::from_micros(100))
        );
    }

    #[test]
    fn size_skew_hits_upper_ranks() {
        let mut spec = ScenarioSpec::from_seed(9);
        spec.imbalance = ImbalanceSpec {
            size_skew: 3,
            ..spec.imbalance
        };
        assert_eq!(msg_bytes(&spec, 3, 4, 100), 300);
        assert_eq!(msg_bytes(&spec, 0, 4, 100), 100);
    }

    #[test]
    fn large_topology_generates_sparsely() {
        // 256 nodes: generation and simulation must stay cheap because
        // event volume tracks the program, not the node count.
        let mut spec = ScenarioSpec::from_seed(1);
        spec.topology = TopologySpec {
            nodes: 256,
            cpus_per_node: 2,
            tasks_per_node: 1,
            threads_per_task: 1,
        };
        spec.force_pattern(PatternKind::Ring);
        spec.imbalance.straggler = None;
        let sc = generate(&spec).unwrap();
        assert_eq!(sc.config.daemons_per_node, 0, "daemons off at scale");
        let res = Simulator::new(sc.config, &sc.job).unwrap().run().unwrap();
        assert_eq!(res.raw_files.len(), 256);
    }
}
