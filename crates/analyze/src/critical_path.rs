//! Critical-path extraction through the message graph.
//!
//! PerFlow-style: the trace is a DAG whose edges are (a) consecutive
//! pieces on one timeline and (b) matched messages, send completion →
//! receive completion on the `(sender rank, seq)` key. A longest-path
//! dynamic program over the end-time-ordered rows finds the activity
//! chain with the most accumulated time, and the per-stage attribution
//! says *what kind* of work dominates it — the chain no amount of
//! added parallelism would shorten.
//!
//! Record fields consumed: `rank`, `peer`, `seq` plus the common fields
//! of every piece (clock and gap bookkeeping records are skipped).

use std::collections::{BTreeMap, HashMap};

use ute_core::event::MpiOp;
use ute_format::state::StateCode;

use crate::findings::{Finding, Severity};
use crate::table::{TraceTable, NO_FIELD};
use crate::{ms, DiagOptions};

/// Runs the diagnostic over a table. Emits one info finding with the
/// path profile (empty tables produce no finding).
pub fn critical_path(t: &TraceTable, _opts: &DiagOptions) -> Vec<Finding> {
    if t.is_empty() {
        return Vec::new();
    }
    // cp[i]: most accumulated activity time over chains ending at row
    // i's completion; pred[i]: the chain's previous row.
    let mut cp = vec![0u64; t.len()];
    let mut pred = vec![usize::MAX; t.len()];
    let mut last_on: HashMap<(u16, u16), usize> = HashMap::new();
    let mut sends: HashMap<(u64, u64), usize> = HashMap::new();
    let (mut best_row, mut best_cp) = (usize::MAX, 0u64);
    for i in 0..t.len() {
        let state = t.state_code(i);
        if state == StateCode::CLOCK || state == StateCode::GAP {
            continue;
        }
        let tl = (t.node[i], t.thread[i]);
        let (mut from, mut p) = (0u64, usize::MAX);
        if let Some(&j) = last_on.get(&tl) {
            // Rows of one timeline are disjoint and end-ordered, so j is
            // always a legal predecessor.
            (from, p) = (cp[j], j);
        }
        if let Some(op) = state.as_mpi() {
            let ends = t.bebits[i].ends_state();
            if ends
                && matches!(op, MpiOp::Recv | MpiOp::Irecv | MpiOp::Wait)
                && t.seq[i] > 0
                && t.peer[i] != NO_FIELD
            {
                if let Some(&j) = sends.get(&(t.peer[i], t.seq[i])) {
                    if cp[j] > from {
                        (from, p) = (cp[j], j);
                    }
                }
            }
            if ends && op.is_p2p_send() && t.seq[i] > 0 && t.rank[i] != NO_FIELD {
                sends.insert((t.rank[i], t.seq[i]), i);
            }
        }
        cp[i] = from + t.duration[i];
        pred[i] = p;
        last_on.insert(tl, i);
        if cp[i] > best_cp {
            (best_row, best_cp) = (i, cp[i]);
        }
    }
    if best_row == usize::MAX {
        return Vec::new();
    }

    // Walk the path back, attributing time per state and per node.
    let mut by_state: BTreeMap<String, u64> = BTreeMap::new();
    let mut by_node: BTreeMap<u16, u64> = BTreeMap::new();
    let mut segments = 0u64;
    let mut hops = 0u64;
    let mut i = best_row;
    loop {
        *by_state.entry(t.state_code(i).name()).or_default() += t.duration[i];
        *by_node.entry(t.node[i]).or_default() += t.duration[i];
        segments += 1;
        let p = pred[i];
        if p == usize::MAX {
            break;
        }
        if (t.node[p], t.thread[p]) != (t.node[i], t.thread[i]) {
            hops += 1;
        }
        i = p;
    }
    let (span_lo, span_hi) = t.span().unwrap_or((0, 0));
    let wall = span_hi.saturating_sub(span_lo);
    let coverage = if wall > 0 {
        best_cp as f64 / wall as f64
    } else {
        0.0
    };
    let mut stages: Vec<(&String, &u64)> = by_state.iter().collect();
    stages.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    let top = stages
        .iter()
        .take(4)
        .map(|(name, ticks)| format!("{name} {} ms", ms(**ticks)))
        .collect::<Vec<_>>()
        .join("; ");
    let end_node = t.node[best_row];
    vec![Finding {
        diagnostic: "critical_path",
        severity: Severity::Info,
        node: Some(end_node),
        rank: None,
        phase: None,
        value: best_cp as f64,
        message: format!(
            "critical path: {} ms over {segments} segments and {hops} message/thread hops \
             ({:.0}% of the {} ms run), ending on node {end_node}; top stages: {top}",
            ms(best_cp),
            coverage * 100.0,
            ms(wall)
        ),
        details: vec![
            ("path_ms".into(), ms(best_cp)),
            ("wallclock_ms".into(), ms(wall)),
            ("coverage".into(), format!("{coverage:.3}")),
            ("segments".into(), segments.to_string()),
            ("hops".into(), hops.to_string()),
            ("top_stages".into(), top),
            ("nodes_touched".into(), by_node.keys().len().to_string()),
        ],
    }]
}
