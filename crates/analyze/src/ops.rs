//! Composable operators over a [`TraceTable`].
//!
//! A [`Selection`] is a set of row indices; every operator consumes one
//! selection and yields another (or an aggregate), so queries compose
//! the way Pipit's dataframe filters do:
//!
//! ```ignore
//! let busy = table.select().by_node(2).interesting().in_window(a, b);
//! let per_bin = busy.bins(1_000_000); // 1 ms bins
//! ```

use std::collections::BTreeMap;

use ute_format::state::StateCode;

use crate::table::TraceTable;

/// A subset of a table's rows, in table (end-time) order.
#[derive(Debug, Clone)]
pub struct Selection<'t> {
    /// The table the rows index into.
    pub table: &'t TraceTable,
    /// Selected row indices, ascending.
    pub rows: Vec<usize>,
}

impl TraceTable {
    /// A selection of every row.
    pub fn select(&self) -> Selection<'_> {
        Selection {
            table: self,
            rows: (0..self.len()).collect(),
        }
    }
}

/// One fixed-width time bin with its aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bin {
    /// Bin start, ticks.
    pub t0: u64,
    /// Bin end (exclusive), ticks.
    pub t1: u64,
    /// Records starting inside the bin.
    pub count: u64,
    /// Total selected time overlapping the bin. Pieces on one timeline
    /// never overlap (§3.3's piece construction), so per-timeline this
    /// *is* exclusive time.
    pub busy: u64,
}

impl<'t> Selection<'t> {
    /// Rows passing an arbitrary predicate.
    pub fn filter(mut self, pred: impl Fn(&TraceTable, usize) -> bool) -> Selection<'t> {
        self.rows.retain(|&i| pred(self.table, i));
        self
    }

    /// Rows of one node.
    pub fn by_node(self, node: u16) -> Selection<'t> {
        self.filter(|t, i| t.node[i] == node)
    }

    /// Rows of nodes in `[a, b]` inclusive.
    pub fn by_nodes(self, a: u16, b: u16) -> Selection<'t> {
        self.filter(|t, i| t.node[i] >= a && t.node[i] <= b)
    }

    /// Rows of one timeline (node, logical thread).
    pub fn by_thread(self, node: u16, thread: u16) -> Selection<'t> {
        self.filter(|t, i| t.node[i] == node && t.thread[i] == thread)
    }

    /// Rows of one state.
    pub fn by_state(self, state: StateCode) -> Selection<'t> {
        self.filter(|t, i| t.state[i] == state.0)
    }

    /// Marker pieces of one phase.
    pub fn by_phase(self, marker_id: u32) -> Selection<'t> {
        self.filter(|t, i| t.state[i] == StateCode::MARKER.0 && t.marker_id[i] == marker_id)
    }

    /// Rows overlapping `[t0, t1]` inclusive.
    pub fn in_window(self, t0: u64, t1: u64) -> Selection<'t> {
        self.filter(|t, i| t.end(i) >= t0 && t.start[i] <= t1)
    }

    /// "Interesting" rows: everything but Running / clock / gap (§3.2).
    pub fn interesting(self) -> Selection<'t> {
        self.filter(|t, i| t.state_code(i).is_interesting())
    }

    /// Number of selected rows.
    pub fn count(&self) -> usize {
        self.rows.len()
    }

    /// Sum of selected durations.
    pub fn total_time(&self) -> u64 {
        self.rows
            .iter()
            .map(|&i| self.table.duration[i])
            .fold(0u64, u64::saturating_add)
    }

    /// Groups rows by an arbitrary key.
    pub fn group_by<K: Ord>(
        &self,
        key: impl Fn(&TraceTable, usize) -> K,
    ) -> BTreeMap<K, Vec<usize>> {
        let mut groups: BTreeMap<K, Vec<usize>> = BTreeMap::new();
        for &i in &self.rows {
            groups.entry(key(self.table, i)).or_default().push(i);
        }
        groups
    }

    /// Groups rows by node.
    pub fn group_by_node(&self) -> BTreeMap<u16, Vec<usize>> {
        self.group_by(|t, i| t.node[i])
    }

    /// Bins the selection into fixed-width windows of `width` ticks,
    /// spanning the selection's own time range.
    pub fn bins(&self, width: u64) -> Vec<Bin> {
        let width = width.max(1);
        let lo = self
            .rows
            .iter()
            .map(|&i| self.table.start[i])
            .min()
            .unwrap_or(0);
        let hi = self
            .rows
            .iter()
            .map(|&i| self.table.end(i))
            .max()
            .unwrap_or(0);
        if hi <= lo {
            return Vec::new();
        }
        let nbins = (hi - lo).div_ceil(width);
        let mut bins: Vec<Bin> = (0..nbins)
            .map(|b| Bin {
                t0: lo + b * width,
                t1: lo + (b + 1) * width,
                count: 0,
                busy: 0,
            })
            .collect();
        let cap = nbins as usize - 1;
        for &i in &self.rows {
            let (s, e) = (self.table.start[i], self.table.end(i));
            // A zero-duration record at the very end lands in the last bin.
            let first = (((s - lo) / width) as usize).min(cap);
            let last = ((((e - lo).saturating_sub(1)) / width) as usize).min(cap);
            bins[first].count += 1;
            for bin in &mut bins[first..=last.max(first)] {
                let overlap = e.min(bin.t1).saturating_sub(s.max(bin.t0));
                bin.busy += overlap;
            }
        }
        bins
    }
}
