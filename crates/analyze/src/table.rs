//! The columnar trace table.
//!
//! Pipit keeps a trace as a dataframe and derives everything else from
//! it; this module is the UTE equivalent. [`TraceTable`] holds one column
//! per record field in parallel `Vec`s, in file order (end-time order,
//! §3.1). It is loaded *through the frame directory*: [`load_table`]
//! walks the directory chain of an interval file and decodes only the
//! frames that overlap the requested time window, so a diagnostic over a
//! slice of a long run never touches most of the file.

use std::path::Path;

use ute_core::bebits::BeBits;
use ute_core::error::Result;
use ute_format::file_io::FileIntervalReader;
use ute_format::frame::NO_DIR;
use ute_format::profile::Profile;
use ute_format::record::Interval;
use ute_format::state::StateCode;
use ute_format::value::Value;

/// Column sentinel for "this record has no such field".
pub const NO_FIELD: u64 = u64::MAX;

/// A column-oriented, in-memory view of one interval file (or of any
/// record sequence), in end-time order.
#[derive(Debug, Default, Clone)]
pub struct TraceTable {
    /// State code of each record.
    pub state: Vec<u16>,
    /// Piece kind (complete / begin / continuation / end).
    pub bebits: Vec<BeBits>,
    /// Start timestamp, ticks.
    pub start: Vec<u64>,
    /// Duration, ticks.
    pub duration: Vec<u64>,
    /// Processor id.
    pub cpu: Vec<u16>,
    /// Node id.
    pub node: Vec<u16>,
    /// Logical thread id.
    pub thread: Vec<u16>,
    /// MPI rank ([`NO_FIELD`] when absent).
    pub rank: Vec<u64>,
    /// Peer rank of a point-to-point call ([`NO_FIELD`] when absent).
    pub peer: Vec<u64>,
    /// Job-wide `(sender rank, seq)` message sequence number (0 = none).
    pub seq: Vec<u64>,
    /// Message bytes (sent or received; 0 when absent).
    pub bytes: Vec<u64>,
    /// Marker id of a marker piece (0 = none).
    pub marker_id: Vec<u32>,
    /// Marker id → name table from the file header.
    pub markers: Vec<(u32, String)>,
}

impl TraceTable {
    /// An empty table carrying a marker table.
    pub fn new(markers: Vec<(u32, String)>) -> TraceTable {
        TraceTable {
            markers,
            ..TraceTable::default()
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// End timestamp of row `i`.
    #[inline]
    pub fn end(&self, i: usize) -> u64 {
        self.start[i].saturating_add(self.duration[i])
    }

    /// State code of row `i`.
    #[inline]
    pub fn state_code(&self, i: usize) -> StateCode {
        StateCode(self.state[i])
    }

    /// Marker name for a marker id, if known.
    pub fn marker_name(&self, id: u32) -> Option<&str> {
        self.markers
            .iter()
            .find(|(mid, _)| *mid == id)
            .map(|(_, n)| n.as_str())
    }

    /// Appends one decoded record.
    pub fn push(&mut self, profile: &Profile, iv: &Interval) {
        let uint = |name: &str| iv.extra(profile, name).and_then(Value::as_uint);
        self.state.push(iv.itype.state.0);
        self.bebits.push(iv.itype.bebits);
        self.start.push(iv.start);
        self.duration.push(iv.duration);
        self.cpu.push(iv.cpu.raw());
        self.node.push(iv.node.raw());
        self.thread.push(iv.thread.raw());
        self.rank.push(uint("rank").unwrap_or(NO_FIELD));
        // The converter writes `u32::MAX` for "no peer".
        let peer = uint("peer").unwrap_or(NO_FIELD);
        self.peer.push(if peer == u32::MAX as u64 {
            NO_FIELD
        } else {
            peer
        });
        self.seq.push(uint("seq").unwrap_or(0));
        let sent = uint("msgSizeSent").unwrap_or(0);
        let recvd = uint("msgSizeRecvd").unwrap_or(0);
        self.bytes.push(sent.max(recvd));
        self.marker_id
            .push(uint("markerId").unwrap_or(0).min(u32::MAX as u64) as u32);
    }

    /// Builds a table from in-memory records (tests, benches, and the
    /// pipeline's own artifacts before they hit disk).
    pub fn from_intervals(
        profile: &Profile,
        intervals: &[Interval],
        markers: Vec<(u32, String)>,
    ) -> TraceTable {
        let mut t = TraceTable::new(markers);
        for iv in intervals {
            t.push(profile, iv);
        }
        t
    }

    /// Time span `(min start, max end)` of the loaded rows.
    pub fn span(&self) -> Option<(u64, u64)> {
        if self.is_empty() {
            return None;
        }
        let lo = self.start.iter().copied().min().unwrap_or(0);
        let hi = (0..self.len()).map(|i| self.end(i)).max().unwrap_or(0);
        Some((lo, hi))
    }
}

/// What to load from a file: everything, or a time window / node range.
#[derive(Debug, Default, Clone, Copy)]
pub struct LoadOptions {
    /// Keep only records overlapping `[t0, t1]` (ticks, inclusive).
    pub window: Option<(u64, u64)>,
    /// Keep only records of nodes in `[a, b]` (inclusive).
    pub nodes: Option<(u16, u16)>,
}

impl LoadOptions {
    /// Record-level filter: does this record belong in the table?
    pub fn admits(&self, iv: &Interval) -> bool {
        if let Some((t0, t1)) = self.window {
            if iv.end() < t0 || iv.start > t1 {
                return false;
            }
        }
        if let Some((a, b)) = self.nodes {
            let n = iv.node.raw();
            if n < a || n > b {
                return false;
            }
        }
        true
    }
}

/// Loads an interval file into a [`TraceTable`] through its frame
/// directory chain.
///
/// A frame whose `[start_time, end_time]` envelope misses the window is
/// skipped without decoding (its entry metadata alone proves no record
/// in it can overlap: `end_time` is the max record end, `start_time` the
/// min record start). The surviving frames are decoded and filtered
/// per-record, which makes windowed loading *exactly* equivalent to
/// loading everything and filtering — a property the test suite checks.
pub fn load_table(path: &Path, profile: &Profile, opts: &LoadOptions) -> Result<TraceTable> {
    let _span = ute_obs::Span::enter("analyze", format!("load {}", path.display()));
    let mut r = FileIntervalReader::open(path, profile)?;
    let mut table = TraceTable::new(r.markers.clone());
    let mut at = r.first_dir;
    let (mut read, mut skipped) = (0u64, 0u64);
    while at != NO_DIR {
        let dir = r.read_frame_dir(at)?;
        for entry in &dir.entries {
            if let Some((t0, t1)) = opts.window {
                if entry.end_time < t0 || entry.start_time > t1 {
                    skipped += 1;
                    continue;
                }
            }
            read += 1;
            for iv in r.frame_intervals(entry)? {
                if opts.admits(&iv) {
                    table.push(profile, &iv);
                }
            }
        }
        at = dir.next;
    }
    ute_obs::counter("analyze/frames_read").add(read);
    ute_obs::counter("analyze/frames_skipped").add(skipped);
    ute_obs::counter("analyze/rows").add(table.len() as u64);
    Ok(table)
}
