//! # ute-analyze — programmable diagnostics over interval files
//!
//! The paper's framework stops at declarative statistics and rendered
//! views; this crate adds the layer Pipit and PerFlow built years later
//! over the same kind of data: a queryable, columnar trace table
//! ([`table::TraceTable`]) loaded through the frame directory (only the
//! requested time window / node set, never the whole file), a small
//! operator algebra ([`ops::Selection`]), and four built-in
//! distributed-performance diagnostics returning structured findings:
//!
//! * [`late_sender`] — wait time charged to tardy senders, matched on
//!   the job-wide `(sender rank, seq)` message key;
//! * [`imbalance`] — per-phase max/mean exclusive-time scoring across
//!   nodes;
//! * [`comm_pattern`] — adjacency-matrix classification
//!   (nearest-neighbor / all-to-all / hub / irregular);
//! * [`critical_path`] — longest activity chain through intra-timeline
//!   ordering plus matched messages, with per-stage attribution.
//!
//! The analyzer instruments itself with `ute-obs` spans and `analyze/*`
//! counters, so its cost shows up in `--metrics` and `ute report` like
//! every other pipeline stage.

pub mod comm_pattern;
pub mod findings;
pub mod imbalance;
pub mod late_sender;
pub mod ops;
pub mod table;

/// The critical-path diagnostic.
pub mod critical_path;

pub use findings::{render_report_json, summary_json, Finding, Severity};
pub use ops::{Bin, Selection};
pub use table::{load_table, LoadOptions, TraceTable, NO_FIELD};

use ute_core::error::{Result, UteError};

/// Names of the built-in diagnostics, in run order.
pub const DIAGNOSTICS: &[&str] = &["late_sender", "imbalance", "comm_pattern", "critical_path"];

/// Thresholds and limits shared by the diagnostics.
#[derive(Debug, Clone, Copy)]
pub struct DiagOptions {
    /// Minimum max/mean exclusive-time ratio to flag a phase.
    pub imbalance_threshold: f64,
    /// Minimum total receiver wait (ticks) to blame a sender.
    pub min_wait: u64,
    /// Cap on findings per diagnostic.
    pub max_findings: usize,
}

impl Default for DiagOptions {
    fn default() -> Self {
        DiagOptions {
            imbalance_threshold: 1.25,
            min_wait: 50_000, // 50 µs
            max_findings: 16,
        }
    }
}

/// Ticks → milliseconds with 3 decimals, for messages and details.
pub(crate) fn ms(ticks: u64) -> String {
    format!("{:.3}", ticks as f64 / 1e6)
}

/// Runs one diagnostic by name.
pub fn run_diagnostic(name: &str, table: &TraceTable, opts: &DiagOptions) -> Result<Vec<Finding>> {
    let _span = ute_obs::Span::enter("analyze", name.to_string());
    let findings = match name {
        "late_sender" => late_sender::late_sender(table, opts),
        "imbalance" => imbalance::imbalance(table, opts),
        "comm_pattern" => comm_pattern::comm_pattern(table, opts),
        "critical_path" => critical_path::critical_path(table, opts),
        other => {
            return Err(UteError::Invalid(format!(
                "unknown diagnostic `{other}` (late_sender|imbalance|comm_pattern|critical_path)"
            )))
        }
    };
    ute_obs::counter("analyze/findings").add(findings.len() as u64);
    Ok(findings)
}

/// Runs every built-in diagnostic, concatenating findings in
/// [`DIAGNOSTICS`] order.
pub fn run_all(table: &TraceTable, opts: &DiagOptions) -> Vec<Finding> {
    DIAGNOSTICS
        .iter()
        .flat_map(|d| run_diagnostic(d, table, opts).expect("built-in diagnostic"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_core::bebits::BeBits;
    use ute_core::event::MpiOp;
    use ute_core::ids::{CpuId, LogicalThreadId, NodeId};
    use ute_format::profile::Profile;
    use ute_format::record::{Interval, IntervalType};
    use ute_format::state::StateCode;
    use ute_format::value::Value;

    fn iv(state: StateCode, start: u64, dur: u64, node: u16, thread: u16) -> Interval {
        Interval::basic(
            IntervalType::complete(state),
            start,
            dur,
            CpuId(0),
            NodeId(node),
            LogicalThreadId(thread),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn mpi_iv(
        profile: &Profile,
        op: MpiOp,
        start: u64,
        dur: u64,
        node: u16,
        rank: u64,
        peer: u64,
        seq: u64,
    ) -> Interval {
        iv(StateCode::mpi(op), start, dur, node, 0)
            .with_extra(profile, "rank", Value::Uint(rank))
            .with_extra(profile, "peer", Value::Uint(peer))
            .with_extra(profile, "seq", Value::Uint(seq))
            .with_extra(profile, "msgSizeSent", Value::Uint(1024))
    }

    fn end_sorted(mut ivs: Vec<Interval>) -> Vec<Interval> {
        ivs.sort_by_key(|iv| iv.end());
        ivs
    }

    /// A two-rank scenario: rank 1 posts its recv at t=100, rank 0 only
    /// sends at t=1000 — a 900-tick wait charged to rank 0.
    fn late_send_trace(profile: &Profile) -> Vec<Interval> {
        end_sorted(vec![
            iv(StateCode::RUNNING, 0, 1000, 0, 0),
            mpi_iv(profile, MpiOp::Send, 1000, 300_000, 0, 0, 1, 1),
            iv(StateCode::RUNNING, 0, 100, 1, 0),
            mpi_iv(profile, MpiOp::Recv, 100, 301_000, 1, 1, 0, 1),
        ])
    }

    #[test]
    fn late_sender_blames_the_sender() {
        let p = Profile::standard();
        let t = TraceTable::from_intervals(&p, &late_send_trace(&p), vec![]);
        let opts = DiagOptions {
            min_wait: 1,
            ..DiagOptions::default()
        };
        let f = late_sender::late_sender(&t, &opts);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rank, Some(0));
        assert_eq!(f[0].node, Some(0));
        assert_eq!(f[0].value, 900.0);
    }

    #[test]
    fn late_sender_respects_begin_pieces() {
        // Split recv: the End piece starts at t=900 but the call was
        // entered at t=100 (Begin piece) — the wait is still 900 ticks.
        let p = Profile::standard();
        let mut recv_begin = iv(StateCode::mpi(MpiOp::Recv), 100, 200, 1, 0);
        recv_begin.itype.bebits = BeBits::Begin;
        let mut recv_end = mpi_iv(&p, MpiOp::Recv, 900, 200_200, 1, 1, 0, 1);
        recv_end.itype.bebits = BeBits::End;
        let t = TraceTable::from_intervals(
            &p,
            &end_sorted(vec![
                recv_begin,
                mpi_iv(&p, MpiOp::Send, 1000, 100_000, 0, 0, 1, 1),
                recv_end,
            ]),
            vec![],
        );
        let opts = DiagOptions {
            min_wait: 1,
            ..DiagOptions::default()
        };
        let f = late_sender::late_sender(&t, &opts);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].value, 900.0);
    }

    #[test]
    fn imbalance_flags_the_hot_node_per_phase() {
        let p = Profile::standard();
        let mk = |start: u64, dur: u64, node: u16| {
            iv(StateCode::MARKER, start, dur, node, 0).with_extra(&p, "markerId", Value::Uint(1))
        };
        let t = TraceTable::from_intervals(
            &p,
            &end_sorted(vec![mk(0, 100, 0), mk(0, 100, 1), mk(0, 400, 2)]),
            vec![(1, "Iteration".into())],
        );
        let f = imbalance::imbalance(&t, &DiagOptions::default());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].node, Some(2));
        assert_eq!(f[0].phase.as_deref(), Some("Iteration"));
        assert!(f[0].value > 1.9, "{}", f[0].value);
    }

    #[test]
    fn imbalance_is_quiet_when_balanced() {
        let p = Profile::standard();
        let mk = |dur: u64, node: u16| {
            iv(StateCode::MARKER, 0, dur, node, 0).with_extra(&p, "markerId", Value::Uint(1))
        };
        let t = TraceTable::from_intervals(
            &p,
            &[mk(100, 0), mk(101, 1), mk(99, 2)],
            vec![(1, "Iteration".into())],
        );
        assert!(imbalance::imbalance(&t, &DiagOptions::default()).is_empty());
    }

    #[test]
    fn comm_pattern_classifies_ring_and_hub() {
        let p = Profile::standard();
        // 4-rank ring.
        let ring: Vec<Interval> = (0..4u64)
            .map(|r| mpi_iv(&p, MpiOp::Send, r * 10, 5, r as u16, r, (r + 1) % 4, 1))
            .collect();
        let t = TraceTable::from_intervals(&p, &end_sorted(ring), vec![]);
        let f = comm_pattern::comm_pattern(&t, &DiagOptions::default());
        assert_eq!(f[0].details[0].1, "nearest_neighbor", "{f:?}");
        // Everyone sends to rank 0.
        let hub: Vec<Interval> = (1..5u64)
            .map(|r| mpi_iv(&p, MpiOp::Send, r * 10, 5, r as u16, r, 0, 1))
            .collect();
        let t = TraceTable::from_intervals(&p, &end_sorted(hub), vec![]);
        let f = comm_pattern::comm_pattern(&t, &DiagOptions::default());
        assert_eq!(f[0].details[0].1, "hub", "{f:?}");
        assert_eq!(f[0].rank, Some(0));
    }

    #[test]
    fn critical_path_follows_the_message() {
        let p = Profile::standard();
        let t = TraceTable::from_intervals(&p, &late_send_trace(&p), vec![]);
        let f = critical_path::critical_path(&t, &DiagOptions::default());
        assert_eq!(f.len(), 1);
        // The path is rank 0's compute (1000) + send (300000) + the tail
        // of rank 1's recv — strictly more than either node alone.
        assert!(f[0].value >= 301_000.0, "{}", f[0].value);
        assert_eq!(f[0].node, Some(1));
        let hops: u64 = f[0]
            .details
            .iter()
            .find(|(k, _)| k == "hops")
            .unwrap()
            .1
            .parse()
            .unwrap();
        assert!(hops >= 1);
    }

    #[test]
    fn operators_compose() {
        let p = Profile::standard();
        let t = TraceTable::from_intervals(
            &p,
            &[
                iv(StateCode::RUNNING, 0, 100, 0, 0),
                iv(StateCode::SYSCALL, 100, 50, 0, 0),
                iv(StateCode::RUNNING, 0, 200, 1, 0),
            ],
            vec![],
        );
        assert_eq!(t.select().by_node(0).count(), 2);
        assert_eq!(t.select().interesting().count(), 1);
        assert_eq!(t.select().by_node(1).total_time(), 200);
        let groups = t.select().group_by_node();
        assert_eq!(groups.len(), 2);
        let bins = t.select().by_node(0).bins(75);
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].busy, 75);
        assert_eq!(bins[1].busy, 75);
        assert_eq!(bins.iter().map(|b| b.count).sum::<u64>(), 2);
    }

    #[test]
    fn report_json_shape() {
        let p = Profile::standard();
        let t = TraceTable::from_intervals(&p, &late_send_trace(&p), vec![]);
        let f = run_all(&t, &DiagOptions::default());
        let json = render_report_json(DIAGNOSTICS, t.len(), &f);
        assert!(json.contains("\"diagnostics\": [\"late_sender\""), "{json}");
        assert!(json.contains("\"findings\": ["), "{json}");
        let summary = summary_json(DIAGNOSTICS, &f);
        assert!(summary.contains("\"critical_path\": 1"), "{summary}");
        assert!(run_diagnostic("bogus", &t, &DiagOptions::default()).is_err());
    }
}
