//! Structured diagnostic findings and their JSON rendering.
//!
//! Every diagnostic returns a flat list of [`Finding`]s; nothing ever
//! panics or prints — PerFlow-style, the *report* is the output. The
//! JSON is hand-rolled with the same escaping discipline as
//! `ute-obs`'s report so it stays dependency-free and byte-stable.

use std::fmt::Write as _;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Descriptive: always emitted (pattern classification, path profile).
    Info,
    /// A measured inefficiency past its threshold.
    Warning,
}

impl Severity {
    /// Lower-case name used in JSON and text output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
        }
    }
}

/// One structured diagnostic finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which diagnostic produced it.
    pub diagnostic: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Node the finding points at, if any.
    pub node: Option<u16>,
    /// MPI rank the finding points at, if any.
    pub rank: Option<u64>,
    /// Phase (marker) name the finding is scoped to, if any.
    pub phase: Option<String>,
    /// The diagnostic's headline metric (meaning documented per
    /// diagnostic: waited ticks, imbalance score, …).
    pub value: f64,
    /// Human-readable one-liner.
    pub message: String,
    /// Extra key → value pairs (stringly typed, stable order).
    pub details: Vec<(String, String)>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

impl Finding {
    /// Renders the finding as one JSON object (no trailing newline).
    pub fn to_json(&self, indent: &str) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{indent}{{\"diagnostic\": \"{}\", \"severity\": \"{}\"",
            self.diagnostic,
            self.severity.name()
        );
        match self.node {
            Some(n) => {
                let _ = write!(s, ", \"node\": {n}");
            }
            None => s.push_str(", \"node\": null"),
        }
        match self.rank {
            Some(r) => {
                let _ = write!(s, ", \"rank\": {r}");
            }
            None => s.push_str(", \"rank\": null"),
        }
        match &self.phase {
            Some(p) => {
                let _ = write!(s, ", \"phase\": \"{}\"", json_escape(p));
            }
            None => s.push_str(", \"phase\": null"),
        }
        let _ = write!(
            s,
            ", \"value\": {}, \"message\": \"{}\"",
            fmt_f64(self.value),
            json_escape(&self.message)
        );
        s.push_str(", \"details\": {");
        for (i, (k, v)) in self.details.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\": \"{}\"", json_escape(k), json_escape(v));
        }
        s.push_str("}}");
        s
    }

    /// Renders the finding as one text line.
    pub fn to_text(&self) -> String {
        let mut s = format!(
            "[{}] {}: {}",
            self.severity.name(),
            self.diagnostic,
            self.message
        );
        if !self.details.is_empty() {
            s.push_str(" (");
            for (i, (k, v)) in self.details.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{k}={v}");
            }
            s.push(')');
        }
        s
    }
}

/// Renders a full analysis report: which diagnostics ran, over how many
/// rows, and every finding.
pub fn render_report_json(diagnostics: &[&str], rows: usize, findings: &[Finding]) -> String {
    let mut s = String::from("{\n  \"diagnostics\": [");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{d}\"");
    }
    let _ = write!(s, "],\n  \"rows\": {rows},\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        s.push_str(&f.to_json("    "));
        if i + 1 < findings.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

/// Per-diagnostic finding counts, in [`crate::DIAGNOSTICS`] order — the
/// compact block `ute report` embeds.
pub fn summary_json(diagnostics: &[&str], findings: &[Finding]) -> String {
    let mut s = String::from("{");
    let _ = write!(s, "\"findings\": {}", findings.len());
    for d in diagnostics {
        let n = findings.iter().filter(|f| f.diagnostic == *d).count();
        let _ = write!(s, ", \"{d}\": {n}");
    }
    s.push('}');
    s
}
