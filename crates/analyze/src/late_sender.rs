//! Late-sender detection (Scalasca's classic wait-state pattern).
//!
//! A receiver that enters `MPI_Recv` (or a `Wait` completing one)
//! *before* its partner enters the matching send is stalled by the
//! sender; that stall is charged to the sender. Pairs are matched on the
//! job-wide `(sender rank, seq)` key that the tracing facility stamps on
//! every message and the converter carries onto the completed call's
//! interval record — the same key `ute-slog` uses to draw arrows.
//!
//! Record fields consumed: `rank`, `peer`, `seq` on completed
//! point-to-point intervals, plus the piece structure (a Begin piece
//! pins the call's true entry time when the call was split).

use std::collections::{BTreeMap, HashMap};

use ute_core::bebits::BeBits;
use ute_core::event::MpiOp;

use crate::findings::{Finding, Severity};
use crate::table::{TraceTable, NO_FIELD};
use crate::{ms, DiagOptions};

struct SendRec {
    node: u16,
    call_start: u64,
}

#[derive(Default)]
struct Blame {
    node: u16,
    total_wait: u64,
    late: u64,
    max_wait: u64,
}

/// Runs the diagnostic over a table.
pub fn late_sender(t: &TraceTable, opts: &DiagOptions) -> Vec<Finding> {
    // (node, thread, state) → entry time of the currently open call, so
    // a split call's wait is measured from its Begin piece, not from
    // whichever End piece carries the arguments.
    let mut open: HashMap<(u16, u16, u16), u64> = HashMap::new();
    let mut sends: HashMap<(u64, u64), SendRec> = HashMap::new();
    let mut blame: BTreeMap<u64, Blame> = BTreeMap::new();
    let mut matched = 0u64;
    for i in 0..t.len() {
        let key = (t.node[i], t.thread[i], t.state[i]);
        let call_start = match t.bebits[i] {
            BeBits::Begin => {
                open.insert(key, t.start[i]);
                continue;
            }
            BeBits::Continuation => continue,
            BeBits::End => open.remove(&key).unwrap_or(t.start[i]),
            BeBits::Complete => t.start[i],
        };
        let Some(op) = t.state_code(i).as_mpi() else {
            continue;
        };
        let call_end = t.end(i);
        if op.is_p2p_send() && t.seq[i] > 0 && t.rank[i] != NO_FIELD {
            sends.insert(
                (t.rank[i], t.seq[i]),
                SendRec {
                    node: t.node[i],
                    call_start,
                },
            );
        }
        // Sendrecv's seq is its *outgoing* message, so only pure receive
        // completions match here. (Irecv ends carry no seq; the matched
        // Wait does.)
        if matches!(op, MpiOp::Recv | MpiOp::Irecv | MpiOp::Wait)
            && t.seq[i] > 0
            && t.peer[i] != NO_FIELD
        {
            if let Some(s) = sends.get(&(t.peer[i], t.seq[i])) {
                matched += 1;
                if s.call_start > call_start {
                    let wait = s.call_start.min(call_end) - call_start;
                    let b = blame.entry(t.peer[i]).or_default();
                    b.node = s.node;
                    b.total_wait = b.total_wait.saturating_add(wait);
                    b.late += 1;
                    b.max_wait = b.max_wait.max(wait);
                }
            }
        }
    }
    ute_obs::counter("analyze/msgs_matched").add(matched);

    let mut culprits: Vec<(u64, Blame)> = blame
        .into_iter()
        .filter(|(_, b)| b.total_wait >= opts.min_wait)
        .collect();
    culprits.sort_by(|a, b| b.1.total_wait.cmp(&a.1.total_wait).then(a.0.cmp(&b.0)));
    culprits.truncate(opts.max_findings);
    culprits
        .into_iter()
        .map(|(rank, b)| Finding {
            diagnostic: "late_sender",
            severity: Severity::Warning,
            node: Some(b.node),
            rank: Some(rank),
            phase: None,
            value: b.total_wait as f64,
            message: format!(
                "rank {rank} (node {}) sent late {} time(s); receivers waited {} ms on it",
                b.node,
                b.late,
                ms(b.total_wait)
            ),
            details: vec![
                ("late_messages".into(), b.late.to_string()),
                ("total_wait_ms".into(), ms(b.total_wait)),
                ("max_wait_ms".into(), ms(b.max_wait)),
            ],
        })
        .collect()
}
