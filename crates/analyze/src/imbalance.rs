//! Per-phase load-imbalance scoring.
//!
//! The converter's matcher gives marker pieces exactly the phase's
//! *non-nested* time — time inside the phase but outside any MPI call or
//! kernel activity — so summing a node's marker pieces yields its
//! exclusive compute time in that phase with no further bookkeeping.
//! The score is the classic `max / mean` across nodes: 1.0 is perfectly
//! balanced, and anything past the threshold names the overloaded node.
//!
//! Record fields consumed: `markerId` on Marker pieces (plus per-node
//! Running time as a whole-run fallback for unmarked traces).

use std::collections::BTreeMap;

use ute_format::state::StateCode;

use crate::findings::{Finding, Severity};
use crate::table::TraceTable;
use crate::{ms, DiagOptions};

/// Runs the diagnostic over a table.
pub fn imbalance(t: &TraceTable, opts: &DiagOptions) -> Vec<Finding> {
    // phase marker id → node → exclusive ticks.
    let mut phases: BTreeMap<u32, BTreeMap<u16, u64>> = BTreeMap::new();
    for i in 0..t.len() {
        if t.state[i] == StateCode::MARKER.0 && t.marker_id[i] != 0 {
            *phases
                .entry(t.marker_id[i])
                .or_default()
                .entry(t.node[i])
                .or_default() += t.duration[i];
        }
    }
    let unmarked = phases.is_empty();
    if unmarked {
        // No marker phases: score the whole run on Running time.
        let mut nodes: BTreeMap<u16, u64> = BTreeMap::new();
        for i in 0..t.len() {
            if t.state[i] == StateCode::RUNNING.0 {
                *nodes.entry(t.node[i]).or_default() += t.duration[i];
            }
        }
        if !nodes.is_empty() {
            phases.insert(0, nodes);
        }
    }

    let mut findings = Vec::new();
    for (id, nodes) in &phases {
        if nodes.len() < 2 {
            continue;
        }
        let mean = nodes.values().sum::<u64>() as f64 / nodes.len() as f64;
        let (&max_node, &max_ticks) = nodes
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .unwrap();
        if mean <= 0.0 {
            continue;
        }
        let score = max_ticks as f64 / mean;
        if score < opts.imbalance_threshold {
            continue;
        }
        let phase = if unmarked {
            "(whole run)".to_string()
        } else {
            t.marker_name(*id)
                .map(str::to_string)
                .unwrap_or_else(|| format!("marker{id}"))
        };
        findings.push(Finding {
            diagnostic: "imbalance",
            severity: Severity::Warning,
            node: Some(max_node),
            rank: None,
            phase: Some(phase.clone()),
            value: (score * 1000.0).round() / 1000.0,
            message: format!(
                "phase `{phase}`: node {max_node} carries {score:.2}x the mean exclusive time \
                 ({} ms vs {} ms mean over {} nodes)",
                ms(max_ticks),
                ms(mean as u64),
                nodes.len()
            ),
            details: vec![
                ("max_ms".into(), ms(max_ticks)),
                ("mean_ms".into(), ms(mean as u64)),
                ("nodes".into(), nodes.len().to_string()),
            ],
        });
    }
    findings.sort_by(|a, b| {
        b.value
            .partial_cmp(&a.value)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    findings.truncate(opts.max_findings);
    findings
}
