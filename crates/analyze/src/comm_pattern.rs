//! Communication-pattern classification.
//!
//! Builds the rank → peer adjacency matrix from completed send-side
//! records and classifies its shape: `nearest_neighbor` (≥ 90 % of
//! messages travel ring distance ≤ 1), `hub` (one rank touches ≥ 80 % of
//! all messages, with more than two participants), `all_to_all`
//! (off-diagonal pair density ≥ 50 %), or `irregular`. Always emits
//! exactly one info finding describing the matrix.
//!
//! Record fields consumed: `rank`, `peer`, `msgSizeSent` on completed
//! point-to-point send intervals.

use std::collections::{BTreeMap, BTreeSet};

use ute_core::bebits::BeBits;

use crate::findings::{Finding, Severity};
use crate::table::{TraceTable, NO_FIELD};
use crate::DiagOptions;

fn ring_distance(a: u64, b: u64, n: u64) -> u64 {
    let d = a.abs_diff(b);
    d.min(n - d)
}

/// Runs the diagnostic over a table.
pub fn comm_pattern(t: &TraceTable, _opts: &DiagOptions) -> Vec<Finding> {
    // (src rank, dst rank) → (messages, bytes).
    let mut pairs: BTreeMap<(u64, u64), (u64, u64)> = BTreeMap::new();
    for i in 0..t.len() {
        if !matches!(t.bebits[i], BeBits::Complete | BeBits::End) {
            continue;
        }
        let is_send = t
            .state_code(i)
            .as_mpi()
            .map(|op| op.is_p2p_send())
            .unwrap_or(false);
        if !is_send || t.rank[i] == NO_FIELD || t.peer[i] == NO_FIELD {
            continue;
        }
        let e = pairs.entry((t.rank[i], t.peer[i])).or_default();
        e.0 += 1;
        e.1 += t.bytes[i];
    }
    if pairs.is_empty() {
        return vec![Finding {
            diagnostic: "comm_pattern",
            severity: Severity::Info,
            node: None,
            rank: None,
            phase: None,
            value: 0.0,
            message: "no point-to-point traffic".into(),
            details: vec![("pattern".into(), "none".into())],
        }];
    }

    let participants: BTreeSet<u64> = pairs.keys().flat_map(|&(a, b)| [a, b]).collect();
    let p = participants.len() as u64;
    let nranks = participants.iter().max().unwrap() + 1;
    let msgs: u64 = pairs.values().map(|v| v.0).sum();
    let bytes: u64 = pairs.values().map(|v| v.1).sum();
    let ring_msgs: u64 = pairs
        .iter()
        .filter(|((a, b), _)| ring_distance(*a, *b, nranks) <= 1)
        .map(|(_, v)| v.0)
        .sum();
    let ring_frac = ring_msgs as f64 / msgs as f64;
    let (hub_rank, hub_msgs) = participants
        .iter()
        .map(|&r| {
            let m: u64 = pairs
                .iter()
                .filter(|((a, b), _)| *a == r || *b == r)
                .map(|(_, v)| v.0)
                .sum();
            (r, m)
        })
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .unwrap();
    let hub_frac = hub_msgs as f64 / msgs as f64;
    let density = pairs.len() as f64 / (p * p.saturating_sub(1)).max(1) as f64;

    let (pattern, focus_rank) = if p > 2 && hub_frac >= 0.8 {
        ("hub", Some(hub_rank))
    } else if ring_frac >= 0.9 {
        ("nearest_neighbor", None)
    } else if density >= 0.5 {
        ("all_to_all", None)
    } else {
        ("irregular", None)
    };
    let message = match focus_rank {
        Some(r) => format!(
            "{pattern} pattern: rank {r} is on {:.0}% of {msgs} messages among {p} ranks",
            hub_frac * 100.0
        ),
        None => format!(
            "{pattern} pattern: {msgs} messages over {} rank pairs among {p} ranks",
            pairs.len()
        ),
    };
    vec![Finding {
        diagnostic: "comm_pattern",
        severity: Severity::Info,
        node: None,
        rank: focus_rank,
        phase: None,
        value: msgs as f64,
        message,
        details: vec![
            ("pattern".into(), pattern.into()),
            ("ranks".into(), p.to_string()),
            ("messages".into(), msgs.to_string()),
            ("bytes".into(), bytes.to_string()),
            ("ring_fraction".into(), format!("{ring_frac:.3}")),
            ("hub_fraction".into(), format!("{hub_frac:.3}")),
            ("pair_density".into(), format!("{density:.3}")),
        ],
    }]
}
