//! A counting semaphore gating CPU-bound pipeline work.
//!
//! The pipeline spawns one scoped thread per node file (threads are
//! cheap at trace-file counts) and bounds *CPU concurrency* with this
//! semaphore instead of bounding thread count: a worker holds a permit
//! only while decoding/adjusting, and releases it before any blocking
//! channel send. That structure is what makes the bounded-channel
//! topology deadlock-free — a blocked sender never holds a permit, so
//! some runnable worker can always make progress and eventually feed
//! the stream the merge consumer is waiting on.

use std::sync::{Condvar, Mutex};

/// A counting semaphore. [`Semaphore::acquire`] returns an RAII
/// [`Permit`] that releases on drop.
pub struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    /// A semaphore with `n` permits (at least one).
    pub fn new(n: usize) -> Semaphore {
        Semaphore {
            permits: Mutex::new(n.max(1)),
            available: Condvar::new(),
        }
    }

    /// Blocks until a permit is available and takes it. A contended
    /// acquire — the pool is the bottleneck, not the channels — counts
    /// into `pipeline/permit_waits` with its wait time in the
    /// `pipeline/permit_wait_ns` log₂ histogram.
    pub fn acquire(&self) -> Permit<'_> {
        let mut n = self.permits.lock().expect("semaphore lock");
        if *n == 0 {
            ute_obs::counter("pipeline/permit_waits").inc();
            let wait = std::time::Instant::now();
            while *n == 0 {
                n = self.available.wait(n).expect("semaphore wait");
            }
            ute_obs::histogram("pipeline/permit_wait_ns").record(wait.elapsed().as_nanos() as u64);
        }
        *n -= 1;
        Permit { sem: self }
    }

    fn release(&self) {
        let mut n = self.permits.lock().expect("semaphore lock");
        *n += 1;
        drop(n);
        self.available.notify_one();
    }
}

/// An acquired permit; dropping it releases the slot.
pub struct Permit<'a> {
    sem: &'a Semaphore,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.sem.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn permits_bound_concurrency() {
        let sem = Semaphore::new(2);
        let running = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let _p = sem.acquire();
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    running.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn dropped_permit_unblocks_waiter() {
        let sem = Semaphore::new(1);
        let p = sem.acquire();
        std::thread::scope(|s| {
            let h = s.spawn(|| {
                let _p2 = sem.acquire();
            });
            drop(p);
            h.join().unwrap();
        });
    }
}
