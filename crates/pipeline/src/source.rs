//! Channel plumbing between per-node workers and the merge consumer.
//!
//! Workers emit clock-adjusted intervals in batches over a bounded
//! channel; [`ChannelSource`] adapts the receiving end to the merge
//! crate's [`MergeSource`] trait so the k-way [`LoserTreeMerge`]
//! consumes a live stream exactly as it would an in-memory vector.
//! Batching keeps channel traffic to one handoff per few thousand
//! records — the batch size adapts upward whenever a send blocks on a
//! full channel — and the bounded capacity keeps memory flat while
//! letting the merge overlap upstream decoding.
//!
//! Both channel ends are backpressure-instrumented: a send that finds
//! the channel full counts into `pipeline/blocked_sends` and records
//! its wait in the `pipeline/send_wait_ns` log₂ histogram; a receive
//! that finds it empty does the same via `pipeline/blocked_recvs` /
//! `pipeline/recv_wait_ns`; and the live batches-in-flight total feeds
//! the `pipeline/queue_depth` gauge (`pipeline/queue_depth_max` keeps
//! the high-water mark). The `ute-profile` sampler turns these into
//! counter tracks, so "who is waiting on whom" is visible per tick in
//! the Chrome trace. Cost on the unblocked path: a couple of metric
//! updates per *batch* (1024–65536 records), noise next to the handoff.
//!
//! [`LoserTreeMerge`]: ute_merge::LoserTreeMerge

use std::sync::atomic::{AtomicI64, Ordering};

use crossbeam::channel::{Receiver, Sender, TryRecvError, TrySendError};
use ute_core::error::{Result, UteError};
use ute_format::record::Interval;
use ute_merge::MergeSource;

use crate::pool::{Permit, Semaphore};

/// Starting records per channel batch. Small enough that the merge
/// consumer gets its first records quickly even on short streams.
pub const BATCH_RECORDS_MIN: usize = 1024;

/// Ceiling for the adaptive batch size.
pub const BATCH_RECORDS_MAX: usize = 65536;

/// Bounded channel capacity, in batches, per node stream.
pub const CHANNEL_BATCHES: usize = 8;

/// The sending side of a node's interval stream: accumulates records
/// into batches and ships each batch with the CPU permit *released*, so
/// a send that blocks on a full channel never stalls the worker pool.
pub struct BatchSender<'a> {
    tx: Sender<Vec<Interval>>,
    batch: Vec<Interval>,
    sem: &'a Semaphore,
    permit: Option<Permit<'a>>,
    depth: &'a AtomicI64,
    /// Self-trace flow link for this worker→consumer handoff (0 = none);
    /// the producing end is recorded once, at the first batch shipped.
    link: u64,
    link_sent: bool,
    /// Adaptive flush threshold: starts at [`BATCH_RECORDS_MIN`] and
    /// doubles (to [`BATCH_RECORDS_MAX`]) each time a send finds the
    /// channel full — the backpressure signal the
    /// `pipeline/send_wait_ns` histogram also feeds. A producer that
    /// outruns its consumer amortizes more records per handoff; one that
    /// never blocks keeps batches small and latency low. Batch size only
    /// changes *when* records cross the channel, never their order, so
    /// the merged output stays byte-identical at any size.
    cap: usize,
}

impl<'a> BatchSender<'a> {
    /// Wraps a channel sender; `permit` is the worker's held CPU slot,
    /// `link` the pre-allocated self-trace flow id (0 disables).
    pub fn new(
        tx: Sender<Vec<Interval>>,
        sem: &'a Semaphore,
        permit: Permit<'a>,
        depth: &'a AtomicI64,
        link: u64,
    ) -> BatchSender<'a> {
        BatchSender {
            tx,
            batch: Vec::with_capacity(BATCH_RECORDS_MIN),
            sem,
            permit: Some(permit),
            depth,
            link,
            link_sent: false,
            cap: BATCH_RECORDS_MIN,
        }
    }

    /// Appends a record, flushing a full batch downstream.
    pub fn push(&mut self, iv: Interval) -> Result<()> {
        self.batch.push(iv);
        if self.batch.len() >= self.cap {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        if self.batch.is_empty() {
            return Ok(());
        }
        let batch = std::mem::replace(&mut self.batch, Vec::with_capacity(self.cap));
        if !self.link_sent {
            self.link_sent = true;
            ute_obs::flow_begin(self.link);
        }
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        ute_obs::gauge("pipeline/queue_depth").set(depth as f64);
        ute_obs::gauge("pipeline/queue_depth_max").set_max(depth as f64);
        ute_obs::counter("pipeline/batches").add(1);
        // Fast path: space in the channel, keep the CPU permit.
        let batch = match self.tx.try_send(batch) {
            Ok(()) => return Ok(()),
            Err(TrySendError::Disconnected(_)) => {
                // The merge consumer is gone — it failed and is
                // unwinding; its error is the one the caller surfaces.
                return Err(UteError::Invalid("pipeline: merge consumer stopped".into()));
            }
            Err(TrySendError::Full(batch)) => batch,
        };
        // Slow path: give up the CPU slot across the blocking send so a
        // parked producer never occupies the worker pool.
        self.permit = None;
        ute_obs::counter("pipeline/blocked_sends").inc();
        let wait = std::time::Instant::now();
        let sent = self.tx.send(batch);
        ute_obs::histogram("pipeline/send_wait_ns").record(wait.elapsed().as_nanos() as u64);
        if sent.is_err() {
            return Err(UteError::Invalid("pipeline: merge consumer stopped".into()));
        }
        // Backpressure: the consumer is behind, so amortize the next
        // handoff over a bigger batch.
        self.cap = (self.cap * 2).min(BATCH_RECORDS_MAX);
        ute_obs::gauge("pipeline/batch_records").set_max(self.cap as f64);
        self.permit = Some(self.sem.acquire());
        Ok(())
    }

    /// Flushes the final partial batch and closes the stream (the
    /// receiver sees end-of-stream once this sender drops).
    pub fn finish(mut self) -> Result<()> {
        self.flush()
    }
}

/// A [`MergeSource`] fed by a worker through a bounded channel. The
/// stream ends when the sender drops — whether after its final batch or
/// early on a worker error; the caller distinguishes the two by joining
/// the worker.
pub struct ChannelSource<'a> {
    rx: Receiver<Vec<Interval>>,
    batch: std::vec::IntoIter<Interval>,
    depth: &'a AtomicI64,
    /// Consuming end of the worker's flow link (0 = none); recorded
    /// once, at the first batch received.
    link: u64,
    link_seen: bool,
}

impl<'a> ChannelSource<'a> {
    /// Wraps the receiving end of a node's interval stream; `link` is
    /// the same flow id the worker's [`BatchSender`] holds (0 disables).
    pub fn new(rx: Receiver<Vec<Interval>>, depth: &'a AtomicI64, link: u64) -> ChannelSource<'a> {
        ChannelSource {
            rx,
            batch: Vec::new().into_iter(),
            depth,
            link,
            link_seen: false,
        }
    }
}

impl MergeSource for ChannelSource<'_> {
    type Item = Interval;

    fn next_item(&mut self) -> Option<Interval> {
        loop {
            if let Some(iv) = self.batch.next() {
                return Some(iv);
            }
            // Non-blocking first so only genuine waits — the merge ran
            // dry and the upstream workers are behind — are counted.
            let received = match self.rx.try_recv() {
                Ok(batch) => Ok(batch),
                Err(TryRecvError::Disconnected) => return None,
                Err(TryRecvError::Empty) => {
                    ute_obs::counter("pipeline/blocked_recvs").inc();
                    let wait = std::time::Instant::now();
                    let got = self.rx.recv();
                    ute_obs::histogram("pipeline/recv_wait_ns")
                        .record(wait.elapsed().as_nanos() as u64);
                    got
                }
            };
            match received {
                Ok(batch) => {
                    if !self.link_seen {
                        self.link_seen = true;
                        ute_obs::flow_end(self.link);
                    }
                    let depth = self.depth.fetch_sub(1, Ordering::Relaxed) - 1;
                    ute_obs::gauge("pipeline/queue_depth").set(depth.max(0) as f64);
                    self.batch = batch.into_iter();
                }
                Err(_) => return None,
            }
        }
    }

    fn end_of(item: &Interval) -> u64 {
        item.end()
    }
}
