//! # ute-pipeline — parallel convert/merge with a determinism guarantee
//!
//! The paper's Table 1 makes convert and merge the throughput-critical
//! stages between trace generation and visualization. This crate runs
//! them on a parallel execution layer without changing a single output
//! byte:
//!
//! * **Fan-out** — one worker per node file converts raw events and
//!   clock-adjusts the node's intervals ([`ute_merge::adjust_node`],
//!   which includes the §2.2 clock fit). CPU concurrency is bounded by a
//!   [`pool::Semaphore`] with `jobs` permits.
//! * **Streaming** — each worker feeds its end-ordered interval stream
//!   into the k-way [`ute_merge::LoserTreeMerge`] through a bounded
//!   channel ([`source::ChannelSource`]), so the merge and the merged
//!   file writer overlap upstream conversion instead of waiting for all
//!   nodes.
//! * **Determinism** — output is byte-identical to the serial path for
//!   every `jobs` value. Headers are absorbed in input order on the
//!   consumer; per-node streams are produced by the *same* code the
//!   serial path runs; the merge tree breaks end-time ties by source
//!   index, which is input order; and the writer is shared. Nothing
//!   downstream can observe scheduling.
//!
//! Deadlock freedom: workers release their CPU permit before any
//! blocking channel send (see [`source::BatchSender`]), so a full
//! channel parks a worker without occupying the pool, and the consumer's
//! demand always reaches a runnable worker.
//!
//! `jobs == 1` (or a single input) short-circuits to the serial
//! functions — the parallel machinery is entirely bypassed.

pub mod pool;
pub mod source;

use std::sync::atomic::AtomicI64;

use crossbeam::channel;
use crossbeam::thread as cb_thread;

use ute_convert::{
    convert_job_opts, convert_node_tapped, node_threads, ConvertOptions, ConvertOutput, MarkerMap,
};
use ute_core::error::{Result, UteError};
use ute_format::file::IntervalFileReader;
use ute_format::profile::Profile;
use ute_format::record::Interval;
use ute_format::thread_table::ThreadTable;
use ute_merge::clockfit::NodeFit;
use ute_merge::{
    absorb_file_header, absorb_header_tables, adjust_intervals, adjust_node, plan_boundaries,
    split_stream, write_merged_stream, IvSource, LoserTreeMerge, MergeOptions, MergeOutput,
    MergeStats,
};
use ute_rawtrace::file::RawTraceFile;
use ute_slog::builder::{BuildOptions, SlogBuilder};
use ute_slog::file::SlogFile;

use pool::Semaphore;
use source::{BatchSender, ChannelSource, CHANNEL_BATCHES};

/// Error message a worker reports when the merge consumer disappeared
/// mid-stream. Secondary by construction — the consumer's own error is
/// the interesting one — so result collection filters it out.
const CONSUMER_GONE: &str = "pipeline: merge consumer stopped";

fn is_consumer_gone(e: &UteError) -> bool {
    matches!(e, UteError::Invalid(m) if m == CONSUMER_GONE)
}

pub(crate) fn consumer_gone() -> UteError {
    UteError::Invalid(CONSUMER_GONE.into())
}

/// The default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Picks the first *primary* error in deterministic order: worker errors
/// by input index (skipping the secondary consumer-gone report), then
/// the consumer's own error. `Ok` only if every part succeeded.
fn first_error<T, C>(
    workers: Vec<cb_thread::Result<Result<T>>>,
    consumer: Result<C>,
) -> Result<(Vec<T>, C)> {
    let mut oks = Vec::with_capacity(workers.len());
    let mut secondary = None;
    for r in workers {
        match r.map_err(|_| UteError::Invalid("pipeline worker panicked".into()))? {
            Ok(v) => oks.push(v),
            Err(e) if is_consumer_gone(&e) => secondary = Some(e),
            Err(e) => return Err(e),
        }
    }
    let c = consumer?;
    match secondary {
        // Consumer succeeded yet a worker saw it gone — can only mean
        // the stream ended early somehow; surface rather than swallow.
        Some(e) => Err(e),
        None => Ok((oks, c)),
    }
}

/// A merge-side worker's result: the node's clock fit and input record
/// count, or `None` when salvage mode degraded the node.
type WorkerFit = Option<(NodeFit, u64)>;

/// The header a fused convert worker publishes before streaming records
/// (thread table + marker list), or `None` for a degraded node.
type HeaderMsg = Option<(ThreadTable, Vec<(u32, String)>)>;

/// One node's merge-side worker: adjust the node under a CPU permit and
/// stream batches downstream.
///
/// Strict mode streams as it adjusts and fails the whole pipeline on
/// error. Salvage mode materializes the node's full adjusted vector
/// first — all-or-nothing, isolated by [`salvage_attempt`] — and only
/// then streams it, so a node that degrades mid-decode contributes
/// *nothing* and the merged bytes stay identical at every `jobs` value.
/// A degraded node returns `Ok(None)`; dropping `tx` ends its stream.
///
/// `parent` is the spawning thread's span ([`ute_obs::current_span`]
/// does not cross the spawn) and `link` the pre-allocated flow id tying
/// this worker's stream to the merge consumer in the self-trace.
#[allow(clippy::too_many_arguments)]
fn produce_adjusted(
    reader: &IntervalFileReader<'_>,
    profile: &Profile,
    opts: &MergeOptions,
    sem: &Semaphore,
    tx: channel::Sender<Vec<Interval>>,
    depth: &AtomicI64,
    parent: u64,
    link: u64,
) -> Result<WorkerFit> {
    let permit = sem.acquire();
    let _span = ute_obs::Span::enter_under(
        "pipeline",
        format!("adjust worker node {}", reader.node),
        parent,
    );
    if !opts.salvage {
        let mut sender = BatchSender::new(tx, sem, permit, depth, link);
        let out = adjust_node(reader, profile, opts, |iv| sender.push(iv))?;
        sender.finish()?;
        return Ok(Some(out));
    }
    let attempt = || {
        let mut adjusted = Vec::new();
        let out = adjust_node(reader, profile, opts, |iv| {
            adjusted.push(iv);
            Ok(())
        })?;
        Ok((adjusted, out))
    };
    match salvage_attempt(attempt, &format!("node {}", reader.node)) {
        Some((adjusted, out)) => {
            let mut sender = BatchSender::new(tx, sem, permit, depth, link);
            for iv in adjusted {
                sender.push(iv)?;
            }
            sender.finish()?;
            Ok(Some(out))
        }
        None => Ok(None),
    }
}

/// Runs a salvage-mode worker stage with panic isolation and one
/// bounded retry: a panicking or erroring attempt is retried once
/// (`pipeline/worker_retries`), then the node is dropped with a warning
/// and `None`. A poisoned worker therefore never wedges the bounded
/// channels or the k-way merge — it just ends its stream early.
fn salvage_attempt<T>(attempt: impl Fn() -> Result<T>, who: &str) -> Option<T> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let run = |a: &dyn Fn() -> Result<T>| match catch_unwind(AssertUnwindSafe(a)) {
        Ok(r) => r,
        Err(_) => Err(UteError::Invalid("worker panicked".into())),
    };
    match run(&attempt) {
        Ok(v) => Some(v),
        Err(first) => {
            ute_obs::counter("pipeline/worker_retries").inc();
            match run(&attempt) {
                Ok(v) => Some(v),
                Err(_) => {
                    ute_merge::salvage_warn(who, &first.to_string());
                    None
                }
            }
        }
    }
}

/// Runs the headers-then-streams topology shared by [`merge_files_jobs`]
/// and [`slogmerge_jobs`]: spawns one producer per open reader, then
/// hands the channel-fed merge iterator to `consume` on the calling
/// thread. Headers were already absorbed serially by the caller.
fn merge_streamed<T: Send>(
    readers: Vec<IntervalFileReader<'_>>,
    profile: &Profile,
    opts: &MergeOptions,
    jobs: usize,
    consume: impl FnOnce(LoserTreeMerge<ChannelSource<'_>>) -> Result<T>,
) -> Result<(Vec<WorkerFit>, T)> {
    let sem = Semaphore::new(jobs);
    let depth = AtomicI64::new(0);
    ute_obs::gauge("pipeline/jobs").set(jobs as f64);
    // Workers run on their own threads, so the thread-local span stack
    // does not follow them: capture the current span here and parent
    // each worker's span under it explicitly.
    let parent = ute_obs::current_span();
    let (workers, consumed) = cb_thread::scope(|s| {
        let sem = &sem;
        let depth = &depth;
        let mut sources = Vec::with_capacity(readers.len());
        let mut handles = Vec::with_capacity(readers.len());
        for reader in &readers {
            let (tx, rx) = channel::bounded(CHANNEL_BATCHES);
            // One flow link per worker→consumer stream, allocated here
            // on the spawning thread in input order.
            let link = ute_obs::new_link();
            sources.push(ChannelSource::new(rx, depth, link));
            handles.push(s.spawn(move |_| {
                produce_adjusted(reader, profile, opts, sem, tx, depth, parent, link)
            }));
        }
        let consumed = {
            let _span = ute_obs::Span::enter("pipeline", "merge consumer");
            consume(LoserTreeMerge::new(sources))
        };
        let workers: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        (workers, consumed)
    })
    .map_err(|_| UteError::Invalid("pipeline scope panicked".into()))?;
    first_error(workers, consumed)
}

/// [`ute_merge::merge_files`] on `jobs` workers. Byte-identical output
/// for every `jobs` value; `jobs <= 1` runs the serial path directly.
pub fn merge_files_jobs(
    files: &[&[u8]],
    profile: &Profile,
    opts: &MergeOptions,
    jobs: usize,
) -> Result<MergeOutput> {
    if jobs <= 1 || files.len() <= 1 {
        return ute_merge::merge_files(files, profile, opts);
    }
    let mut stats = MergeStats::default();
    let mut union_threads = ThreadTable::new();
    let mut markers: Vec<(u32, String)> = Vec::new();
    let mut readers = Vec::with_capacity(files.len());
    open_and_absorb(
        files,
        profile,
        opts,
        &mut union_threads,
        &mut markers,
        &mut stats,
        &mut readers,
    )?;
    markers.sort_by_key(|(id, _)| *id);
    let (fits, merged) = merge_streamed(readers, profile, opts, jobs, |merge| {
        write_merged_stream(profile, &union_threads, &markers, opts, merge, &mut stats)
    })?;
    collect_fits(fits, &mut stats);
    Ok(MergeOutput { merged, stats })
}

/// The serial open-and-absorb prologue both parallel entry points run:
/// every openable input's header joins the union tables in input order;
/// in salvage mode an input that fails to open or absorb is dropped and
/// counted instead of aborting. This mirrors [`ute_merge::merge_files`]'s
/// serial loop exactly, which is what keeps the union tables — and so
/// the merged bytes — identical at every `jobs` value.
fn open_and_absorb<'a>(
    files: &[&'a [u8]],
    profile: &'a Profile,
    opts: &MergeOptions,
    union_threads: &mut ThreadTable,
    markers: &mut Vec<(u32, String)>,
    stats: &mut MergeStats,
    readers: &mut Vec<IntervalFileReader<'a>>,
) -> Result<()> {
    for (i, bytes) in files.iter().enumerate() {
        let reader = match IntervalFileReader::open(bytes, profile) {
            Ok(r) => r,
            Err(e) if opts.salvage => {
                ute_merge::degrade_node(stats, &format!("input {i}"), &e.to_string());
                continue;
            }
            Err(e) => return Err(e),
        };
        match absorb_file_header(&reader, union_threads, markers) {
            Ok(()) => readers.push(reader),
            Err(e) if opts.salvage => {
                ute_merge::degrade_node(stats, &format!("node {}", reader.node), &e.to_string());
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Folds worker results into the stats: `None` marks a salvage-mode
/// degraded node.
fn collect_fits(fits: Vec<WorkerFit>, stats: &mut MergeStats) {
    for f in fits {
        match f {
            Some((nf, records_in)) => {
                stats.records_in += records_in;
                stats.fits.push(nf);
            }
            None => stats.nodes_degraded += 1,
        }
    }
}

/// [`ute_merge::slogmerge`] on `jobs` workers: the merged stream is
/// collected while workers still decode, then built into a SLOG file.
pub fn slogmerge_jobs(
    files: &[&[u8]],
    profile: &Profile,
    opts: &MergeOptions,
    build: BuildOptions,
    jobs: usize,
) -> Result<(SlogFile, MergeStats)> {
    if jobs <= 1 || files.len() <= 1 {
        return ute_merge::slogmerge(files, profile, opts, build);
    }
    let mut stats = MergeStats::default();
    let mut union_threads = ThreadTable::new();
    let mut markers: Vec<(u32, String)> = Vec::new();
    let mut readers = Vec::with_capacity(files.len());
    open_and_absorb(
        files,
        profile,
        opts,
        &mut union_threads,
        &mut markers,
        &mut stats,
        &mut readers,
    )?;
    markers.sort_by_key(|(id, _)| *id);
    let (fits, merged) = merge_streamed(readers, profile, opts, jobs, |merge| {
        Ok(merge.collect::<Vec<Interval>>())
    })?;
    collect_fits(fits, &mut stats);
    stats.records_out = merged.len() as u64;
    ute_obs::counter("merge/records_out").add(stats.records_out);
    let slog = SlogBuilder::new(profile, build).build(&merged, &union_threads, &markers)?;
    Ok((slog, stats))
}

/// The fused pipeline's result: per-node converted files (in input
/// order, same bytes as staged conversion) plus the merged output.
#[derive(Debug)]
pub struct PipelineOutput {
    /// Per-node conversion results, in input order.
    pub converted: Vec<ConvertOutput>,
    /// The merged interval file and statistics.
    pub merged: MergeOutput,
}

/// One node's fused worker: convert raw events, publish the converted
/// file's header, then clock-adjust and stream intervals — all under
/// the CPU permit except blocking sends.
///
/// Fusion skips the encode/decode round-trip: the converter taps every
/// record it writes into an in-memory vector, and the merge stage
/// consumes that vector directly ([`adjust_intervals`]). The staged
/// path decodes each converted file twice (clock-fit pass + adjust
/// pass); this path decodes it zero times. The header tables sent
/// downstream are the very tables the converter embedded in the file,
/// so the absorbed union is identical to the staged path's.
/// In salvage mode the convert attempt and the adjust attempt are each
/// isolated by [`salvage_attempt`]: a node that fails conversion sends a
/// `None` header and no records; one that converts but fails adjustment
/// sends its real header (matching the staged path, which absorbs a
/// degraded file's header before dropping its records) and no records.
#[allow(clippy::too_many_arguments)]
fn produce_converted(
    file: &RawTraceFile,
    threads: &ThreadTable,
    profile: &Profile,
    markers: &MarkerMap,
    copts: &ConvertOptions,
    mopts: &MergeOptions,
    sem: &Semaphore,
    header_tx: channel::Sender<HeaderMsg>,
    tx: channel::Sender<Vec<Interval>>,
    depth: &AtomicI64,
    parent: u64,
    link: u64,
) -> Result<(Option<ConvertOutput>, WorkerFit)> {
    let permit = sem.acquire();
    let node_raw = file.node.raw();
    let _span = ute_obs::Span::enter_under(
        "pipeline",
        format!("convert worker node {node_raw}"),
        parent,
    );
    let who = format!("node {node_raw}");
    let convert = || {
        let mut tapped: Vec<Interval> = Vec::new();
        let out = convert_node_tapped(file, threads, profile, markers, copts, &mut |iv| {
            testhook::fire(node_raw);
            tapped.push(iv.clone())
        })?;
        Ok((out, tapped))
    };
    let converted = if mopts.salvage {
        salvage_attempt(convert, &who)
    } else {
        Some(convert()?)
    };
    let Some((out, tapped)) = converted else {
        let _ = header_tx.send(None);
        return Ok((None, None));
    };
    let node_table = node_threads(threads, file.node);
    // Capacity-1 channel, single send: never blocks. A send error means
    // the consumer already failed; the interval sends below will report
    // it as the usual secondary consumer-gone error.
    let _ = header_tx.send(Some((node_table.clone(), markers.table().to_vec())));
    drop(header_tx);
    if !mopts.salvage {
        let mut sender = BatchSender::new(tx, sem, permit, depth, link);
        let (nf, records_in) =
            adjust_intervals(file.node.raw(), &node_table, tapped, profile, mopts, |iv| {
                sender.push(iv)
            })?;
        sender.finish()?;
        return Ok((Some(out), Some((nf, records_in))));
    }
    // Salvage: materialize the adjusted stream all-or-nothing before
    // streaming, exactly like the merge-side salvage worker.
    let adjust = || {
        let mut adjusted = Vec::new();
        let fit = adjust_intervals(
            file.node.raw(),
            &node_table,
            tapped.clone(),
            profile,
            mopts,
            |iv| {
                adjusted.push(iv);
                Ok(())
            },
        )?;
        Ok((adjusted, fit))
    };
    match salvage_attempt(adjust, &who) {
        Some((adjusted, fit)) => {
            let mut sender = BatchSender::new(tx, sem, permit, depth, link);
            for iv in adjusted {
                sender.push(iv)?;
            }
            sender.finish()?;
            Ok((Some(out), Some(fit)))
        }
        None => Ok((Some(out), None)),
    }
}

/// The fused parallel pipeline: converts every node's raw trace and
/// merges the results in one pass, with merge overlapping conversion —
/// the merged file is byte-identical to staged serial
/// convert-then-merge for every `jobs` value.
pub fn convert_and_merge(
    files: &[RawTraceFile],
    threads: &ThreadTable,
    profile: &Profile,
    copts: &ConvertOptions,
    mopts: &MergeOptions,
    jobs: usize,
) -> Result<PipelineOutput> {
    if jobs <= 1 || files.len() <= 1 {
        let (converted, convert_degraded) = if mopts.salvage {
            // Tolerant per-node conversion with the same retry/isolation
            // semantics as the parallel workers, so the same nodes
            // degrade at every jobs value.
            let markers = MarkerMap::build(files)?;
            let mut out = Vec::with_capacity(files.len());
            let mut degraded = 0u64;
            for f in files {
                let who = format!("node {}", f.node.raw());
                match salvage_attempt(
                    || ute_convert::convert_node_opts(f, threads, profile, &markers, copts),
                    &who,
                ) {
                    Some(c) => out.push(c),
                    None => degraded += 1,
                }
            }
            (out, degraded)
        } else {
            (convert_job_opts(files, threads, profile, copts, false)?, 0)
        };
        let refs: Vec<&[u8]> = converted
            .iter()
            .map(|c| c.interval_file.as_slice())
            .collect();
        let mut merged = ute_merge::merge_files(&refs, profile, mopts)?;
        merged.stats.nodes_degraded += convert_degraded;
        return Ok(PipelineOutput { converted, merged });
    }
    // Marker-id unification needs a global view, so the map is built
    // serially up front (a cheap scan) — exactly as staged conversion
    // does, keeping converted bytes identical.
    let marker_map = MarkerMap::build(files)?;
    let mut stats = MergeStats::default();
    let sem = Semaphore::new(jobs);
    let depth = AtomicI64::new(0);
    ute_obs::gauge("pipeline/jobs").set(jobs as f64);
    // See merge_streamed: workers adopt the spawning thread's span as
    // their explicit parent, and each stream gets a flow link.
    let parent = ute_obs::current_span();
    let (workers, merged) = cb_thread::scope(|s| {
        let sem = &sem;
        let depth = &depth;
        let marker_map = &marker_map;
        let mut sources = Vec::with_capacity(files.len());
        let mut header_rxs = Vec::with_capacity(files.len());
        let mut handles = Vec::with_capacity(files.len());
        for file in files {
            let (header_tx, header_rx) = channel::bounded(1);
            let (tx, rx) = channel::bounded(CHANNEL_BATCHES);
            let link = ute_obs::new_link();
            sources.push(ChannelSource::new(rx, depth, link));
            header_rxs.push(header_rx);
            handles.push(s.spawn(move |_| {
                produce_converted(
                    file, threads, profile, marker_map, copts, mopts, sem, header_tx, tx, depth,
                    parent, link,
                )
            }));
        }
        // Absorb headers in input order; workers stream on regardless
        // (their bounded channels absorb the head start).
        let consumed = (|| {
            let _span = ute_obs::Span::enter("pipeline", "merge consumer");
            let mut union_threads = ThreadTable::new();
            let mut markers: Vec<(u32, String)> = Vec::new();
            for header_rx in header_rxs {
                // `None` is a salvage-mode degraded node: no header, no
                // records — the same absence the staged path produces.
                let Some((t, m)) = header_rx.recv().map_err(|_| consumer_gone())? else {
                    continue;
                };
                absorb_header_tables(&t, &m, &mut union_threads, &mut markers)?;
            }
            markers.sort_by_key(|(id, _)| *id);
            write_merged_stream(
                profile,
                &union_threads,
                &markers,
                mopts,
                LoserTreeMerge::new(sources),
                &mut stats,
            )
        })();
        let workers: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        (workers, consumed)
    })
    .map_err(|_| UteError::Invalid("pipeline scope panicked".into()))?;
    let (parts, merged) = first_error(workers, merged)?;
    let mut converted = Vec::with_capacity(parts.len());
    for (out, fit) in parts {
        match fit {
            Some((nf, records_in)) => {
                stats.records_in += records_in;
                stats.fits.push(nf);
            }
            None => stats.nodes_degraded += 1,
        }
        if let Some(out) = out {
            converted.push(out);
        }
    }
    Ok(PipelineOutput {
        converted,
        merged: MergeOutput { merged, stats },
    })
}

/// One node's phase-A worker for the sharded pipeline: convert and
/// clock-adjust under a CPU permit, materializing the adjusted stream
/// instead of streaming it over a channel. Salvage semantics mirror
/// [`produce_converted`] exactly: a node that fails conversion
/// contributes no header and no records; one that converts but fails
/// adjustment contributes its real header and no records — so the same
/// nodes degrade, and the same bytes come out, at every `jobs` value.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn convert_adjust_materialized(
    file: &RawTraceFile,
    threads: &ThreadTable,
    profile: &Profile,
    markers: &MarkerMap,
    copts: &ConvertOptions,
    mopts: &MergeOptions,
    sem: &Semaphore,
    parent: u64,
) -> Result<(Option<ConvertOutput>, HeaderMsg, WorkerFit, Vec<Interval>)> {
    let _permit = sem.acquire();
    let node_raw = file.node.raw();
    let _span = ute_obs::Span::enter_under(
        "pipeline",
        format!("convert worker node {node_raw}"),
        parent,
    );
    let who = format!("node {node_raw}");
    let convert = || {
        let mut tapped: Vec<Interval> = Vec::new();
        let out = convert_node_tapped(file, threads, profile, markers, copts, &mut |iv| {
            testhook::fire(node_raw);
            tapped.push(iv.clone())
        })?;
        Ok((out, tapped))
    };
    let converted = if mopts.salvage {
        salvage_attempt(convert, &who)
    } else {
        Some(convert()?)
    };
    let Some((out, tapped)) = converted else {
        return Ok((None, None, None, Vec::new()));
    };
    let node_table = node_threads(threads, file.node);
    let header = Some((node_table.clone(), markers.table().to_vec()));
    if !mopts.salvage {
        let mut adjusted = Vec::new();
        let fit = adjust_intervals(node_raw, &node_table, tapped, profile, mopts, |iv| {
            adjusted.push(iv);
            Ok(())
        })?;
        return Ok((Some(out), header, Some(fit), adjusted));
    }
    let adjust = || {
        let mut adjusted = Vec::new();
        let fit = adjust_intervals(
            node_raw,
            &node_table,
            tapped.clone(),
            profile,
            mopts,
            |iv| {
                adjusted.push(iv);
                Ok(())
            },
        )?;
        Ok((adjusted, fit))
    };
    match salvage_attempt(adjust, &who) {
        Some((adjusted, fit)) => Ok((Some(out), header, Some(fit), adjusted)),
        None => Ok((Some(out), header, None, Vec::new())),
    }
}

/// The two-phase *sharded* variant of [`convert_and_merge`]: phase A
/// converts and clock-adjusts every node in parallel, materializing each
/// node's end-ordered stream; phase B plans time-range shard boundaries
/// at the frame-directory stride ([`plan_boundaries`]), merges each
/// shard on its own worker, and stitches the shard outputs — strictly in
/// shard order — into the single merged writer while later shards are
/// still merging.
///
/// Where [`convert_and_merge`] parallelizes conversion but funnels the
/// k-way merge through one consumer thread, this path parallelizes the
/// merge itself. Output is byte-identical to [`convert_and_merge`] (and
/// to staged serial convert-then-merge) at every `jobs` value: the
/// half-open shard partition keeps every equal-end tie inside one shard
/// (see [`ute_merge::shard`]), so the stitched sequence — and therefore
/// every frame boundary and §3.3 pseudo-record the writer derives from
/// it — is exactly the global merge sequence.
pub fn convert_and_merge_sharded(
    files: &[RawTraceFile],
    threads: &ThreadTable,
    profile: &Profile,
    copts: &ConvertOptions,
    mopts: &MergeOptions,
    jobs: usize,
) -> Result<PipelineOutput> {
    if jobs <= 1 || files.len() <= 1 {
        return convert_and_merge(files, threads, profile, copts, mopts, jobs);
    }
    let marker_map = MarkerMap::build(files)?;
    let sem = Semaphore::new(jobs);
    ute_obs::gauge("pipeline/jobs").set(jobs as f64);
    let parent = ute_obs::current_span();
    // Phase A: fan out one convert+adjust worker per node.
    let parts = cb_thread::scope(|s| {
        let sem = &sem;
        let marker_map = &marker_map;
        let handles: Vec<_> = files
            .iter()
            .map(|file| {
                s.spawn(move |_| {
                    convert_adjust_materialized(
                        file, threads, profile, marker_map, copts, mopts, sem, parent,
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
    })
    .map_err(|_| UteError::Invalid("pipeline scope panicked".into()))?;
    let mut stats = MergeStats::default();
    let mut union_threads = ThreadTable::new();
    let mut markers: Vec<(u32, String)> = Vec::new();
    let mut converted = Vec::with_capacity(files.len());
    let mut streams: Vec<Vec<Interval>> = Vec::with_capacity(files.len());
    // Input order throughout: header absorption and stream order (the
    // merge's tie-break) are both defined by it.
    for joined in parts {
        let (out, header, fit, adjusted) =
            joined.map_err(|_| UteError::Invalid("pipeline worker panicked".into()))??;
        if let Some((t, m)) = header {
            absorb_header_tables(&t, &m, &mut union_threads, &mut markers)?;
        }
        match fit {
            Some((nf, records_in)) => {
                stats.records_in += records_in;
                stats.fits.push(nf);
            }
            None => stats.nodes_degraded += 1,
        }
        if let Some(out) = out {
            converted.push(out);
        }
        if !adjusted.is_empty() {
            streams.push(adjusted);
        }
    }
    markers.sort_by_key(|(id, _)| *id);
    // Phase B: partition the time line at the frame-directory stride and
    // merge each shard on its own worker.
    let stride = mopts
        .policy
        .max_records_per_frame
        .saturating_mul(mopts.policy.max_frames_per_dir);
    let boundaries = plan_boundaries(&streams, stride, jobs);
    let nshards = boundaries.len() + 1;
    ute_obs::gauge("pipeline/merge_shards").set(nshards as f64);
    let mut seg: Vec<Vec<Vec<Interval>>> = (0..nshards).map(|_| Vec::new()).collect();
    for stream in streams {
        for (sh, part) in split_stream(stream, &boundaries).into_iter().enumerate() {
            seg[sh].push(part);
        }
    }
    let merged_bytes = cb_thread::scope(|s| {
        let sem = &sem;
        let handles: Vec<_> = seg
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                s.spawn(move |_| {
                    let _permit = sem.acquire();
                    let _span =
                        ute_obs::Span::enter_under("pipeline", format!("merge shard {i}"), parent);
                    let sources: Vec<IvSource> = shard.into_iter().map(IvSource::new).collect();
                    LoserTreeMerge::new(sources).collect::<Vec<Interval>>()
                })
            })
            .collect();
        // Stitch: consume shard outputs strictly in shard order; shard
        // s+1 keeps merging while shard s is being written.
        let _span = ute_obs::Span::enter("pipeline", "sharded stitch");
        let stitched = handles
            .into_iter()
            .flat_map(|h| h.join().expect("shard merge worker panicked"));
        write_merged_stream(
            profile,
            &union_threads,
            &markers,
            mopts,
            stitched,
            &mut stats,
        )
    })
    .map_err(|_| UteError::Invalid("pipeline scope panicked".into()))??;
    Ok(PipelineOutput {
        converted,
        merged: MergeOutput {
            merged: merged_bytes,
            stats,
        },
    })
}

/// Fault-injection hook for regression tests: arms a one-shot panic
/// inside a fused convert worker's record tap, so tests can verify that
/// `catch_unwind` isolation closes (marks aborted) the worker's open
/// spans and that the salvage retry still produces clean output. The
/// disarmed fast path is a single relaxed atomic load per record —
/// the same cost class as the always-on counters.
#[doc(hidden)]
pub mod testhook {
    use std::sync::atomic::{AtomicI64, Ordering};

    /// Node whose next tapped record panics, or -1 when disarmed.
    static PANIC_NODE: AtomicI64 = AtomicI64::new(-1);

    /// Arms a one-shot panic in the fused convert worker for `node`.
    pub fn arm_convert_panic(node: u16) {
        PANIC_NODE.store(node as i64, Ordering::SeqCst);
    }

    #[inline]
    pub(crate) fn fire(node: u16) {
        if PANIC_NODE.load(Ordering::Relaxed) == node as i64
            && PANIC_NODE
                .compare_exchange(node as i64, -1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            panic!("testhook: injected convert panic on node {node}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_cluster::Simulator;
    use ute_format::file::FramePolicy;
    use ute_workloads::micro;

    /// Simulates and converts a small stencil run, surfacing the full
    /// error (not a bare unwrap panic) when any stage refuses.
    fn converted_files() -> Result<(Profile, Vec<Vec<u8>>)> {
        let w = micro::stencil(6, 8, 8 << 10);
        let result = Simulator::new(w.config, &w.job)?.run()?;
        let profile = Profile::standard();
        let copts = ConvertOptions {
            policy: FramePolicy {
                max_records_per_frame: 64,
                max_frames_per_dir: 4,
            },
            ..ConvertOptions::default()
        };
        let converted =
            convert_job_opts(&result.raw_files, &result.threads, &profile, &copts, false)?;
        Ok((
            profile,
            converted.into_iter().map(|c| c.interval_file).collect(),
        ))
    }

    #[test]
    fn parallel_merge_is_byte_identical_to_serial() -> Result<()> {
        let (profile, per_node) = converted_files()?;
        let refs: Vec<&[u8]> = per_node.iter().map(|f| f.as_slice()).collect();
        let opts = MergeOptions::default();
        let serial = ute_merge::merge_files(&refs, &profile, &opts)?;
        for jobs in [2, 3, 8] {
            let parallel = merge_files_jobs(&refs, &profile, &opts, jobs)?;
            assert_eq!(
                serial.merged, parallel.merged,
                "merged bytes differ at jobs={jobs}"
            );
            assert_eq!(serial.stats.records_in, parallel.stats.records_in);
            assert_eq!(serial.stats.records_out, parallel.stats.records_out);
            assert_eq!(serial.stats.pseudo_added, parallel.stats.pseudo_added);
            assert_eq!(serial.stats.fits.len(), parallel.stats.fits.len());
        }
        Ok(())
    }

    #[test]
    fn parallel_slogmerge_matches_serial() -> Result<()> {
        let (profile, per_node) = converted_files()?;
        let refs: Vec<&[u8]> = per_node.iter().map(|f| f.as_slice()).collect();
        let opts = MergeOptions::default();
        let build = BuildOptions {
            nframes: 8,
            preview_bins: 16,
            arrows: true,
        };
        let (serial, _) = ute_merge::slogmerge(&refs, &profile, &opts, build)?;
        let (parallel, _) = slogmerge_jobs(&refs, &profile, &opts, build, 4)?;
        assert_eq!(serial.to_bytes(), parallel.to_bytes());
        Ok(())
    }

    #[test]
    fn fused_pipeline_matches_staged_serial() -> Result<()> {
        let w = micro::sendrecv_shift(5, 6, 4 << 10);
        let result = Simulator::new(w.config, &w.job)?.run()?;
        let profile = Profile::standard();
        let copts = ConvertOptions {
            policy: FramePolicy::default(),
            ..ConvertOptions::default()
        };
        let mopts = MergeOptions::default();
        let staged = convert_and_merge(
            &result.raw_files,
            &result.threads,
            &profile,
            &copts,
            &mopts,
            1,
        )?;
        for jobs in [2, 4, 8] {
            let fused = convert_and_merge(
                &result.raw_files,
                &result.threads,
                &profile,
                &copts,
                &mopts,
                jobs,
            )?;
            assert_eq!(
                staged.merged.merged, fused.merged.merged,
                "merged bytes differ at jobs={jobs}"
            );
            assert_eq!(staged.converted.len(), fused.converted.len());
            for (a, b) in staged.converted.iter().zip(&fused.converted) {
                assert_eq!(a.node, b.node);
                assert_eq!(a.interval_file, b.interval_file);
            }
        }
        Ok(())
    }

    #[test]
    fn sharded_pipeline_matches_streamed_and_serial() -> Result<()> {
        let w = micro::sendrecv_shift(5, 6, 4 << 10);
        let result = Simulator::new(w.config, &w.job)?.run()?;
        let profile = Profile::standard();
        // Tiny frames so shard boundaries land at many frame edges.
        let copts = ConvertOptions {
            policy: FramePolicy {
                max_records_per_frame: 32,
                max_frames_per_dir: 2,
            },
            ..ConvertOptions::default()
        };
        let mopts = MergeOptions {
            policy: FramePolicy {
                max_records_per_frame: 32,
                max_frames_per_dir: 2,
            },
            ..MergeOptions::default()
        };
        let serial = convert_and_merge(
            &result.raw_files,
            &result.threads,
            &profile,
            &copts,
            &mopts,
            1,
        )?;
        for jobs in [2, 3, 8] {
            let sharded = convert_and_merge_sharded(
                &result.raw_files,
                &result.threads,
                &profile,
                &copts,
                &mopts,
                jobs,
            )?;
            assert_eq!(
                serial.merged.merged, sharded.merged.merged,
                "sharded merged bytes differ at jobs={jobs}"
            );
            assert_eq!(
                serial.merged.stats.pseudo_added,
                sharded.merged.stats.pseudo_added
            );
            assert_eq!(serial.converted.len(), sharded.converted.len());
            for (a, b) in serial.converted.iter().zip(&sharded.converted) {
                assert_eq!(a.interval_file, b.interval_file);
            }
        }
        Ok(())
    }

    #[test]
    fn corrupt_input_reports_the_error_at_any_job_count() {
        let (profile, mut per_node) =
            converted_files().expect("clean stencil run must simulate and convert");
        // Truncate one file mid-body so decoding fails after the header.
        let keep = per_node[2].len() - 7;
        per_node[2].truncate(keep);
        let refs: Vec<&[u8]> = per_node.iter().map(|f| f.as_slice()).collect();
        let opts = MergeOptions::default();
        for jobs in [1, 4] {
            assert!(
                merge_files_jobs(&refs, &profile, &opts, jobs).is_err(),
                "corruption undetected at jobs={jobs}"
            );
        }
    }
}
