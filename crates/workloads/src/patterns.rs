//! Additional communication patterns beyond the paper's two codes:
//! a Sweep3D-style pipelined wavefront and a master–worker task farm.
//! Both stress parts of the pipeline the ring exchanges do not — long
//! dependency chains (arrows marching diagonally across timelines) and
//! strongly asymmetric roles (one hot timeline, many idle-ish ones).

use ute_cluster::config::ClusterConfig;
use ute_cluster::program::{JobProgram, Op, TaskProgram};
use ute_core::time::Duration;

use crate::Workload;

/// A 1-D pipelined wavefront over `ntasks` ranks, `sweeps` fronts deep:
/// each rank receives from its left neighbour, computes, and forwards to
/// its right neighbour — rank 0 originates, the last rank sinks.
pub fn wavefront(ntasks: u32, sweeps: u32, bytes: u64) -> Workload {
    assert!(ntasks >= 2, "wavefront needs at least two ranks");
    let config = ClusterConfig {
        nodes: ntasks as u16,
        cpus_per_node: 2,
        tasks_per_node: 1,
        threads_per_task: 1,
        ..ClusterConfig::default()
    };
    let job = JobProgram::spmd(ntasks, |rank| {
        let mut ops = vec![Op::MarkerBegin("sweep".into())];
        for s in 0..sweeps {
            if rank > 0 {
                ops.push(Op::Recv {
                    from: rank - 1,
                    tag: s,
                });
            }
            ops.push(Op::Compute(Duration::from_micros(800)));
            if rank < ntasks - 1 {
                ops.push(Op::Send {
                    to: rank + 1,
                    bytes,
                    tag: s,
                });
            }
        }
        ops.push(Op::MarkerEnd("sweep".into()));
        TaskProgram::single(ops)
    });
    Workload {
        name: "wavefront",
        config,
        job,
    }
}

/// A master–worker task farm: rank 0 scatters `rounds` work items to each
/// worker and collects results; workers compute between receive and send.
pub fn master_worker(workers: u32, rounds: u32, bytes: u64) -> Workload {
    let ntasks = workers + 1;
    let config = ClusterConfig {
        nodes: ntasks as u16,
        cpus_per_node: 2,
        tasks_per_node: 1,
        threads_per_task: 1,
        ..ClusterConfig::default()
    };
    let job = JobProgram::spmd(ntasks, |rank| {
        let mut ops = Vec::new();
        if rank == 0 {
            ops.push(Op::MarkerBegin("farm".into()));
            for r in 0..rounds {
                for w in 1..=workers {
                    ops.push(Op::Send {
                        to: w,
                        bytes,
                        tag: r,
                    });
                }
                for w in 1..=workers {
                    ops.push(Op::Recv { from: w, tag: r });
                }
            }
            ops.push(Op::MarkerEnd("farm".into()));
        } else {
            for r in 0..rounds {
                ops.push(Op::Recv { from: 0, tag: r });
                // Uneven work: higher ranks carry more.
                ops.push(Op::Compute(Duration::from_micros(300 * rank as u64)));
                ops.push(Op::Send {
                    to: 0,
                    bytes: bytes / 2,
                    tag: r,
                });
            }
        }
        TaskProgram::single(ops)
    });
    Workload {
        name: "master_worker",
        config,
        job,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_cluster::Simulator;
    use ute_core::event::{EventCode, MpiOp};

    #[test]
    fn wavefront_pipelines_in_rank_order() {
        let w = wavefront(5, 3, 4096);
        let res = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
        // (ntasks−1) hops per sweep.
        assert_eq!(res.stats.messages, 4 * 3);
        // The pipeline implies rank k's first send happens after rank
        // k−1's: check first MPI_Send end timestamps are increasing in
        // rank (nodes host ranks in order and clocks drift only ppm-scale,
        // far below the 800 µs stage compute).
        let mut first_send: Vec<u64> = Vec::new();
        for f in &res.raw_files[..4] {
            let t = f
                .events
                .iter()
                .find(|e| e.code == EventCode::MpiEnd(MpiOp::Send))
                .map(|e| e.timestamp.ticks())
                .unwrap();
            first_send.push(t);
        }
        for w in first_send.windows(2) {
            assert!(w[0] < w[1], "wavefront order violated: {first_send:?}");
        }
    }

    #[test]
    fn master_worker_farm_completes() {
        let w = master_worker(3, 4, 8192);
        let res = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
        // Per round: 3 sends out + 3 results back.
        assert_eq!(res.stats.messages, 4 * 6);
        // The master cut the most MPI records.
        let mpi_count = |node: usize| {
            res.raw_files[node]
                .events
                .iter()
                .filter(|e| matches!(e.code, EventCode::MpiBegin(_)))
                .count()
        };
        assert!(mpi_count(0) > mpi_count(1));
    }
}
