//! The Table 1 workload: "trace files created by a test program with 4
//! MPI tasks, each of which has 4 threads. ... The test program was
//! executed several times with different problem sizes and parameters, so
//! that the numbers of raw events are different."
//!
//! [`scaled_job`] exposes that size knob: each iteration of the inner
//! loop produces a roughly constant number of raw events (MPI begin/end
//! pairs, dispatch churn from the blocking receives, marker and system
//! events), so the event count grows linearly with `iterations`.

use ute_cluster::config::ClusterConfig;
use ute_cluster::program::{JobProgram, Op, TaskProgram};
use ute_core::time::Duration;

use crate::Workload;

/// The paper's six Table 1 trace sizes (raw event counts).
pub const TABLE1_EVENT_COUNTS: [u64; 6] =
    [40_282, 128_378, 254_225, 641_354, 4_613_568, 11_216_936];

/// Builds the 4-task × 4-thread test program with `iterations` inner
/// loops per task.
pub fn scaled_job(iterations: u32) -> Workload {
    let config = ClusterConfig {
        nodes: 4,
        cpus_per_node: 2,
        tasks_per_node: 1,
        threads_per_task: 4,
        quantum: Duration::from_micros(500),
        daemons_per_node: 1,
        daemon_period: Duration::from_millis(5),
        clock_sample_period: Duration::from_millis(50),
        ..ClusterConfig::default()
    };
    let ntasks = config.total_tasks();
    let job = JobProgram::spmd(ntasks, |rank| {
        let right = (rank + 1) % ntasks;
        let left = (rank + ntasks - 1) % ntasks;
        let mut mpi = vec![Op::MarkerBegin("loop".into())];
        for i in 0..iterations {
            mpi.push(Op::Compute(Duration::from_micros(50)));
            mpi.push(Op::Irecv { from: left, tag: 0 });
            mpi.push(Op::Isend {
                to: right,
                bytes: 256,
                tag: 0,
            });
            mpi.push(Op::Waitall);
            if i % 8 == 7 {
                mpi.push(Op::Allreduce { bytes: 8 });
            }
        }
        mpi.push(Op::MarkerEnd("loop".into()));
        // Worker threads churn the scheduler (dispatch events) and add
        // system activity.
        let worker: Vec<Op> = (0..iterations)
            .flat_map(|i| {
                let mut v = vec![Op::Compute(Duration::from_micros(120))];
                if i % 16 == 0 {
                    v.push(Op::Syscall);
                }
                v
            })
            .collect();
        TaskProgram {
            threads: vec![mpi, worker.clone(), worker.clone(), worker],
        }
    });
    Workload {
        name: "table1_scaling",
        config,
        job,
    }
}

/// Approximate raw events produced per iteration (calibrated by the
/// `table1_scaling_is_linear` test; used by the Table 1 bench to pick
/// iteration counts hitting the paper's sizes).
pub const EVENTS_PER_ITERATION: f64 = 31.0;

/// Iterations needed to produce roughly `events` raw events.
pub fn iterations_for_events(events: u64) -> u32 {
    ((events as f64 / EVENTS_PER_ITERATION).ceil() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_cluster::Simulator;

    #[test]
    fn matches_paper_topology() {
        let w = scaled_job(4);
        assert_eq!(w.job.tasks.len(), 4);
        for t in &w.job.tasks {
            assert_eq!(t.threads.len(), 4);
        }
    }

    #[test]
    fn table1_scaling_is_linear() {
        let small = Simulator::new(scaled_job(32).config, &scaled_job(32).job)
            .unwrap()
            .run()
            .unwrap();
        let large = Simulator::new(scaled_job(128).config, &scaled_job(128).job)
            .unwrap()
            .run()
            .unwrap();
        let ratio = large.stats.events_cut as f64 / small.stats.events_cut as f64;
        assert!(
            (3.0..5.0).contains(&ratio),
            "events should scale ~4x: {} → {} ({ratio:.2}x)",
            small.stats.events_cut,
            large.stats.events_cut
        );
        // Per-iteration estimate is in the right ballpark (within 2x).
        let per_iter = large.stats.events_cut as f64 / 128.0;
        assert!(
            per_iter > EVENTS_PER_ITERATION / 2.0 && per_iter < EVENTS_PER_ITERATION * 2.0,
            "calibration drifted: {per_iter:.1} events/iter"
        );
    }

    #[test]
    fn iteration_helper_is_monotone() {
        let mut last = 0;
        for &e in &TABLE1_EVENT_COUNTS {
            let it = iterations_for_events(e);
            assert!(it > last);
            last = it;
        }
    }
}
