//! An sPPM-shaped workload (Figures 8–9).
//!
//! "The benchmark was executed in 4 nodes, each of which is an 8-way SMP.
//! There were four threads per MPI process, one of which made MPI calls.
//! One can see system activity on the non-MPI threads, and observe that
//! one thread is idle during this part of the computation." The real code
//! solves 3-D gas dynamics with the piecewise parabolic method; what the
//! trace framework sees is its communication/compute *shape*: compute
//! bursts on worker threads, nearest-neighbour boundary exchange plus
//! periodic collectives on the MPI thread.

use ute_cluster::config::ClusterConfig;
use ute_cluster::program::{JobProgram, Op, TaskProgram};
use ute_core::time::Duration;

use crate::Workload;

/// sPPM workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct SppmParams {
    /// Number of timesteps.
    pub steps: u32,
    /// Boundary-exchange message size per neighbour, bytes.
    pub halo_bytes: u64,
    /// Compute per step on the MPI thread.
    pub mpi_compute: Duration,
    /// Compute per step on each busy worker thread.
    pub worker_compute: Duration,
}

impl Default for SppmParams {
    fn default() -> Self {
        SppmParams {
            steps: 8,
            halo_bytes: 64 << 10,
            mpi_compute: Duration::from_millis(4),
            worker_compute: Duration::from_millis(6),
        }
    }
}

/// Builds the sPPM-shaped job for the paper's 4 × 8-way topology.
pub fn workload(p: SppmParams) -> Workload {
    let config = ClusterConfig::sppm_like();
    let ntasks = config.total_tasks();
    let job = JobProgram::spmd(ntasks, |rank| {
        let left = (rank + ntasks - 1) % ntasks;
        let right = (rank + 1) % ntasks;
        // MPI thread: per step, exchange halos with both neighbours then
        // reduce a timestep value.
        let mut mpi = vec![Op::MarkerBegin("sPPM step loop".into())];
        for _ in 0..p.steps {
            mpi.push(Op::Compute(p.mpi_compute));
            mpi.push(Op::Irecv { from: left, tag: 1 });
            mpi.push(Op::Irecv {
                from: right,
                tag: 2,
            });
            mpi.push(Op::Isend {
                to: right,
                bytes: p.halo_bytes,
                tag: 1,
            });
            mpi.push(Op::Isend {
                to: left,
                bytes: p.halo_bytes,
                tag: 2,
            });
            mpi.push(Op::Waitall);
            mpi.push(Op::Allreduce { bytes: 8 });
        }
        mpi.push(Op::MarkerEnd("sPPM step loop".into()));

        // Two busy workers with occasional system activity; the fourth
        // thread is idle after a token start-up compute (Figure 8's idle
        // thread).
        let mut busy = Vec::new();
        for s in 0..p.steps {
            busy.push(Op::Compute(p.worker_compute));
            if s % 3 == 0 {
                busy.push(Op::Syscall);
            }
            if s % 5 == 4 {
                busy.push(Op::PageFault);
            }
        }
        let idle = vec![Op::Compute(Duration::from_micros(200))];

        TaskProgram {
            threads: vec![mpi, busy.clone(), busy, idle],
        }
    });
    Workload {
        name: "sppm",
        config,
        job,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_cluster::Simulator;
    use ute_core::event::{EventCode, MpiOp};

    #[test]
    fn topology_matches_figures_8_and_9() {
        let w = workload(SppmParams::default());
        assert_eq!(w.config.nodes, 4);
        assert_eq!(w.config.cpus_per_node, 8);
        assert_eq!(w.job.tasks.len(), 4);
        for t in &w.job.tasks {
            assert_eq!(t.threads.len(), 4);
        }
    }

    #[test]
    fn produces_halo_traffic_and_idle_thread() {
        let w = workload(SppmParams {
            steps: 3,
            ..SppmParams::default()
        });
        let res = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
        // 4 ranks × 3 steps × 2 isends.
        assert_eq!(res.stats.messages, 24);
        assert_eq!(res.stats.collectives, 3);
        // System activity appears on the traces (worker syscalls + daemons).
        let sys = res.raw_files[0]
            .events
            .iter()
            .filter(|e| e.code == EventCode::Syscall)
            .count();
        assert!(sys > 0);
        // Waitall events present on every node.
        for f in &res.raw_files {
            assert!(f
                .events
                .iter()
                .any(|e| e.code == EventCode::MpiEnd(MpiOp::Waitall)));
        }
    }
}
