//! # ute-workloads — synthetic programs for the trace environment
//!
//! The paper's evaluation traces real codes we cannot run: the **ASCI
//! sPPM** benchmark (Figures 8–9) and the **FLASH** adaptive-mesh
//! astrophysics code (Figures 6–7), plus an unnamed "test program with 4
//! MPI tasks, each of which has 4 threads" scaled to produce the raw
//! event counts of Table 1. This crate provides program scripts with the
//! same *shape*:
//!
//! * [`sppm`] — 4 nodes × 8-way SMP, one task per node, four threads per
//!   task of which one makes MPI calls; nearest-neighbour exchange plus
//!   collectives; one worker thread left idle (both visible in Figure 8).
//! * [`flash`] — phased execution: an MPI-heavy initialization, a long
//!   quiet compute phase, a busy middle iteration phase, another quiet
//!   phase, and an MPI-heavy termination — producing Figure 6/7's
//!   "interesting time ranges" profile.
//! * [`micro`] — ping-pong, halo-exchange stencil, and allreduce-sweep
//!   microbenchmarks.
//! * [`scaling`] — the Table 1 generator: 4 tasks × 4 threads with a size
//!   knob that scales the number of raw events produced.

pub mod flash;
pub mod micro;
pub mod patterns;
pub mod scaling;
pub mod scenario;
pub mod sppm;

use ute_cluster::{ClusterConfig, JobProgram};

/// A named, runnable workload: a cluster and the job to run on it.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name.
    pub name: &'static str,
    /// The machine.
    pub config: ClusterConfig,
    /// The program.
    pub job: JobProgram,
}

/// All stock workloads at small default sizes, including two pinned
/// seeds from the `ute-scenario` generator (see [`scenario`]).
pub fn all_workloads() -> Vec<Workload> {
    let mut w = vec![
        sppm::workload(sppm::SppmParams::default()),
        flash::workload(flash::FlashParams::default()),
        micro::ping_pong(16, 1 << 14),
        micro::stencil(4, 8, 1 << 12),
        micro::allreduce_sweep(4, 6),
        micro::sendrecv_shift(3, 4, 2048),
        micro::straggler(3, 3, 1, 4),
        patterns::wavefront(4, 4, 4096),
        patterns::master_worker(3, 3, 8192),
    ];
    w.extend(scenario::representative());
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_cluster::Simulator;

    #[test]
    fn every_stock_workload_runs_to_completion() {
        for w in all_workloads() {
            let res = Simulator::new(w.config.clone(), &w.job)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name))
                .run()
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(
                res.stats.events_cut > 0,
                "{} produced no trace records",
                w.name
            );
            assert_eq!(res.raw_files.len(), w.config.nodes as usize);
        }
    }
}
