//! Microbenchmark workloads: ping-pong, halo-exchange stencil, and an
//! allreduce sweep. Useful for exercising specific code paths of the
//! trace pipeline and for the ablation benches.

use ute_cluster::config::ClusterConfig;
use ute_cluster::program::{JobProgram, Op, TaskProgram};
use ute_core::time::Duration;

use crate::Workload;

/// Two ranks exchanging `rounds` messages of `bytes` each way.
pub fn ping_pong(rounds: u32, bytes: u64) -> Workload {
    let config = ClusterConfig {
        nodes: 2,
        cpus_per_node: 2,
        tasks_per_node: 1,
        threads_per_task: 1,
        ..ClusterConfig::default()
    };
    let job = JobProgram::spmd(2, |rank| {
        let peer = 1 - rank;
        let mut ops = Vec::new();
        for r in 0..rounds {
            if rank == 0 {
                ops.push(Op::Send {
                    to: peer,
                    bytes,
                    tag: r,
                });
                ops.push(Op::Recv { from: peer, tag: r });
            } else {
                ops.push(Op::Recv { from: peer, tag: r });
                ops.push(Op::Send {
                    to: peer,
                    bytes,
                    tag: r,
                });
            }
        }
        TaskProgram::single(ops)
    });
    Workload {
        name: "ping_pong",
        config,
        job,
    }
}

/// A 1-D halo-exchange stencil over `ntasks` ranks for `steps` steps.
pub fn stencil(ntasks: u32, steps: u32, halo_bytes: u64) -> Workload {
    let config = ClusterConfig {
        nodes: ntasks as u16,
        cpus_per_node: 2,
        tasks_per_node: 1,
        threads_per_task: 2,
        ..ClusterConfig::default()
    };
    let job = JobProgram::spmd(ntasks, |rank| {
        let left = (rank + ntasks - 1) % ntasks;
        let right = (rank + 1) % ntasks;
        let mut ops = Vec::new();
        for _ in 0..steps {
            ops.push(Op::Compute(Duration::from_millis(2)));
            ops.push(Op::Irecv { from: left, tag: 0 });
            ops.push(Op::Irecv {
                from: right,
                tag: 1,
            });
            ops.push(Op::Isend {
                to: right,
                bytes: halo_bytes,
                tag: 0,
            });
            ops.push(Op::Isend {
                to: left,
                bytes: halo_bytes,
                tag: 1,
            });
            ops.push(Op::Waitall);
        }
        TaskProgram {
            threads: vec![
                ops,
                vec![Op::Compute(Duration::from_millis(2 * steps as u64))],
            ],
        }
    });
    Workload {
        name: "stencil",
        config,
        job,
    }
}

/// `rounds` allreduces of doubling sizes, over `ntasks` single-thread
/// ranks — a latency/bandwidth sweep through the collective path.
pub fn allreduce_sweep(ntasks: u32, rounds: u32) -> Workload {
    let config = ClusterConfig {
        nodes: ntasks as u16,
        cpus_per_node: 1,
        tasks_per_node: 1,
        threads_per_task: 1,
        ..ClusterConfig::default()
    };
    let job = JobProgram::spmd(ntasks, |_| {
        let mut ops = Vec::new();
        for r in 0..rounds {
            ops.push(Op::Compute(Duration::from_micros(500)));
            ops.push(Op::Allreduce { bytes: 8u64 << r });
        }
        TaskProgram::single(ops)
    });
    Workload {
        name: "allreduce_sweep",
        config,
        job,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_cluster::Simulator;

    #[test]
    fn ping_pong_message_count() {
        let w = ping_pong(10, 1024);
        let res = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
        assert_eq!(res.stats.messages, 20);
    }

    #[test]
    fn stencil_runs_with_wraparound() {
        let w = stencil(5, 4, 2048);
        let res = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
        // 5 ranks × 4 steps × 2 sends.
        assert_eq!(res.stats.messages, 40);
    }

    #[test]
    fn allreduce_sweep_counts_collectives() {
        let w = allreduce_sweep(3, 5);
        let res = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
        assert_eq!(res.stats.collectives, 5);
    }
}

/// A ring shift using MPI_Sendrecv, bracketed by MPI_Init/Finalize: each
/// round every rank exchanges `bytes` with both neighbours in one call.
pub fn sendrecv_shift(ntasks: u32, rounds: u32, bytes: u64) -> Workload {
    let config = ClusterConfig {
        nodes: ntasks as u16,
        cpus_per_node: 2,
        tasks_per_node: 1,
        threads_per_task: 1,
        ..ClusterConfig::default()
    };
    let job = JobProgram::spmd(ntasks, |rank| {
        let mut ops = vec![Op::Init];
        for r in 0..rounds {
            ops.push(Op::Compute(Duration::from_micros(400)));
            ops.push(Op::Sendrecv {
                to: (rank + 1) % ntasks,
                from: (rank + ntasks - 1) % ntasks,
                bytes,
                tag: r,
            });
        }
        ops.push(Op::Finalize);
        TaskProgram::single(ops)
    });
    Workload {
        name: "sendrecv_shift",
        config,
        job,
    }
}

/// A gather loop with one deliberately slow rank — the ground-truth
/// scenario for the `ute-analyze` diagnostics. Every round each worker
/// computes then sends its result to rank 0, which receives from all of
/// them inside a `Gather` marker phase; rank `straggler` computes
/// `slowdown`× longer, so rank 0's receive from it stalls every round
/// (late-sender blames the straggler) and the straggler's exclusive
/// phase time dominates (imbalance flags its node). Blocking sends and
/// receives are used throughout because only those carry the matched
/// message's `(sender rank, seq)` key on their completion records.
pub fn straggler(ntasks: u32, rounds: u32, straggler: u32, slowdown: u64) -> Workload {
    assert!(ntasks >= 3, "straggler workload wants >= 3 ranks");
    assert!(
        straggler != 0 && straggler < ntasks,
        "straggler must be a worker rank"
    );
    let config = ClusterConfig {
        nodes: ntasks as u16,
        cpus_per_node: 2,
        tasks_per_node: 1,
        threads_per_task: 1,
        ..ClusterConfig::default()
    };
    let base = Duration::from_millis(1);
    let job = JobProgram::spmd(ntasks, |rank| {
        let mut ops = vec![Op::Init, Op::MarkerBegin("Gather".into())];
        for r in 0..rounds {
            let work = if rank == straggler {
                Duration(base.ticks() * slowdown)
            } else {
                base
            };
            ops.push(Op::Compute(work));
            if rank == 0 {
                for src in 1..ntasks {
                    ops.push(Op::Recv { from: src, tag: r });
                }
            } else {
                ops.push(Op::Send {
                    to: 0,
                    bytes: 4096,
                    tag: r,
                });
            }
        }
        ops.push(Op::MarkerEnd("Gather".into()));
        ops.push(Op::Finalize);
        TaskProgram::single(ops)
    });
    Workload {
        name: "straggler",
        config,
        job,
    }
}

#[cfg(test)]
mod straggler_tests {
    use super::*;
    use ute_cluster::Simulator;

    #[test]
    fn straggler_gathers_every_round() {
        let w = straggler(4, 5, 2, 4);
        let res = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
        // 3 workers × 5 rounds.
        assert_eq!(res.stats.messages, 15);
        assert_eq!(res.stats.collectives, 2); // Init + Finalize
    }
}

#[cfg(test)]
mod sendrecv_tests {
    use super::*;
    use ute_cluster::Simulator;

    #[test]
    fn shift_completes_with_one_message_per_rank_per_round() {
        let w = sendrecv_shift(4, 5, 1024);
        let res = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
        assert_eq!(res.stats.messages, 20);
        assert_eq!(res.stats.collectives, 2); // Init + Finalize
    }
}
