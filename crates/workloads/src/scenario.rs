//! Fixed-seed generated scenarios promoted into the stock corpus.
//!
//! Two representative seeds from the `ute-scenario` generator ride along
//! with the hand-written workloads, so every corpus-driven test (and the
//! `pipeline_metrics` bench harness walking [`crate::all_workloads`])
//! exercises traces nobody designed. The seeds are pinned: a change in
//! the generator that alters their expansion shows up as a diff in every
//! downstream artifact, which is exactly the regression signal we want.

use ute_scenario::{generate, ScenarioSpec};

use crate::Workload;

/// Wraps a seed's expansion as a stock [`Workload`]. Panics only if the
/// generator rejects its own sampled spec, which `ute-scenario`'s tests
/// rule out for all seeds.
pub fn seeded(name: &'static str, seed: u64) -> Workload {
    let sc = generate(&ScenarioSpec::from_seed(seed))
        .unwrap_or_else(|e| panic!("scenario seed {seed}: {e}"));
    Workload {
        name,
        config: sc.config,
        job: sc.job,
    }
}

/// The pinned representative scenarios included in [`crate::all_workloads`].
pub fn representative() -> Vec<Workload> {
    vec![seeded("scenario_alpha", 11), seeded("scenario_beta", 42)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_seeds_expand_identically_every_call() {
        let a = representative();
        let b = representative();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.job, y.job, "{} expansion drifted", x.name);
            assert_eq!(x.config.nodes, y.config.nodes);
        }
    }
}
