//! A FLASH-shaped workload (Figures 6–7).
//!
//! The FLASH run in the paper shows three busy phases separated by quiet
//! stretches: "the program is doing something interesting during the time
//! ranges from the start of the program to 948 seconds, between 1117 and
//! 1422 seconds, and from 1658 seconds to the end of the program." The
//! quiet stretches are pure computation (only the Running state), the
//! busy ones mix MPI, I/O and markers. This script reproduces that phase
//! profile at an adjustable scale, with rank-dependent load imbalance
//! standing in for adaptive mesh refinement.

use ute_cluster::config::ClusterConfig;
use ute_cluster::program::{JobProgram, Op, TaskProgram};
use ute_core::time::Duration;

use crate::Workload;

/// FLASH workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct FlashParams {
    /// Iterations inside each busy phase.
    pub iters_per_phase: u32,
    /// Mesh-block exchange bytes.
    pub block_bytes: u64,
    /// Base compute per iteration.
    pub compute: Duration,
    /// Quiet-phase pure-compute length.
    pub quiet: Duration,
}

impl Default for FlashParams {
    fn default() -> Self {
        FlashParams {
            iters_per_phase: 6,
            block_bytes: 32 << 10,
            compute: Duration::from_millis(3),
            quiet: Duration::from_millis(120),
        }
    }
}

fn busy_phase(p: &FlashParams, name: &str, rank: u32, ntasks: u32) -> Vec<Op> {
    let right = (rank + 1) % ntasks;
    let left = (rank + ntasks - 1) % ntasks;
    let mut ops = vec![Op::MarkerBegin(name.to_string())];
    for i in 0..p.iters_per_phase {
        // AMR-style imbalance: some ranks carry more blocks some steps.
        let skew = 1 + ((rank + i) % 3) as u64;
        ops.push(Op::Compute(Duration(p.compute.ticks() * skew)));
        ops.push(Op::Irecv {
            from: left,
            tag: 10,
        });
        ops.push(Op::Isend {
            to: right,
            bytes: p.block_bytes,
            tag: 10,
        });
        ops.push(Op::Waitall);
        ops.push(Op::Allreduce { bytes: 64 });
        if i % 3 == 2 {
            // Checkpoint-ish I/O plus a gather to rank 0.
            ops.push(Op::Gather {
                root: 0,
                bytes: 1 << 10,
            });
            ops.push(Op::Io(Duration::from_millis(2)));
        }
    }
    ops.push(Op::MarkerEnd(name.to_string()));
    ops
}

/// Builds the FLASH-shaped job: 4 nodes, 1 task per node, 2 threads per
/// task (MPI thread + one worker).
pub fn workload(p: FlashParams) -> Workload {
    let config = ClusterConfig {
        nodes: 4,
        cpus_per_node: 4,
        tasks_per_node: 1,
        threads_per_task: 2,
        ..ClusterConfig::default()
    };
    let ntasks = config.total_tasks();
    let job = JobProgram::spmd(ntasks, |rank| {
        let mut mpi = Vec::new();
        // Initialization phase: read-in (I/O on rank 0 + bcast), setup.
        mpi.push(Op::MarkerBegin("Initialization".into()));
        if rank == 0 {
            mpi.push(Op::Io(Duration::from_millis(5)));
        }
        mpi.push(Op::Bcast {
            root: 0,
            bytes: 1 << 16,
        });
        mpi.extend(busy_phase(&p, "InitSweep", rank, ntasks));
        mpi.push(Op::MarkerEnd("Initialization".into()));
        // Quiet phase 1: pure computation — nothing "interesting".
        mpi.push(Op::Compute(p.quiet));
        // Middle busy phase.
        mpi.extend(busy_phase(&p, "Evolution", rank, ntasks));
        // Quiet phase 2.
        mpi.push(Op::Compute(p.quiet));
        // Termination: final reduce + checkpoint on rank 0.
        mpi.push(Op::MarkerBegin("Termination".into()));
        mpi.extend(busy_phase(&p, "FinalSweep", rank, ntasks));
        mpi.push(Op::Reduce {
            root: 0,
            bytes: 1 << 12,
        });
        if rank == 0 {
            mpi.push(Op::Io(Duration::from_millis(8)));
        }
        mpi.push(Op::MarkerEnd("Termination".into()));

        let worker: Vec<Op> = (0..3 * p.iters_per_phase)
            .map(|_| Op::Compute(p.compute))
            .collect();
        TaskProgram {
            threads: vec![mpi, worker],
        }
    });
    Workload {
        name: "flash",
        config,
        job,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_cluster::Simulator;
    use ute_core::event::EventCode;

    #[test]
    fn runs_and_has_three_marker_phases() {
        let w = workload(FlashParams {
            iters_per_phase: 3,
            ..FlashParams::default()
        });
        let res = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
        // Marker strings include the three top-level phases on each node.
        for f in &res.raw_files {
            let defs: Vec<String> = f
                .events
                .iter()
                .filter(|e| e.code == EventCode::MarkerDef)
                .map(|e| {
                    ute_rawtrace::record::MarkerDefPayload::from_bytes(&e.payload)
                        .unwrap()
                        .name
                })
                .collect();
            for phase in ["Initialization", "Evolution", "Termination"] {
                assert!(
                    defs.iter().any(|d| d == phase),
                    "missing {phase} on node {}",
                    f.node
                );
            }
        }
    }

    #[test]
    fn quiet_phases_have_no_mpi() {
        // The run's middle contains a stretch at least `quiet` long with
        // no MPI events on any node.
        let w = workload(FlashParams {
            iters_per_phase: 2,
            quiet: Duration::from_millis(200),
            ..FlashParams::default()
        });
        let res = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
        let mut mpi_times: Vec<u64> = Vec::new();
        for f in &res.raw_files {
            for e in &f.events {
                if matches!(e.code, EventCode::MpiBegin(_) | EventCode::MpiEnd(_)) {
                    mpi_times.push(e.timestamp.ticks());
                }
            }
        }
        mpi_times.sort_unstable();
        let max_gap = mpi_times.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
        assert!(
            max_gap >= 190_000_000,
            "expected a ≥190 ms quiet gap, max was {} ms",
            max_gap / 1_000_000
        );
    }
}
