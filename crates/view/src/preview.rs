//! Rendering the whole-run preview (Figure 7's smaller window).
//!
//! The preview draws the per-bin interesting-activity histogram so a user
//! can "identify the initialization and termination phases of this run,
//! and the 'typical' iteration phase in the middle", then pick an instant
//! to jump to its frame.

use ute_slog::preview::Preview;

/// ASCII preview: a column chart of interesting activity per time bin,
/// `height` characters tall.
pub fn render_ascii(preview: &Preview, height: usize) -> String {
    let height = height.max(2);
    let bins = preview.interesting_per_bin();
    let peak = bins.iter().copied().max().unwrap_or(0).max(1);
    let mut out = String::new();
    for level in (0..height).rev() {
        let threshold = (level as u64 * peak) / height as u64;
        for &b in &bins {
            out.push(if b > threshold { '█' } else { ' ' });
        }
        out.push('\n');
    }
    out.push_str(&"-".repeat(bins.len()));
    out.push('\n');
    out.push_str(&format!(
        "{:.3}s – {:.3}s, peak interesting time/bin {:.6}s\n",
        preview.span_start as f64 / 1e9,
        preview.span_end as f64 / 1e9,
        peak as f64 / 1e9,
    ));
    out
}

/// SVG preview histogram.
pub fn render_svg(preview: &Preview, width: u32, height: u32) -> String {
    let bins = preview.interesting_per_bin();
    let peak = bins.iter().copied().max().unwrap_or(0).max(1) as f64;
    let bw = width as f64 / bins.len().max(1) as f64;
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\">\n\
         <text x=\"4\" y=\"14\" font-family=\"monospace\" font-size=\"11\">preview: \
         interesting activity, {:.3}s – {:.3}s</text>\n",
        width + 10,
        height + 40,
        preview.span_start as f64 / 1e9,
        preview.span_end as f64 / 1e9,
    );
    for (i, &b) in bins.iter().enumerate() {
        let h = (b as f64 / peak * height as f64).round();
        svg.push_str(&format!(
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"#0072B2\"/>\n",
            5.0 + i as f64 * bw,
            20.0 + height as f64 - h,
            (bw - 1.0).max(0.5),
            h,
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

/// Suggests "interesting time ranges" from the preview, the way Figure 6's
/// caption reads the statistics view: contiguous runs of bins whose
/// interesting activity exceeds `frac` of the peak bin.
pub fn interesting_ranges(preview: &Preview, frac: f64) -> Vec<(f64, f64)> {
    let bins = preview.interesting_per_bin();
    let peak = bins.iter().copied().max().unwrap_or(0) as f64;
    let threshold = peak * frac;
    let w = (preview.span_end - preview.span_start) as f64 / bins.len().max(1) as f64;
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (i, &b) in bins.iter().enumerate() {
        if b as f64 > threshold && peak > 0.0 {
            let t0 = (preview.span_start as f64 + i as f64 * w) / 1e9;
            let t1 = (preview.span_start as f64 + (i + 1) as f64 * w) / 1e9;
            match out.last_mut() {
                Some(last) if (last.1 - t0).abs() < 1e-12 => last.1 = t1,
                _ => out.push((t0, t1)),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_format::state::StateCode;

    fn preview() -> Preview {
        let mut p = Preview::new(0, 10_000_000_000, 10); // 10 s, 10 bins
                                                         // Busy at the start (bins 0-1), quiet middle, busy end (bin 9).
        p.add(StateCode::MARKER, 0, 2_000_000_000);
        p.add(StateCode::MARKER, 9_000_000_000, 1_000_000_000);
        p.add(StateCode::RUNNING, 0, 10_000_000_000); // not interesting
        p
    }

    #[test]
    fn ascii_histogram_shape() {
        let s = render_ascii(&preview(), 4);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 6); // 4 levels + axis + caption
                                    // Top level: only the full-height bins (0,1,9) are dark.
        let top: Vec<char> = lines[0].chars().collect();
        assert_eq!(top[0], '█');
        assert_eq!(top[1], '█');
        assert_eq!(top[5], ' ');
        assert_eq!(top[9], '█');
    }

    #[test]
    fn svg_has_bars() {
        let s = render_svg(&preview(), 200, 60);
        assert!(s.starts_with("<svg"));
        assert_eq!(s.matches("<rect").count(), 10);
    }

    #[test]
    fn interesting_ranges_found() {
        let r = interesting_ranges(&preview(), 0.5);
        // Bins 0-1 merge into [0,2); bin 9 is [9,10).
        assert_eq!(r.len(), 2);
        assert!((r[0].0 - 0.0).abs() < 1e-9 && (r[0].1 - 2.0).abs() < 1e-9);
        assert!((r[1].0 - 9.0).abs() < 1e-9 && (r[1].1 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_preview_does_not_panic() {
        let p = Preview::new(0, 1, 5);
        assert!(!render_ascii(&p, 3).is_empty());
        assert!(interesting_ranges(&p, 0.5).is_empty());
    }
}
