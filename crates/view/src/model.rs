//! View construction: from SLOG records to rows, bars and arrows.

use std::collections::BTreeMap;

use ute_core::error::{Result, UteError};
use ute_format::state::StateCode;
use ute_slog::file::SlogFile;
use ute_slog::record::{SlogRecord, SlogState};

use crate::nest::connect_pieces;

/// Which time-space diagram to build (§1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewKind {
    /// One timeline per thread, colored by activity.
    ThreadActivity,
    /// One timeline per processor, colored by activity.
    ProcessorActivity,
    /// One timeline per thread, colored by the processor it ran on.
    ThreadProcessor,
    /// One timeline per processor, colored by the thread running there.
    ProcessorThread,
    /// One timeline per record type, colored by node.
    TypeActivity,
}

/// View construction options.
#[derive(Debug, Clone, Copy)]
pub struct ViewConfig {
    /// Which diagram.
    pub kind: ViewKind,
    /// Optional time window; `None` = the whole run.
    pub window: Option<(u64, u64)>,
    /// Include pseudo records (needed for windowed views).
    pub include_pseudo: bool,
    /// Thread-activity only: connect pieces into nested states.
    pub connected: bool,
    /// Force this many CPU rows per node (so idle CPUs show as empty
    /// timelines, as in Figure 9); `None` = only CPUs seen in records.
    pub cpus_per_node: Option<u16>,
    /// Hide Running states (reduces clutter in activity views).
    pub hide_running: bool,
}

impl Default for ViewConfig {
    fn default() -> Self {
        ViewConfig {
            kind: ViewKind::ThreadActivity,
            window: None,
            include_pseudo: true,
            connected: false,
            cpus_per_node: None,
            hide_running: false,
        }
    }
}

/// One drawn bar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bar {
    /// Row index into [`View::rows`].
    pub row: usize,
    /// Start tick.
    pub start: u64,
    /// End tick.
    pub end: u64,
    /// Legend key the bar is colored by.
    pub color: String,
    /// Nesting depth (connected mode; 0 otherwise).
    pub depth: u8,
    /// Whether the bar came from a pseudo record or was clipped.
    pub pseudo: bool,
}

/// One drawn arrow (thread views only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrowLine {
    /// Source row.
    pub from_row: usize,
    /// Destination row.
    pub to_row: usize,
    /// Send time.
    pub t0: u64,
    /// Receive time.
    pub t1: u64,
    /// Whether this is a pseudo copy.
    pub pseudo: bool,
}

/// A built view, ready for a renderer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    /// What kind of diagram this is.
    pub kind: ViewKind,
    /// Row labels, top to bottom.
    pub rows: Vec<String>,
    /// The bars.
    pub bars: Vec<Bar>,
    /// The arrows.
    pub arrows: Vec<ArrowLine>,
    /// Rendered time window.
    pub t0: u64,
    /// End of the rendered time window.
    pub t1: u64,
    /// Legend: color keys in first-use order.
    pub legend: Vec<String>,
}

fn thread_label(slog: &SlogFile, timeline: u32) -> String {
    match slog.threads.entries().get(timeline as usize) {
        Some(e) => format!(
            "n{} t{} ({}{})",
            e.node,
            e.logical,
            e.ttype,
            if e.task.raw() == u32::MAX {
                String::new()
            } else {
                format!(" rank {}", e.task)
            }
        ),
        None => format!("timeline {timeline}"),
    }
}

fn overlaps(s: &SlogState, w: (u64, u64)) -> bool {
    s.start < w.1 && s.end().max(s.start + 1) > w.0
}

/// Builds a view over the whole file or a window of it.
pub fn build_view(slog: &SlogFile, cfg: &ViewConfig) -> Result<View> {
    let span = (slog.preview.span_start, slog.preview.span_end);
    let window = cfg.window.unwrap_or(span);
    if window.0 >= window.1 {
        return Err(UteError::Invalid("empty view window".into()));
    }
    // Collect the states (and arrows) that overlap the window. When a
    // window is given, walk only the frames it touches — the §4
    // scalability property.
    let mut states: Vec<SlogState> = Vec::new();
    let mut arrows_raw = Vec::new();
    let mut seen_arrows = std::collections::HashSet::new();
    let frames: Vec<&ute_slog::file::SlogFrame> = slog
        .frames
        .iter()
        .filter(|f| f.t_start < window.1 && f.t_end > window.0)
        .collect();
    let mut seen_states = std::collections::HashSet::new();
    for f in frames {
        for rec in &f.records {
            match rec {
                SlogRecord::State(s) => {
                    if !cfg.include_pseudo && s.pseudo {
                        continue;
                    }
                    if cfg.hide_running && s.state == StateCode::RUNNING {
                        continue;
                    }
                    if overlaps(s, window) {
                        // The same state may appear in several frames
                        // (pseudo copies) — dedup by identity.
                        let key = (
                            s.timeline,
                            s.start,
                            s.duration,
                            s.state.0,
                            s.bebits.to_bits(),
                        );
                        if seen_states.insert(key) {
                            states.push(*s);
                        }
                    }
                }
                SlogRecord::Arrow(a) => {
                    if a.send_time < window.1 && a.recv_time > window.0 {
                        let key = (a.src_timeline, a.seq, a.send_time);
                        if seen_arrows.insert(key) {
                            arrows_raw.push(*a);
                        }
                    }
                }
            }
        }
    }

    build_from_states(slog, cfg, window, states, arrows_raw)
}

/// Builds a view of exactly one frame — "Scalability in the time it takes
/// to display this frame (independence from the size of the SLOG file)
/// comes from the combination of this preview and the frame index" (§4).
pub fn frame_view(slog: &SlogFile, t: u64, cfg: &ViewConfig) -> Result<View> {
    let frame = slog
        .frame_at(t)
        .ok_or_else(|| UteError::NotFound(format!("no frame contains time {t}")))?;
    let mut cfg = *cfg;
    cfg.window = Some((frame.t_start, frame.t_end));
    build_view(slog, &cfg)
}

fn build_from_states(
    slog: &SlogFile,
    cfg: &ViewConfig,
    window: (u64, u64),
    states: Vec<SlogState>,
    arrows_raw: Vec<ute_slog::record::SlogArrow>,
) -> Result<View> {
    // Row key → (sort key, label).
    let mut rows: BTreeMap<(u32, u32), String> = BTreeMap::new();
    let row_key = |s: &SlogState| -> (u32, u32) {
        match cfg.kind {
            ViewKind::ThreadActivity | ViewKind::ThreadProcessor => (0, s.timeline),
            ViewKind::ProcessorActivity | ViewKind::ProcessorThread => {
                (s.node as u32, s.cpu as u32)
            }
            ViewKind::TypeActivity => (0, s.state.0 as u32),
        }
    };
    // Pre-seed rows so empty timelines still render.
    match cfg.kind {
        ViewKind::ThreadActivity | ViewKind::ThreadProcessor => {
            for (i, _) in slog.threads.entries().iter().enumerate() {
                rows.insert((0, i as u32), thread_label(slog, i as u32));
            }
        }
        ViewKind::ProcessorActivity | ViewKind::ProcessorThread => {
            if let Some(ncpu) = cfg.cpus_per_node {
                let nodes: std::collections::BTreeSet<u16> = slog
                    .threads
                    .entries()
                    .iter()
                    .map(|e| e.node.raw())
                    .collect();
                for node in nodes {
                    for cpu in 0..ncpu {
                        rows.insert((node as u32, cpu as u32), format!("n{node} cpu{cpu}"));
                    }
                }
            }
        }
        ViewKind::TypeActivity => {}
    }
    for s in &states {
        rows.entry(row_key(s)).or_insert_with(|| match cfg.kind {
            ViewKind::ThreadActivity | ViewKind::ThreadProcessor => thread_label(slog, s.timeline),
            ViewKind::ProcessorActivity | ViewKind::ProcessorThread => {
                format!("n{} cpu{}", s.node, s.cpu)
            }
            ViewKind::TypeActivity => s.state.name(),
        });
    }
    let row_index: BTreeMap<(u32, u32), usize> =
        rows.keys().enumerate().map(|(i, k)| (*k, i)).collect();

    let color_of = |s: &SlogState| -> String {
        match cfg.kind {
            ViewKind::ThreadActivity | ViewKind::ProcessorActivity => {
                if s.state == StateCode::MARKER {
                    let name = slog
                        .markers
                        .iter()
                        .find(|(id, _)| *id == s.marker_id)
                        .map(|(_, n)| n.as_str())
                        .unwrap_or("Marker");
                    format!("Marker:{name}")
                } else {
                    s.state.name()
                }
            }
            ViewKind::ThreadProcessor => format!("n{} cpu{}", s.node, s.cpu),
            ViewKind::ProcessorThread => format!("t{}", s.timeline),
            ViewKind::TypeActivity => format!("node {}", s.node),
        }
    };

    let mut bars = Vec::new();
    let mut legend: Vec<String> = Vec::new();
    let mut push_bar = |bar: Bar, legend: &mut Vec<String>| {
        if !legend.contains(&bar.color) {
            legend.push(bar.color.clone());
        }
        bars.push(bar);
    };

    if cfg.connected && cfg.kind == ViewKind::ThreadActivity {
        // Group pieces per timeline and connect them.
        let mut per_row: BTreeMap<u32, Vec<SlogState>> = BTreeMap::new();
        for s in &states {
            per_row.entry(s.timeline).or_default().push(*s);
        }
        for (timeline, pieces) in per_row {
            let row = row_index[&(0, timeline)];
            for span in connect_pieces(&pieces, window.0, window.1) {
                if cfg.hide_running && span.state == StateCode::RUNNING {
                    continue;
                }
                let color = if span.state == StateCode::MARKER {
                    let name = slog
                        .markers
                        .iter()
                        .find(|(id, _)| *id == span.marker_id)
                        .map(|(_, n)| n.as_str())
                        .unwrap_or("Marker");
                    format!("Marker:{name}")
                } else {
                    span.state.name()
                };
                push_bar(
                    Bar {
                        row,
                        start: span.start.max(window.0),
                        end: span.end.min(window.1),
                        color,
                        depth: span.depth,
                        pseudo: span.clipped,
                    },
                    &mut legend,
                );
            }
        }
    } else {
        for s in &states {
            let row = row_index[&row_key(s)];
            push_bar(
                Bar {
                    row,
                    start: s.start.max(window.0),
                    end: s.end().min(window.1).max(s.start.max(window.0)),
                    color: color_of(s),
                    depth: 0,
                    pseudo: s.pseudo,
                },
                &mut legend,
            );
        }
    }

    // Arrows only make sense on thread timelines.
    let arrows = if matches!(
        cfg.kind,
        ViewKind::ThreadActivity | ViewKind::ThreadProcessor
    ) {
        arrows_raw
            .iter()
            .filter_map(|a| {
                let from_row = *row_index.get(&(0, a.src_timeline))?;
                let to_row = *row_index.get(&(0, a.dst_timeline))?;
                Some(ArrowLine {
                    from_row,
                    to_row,
                    t0: a.send_time.max(window.0),
                    t1: a.recv_time.min(window.1),
                    pseudo: a.pseudo,
                })
            })
            .collect()
    } else {
        Vec::new()
    };

    Ok(View {
        kind: cfg.kind,
        rows: rows.into_values().collect(),
        bars,
        arrows,
        t0: window.0,
        t1: window.1,
        legend,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_core::bebits::BeBits;
    use ute_core::event::MpiOp;
    use ute_core::ids::{LogicalThreadId, NodeId, Pid, SystemThreadId, TaskId, ThreadType};
    use ute_format::thread_table::{ThreadEntry, ThreadTable};
    use ute_slog::file::SlogFrame;
    use ute_slog::preview::Preview;

    fn state(
        timeline: u32,
        st: StateCode,
        start: u64,
        dur: u64,
        cpu: u16,
        node: u16,
    ) -> SlogRecord {
        SlogRecord::State(SlogState {
            timeline,
            state: st,
            bebits: BeBits::Complete,
            pseudo: false,
            start,
            duration: dur,
            node,
            cpu,
            marker_id: 0,
        })
    }

    fn sample_slog() -> SlogFile {
        let mut threads = ThreadTable::new();
        for (node, logical, ttype) in [
            (0u16, 0u16, ThreadType::Mpi),
            (0, 1, ThreadType::User),
            (1, 0, ThreadType::Mpi),
        ] {
            threads
                .register(ThreadEntry {
                    task: TaskId(node as u32),
                    pid: Pid(1),
                    system_tid: SystemThreadId(logical as u64),
                    node: NodeId(node),
                    logical: LogicalThreadId(logical),
                    ttype,
                })
                .unwrap();
        }
        let mut preview = Preview::new(0, 1000, 10);
        preview.add(StateCode::RUNNING, 0, 1000);
        SlogFile {
            threads,
            markers: vec![],
            preview,
            frames: vec![
                SlogFrame {
                    t_start: 0,
                    t_end: 500,
                    records: vec![
                        state(0, StateCode::mpi(MpiOp::Send), 100, 50, 0, 0),
                        state(1, StateCode::RUNNING, 0, 400, 1, 0),
                        state(2, StateCode::mpi(MpiOp::Recv), 120, 200, 2, 1),
                        SlogRecord::Arrow(ute_slog::record::SlogArrow {
                            pseudo: false,
                            src_timeline: 0,
                            dst_timeline: 2,
                            send_time: 100,
                            recv_time: 320,
                            bytes: 64,
                            seq: 1,
                        }),
                    ],
                },
                SlogFrame {
                    t_start: 500,
                    t_end: 1000,
                    records: vec![state(0, StateCode::mpi(MpiOp::Barrier), 600, 100, 3, 0)],
                },
            ],
        }
    }

    #[test]
    fn thread_activity_has_one_row_per_thread() {
        let slog = sample_slog();
        let v = build_view(&slog, &ViewConfig::default()).unwrap();
        assert_eq!(v.rows.len(), 3);
        assert!(v.rows[0].contains("mpi"));
        assert_eq!(v.bars.len(), 4);
        assert_eq!(v.arrows.len(), 1);
        assert!(v.legend.contains(&"MPI_Send".to_string()));
    }

    #[test]
    fn processor_views_key_rows_by_cpu() {
        let slog = sample_slog();
        let v = build_view(
            &slog,
            &ViewConfig {
                kind: ViewKind::ProcessorActivity,
                ..ViewConfig::default()
            },
        )
        .unwrap();
        // CPUs seen: n0 cpu0, n0 cpu1, n0 cpu3, n1 cpu2.
        assert_eq!(v.rows.len(), 4);
        assert!(v.rows.contains(&"n0 cpu3".to_string()));
        assert!(v.arrows.is_empty(), "no arrows on processor timelines");
    }

    #[test]
    fn forced_cpu_rows_show_idle_processors() {
        let slog = sample_slog();
        let v = build_view(
            &slog,
            &ViewConfig {
                kind: ViewKind::ProcessorActivity,
                cpus_per_node: Some(8),
                ..ViewConfig::default()
            },
        )
        .unwrap();
        assert_eq!(v.rows.len(), 16); // 2 nodes × 8 CPUs, mostly idle
    }

    #[test]
    fn thread_processor_view_colors_by_cpu() {
        let slog = sample_slog();
        let v = build_view(
            &slog,
            &ViewConfig {
                kind: ViewKind::ThreadProcessor,
                ..ViewConfig::default()
            },
        )
        .unwrap();
        assert!(v.legend.iter().any(|c| c == "n0 cpu0"));
        assert!(v.legend.iter().any(|c| c == "n1 cpu2"));
    }

    #[test]
    fn processor_thread_view_colors_by_thread() {
        let slog = sample_slog();
        let v = build_view(
            &slog,
            &ViewConfig {
                kind: ViewKind::ProcessorThread,
                ..ViewConfig::default()
            },
        )
        .unwrap();
        assert!(v.legend.iter().any(|c| c == "t0"));
    }

    #[test]
    fn type_view_rows_are_states() {
        let slog = sample_slog();
        let v = build_view(
            &slog,
            &ViewConfig {
                kind: ViewKind::TypeActivity,
                ..ViewConfig::default()
            },
        )
        .unwrap();
        assert!(v.rows.contains(&"MPI_Send".to_string()));
        assert!(v.legend.contains(&"node 0".to_string()));
    }

    #[test]
    fn windowing_filters_and_clips() {
        let slog = sample_slog();
        let v = build_view(
            &slog,
            &ViewConfig {
                window: Some((550, 800)),
                ..ViewConfig::default()
            },
        )
        .unwrap();
        // Only the barrier overlaps.
        assert_eq!(v.bars.len(), 1);
        assert_eq!(v.bars[0].start, 600);
        assert_eq!(v.bars[0].end, 700);
        assert!(build_view(
            &slog,
            &ViewConfig {
                window: Some((5, 5)),
                ..ViewConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn frame_view_uses_frame_bounds() {
        let slog = sample_slog();
        let v = frame_view(&slog, 700, &ViewConfig::default()).unwrap();
        assert_eq!((v.t0, v.t1), (500, 1000));
        assert_eq!(v.bars.len(), 1);
        assert!(frame_view(&slog, 99_999, &ViewConfig::default()).is_err());
    }

    #[test]
    fn hide_running_drops_running_bars() {
        let slog = sample_slog();
        let v = build_view(
            &slog,
            &ViewConfig {
                hide_running: true,
                ..ViewConfig::default()
            },
        )
        .unwrap();
        assert!(v.bars.iter().all(|b| b.color != "Running"));
        assert_eq!(v.bars.len(), 3);
    }
}
