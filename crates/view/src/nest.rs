//! Reconstruction of connected, nested states from interval pieces
//! (§3.3, "Unification of Interval Pieces").
//!
//! A thread-activity view "could be a view of interval pieces with no
//! nested states, or a view with connected and nested states". Connecting
//! means: the Begin piece of a state and its End piece (with any
//! Continuation pieces between) collapse into one span from the Begin's
//! start to the End's end, drawn at its nesting depth.
//!
//! When rendering a *window* (one frame), pieces may be cut off at both
//! sides. The §3.3 pseudo records make this work: a `Continuation` (or
//! `End`) piece with no opening in the window means the state was already
//! open — its span extends to the window start; an unclosed `Begin`
//! extends to the window end.

use ute_core::bebits::BeBits;
use ute_format::state::StateCode;
use ute_slog::record::SlogState;

/// One reconstructed state span on a timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NestedSpan {
    /// The state.
    pub state: StateCode,
    /// Span start (ticks).
    pub start: u64,
    /// Span end (ticks).
    pub end: u64,
    /// Nesting depth (0 = outermost).
    pub depth: u8,
    /// Marker id for marker states.
    pub marker_id: u32,
    /// Whether either edge was clipped by the window.
    pub clipped: bool,
}

/// Connects the pieces of ONE timeline (already filtered, any order)
/// into nested spans over the window `[w_start, w_end]`.
pub fn connect_pieces(pieces: &[SlogState], w_start: u64, w_end: u64) -> Vec<NestedSpan> {
    let mut sorted: Vec<&SlogState> = pieces.iter().collect();
    sorted.sort_by_key(|p| (p.start, p.end()));
    let mut out = Vec::new();
    // Stack of currently-open states: (state, open_start, marker, clipped).
    let mut stack: Vec<(StateCode, u64, u32, bool)> = Vec::new();
    for p in sorted {
        match p.bebits {
            BeBits::Complete => {
                out.push(NestedSpan {
                    state: p.state,
                    start: p.start,
                    end: p.end(),
                    depth: stack.len() as u8,
                    marker_id: p.marker_id,
                    clipped: false,
                });
            }
            BeBits::Begin => {
                stack.push((p.state, p.start, p.marker_id, false));
            }
            BeBits::Continuation => {
                // Keeps its state open. If nothing matching is open, the
                // state began before the window: open it from w_start.
                if !stack.iter().any(|(s, ..)| *s == p.state) {
                    stack.insert(0, (p.state, w_start, p.marker_id, true));
                }
            }
            BeBits::End => {
                if let Some(pos) = stack.iter().rposition(|(s, ..)| *s == p.state) {
                    let (state, start, marker, clipped) = stack.remove(pos);
                    out.push(NestedSpan {
                        state,
                        start,
                        end: p.end(),
                        depth: pos as u8,
                        marker_id: marker,
                        clipped,
                    });
                } else {
                    // End with no visible opening: state spans from the
                    // window start.
                    out.push(NestedSpan {
                        state: p.state,
                        start: w_start,
                        end: p.end(),
                        depth: 0,
                        marker_id: p.marker_id,
                        clipped: true,
                    });
                }
            }
        }
    }
    // States still open at the window edge extend to w_end.
    for (depth, (state, start, marker, _)) in stack.into_iter().enumerate() {
        out.push(NestedSpan {
            state,
            start,
            end: w_end,
            depth: depth as u8,
            marker_id: marker,
            clipped: true,
        });
    }
    out.sort_by_key(|s| (s.start, s.depth));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_core::event::MpiOp;

    fn piece(state: StateCode, bebits: BeBits, start: u64, dur: u64) -> SlogState {
        SlogState {
            timeline: 0,
            state,
            bebits,
            pseudo: false,
            start,
            duration: dur,
            node: 0,
            cpu: 0,
            marker_id: if state == StateCode::MARKER { 7 } else { 0 },
        }
    }

    #[test]
    fn complete_pieces_pass_through() {
        let p = vec![piece(StateCode::mpi(MpiOp::Send), BeBits::Complete, 10, 5)];
        let spans = connect_pieces(&p, 0, 100);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start, 10);
        assert_eq!(spans[0].end, 15);
        assert_eq!(spans[0].depth, 0);
        assert!(!spans[0].clipped);
    }

    #[test]
    fn begin_continuation_end_collapse() {
        let s = StateCode::mpi(MpiOp::Recv);
        let p = vec![
            piece(s, BeBits::Begin, 10, 5),
            piece(s, BeBits::Continuation, 30, 5),
            piece(s, BeBits::End, 50, 10),
        ];
        let spans = connect_pieces(&p, 0, 100);
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].start, spans[0].end), (10, 60));
    }

    #[test]
    fn nesting_depths() {
        // Marker [0,100] wrapping a Send [20,40].
        let p = vec![
            piece(StateCode::MARKER, BeBits::Begin, 0, 20),
            piece(StateCode::mpi(MpiOp::Send), BeBits::Complete, 20, 20),
            piece(StateCode::MARKER, BeBits::End, 40, 60),
        ];
        let spans = connect_pieces(&p, 0, 100);
        assert_eq!(spans.len(), 2);
        let marker = spans.iter().find(|s| s.state == StateCode::MARKER).unwrap();
        let send = spans
            .iter()
            .find(|s| s.state == StateCode::mpi(MpiOp::Send))
            .unwrap();
        assert_eq!(marker.depth, 0);
        assert_eq!((marker.start, marker.end), (0, 100));
        assert_eq!(marker.marker_id, 7);
        assert_eq!(send.depth, 1);
    }

    #[test]
    fn window_clipping_via_pseudo_continuation() {
        // §3.3's scenario: the window only contains a zero-duration
        // continuation piece of an outer marker — the viewer must still
        // display the marker across the window.
        let p = vec![piece(StateCode::MARKER, BeBits::Continuation, 500, 0)];
        let spans = connect_pieces(&p, 400, 600);
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].start, spans[0].end), (400, 600));
        assert!(spans[0].clipped);
    }

    #[test]
    fn dangling_end_and_begin_clip_to_window() {
        let s = StateCode::mpi(MpiOp::Barrier);
        let p = vec![piece(s, BeBits::End, 450, 10)];
        let spans = connect_pieces(&p, 400, 600);
        assert_eq!((spans[0].start, spans[0].end), (400, 460));
        assert!(spans[0].clipped);

        let p = vec![piece(s, BeBits::Begin, 550, 10)];
        let spans = connect_pieces(&p, 400, 600);
        assert_eq!((spans[0].start, spans[0].end), (550, 600));
        assert!(spans[0].clipped);
    }

    #[test]
    fn sequential_states_keep_depth_zero() {
        let s = StateCode::mpi(MpiOp::Send);
        let p = vec![
            piece(s, BeBits::Complete, 0, 10),
            piece(s, BeBits::Complete, 20, 10),
            piece(s, BeBits::Complete, 40, 10),
        ];
        let spans = connect_pieces(&p, 0, 100);
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|x| x.depth == 0));
    }
}
