//! SVG rendering of views, for documents and reports.

use crate::model::View;

/// A small qualitative palette (colorblind-friendly Okabe–Ito plus a few
/// extras), cycled across legend keys.
const PALETTE: [&str; 12] = [
    "#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7", "#56B4E9", "#F0E442", "#999999",
    "#7F3C8D", "#11A579", "#3969AC", "#80BA5A",
];

/// SVG rendering options.
#[derive(Debug, Clone, Copy)]
pub struct SvgOptions {
    /// Drawable width of the timeline area, pixels.
    pub width: u32,
    /// Height of one timeline row, pixels.
    pub row_height: u32,
    /// Left margin for row labels, pixels.
    pub label_width: u32,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 900,
            row_height: 18,
            label_width: 180,
        }
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders the view as a standalone SVG document with a legend.
pub fn render(view: &View, opts: &SvgOptions) -> String {
    let span = (view.t1 - view.t0).max(1) as f64;
    let x_of = |t: u64| -> f64 {
        opts.label_width as f64 + (t.saturating_sub(view.t0)) as f64 / span * opts.width as f64
    };
    let color_of = |key: &str| -> &str {
        let idx = view.legend.iter().position(|k| k == key).unwrap_or(0);
        PALETTE[idx % PALETTE.len()]
    };
    let rows_h = view.rows.len() as u32 * opts.row_height;
    let legend_rows = view.legend.len().div_ceil(4) as u32;
    let total_w = opts.label_width + opts.width + 20;
    let total_h = 30 + rows_h + 30 + legend_rows * 16 + 10;
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{total_w}\" height=\"{total_h}\" \
         font-family=\"monospace\">\n\
         <text x=\"4\" y=\"16\" font-size=\"13\">{:?} view, {:.3}s – {:.3}s</text>\n",
        view.kind,
        view.t0 as f64 / 1e9,
        view.t1 as f64 / 1e9,
    );
    // Row labels and baselines.
    for (i, label) in view.rows.iter().enumerate() {
        let y = 30 + i as u32 * opts.row_height;
        svg.push_str(&format!(
            "<text x=\"4\" y=\"{}\" font-size=\"10\">{}</text>\n",
            y + opts.row_height / 2 + 3,
            esc(label)
        ));
        svg.push_str(&format!(
            "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#eee\"/>\n",
            opts.label_width,
            y + opts.row_height / 2,
            opts.label_width + opts.width,
            y + opts.row_height / 2
        ));
    }
    // Bars: outer (shallow) first so nesting draws on top, inset by depth.
    let mut bars = view.bars.clone();
    bars.sort_by_key(|b| b.depth);
    for b in &bars {
        let y = 30 + b.row as u32 * opts.row_height;
        let inset = (b.depth as u32 * 3).min(opts.row_height / 2 - 2);
        let x0 = x_of(b.start);
        let x1 = x_of(b.end).max(x0 + 0.5);
        svg.push_str(&format!(
            "<rect x=\"{:.1}\" y=\"{}\" width=\"{:.1}\" height=\"{}\" fill=\"{}\"{}>\
             <title>{}</title></rect>\n",
            x0,
            y + 2 + inset,
            x1 - x0,
            opts.row_height - 4 - 2 * inset,
            color_of(&b.color),
            if b.pseudo { " opacity=\"0.55\"" } else { "" },
            esc(&format!(
                "{} [{:.6}s – {:.6}s]",
                b.color,
                b.start as f64 / 1e9,
                b.end as f64 / 1e9
            )),
        ));
    }
    // Arrows.
    for a in &view.arrows {
        let y0 = 30 + a.from_row as u32 * opts.row_height + opts.row_height / 2;
        let y1 = 30 + a.to_row as u32 * opts.row_height + opts.row_height / 2;
        svg.push_str(&format!(
            "<line x1=\"{:.1}\" y1=\"{y0}\" x2=\"{:.1}\" y2=\"{y1}\" stroke=\"black\" \
             stroke-width=\"1\"{} marker-end=\"url(#arrow)\"/>\n",
            x_of(a.t0),
            x_of(a.t1),
            if a.pseudo {
                " stroke-dasharray=\"4 2\""
            } else {
                ""
            }
        ));
    }
    svg.push_str(
        "<defs><marker id=\"arrow\" markerWidth=\"8\" markerHeight=\"8\" refX=\"6\" refY=\"3\" \
         orient=\"auto\"><path d=\"M0,0 L6,3 L0,6 z\"/></marker></defs>\n",
    );
    // Legend.
    let ly = 30 + rows_h + 20;
    for (i, key) in view.legend.iter().enumerate() {
        let x = 10 + (i % 4) as u32 * (total_w / 4);
        let y = ly + (i / 4) as u32 * 16;
        svg.push_str(&format!(
            "<rect x=\"{x}\" y=\"{y}\" width=\"10\" height=\"10\" fill=\"{}\"/>\
             <text x=\"{}\" y=\"{}\" font-size=\"10\">{}</text>\n",
            color_of(key),
            x + 14,
            y + 9,
            esc(key)
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ArrowLine, Bar, ViewKind};

    fn view() -> View {
        View {
            kind: ViewKind::ThreadActivity,
            rows: vec!["row <0>".into(), "row1".into()],
            bars: vec![
                Bar {
                    row: 0,
                    start: 0,
                    end: 100,
                    color: "Running".into(),
                    depth: 0,
                    pseudo: false,
                },
                Bar {
                    row: 1,
                    start: 50,
                    end: 80,
                    color: "MPI_Send".into(),
                    depth: 0,
                    pseudo: true,
                },
            ],
            arrows: vec![ArrowLine {
                from_row: 0,
                to_row: 1,
                t0: 10,
                t1: 70,
                pseudo: true,
            }],
            t0: 0,
            t1: 100,
            legend: vec!["Running".into(), "MPI_Send".into()],
        }
    }

    #[test]
    fn svg_structure() {
        let s = render(&view(), &SvgOptions::default());
        assert!(s.starts_with("<svg"));
        assert!(s.ends_with("</svg>\n"));
        assert_eq!(s.matches("<rect").count(), 2 + 2); // bars + legend swatches
        assert!(s.contains("stroke-dasharray"), "pseudo arrow dashed");
        assert!(s.contains("opacity=\"0.55\""), "pseudo bar translucent");
        assert!(s.contains("&lt;0&gt;"), "labels escaped");
    }

    #[test]
    fn distinct_legend_keys_get_distinct_colors() {
        let s = render(&view(), &SvgOptions::default());
        assert!(s.contains(PALETTE[0]));
        assert!(s.contains(PALETTE[1]));
    }
}
