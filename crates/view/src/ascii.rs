//! ASCII rendering of views, for terminals and tests.

use std::collections::HashMap;

use crate::model::View;

/// Per-legend-key fill characters, cycled.
const FILLS: [char; 16] = [
    'S', 'R', 'B', 'A', 'W', 'M', 'C', 'I', 'o', 'x', '%', '&', '$', '?', '~', '^',
];

/// Renders the view as text: one line per row, `width` time columns,
/// a time axis, and a legend mapping fill characters to state names.
pub fn render(view: &View, width: usize) -> String {
    let width = width.max(10);
    let span = (view.t1 - view.t0).max(1);
    let col_of = |t: u64| -> usize {
        (((t.saturating_sub(view.t0)) as u128 * width as u128 / span as u128) as usize)
            .min(width - 1)
    };
    let fill_of: HashMap<&str, char> = view
        .legend
        .iter()
        .enumerate()
        .map(|(i, k)| (k.as_str(), FILLS[i % FILLS.len()]))
        .collect();

    let label_w = view.rows.iter().map(|r| r.len()).max().unwrap_or(0).min(28);
    let mut grid = vec![vec![' '; width]; view.rows.len()];
    // Paint shallow (outer) bars first so nested states overwrite them.
    let mut bars = view.bars.clone();
    bars.sort_by_key(|b| b.depth);
    for b in &bars {
        let c0 = col_of(b.start);
        let c1 = col_of(b.end.max(b.start)).max(c0);
        let ch = fill_of.get(b.color.as_str()).copied().unwrap_or('#');
        for cell in &mut grid[b.row][c0..=c1] {
            *cell = ch;
        }
    }
    // Arrows: mark send (`\`) and receive (`/`) endpoints.
    for a in &view.arrows {
        let c0 = col_of(a.t0);
        let c1 = col_of(a.t1);
        grid[a.from_row][c0] = '\\';
        grid[a.to_row][c1] = '/';
    }

    let mut out = String::new();
    for (label, row) in view.rows.iter().zip(&grid) {
        let mut l = label.clone();
        l.truncate(label_w);
        out.push_str(&format!("{l:>label_w$} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>label_w$} +{}\n", "", "-".repeat(width)));
    let t0 = format!("{:.3}s", view.t0 as f64 / 1e9);
    let t1 = format!("{:.3}s", view.t1 as f64 / 1e9);
    out.push_str(&format!(
        "{:>label_w$}  {t0:<w2$}{t1}\n",
        "",
        w2 = width.saturating_sub(8),
    ));
    out.push_str("legend:");
    for k in &view.legend {
        out.push_str(&format!(" [{}]={}", fill_of[k.as_str()], k));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ArrowLine, Bar, ViewKind};

    fn view() -> View {
        View {
            kind: ViewKind::ThreadActivity,
            rows: vec!["n0 t0".into(), "n0 t1".into()],
            bars: vec![
                Bar {
                    row: 0,
                    start: 0,
                    end: 500,
                    color: "Running".into(),
                    depth: 0,
                    pseudo: false,
                },
                Bar {
                    row: 0,
                    start: 100,
                    end: 300,
                    color: "MPI_Send".into(),
                    depth: 1,
                    pseudo: false,
                },
                Bar {
                    row: 1,
                    start: 500,
                    end: 1000,
                    color: "MPI_Recv".into(),
                    depth: 0,
                    pseudo: false,
                },
            ],
            arrows: vec![ArrowLine {
                from_row: 0,
                to_row: 1,
                t0: 100,
                t1: 900,
                pseudo: false,
            }],
            t0: 0,
            t1: 1000,
            legend: vec!["Running".into(), "MPI_Send".into(), "MPI_Recv".into()],
        }
    }

    #[test]
    fn renders_rows_axis_and_legend() {
        let s = render(&view(), 50);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5); // 2 rows + axis + times + legend
        assert!(lines[0].starts_with("n0 t0 |"));
        assert!(lines[4].starts_with("legend:"));
        assert!(lines[4].contains("MPI_Send"));
    }

    #[test]
    fn nested_bars_overwrite_outer() {
        let s = render(&view(), 100);
        let row0: Vec<char> = s.lines().next().unwrap().chars().collect();
        // Column ~15 (150/1000 of 100 cols) is inside the nested Send.
        let bar_area: String = row0[8..].iter().collect();
        assert!(bar_area.contains('S'), "nested send painted: {bar_area}");
        assert!(bar_area.contains('R'), "outer running visible: {bar_area}");
    }

    #[test]
    fn arrows_mark_endpoints() {
        let s = render(&view(), 100);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains('\\'));
        assert!(lines[1].contains('/'));
    }

    #[test]
    fn degenerate_width_clamped() {
        let s = render(&view(), 1);
        assert!(!s.is_empty());
    }
}
