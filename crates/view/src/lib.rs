//! # ute-view — time-space diagram rendering (§1.2, §4)
//!
//! The paper modified the Argonne **Jumpshot** viewer; a Java GUI is out
//! of scope here, so this crate renders the same diagrams headlessly to
//! ASCII (for terminals and tests) and SVG (for documents). Every view
//! §1.2 enumerates is implemented, all derived from the *same* SLOG data:
//!
//! * **Thread-activity view** — activities along one timeline per thread,
//!   either as raw interval pieces or with pieces connected into nested
//!   states ([`model::ViewKind::ThreadActivity`] + `connected`);
//! * **Processor-activity view** — one timeline per CPU ("must be a view
//!   of interval pieces, since threads may jump among processors");
//! * **Thread-processor view** — thread timelines colored by the CPU the
//!   piece ran on (showing migration);
//! * **Processor-thread view** — CPU timelines colored by thread
//!   (showing processor allocation);
//! * **Type view** — record type as the discriminator along the y axis.
//!
//! Plus the Figure 7 machinery: the whole-run **preview** histogram
//! ([`preview`]) and **frame-windowed** display ([`model::frame_view`])
//! that renders a single frame using its pseudo-interval records, so
//! display cost is independent of file size.

pub mod ascii;
pub mod model;
pub mod nest;
pub mod preview;
pub mod svg;

pub use model::{build_view, frame_view, Bar, View, ViewConfig, ViewKind};
pub use nest::{connect_pieces, NestedSpan};
