//! # ute-slog — the SLOG scalable log format (§4)
//!
//! SLOG is the visualization-facing format Jumpshot reads. It solves the
//! two challenges §4 names for "large files of events that may result
//! from a long run on a large parallel machine":
//!
//! 1. **Rapid access to a time interval far into the run** — the run's
//!    time is divided into frames and a *frame index based on time* lets
//!    a viewer binary-search straight to the frame containing any chosen
//!    instant ([`file::SlogFile::frame_at`]).
//! 2. **Accurate portrayal using data logged outside the window** —
//!    states that span frame boundaries and message arrows whose send
//!    happened long before the receive are duplicated into every frame
//!    they overlap as **pseudo-interval records** ([`record::SlogRecord`]
//!    with the `pseudo` flag), so a single frame renders standalone.
//!
//! The builder also accumulates the **preview** data: state counters and
//! "proportional allocation of event durations to a fixed number of time
//! bins", which is what Jumpshot's whole-run preview window draws
//! ([`preview::Preview`]).

pub mod builder;
pub mod file;
pub mod preview;
pub mod record;

pub use builder::{BuildOptions, SlogBuilder};
pub use file::{SlogFile, SlogFrame};
pub use preview::Preview;
pub use record::{SlogArrow, SlogRecord, SlogState};
