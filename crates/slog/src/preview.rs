//! The whole-run preview (§4, Figure 7).
//!
//! "State counters accumulated during construction of the SLOG file and
//! proportional allocation of event durations to a fixed number of time
//! bins allow quick display of the entire run." The preview is what lets
//! a user spot the initialization, iteration, and termination phases and
//! click a time instant to jump to its frame.

use std::collections::BTreeMap;

use ute_core::codec::{ByteReader, ByteWriter};
use ute_core::error::Result;
use ute_format::state::StateCode;

/// Per-state time-binned duration histogram plus state counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Preview {
    /// Start of the previewed span, global ticks.
    pub span_start: u64,
    /// End of the previewed span, global ticks.
    pub span_end: u64,
    /// Number of time bins.
    pub nbins: u32,
    /// Per state: total record count over the run.
    pub counts: BTreeMap<u16, u64>,
    /// Per state: duration ticks allocated proportionally to each bin.
    pub bins: BTreeMap<u16, Vec<u64>>,
}

impl Preview {
    /// An empty preview over a span.
    pub fn new(span_start: u64, span_end: u64, nbins: u32) -> Preview {
        assert!(nbins > 0, "preview needs at least one bin");
        Preview {
            span_start,
            span_end: span_end.max(span_start + 1),
            nbins,
            counts: BTreeMap::new(),
            bins: BTreeMap::new(),
        }
    }

    /// Width of one bin in ticks (at least 1).
    pub fn bin_width(&self) -> u64 {
        ((self.span_end - self.span_start) / self.nbins as u64).max(1)
    }

    /// Accumulates one interval piece: its duration is split across the
    /// bins it overlaps, proportionally to the overlap.
    pub fn add(&mut self, state: StateCode, start: u64, duration: u64) {
        *self.counts.entry(state.0).or_insert(0) += 1;
        if duration == 0 {
            return;
        }
        let bins = self
            .bins
            .entry(state.0)
            .or_insert_with(|| vec![0; self.nbins as usize]);
        let w = ((self.span_end - self.span_start) / self.nbins as u64).max(1);
        let end = start.saturating_add(duration);
        let first = start.saturating_sub(self.span_start) / w;
        let last = (end.saturating_sub(self.span_start).saturating_sub(1)) / w;
        let last = last.min(self.nbins as u64 - 1);
        let first = first.min(self.nbins as u64 - 1);
        for b in first..=last {
            let b_start = self.span_start + b * w;
            let b_end = if b == self.nbins as u64 - 1 {
                self.span_end
            } else {
                b_start + w
            };
            let overlap = end.min(b_end).saturating_sub(start.max(b_start));
            bins[b as usize] += overlap;
        }
    }

    /// Total "interesting" duration per bin: everything except Running
    /// and clock bookkeeping (§3.2's definition).
    pub fn interesting_per_bin(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.nbins as usize];
        for (state, bins) in &self.bins {
            if StateCode(*state).is_interesting() {
                for (o, b) in out.iter_mut().zip(bins) {
                    *o += b;
                }
            }
        }
        out
    }

    /// Serializes the preview.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.span_start);
        w.put_u64(self.span_end);
        w.put_u32(self.nbins);
        w.put_u32(self.counts.len() as u32);
        for (state, count) in &self.counts {
            w.put_u16(*state);
            w.put_u64(*count);
        }
        w.put_u32(self.bins.len() as u32);
        for (state, bins) in &self.bins {
            w.put_u16(*state);
            for b in bins {
                w.put_u64(*b);
            }
        }
    }

    /// Deserializes a preview.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Preview> {
        let span_start = r.get_u64()?;
        let span_end = r.get_u64()?;
        let nbins = r.get_u32()?;
        // [`Preview::new`] guarantees both, so a violation is damage —
        // and `bin_width`/`add` divide by `nbins`.
        if nbins == 0 {
            return Err(ute_core::error::UteError::corrupt("preview: zero bins"));
        }
        if span_end < span_start {
            return Err(ute_core::error::UteError::corrupt(
                "preview: span ends before it starts",
            ));
        }
        let ncounts = r.get_u32()?;
        let mut counts = BTreeMap::new();
        for _ in 0..ncounts {
            let s = r.get_u16()?;
            counts.insert(s, r.get_u64()?);
        }
        let nstates = r.get_u32()?;
        let mut bins = BTreeMap::new();
        for _ in 0..nstates {
            let s = r.get_u16()?;
            let mut v = Vec::with_capacity(ute_core::codec::clamped_capacity(
                nbins as usize,
                8,
                r.remaining(),
            ));
            for _ in 0..nbins {
                v.push(r.get_u64()?);
            }
            bins.insert(s, v);
        }
        Ok(Preview {
            span_start,
            span_end,
            nbins,
            counts,
            bins,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_core::event::MpiOp;

    #[test]
    fn proportional_allocation_conserves_duration() {
        let mut p = Preview::new(0, 1000, 10);
        // Interval [50, 250): overlaps bins 0 (50), 1 (100), 2 (50).
        p.add(StateCode::mpi(MpiOp::Send), 50, 200);
        let bins = &p.bins[&StateCode::mpi(MpiOp::Send).0];
        assert_eq!(bins[0], 50);
        assert_eq!(bins[1], 100);
        assert_eq!(bins[2], 50);
        assert_eq!(bins.iter().sum::<u64>(), 200);
    }

    #[test]
    fn counts_include_zero_duration() {
        let mut p = Preview::new(0, 100, 4);
        p.add(StateCode::SYSCALL, 10, 0);
        p.add(StateCode::SYSCALL, 20, 0);
        assert_eq!(p.counts[&StateCode::SYSCALL.0], 2);
        assert!(!p.bins.contains_key(&StateCode::SYSCALL.0));
    }

    #[test]
    fn interesting_excludes_running() {
        let mut p = Preview::new(0, 100, 2);
        p.add(StateCode::RUNNING, 0, 100);
        p.add(StateCode::mpi(MpiOp::Barrier), 0, 40);
        let i = p.interesting_per_bin();
        assert_eq!(i[0], 40);
        assert_eq!(i[1], 0);
    }

    #[test]
    fn out_of_span_clamps() {
        let mut p = Preview::new(100, 200, 2);
        // Entirely after the span: clamps to last bin.
        p.add(StateCode::IO, 500, 50);
        let bins = &p.bins[&StateCode::IO.0];
        assert_eq!(bins[1], 0); // no overlap with [150,200)
                                // Spanning the end boundary is clipped to overlap only.
        p.add(StateCode::MARKER, 190, 100);
        assert_eq!(p.bins[&StateCode::MARKER.0][1], 10);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut p = Preview::new(0, 10_000, 16);
        p.add(StateCode::RUNNING, 0, 5_000);
        p.add(StateCode::mpi(MpiOp::Recv), 2_000, 3_000);
        p.add(StateCode::SYSCALL, 1, 0);
        let mut w = ByteWriter::new();
        p.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(Preview::decode(&mut r).unwrap(), p);
    }
}
