//! The SLOG file: header, thread table, preview, time-keyed frame index,
//! and frames of records.

use ute_core::codec::{ByteReader, ByteWriter};
use ute_core::error::{Result, UteError};
use ute_core::ids::{LogicalThreadId, NodeId};
use ute_format::thread_table::ThreadTable;

use crate::preview::Preview;
use crate::record::SlogRecord;

/// Magic bytes opening a SLOG file.
pub const MAGIC: &[u8; 8] = b"UTESLOG\0";

/// Current SLOG format version.
pub const VERSION: u32 = 1;

/// One time-partitioned frame.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SlogFrame {
    /// Frame time span start (inclusive), global ticks.
    pub t_start: u64,
    /// Frame time span end (exclusive), global ticks.
    pub t_end: u64,
    /// Records assigned or pseudo-copied into this frame.
    pub records: Vec<SlogRecord>,
}

impl SlogFrame {
    /// Number of pseudo records in the frame.
    pub fn pseudo_count(&self) -> usize {
        self.records.iter().filter(|r| r.is_pseudo()).count()
    }
}

/// An in-memory SLOG file.
#[derive(Debug, Clone, PartialEq)]
pub struct SlogFile {
    /// The timelines: one per thread, in thread-table order.
    pub threads: ThreadTable,
    /// Unified marker id → string pairs.
    pub markers: Vec<(u32, String)>,
    /// Whole-run preview data.
    pub preview: Preview,
    /// Time-partitioned frames, in time order.
    pub frames: Vec<SlogFrame>,
}

impl SlogFile {
    /// The timeline index of a thread, by (node, logical id).
    pub fn timeline_of(&self, node: NodeId, thread: LogicalThreadId) -> Option<u32> {
        self.threads
            .entries()
            .iter()
            .position(|e| e.node == node && e.logical == thread)
            .map(|i| i as u32)
    }

    /// The frame containing time `t` — a binary search over the frame
    /// index, touching no frame contents (§4's scalability property:
    /// lookup cost is independent of file size).
    pub fn frame_at(&self, t: u64) -> Option<&SlogFrame> {
        if self.frames.is_empty() {
            return None;
        }
        let i = self.frames.partition_point(|f| f.t_end <= t);
        let f = self.frames.get(i)?;
        if f.t_start <= t {
            Some(f)
        } else {
            None
        }
    }

    /// Total records across frames (pseudo copies included).
    pub fn total_records(&self) -> usize {
        self.frames.iter().map(|f| f.records.len()).sum()
    }

    /// Serializes the file: header, thread table, markers, preview,
    /// frame index, frames.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC);
        w.put_u32(VERSION);
        self.threads.encode(&mut w);
        w.put_u32(self.markers.len() as u32);
        for (id, name) in &self.markers {
            w.put_u32(*id);
            w.put_str(name);
        }
        self.preview.encode(&mut w);
        // Frame bodies, encoded up front so the index can carry offsets.
        let mut bodies = Vec::with_capacity(self.frames.len());
        for f in &self.frames {
            let mut b = ByteWriter::new();
            for rec in &f.records {
                rec.encode(&mut b);
            }
            bodies.push(b.into_bytes());
        }
        // Frame index: count, then (t_start, t_end, nrecords, offset, size)
        // with offsets relative to the end of the index.
        w.put_u32(self.frames.len() as u32);
        let mut offset = 0u64;
        for (f, b) in self.frames.iter().zip(&bodies) {
            w.put_u64(f.t_start);
            w.put_u64(f.t_end);
            w.put_u32(f.records.len() as u32);
            w.put_u64(offset);
            w.put_u64(b.len() as u64);
            offset += b.len() as u64;
        }
        for b in &bodies {
            w.put_bytes(b);
        }
        w.into_bytes()
    }

    /// Parses a SLOG file.
    pub fn from_bytes(data: &[u8]) -> Result<SlogFile> {
        let mut r = ByteReader::new(data);
        if r.get_bytes(8)? != MAGIC {
            return Err(UteError::corrupt("slog file: bad magic"));
        }
        let version = r.get_u32()?;
        if version != VERSION {
            return Err(UteError::VersionMismatch {
                profile: VERSION,
                file: version,
            });
        }
        let threads = ThreadTable::decode(&mut r)?;
        let nmarkers = r.get_u32()?;
        let cap = ute_core::codec::clamped_capacity(nmarkers as usize, 6, r.remaining());
        let mut markers = Vec::with_capacity(cap);
        for _ in 0..nmarkers {
            let id = r.get_u32()?;
            markers.push((id, r.get_str()?));
        }
        let preview = Preview::decode(&mut r)?;
        let nframes = r.get_u32()?;
        let cap = ute_core::codec::clamped_capacity(nframes as usize, 36, r.remaining());
        let mut index = Vec::with_capacity(cap);
        for _ in 0..nframes {
            let t_start = r.get_u64()?;
            let t_end = r.get_u64()?;
            let n = r.get_u32()?;
            let offset = r.get_u64()?;
            let size = r.get_u64()?;
            index.push((t_start, t_end, n, offset, size));
        }
        let body_base = r.pos();
        let mut frames = Vec::with_capacity(cap);
        for (t_start, t_end, n, offset, size) in index {
            let mut fr = ByteReader::new(data);
            let at = body_base
                .checked_add(offset)
                .ok_or_else(|| UteError::corrupt("slog frame offset overflows"))?;
            let past = at
                .checked_add(size)
                .ok_or_else(|| UteError::corrupt("slog frame size overflows"))?;
            fr.seek(at)?;
            let mut records = Vec::with_capacity(ute_core::codec::clamped_capacity(
                n as usize,
                2,
                fr.remaining(),
            ));
            for _ in 0..n {
                records.push(SlogRecord::decode(&mut fr)?);
            }
            if fr.pos() != past {
                return Err(UteError::corrupt("slog frame size mismatch"));
            }
            frames.push(SlogFrame {
                t_start,
                t_end,
                records,
            });
        }
        Ok(SlogFile {
            threads,
            markers,
            preview,
            frames,
        })
    }

    /// Writes to disk.
    pub fn write_to(&self, path: &std::path::Path) -> Result<()> {
        use ute_core::error::PathContext;
        std::fs::write(path, self.to_bytes()).in_file(path)
    }

    /// Reads from disk.
    pub fn read_from(path: &std::path::Path) -> Result<SlogFile> {
        use ute_core::error::PathContext;
        let data = std::fs::read(path).in_file(path)?;
        SlogFile::from_bytes(&data).in_file(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SlogState;
    use ute_core::bebits::BeBits;
    use ute_core::ids::{Pid, SystemThreadId, TaskId, ThreadType};
    use ute_format::state::StateCode;
    use ute_format::thread_table::ThreadEntry;

    fn sample() -> SlogFile {
        let mut threads = ThreadTable::new();
        threads
            .register(ThreadEntry {
                task: TaskId(0),
                pid: Pid(1),
                system_tid: SystemThreadId(1),
                node: NodeId(0),
                logical: LogicalThreadId(0),
                ttype: ThreadType::Mpi,
            })
            .unwrap();
        let mut preview = Preview::new(0, 300, 3);
        preview.add(StateCode::RUNNING, 0, 300);
        let state = |start: u64, dur: u64, pseudo: bool| {
            SlogRecord::State(SlogState {
                timeline: 0,
                state: StateCode::RUNNING,
                bebits: BeBits::Complete,
                pseudo,
                start,
                duration: dur,
                node: 0,
                cpu: 0,
                marker_id: 0,
            })
        };
        SlogFile {
            threads,
            markers: vec![(1, "Init".into())],
            preview,
            frames: vec![
                SlogFrame {
                    t_start: 0,
                    t_end: 100,
                    records: vec![state(0, 150, false)],
                },
                SlogFrame {
                    t_start: 100,
                    t_end: 200,
                    records: vec![state(0, 150, true), state(120, 30, false)],
                },
                SlogFrame {
                    t_start: 200,
                    t_end: 300,
                    records: vec![],
                },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let f = sample();
        let bytes = f.to_bytes();
        let back = SlogFile::from_bytes(&bytes).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn frame_at_binary_searches() {
        let f = sample();
        assert_eq!(f.frame_at(0).unwrap().t_start, 0);
        assert_eq!(f.frame_at(99).unwrap().t_start, 0);
        assert_eq!(f.frame_at(100).unwrap().t_start, 100);
        assert_eq!(f.frame_at(299).unwrap().t_start, 200);
        assert!(f.frame_at(300).is_none());
    }

    #[test]
    fn pseudo_counting() {
        let f = sample();
        assert_eq!(f.frames[1].pseudo_count(), 1);
        assert_eq!(f.total_records(), 3);
    }

    #[test]
    fn timeline_lookup() {
        let f = sample();
        assert_eq!(f.timeline_of(NodeId(0), LogicalThreadId(0)), Some(0));
        assert_eq!(f.timeline_of(NodeId(1), LogicalThreadId(0)), None);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'Z';
        assert!(SlogFile::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        assert!(SlogFile::from_bytes(&bytes[..bytes.len() - 4]).is_err());
    }
}
