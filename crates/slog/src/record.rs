//! SLOG records: states on timelines, and message arrows.
//!
//! A SLOG record is either a **state** (one interval piece drawn as a
//! colored bar on a timeline) or an **arrow** (a point-to-point message
//! drawn from the sender's timeline to the receiver's). Either kind can
//! be a **pseudo-interval record**: a copy placed into a frame it merely
//! overlaps, "that supplies whatever data is needed from other frames to
//! complete the visualization of the current frame" (§4).

use ute_core::bebits::BeBits;
use ute_core::codec::{ByteReader, ByteWriter};
use ute_core::error::{Result, UteError};

use ute_format::state::StateCode;

/// A state bar on a timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlogState {
    /// Timeline index (position in the SLOG thread table).
    pub timeline: u32,
    /// The state drawn.
    pub state: StateCode,
    /// Which piece of its state this record is.
    pub bebits: BeBits,
    /// Copied into this frame from another frame.
    pub pseudo: bool,
    /// Start time, global ticks.
    pub start: u64,
    /// Duration, global ticks.
    pub duration: u64,
    /// Node the thread lives on.
    pub node: u16,
    /// CPU the piece ran on.
    pub cpu: u16,
    /// Unified marker id for marker states (0 otherwise).
    pub marker_id: u32,
}

impl SlogState {
    /// End time (saturating, so a corrupt record cannot overflow).
    pub fn end(&self) -> u64 {
        self.start.saturating_add(self.duration)
    }
}

/// A message arrow between timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlogArrow {
    /// Copied into this frame from another frame.
    pub pseudo: bool,
    /// Sender timeline index.
    pub src_timeline: u32,
    /// Receiver timeline index.
    pub dst_timeline: u32,
    /// When the send started, global ticks.
    pub send_time: u64,
    /// When the receive completed, global ticks.
    pub recv_time: u64,
    /// Message payload bytes.
    pub bytes: u64,
    /// The matching sequence number.
    pub seq: u64,
}

/// Any SLOG record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlogRecord {
    /// A state bar.
    State(SlogState),
    /// A message arrow.
    Arrow(SlogArrow),
}

const TAG_STATE: u8 = 1;
const TAG_ARROW: u8 = 2;

impl SlogRecord {
    /// The record's latest timestamp (used for frame assignment checks).
    pub fn end(&self) -> u64 {
        match self {
            SlogRecord::State(s) => s.end(),
            SlogRecord::Arrow(a) => a.recv_time,
        }
    }

    /// The record's earliest timestamp.
    pub fn start(&self) -> u64 {
        match self {
            SlogRecord::State(s) => s.start,
            SlogRecord::Arrow(a) => a.send_time,
        }
    }

    /// Whether this is a pseudo copy.
    pub fn is_pseudo(&self) -> bool {
        match self {
            SlogRecord::State(s) => s.pseudo,
            SlogRecord::Arrow(a) => a.pseudo,
        }
    }

    /// Serializes the record.
    pub fn encode(&self, w: &mut ByteWriter) {
        match self {
            SlogRecord::State(s) => {
                w.put_u8(TAG_STATE);
                w.put_u8((s.pseudo as u8) << 2 | s.bebits.to_bits());
                w.put_u32(s.timeline);
                w.put_u16(s.state.0);
                w.put_u64(s.start);
                w.put_u64(s.duration);
                w.put_u16(s.node);
                w.put_u16(s.cpu);
                w.put_u32(s.marker_id);
            }
            SlogRecord::Arrow(a) => {
                w.put_u8(TAG_ARROW);
                w.put_u8(a.pseudo as u8);
                w.put_u32(a.src_timeline);
                w.put_u32(a.dst_timeline);
                w.put_u64(a.send_time);
                w.put_u64(a.recv_time);
                w.put_u64(a.bytes);
                w.put_u64(a.seq);
            }
        }
    }

    /// Deserializes one record.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<SlogRecord> {
        match r.get_u8()? {
            TAG_STATE => {
                let flags = r.get_u8()?;
                let bebits = BeBits::from_bits(flags & 0b11)
                    .ok_or_else(|| UteError::corrupt("slog record: bad bebits"))?;
                Ok(SlogRecord::State(SlogState {
                    pseudo: flags & 0b100 != 0,
                    bebits,
                    timeline: r.get_u32()?,
                    state: StateCode(r.get_u16()?),
                    start: r.get_u64()?,
                    duration: r.get_u64()?,
                    node: r.get_u16()?,
                    cpu: r.get_u16()?,
                    marker_id: r.get_u32()?,
                }))
            }
            TAG_ARROW => Ok(SlogRecord::Arrow(SlogArrow {
                pseudo: r.get_u8()? != 0,
                src_timeline: r.get_u32()?,
                dst_timeline: r.get_u32()?,
                send_time: r.get_u64()?,
                recv_time: r.get_u64()?,
                bytes: r.get_u64()?,
                seq: r.get_u64()?,
            })),
            other => Err(UteError::corrupt(format!(
                "slog record: unknown tag {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_core::event::MpiOp;

    #[test]
    fn state_round_trip() {
        let s = SlogRecord::State(SlogState {
            timeline: 7,
            state: StateCode::mpi(MpiOp::Send),
            bebits: BeBits::Begin,
            pseudo: true,
            start: 1000,
            duration: 50,
            node: 2,
            cpu: 3,
            marker_id: 0,
        });
        let mut w = ByteWriter::new();
        s.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(SlogRecord::decode(&mut r).unwrap(), s);
        assert!(s.is_pseudo());
        assert_eq!(s.start(), 1000);
        assert_eq!(s.end(), 1050);
    }

    #[test]
    fn arrow_round_trip() {
        let a = SlogRecord::Arrow(SlogArrow {
            pseudo: false,
            src_timeline: 0,
            dst_timeline: 5,
            send_time: 100,
            recv_time: 900,
            bytes: 1 << 16,
            seq: 42,
        });
        let mut w = ByteWriter::new();
        a.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(SlogRecord::decode(&mut r).unwrap(), a);
        assert_eq!(a.start(), 100);
        assert_eq!(a.end(), 900);
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut r = ByteReader::new(&[9u8]);
        assert!(SlogRecord::decode(&mut r).is_err());
    }
}
