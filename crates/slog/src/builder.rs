//! Builds a SLOG file from a merged, globally-timed interval stream.
//!
//! Responsibilities (§4):
//!
//! * partition the run's time into equal-width frames;
//! * assign each state record to the frame containing its start, and add
//!   **pseudo copies** to every further frame it overlaps;
//! * match point-to-point sends with receives by (sender rank, sequence
//!   number) into **arrow records**, placing each arrow in the frame of
//!   its receive and pseudo copies in every earlier frame it crosses;
//! * accumulate the whole-run **preview** histogram.

use std::collections::HashMap;

use ute_core::error::{Result, UteError};
use ute_core::event::MpiOp;
use ute_format::profile::Profile;
use ute_format::record::Interval;
use ute_format::state::StateCode;
use ute_format::thread_table::ThreadTable;

use crate::file::{SlogFile, SlogFrame};
use crate::preview::Preview;
use crate::record::{SlogArrow, SlogRecord, SlogState};

/// SLOG construction options.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Number of time-partitioned frames.
    pub nframes: usize,
    /// Number of preview bins.
    pub preview_bins: u32,
    /// Whether to synthesize message arrows from matched send/recv pairs.
    pub arrows: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            nframes: 64,
            preview_bins: 128,
            arrows: true,
        }
    }
}

/// The SLOG builder.
pub struct SlogBuilder<'a> {
    profile: &'a Profile,
    opts: BuildOptions,
}

impl<'a> SlogBuilder<'a> {
    /// Creates a builder against the profile the intervals were decoded
    /// with.
    pub fn new(profile: &'a Profile, opts: BuildOptions) -> SlogBuilder<'a> {
        SlogBuilder { profile, opts }
    }

    /// Builds the SLOG file. `intervals` must be the merged stream
    /// (globally timed, end-ordered); `threads` and `markers` come from
    /// the merged interval file's header.
    pub fn build(
        &self,
        intervals: &[Interval],
        threads: &ThreadTable,
        markers: &[(u32, String)],
    ) -> Result<SlogFile> {
        let _span = ute_obs::Span::enter(
            "slog",
            format!("build slog ({} intervals)", intervals.len()),
        );
        let nframes = self.opts.nframes.max(1);
        let span_start = intervals.iter().map(|iv| iv.start).min().unwrap_or(0);
        let span_end = intervals
            .iter()
            .map(|iv| iv.end())
            .max()
            .unwrap_or(span_start + 1)
            .max(span_start + 1);
        // More frames than ticks would leave degenerate frames past the
        // span (empty or inverted): clamp so every frame is at least one
        // tick wide and the frames exactly tile [span_start, span_end).
        let nframes = nframes.min((span_end - span_start) as usize).max(1);
        let width = ((span_end - span_start) / nframes as u64).max(1);
        let mut frames: Vec<SlogFrame> = (0..nframes)
            .map(|i| SlogFrame {
                t_start: span_start + i as u64 * width,
                t_end: if i == nframes - 1 {
                    span_end
                } else {
                    span_start + (i as u64 + 1) * width
                },
                records: Vec::new(),
            })
            .collect();
        let frame_of = |t: u64| -> usize {
            (((t.max(span_start) - span_start) / width) as usize).min(nframes - 1)
        };

        let mut preview = Preview::new(span_start, span_end, self.opts.preview_bins.max(1));
        let timeline_index: HashMap<(u16, u16), u32> = threads
            .entries()
            .iter()
            .enumerate()
            .map(|(i, e)| ((e.node.raw(), e.logical.raw()), i as u32))
            .collect();

        // Send/recv matching state for arrows.
        struct SendInfo {
            timeline: u32,
            start: u64,
            bytes: u64,
        }
        let mut sends: HashMap<(u64, u64), SendInfo> = HashMap::new();
        let mut arrows: Vec<SlogArrow> = Vec::new();

        for iv in intervals {
            // Clock records are bookkeeping, and salvage-mode GAP
            // pseudo-records name a node with no thread-table entries;
            // neither belongs on a timeline.
            if iv.itype.state == StateCode::CLOCK || iv.itype.state == StateCode::GAP {
                continue;
            }
            let Some(&timeline) = timeline_index.get(&(iv.node.raw(), iv.thread.raw())) else {
                return Err(UteError::NotFound(format!(
                    "thread (node {}, logical {}) missing from thread table",
                    iv.node, iv.thread
                )));
            };
            preview.add(iv.itype.state, iv.start, iv.duration);
            let marker_id = iv
                .extra(self.profile, "markerId")
                .and_then(|v| v.as_uint())
                .unwrap_or(0) as u32;
            let rec = SlogState {
                timeline,
                state: iv.itype.state,
                bebits: iv.itype.bebits,
                pseudo: false,
                start: iv.start,
                duration: iv.duration,
                node: iv.node.raw(),
                cpu: iv.cpu.raw(),
                marker_id,
            };
            let first = frame_of(iv.start);
            let last = frame_of(iv.end().saturating_sub(1).max(iv.start));
            frames[first].records.push(SlogRecord::State(rec));
            for f in &mut frames[first + 1..=last] {
                f.records.push(SlogRecord::State(SlogState {
                    pseudo: true,
                    ..rec
                }));
            }

            // Arrow matching on completed pieces that carry a sequence.
            if self.opts.arrows && iv.itype.bebits.ends_state() {
                if let Some(op) = iv.itype.state.as_mpi() {
                    let seq = iv
                        .extra(self.profile, "seq")
                        .and_then(|v| v.as_uint())
                        .unwrap_or(0);
                    if seq > 0 {
                        let rank = iv
                            .extra(self.profile, "rank")
                            .and_then(|v| v.as_uint())
                            .unwrap_or(u64::MAX);
                        let peer = iv
                            .extra(self.profile, "peer")
                            .and_then(|v| v.as_uint())
                            .unwrap_or(u64::MAX);
                        if op.is_p2p_send() {
                            let bytes = iv
                                .extra(self.profile, "msgSizeSent")
                                .and_then(|v| v.as_uint())
                                .unwrap_or(0);
                            sends.insert(
                                (rank, seq),
                                SendInfo {
                                    timeline,
                                    start: iv.start,
                                    bytes,
                                },
                            );
                        } else if op.is_p2p_recv() || op == MpiOp::Wait {
                            // peer = the sender's rank on the receive side.
                            if let Some(s) = sends.get(&(peer, seq)) {
                                arrows.push(SlogArrow {
                                    pseudo: false,
                                    src_timeline: s.timeline,
                                    dst_timeline: timeline,
                                    send_time: s.start,
                                    recv_time: iv.end(),
                                    bytes: s.bytes,
                                    seq,
                                });
                            }
                        }
                    }
                }
            }
        }

        ute_obs::counter("slog/arrows_matched").add(arrows.len() as u64);

        // Place arrows: home frame = frame of the receive; pseudo copies
        // in every earlier frame the arrow crosses.
        for a in arrows {
            let home = frame_of(a.recv_time.saturating_sub(1).max(a.send_time));
            let first = frame_of(a.send_time);
            for (i, f) in frames.iter_mut().enumerate().take(home + 1).skip(first) {
                f.records.push(SlogRecord::Arrow(SlogArrow {
                    pseudo: i != home,
                    ..a
                }));
            }
        }

        ute_obs::counter("slog/frames_built").add(frames.len() as u64);
        ute_obs::counter("slog/records_out")
            .add(frames.iter().map(|f| f.records.len() as u64).sum::<u64>());
        Ok(SlogFile {
            threads: threads.clone(),
            markers: markers.to_vec(),
            preview,
            frames,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use ute_core::ids::{CpuId, LogicalThreadId, NodeId, Pid, SystemThreadId, TaskId, ThreadType};
    use ute_format::record::IntervalType;
    use ute_format::thread_table::ThreadEntry;
    use ute_format::value::Value;

    fn threads2() -> ThreadTable {
        let mut t = ThreadTable::new();
        for (node, logical) in [(0u16, 0u16), (1, 0)] {
            t.register(ThreadEntry {
                task: TaskId(node as u32),
                pid: Pid(1),
                system_tid: SystemThreadId(node as u64),
                node: NodeId(node),
                logical: LogicalThreadId(logical),
                ttype: ThreadType::Mpi,
            })
            .unwrap();
        }
        t
    }

    fn running(p: &Profile, node: u16, start: u64, dur: u64) -> Interval {
        let _ = p;
        Interval::basic(
            IntervalType::complete(StateCode::RUNNING),
            start,
            dur,
            CpuId(0),
            NodeId(node),
            LogicalThreadId(0),
        )
    }

    fn send(
        p: &Profile,
        node: u16,
        start: u64,
        dur: u64,
        seq: u64,
        rank: u64,
        peer: u64,
    ) -> Interval {
        Interval::basic(
            IntervalType::complete(StateCode::mpi(MpiOp::Send)),
            start,
            dur,
            CpuId(0),
            NodeId(node),
            LogicalThreadId(0),
        )
        .with_extra(p, "rank", Value::Uint(rank))
        .with_extra(p, "peer", Value::Uint(peer))
        .with_extra(p, "tag", Value::Uint(0))
        .with_extra(p, "msgSizeSent", Value::Uint(512))
        .with_extra(p, "seq", Value::Uint(seq))
        .with_extra(p, "address", Value::Uint(0))
    }

    fn recv(
        p: &Profile,
        node: u16,
        start: u64,
        dur: u64,
        seq: u64,
        rank: u64,
        peer: u64,
    ) -> Interval {
        Interval::basic(
            IntervalType::complete(StateCode::mpi(MpiOp::Recv)),
            start,
            dur,
            CpuId(0),
            NodeId(node),
            LogicalThreadId(0),
        )
        .with_extra(p, "rank", Value::Uint(rank))
        .with_extra(p, "peer", Value::Uint(peer))
        .with_extra(p, "tag", Value::Uint(0))
        .with_extra(p, "msgSizeRecvd", Value::Uint(512))
        .with_extra(p, "seq", Value::Uint(seq))
        .with_extra(p, "address", Value::Uint(0))
    }

    #[test]
    fn frames_partition_time_and_spanning_states_get_pseudo_copies() {
        let p = Profile::standard();
        let ivs = vec![
            running(&p, 0, 0, 1000), // spans all frames
            running(&p, 1, 100, 50),
        ];
        let slog = SlogBuilder::new(
            &p,
            BuildOptions {
                nframes: 4,
                preview_bins: 8,
                arrows: false,
            },
        )
        .build(&ivs, &threads2(), &[])
        .unwrap();
        assert_eq!(slog.frames.len(), 4);
        // The long running state appears real in frame 0 and pseudo in 1-3.
        assert_eq!(slog.frames[0].pseudo_count(), 0);
        for f in &slog.frames[1..] {
            assert_eq!(f.pseudo_count(), 1, "frame [{}..{})", f.t_start, f.t_end);
        }
        // Frame lookup by time works end to end.
        let f = slog.frame_at(600).unwrap();
        assert!(f.records.iter().any(|r| r.is_pseudo()));
    }

    #[test]
    fn arrows_match_sends_to_recvs_across_frames() {
        let p = Profile::standard();
        // Send early (frame 0), recv late (frame 3): rank 0 → rank 1.
        let ivs = vec![
            send(&p, 0, 10, 20, 5, 0, 1),
            recv(&p, 1, 900, 50, 5, 1, 0),
            running(&p, 0, 0, 1000),
        ];
        let slog = SlogBuilder::new(
            &p,
            BuildOptions {
                nframes: 4,
                preview_bins: 8,
                arrows: true,
            },
        )
        .build(&ivs, &threads2(), &[])
        .unwrap();
        let arrows: Vec<&SlogArrow> = slog
            .frames
            .iter()
            .flat_map(|f| &f.records)
            .filter_map(|r| match r {
                SlogRecord::Arrow(a) => Some(a),
                _ => None,
            })
            .collect();
        // One real arrow in the recv's frame plus pseudo copies before it.
        let real: Vec<_> = arrows.iter().filter(|a| !a.pseudo).collect();
        assert_eq!(real.len(), 1);
        assert_eq!(real[0].send_time, 10);
        assert_eq!(real[0].recv_time, 950);
        assert_eq!(real[0].bytes, 512);
        assert!(arrows.len() > 1, "expected pseudo arrow copies");
        // The recv's frame contains the real arrow (§4's second challenge).
        let recv_frame = slog.frame_at(930).unwrap();
        assert!(recv_frame
            .records
            .iter()
            .any(|r| matches!(r, SlogRecord::Arrow(a) if !a.pseudo)));
    }

    #[test]
    fn preview_reflects_states() {
        let p = Profile::standard();
        let ivs = vec![running(&p, 0, 0, 400), send(&p, 1, 100, 100, 1, 1, 0)];
        let slog = SlogBuilder::new(&p, BuildOptions::default())
            .build(&ivs, &threads2(), &[])
            .unwrap();
        assert_eq!(slog.preview.counts[&StateCode::RUNNING.0], 1);
        let interesting: u64 = slog.preview.interesting_per_bin().iter().sum();
        assert_eq!(interesting, 100); // only the send is interesting
    }

    #[test]
    fn clock_records_are_dropped() {
        let p = Profile::standard();
        let clock = Interval::basic(
            IntervalType::complete(StateCode::CLOCK),
            50,
            0,
            CpuId(0),
            NodeId(0),
            LogicalThreadId(0),
        )
        .with_extra(&p, "globalTime", Value::Uint(49));
        let ivs = vec![clock, running(&p, 0, 0, 100)];
        let slog = SlogBuilder::new(&p, BuildOptions::default())
            .build(&ivs, &threads2(), &[])
            .unwrap();
        // Only the Running state survives (as one real record plus its
        // pseudo copies in later frames); no CLOCK records at all.
        let real: Vec<_> = slog
            .frames
            .iter()
            .flat_map(|f| &f.records)
            .filter(|r| !r.is_pseudo())
            .collect();
        assert_eq!(real.len(), 1);
        assert!(slog
            .frames
            .iter()
            .flat_map(|f| &f.records)
            .all(|r| matches!(
                r,
                SlogRecord::State(s) if s.state == StateCode::RUNNING
            )));
    }

    #[test]
    fn unknown_thread_is_an_error() {
        let p = Profile::standard();
        let ivs = vec![running(&p, 7, 0, 10)];
        assert!(SlogBuilder::new(&p, BuildOptions::default())
            .build(&ivs, &threads2(), &[])
            .is_err());
    }

    #[test]
    fn empty_input_builds_empty_slog() {
        let p = Profile::standard();
        let slog = SlogBuilder::new(&p, BuildOptions::default())
            .build(&[], &threads2(), &[])
            .unwrap();
        assert_eq!(slog.total_records(), 0);
        let bytes = slog.to_bytes();
        assert_eq!(SlogFile::from_bytes(&bytes).unwrap(), slog);
    }
}
