//! Shared plumbing for the figure/table harness binaries and the
//! Criterion benchmarks: run a workload through the simulator, convert,
//! merge, and hand back every intermediate artifact.

use std::time::Instant;

use ute_cluster::{SimResult, Simulator};
use ute_convert::{convert_job, ConvertOutput};
use ute_core::error::Result;
use ute_format::file::FramePolicy;
use ute_format::profile::Profile;
use ute_merge::{merge_files, slogmerge, MergeOptions, MergeOutput};
use ute_slog::builder::BuildOptions;
use ute_slog::file::SlogFile;
use ute_workloads::Workload;

/// Every artifact of one end-to-end pipeline run, plus wall-clock timings
/// of each stage.
pub struct PipelineRun {
    /// The profile all files were written against.
    pub profile: Profile,
    /// Simulator output (raw trace files + thread table + stats).
    pub sim: SimResult,
    /// Per-node conversion outputs.
    pub converted: Vec<ConvertOutput>,
    /// Merged interval file.
    pub merged: MergeOutput,
    /// SLOG file.
    pub slog: SlogFile,
    /// Wall-clock seconds: (simulate, convert, merge, slogmerge).
    pub timings: (f64, f64, f64, f64),
}

/// Runs the full pipeline over a workload.
pub fn run_pipeline(w: Workload, build: BuildOptions) -> Result<PipelineRun> {
    let profile = Profile::standard();
    let t0 = Instant::now();
    let sim = Simulator::new(w.config, &w.job)?.run()?;
    let t_sim = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let converted = convert_job(
        &sim.raw_files,
        &sim.threads,
        &profile,
        FramePolicy::default(),
        false, // sequential: timings must reflect per-event cost
    )?;
    let t_convert = t0.elapsed().as_secs_f64();

    let refs: Vec<&[u8]> = converted
        .iter()
        .map(|c| c.interval_file.as_slice())
        .collect();
    let t0 = Instant::now();
    let merged = merge_files(&refs, &profile, &MergeOptions::default())?;
    let t_merge = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let (slog, _) = slogmerge(&refs, &profile, &MergeOptions::default(), build)?;
    let t_slogmerge = t0.elapsed().as_secs_f64();

    Ok(PipelineRun {
        profile,
        sim,
        converted,
        merged,
        slog,
        timings: (t_sim, t_convert, t_merge, t_slogmerge),
    })
}

/// Total raw events across a run's trace files.
pub fn total_raw_events(run: &PipelineRun) -> u64 {
    run.sim
        .raw_files
        .iter()
        .map(|f| f.events.len() as u64)
        .sum()
}

/// Decodes the merged interval stream.
pub fn merged_intervals(run: &PipelineRun) -> Result<Vec<ute_format::record::Interval>> {
    let r = ute_format::file::IntervalFileReader::open(&run.merged.merged, &run.profile)?;
    r.intervals().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_workloads::micro::ping_pong;

    #[test]
    fn pipeline_helper_produces_all_artifacts() {
        let run = run_pipeline(ping_pong(4, 1024), BuildOptions::default()).unwrap();
        assert!(total_raw_events(&run) > 0);
        assert_eq!(run.converted.len(), 2);
        assert!(!run.merged.merged.is_empty());
        assert!(run.slog.total_records() > 0);
        assert!(!merged_intervals(&run).unwrap().is_empty());
    }
}
