//! Figure 8: "A thread-activity view of the ASCI sPPM benchmark" —
//! 4 nodes × 8-way SMP, four threads per MPI process, one making MPI
//! calls.
//!
//! Paper shape to reproduce: per-thread timelines showing MPI activity on
//! the MPI threads, "system activity on the non-MPI threads", and "one
//! thread is idle during this part of the computation".
//!
//! Run: `cargo run -p ute-bench --bin fig8_thread_view`

use std::collections::HashMap;

use ute_bench::run_pipeline;
use ute_slog::builder::BuildOptions;
use ute_view::model::{build_view, ViewConfig, ViewKind};
use ute_workloads::sppm::{workload, SppmParams};

fn main() {
    let run = run_pipeline(workload(SppmParams::default()), BuildOptions::default()).unwrap();
    let view = build_view(
        &run.slog,
        &ViewConfig {
            kind: ViewKind::ThreadActivity,
            ..ViewConfig::default()
        },
    )
    .unwrap();

    println!("# Figure 8 — thread-activity view of the sPPM-like run\n");
    print!("{}", ute_view::ascii::render(&view, 110));

    let out = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out).unwrap();
    std::fs::write(
        out.join("fig8_thread_view.svg"),
        ute_view::svg::render(&view, &ute_view::svg::SvgOptions::default()),
    )
    .unwrap();
    println!("\nwrote target/figures/fig8_thread_view.svg");

    // Shape checks against the caption.
    // 4 tasks × 4 threads + 4 daemon timelines.
    assert_eq!(view.rows.len(), 20, "rows: {:?}", view.rows.len());
    assert!(
        view.legend.iter().any(|k| k.starts_with("MPI_")),
        "MPI activity visible"
    );
    assert!(
        view.legend
            .iter()
            .any(|k| k == "Syscall" || k == "PageFault" || k == "Interrupt"),
        "system activity on non-MPI threads visible: {:?}",
        view.legend
    );
    // The idle thread: one user thread per task has (almost) no activity.
    let mut busy_per_row: HashMap<usize, u64> = HashMap::new();
    for b in &view.bars {
        *busy_per_row.entry(b.row).or_insert(0) += b.end - b.start;
    }
    let span = view.t1 - view.t0;
    let idle_rows = view
        .rows
        .iter()
        .enumerate()
        .filter(|(i, label)| {
            label.contains("user") && busy_per_row.get(i).copied().unwrap_or(0) < span / 50
        })
        .count();
    assert!(
        idle_rows >= 4,
        "expected ≥4 idle worker threads, found {idle_rows}"
    );
    println!("# OK: MPI threads busy, system activity present, {idle_rows} idle worker threads");
}
