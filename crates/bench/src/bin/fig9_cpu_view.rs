//! Figure 9: "A processor-activity view of the ASCI sPPM benchmark" —
//! same run as Figure 8, timelines per CPU.
//!
//! Paper shape to reproduce: "one can see that the CPUs are mostly idle
//! (each horizontal line represents a CPU), and that the MPI threads for
//! processes 0 and 1 jump from one CPU to another on the same node".
//!
//! Run: `cargo run -p ute-bench --bin fig9_cpu_view`

use std::collections::{HashMap, HashSet};

use ute_bench::run_pipeline;
use ute_slog::builder::BuildOptions;
use ute_slog::record::SlogRecord;
use ute_view::model::{build_view, ViewConfig, ViewKind};
use ute_workloads::sppm::{workload, SppmParams};

fn main() {
    let w = workload(SppmParams::default());
    let cpus = w.config.cpus_per_node;
    let run = run_pipeline(w, BuildOptions::default()).unwrap();
    let view = build_view(
        &run.slog,
        &ViewConfig {
            kind: ViewKind::ProcessorActivity,
            cpus_per_node: Some(cpus),
            ..ViewConfig::default()
        },
    )
    .unwrap();

    println!("# Figure 9 — processor-activity view of the sPPM-like run\n");
    print!("{}", ute_view::ascii::render(&view, 110));

    let out = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out).unwrap();
    std::fs::write(
        out.join("fig9_cpu_view.svg"),
        ute_view::svg::render(&view, &ute_view::svg::SvgOptions::default()),
    )
    .unwrap();
    println!("\nwrote target/figures/fig9_cpu_view.svg");

    // Shape checks against the caption.
    // 4 nodes × 8 CPUs = 32 timelines.
    assert_eq!(view.rows.len(), 32);
    // "CPUs are mostly idle": with 5 threads on each 8-way node, well
    // under half the CPU-seconds are used. Check both that at least a
    // third of the CPU rows are near-idle and that aggregate utilization
    // is below 50%.
    let mut busy_per_row: HashMap<usize, u64> = HashMap::new();
    for b in &view.bars {
        *busy_per_row.entry(b.row).or_insert(0) += b.end - b.start;
    }
    let span = view.t1 - view.t0;
    let idle_cpus = (0..view.rows.len())
        .filter(|i| busy_per_row.get(i).copied().unwrap_or(0) < span / 10)
        .count();
    let total_busy: u64 = busy_per_row.values().sum();
    let utilization = total_busy as f64 / (span as f64 * view.rows.len() as f64);
    assert!(
        idle_cpus >= 10,
        "expected mostly-idle CPUs, got {idle_cpus}/32"
    );
    assert!(
        utilization < 0.5,
        "aggregate CPU utilization {utilization:.2} too high"
    );

    // "MPI threads jump from one CPU to another": at least one MPI
    // thread's pieces appear on more than one CPU of its node.
    let mut cpus_of_thread: HashMap<u32, HashSet<(u16, u16)>> = HashMap::new();
    for f in &run.slog.frames {
        for r in &f.records {
            if let SlogRecord::State(s) = r {
                if !s.pseudo && s.state.as_mpi().is_some() {
                    cpus_of_thread
                        .entry(s.timeline)
                        .or_default()
                        .insert((s.node, s.cpu));
                }
            }
        }
    }
    let migrating = cpus_of_thread.values().filter(|s| s.len() > 1).count();
    assert!(
        migrating >= 1,
        "expected MPI-thread migration across CPUs, map: {cpus_of_thread:?}"
    );
    println!(
        "# OK: {idle_cpus}/32 CPUs near-idle ({:.0}% aggregate utilization), \
         {migrating} MPI thread(s) migrated between CPUs",
        utilization * 100.0
    );
}
