//! Serial vs parallel convert+merge wall time, written to
//! `BENCH_pipeline.json`, plus the framework's own pipeline metrics.
//!
//! Traces a fixed-seed multi-node workload once, then runs the fused
//! convert+merge pipeline at `--jobs 1` and at full parallelism,
//! best-of-N each. The two outputs are also compared byte-for-byte — the
//! bench doubles as a determinism check. One extra *profiled* run
//! (after the timing loop, so it never touches the timed path) adds
//! wall-vs-CPU utilization, and the always-on backpressure counters
//! (blocked sends/receives, wait time, queue-depth high-water mark)
//! ride along in the JSON. Besides the latest snapshot, every run
//! appends its JSON as one line to `BENCH_history.jsonl` next to the
//! output file, so trends survive snapshot refreshes.
//!
//! Run: `cargo run -p ute-bench --release --bin pipeline_metrics [-- --smoke] [-- --check]`
//!
//! * `--smoke` — smaller workload and fewer repetitions (CI).
//! * `--check` — exit non-zero if parallel is >10% slower than serial
//!   (catches lock-contention regressions without a flaky absolute
//!   threshold).
//! * `--baseline FILE` — compare this run's speedup against a previous
//!   `BENCH_pipeline.json`; exit non-zero if it regressed by more than
//!   the tolerance. Speedup (a ratio of two times measured on the same
//!   machine) is the primary cross-machine-comparable number in the
//!   file, so it is the tightly gated quantity; `records_per_sec` gets
//!   a second, looser floor (see `--rps-tolerance`) to catch raw-path
//!   slowdowns that a ratio cannot see — absolute ns are recorded but
//!   never compared.
//! * `--tolerance PCT` — allowed relative speedup regression for
//!   `--baseline` (default 15, i.e. fresh ≥ 85% of baseline).
//! * `--rps-tolerance PCT` — allowed relative `records_per_sec`
//!   regression for `--baseline` (default 60: machines differ far more
//!   in absolute throughput than in speedup, so the floor is generous —
//!   it exists to catch order-of-magnitude raw-path regressions).
//! * `--out FILE` — where to write the fresh JSON (default
//!   `BENCH_pipeline.json`).

use std::time::Instant;

/// Pulls `"key": <number>` out of a flat JSON object. Enough for our
/// own bench files (no nesting, no strings that look like keys) and
/// keeps the bench dependency-free.
fn json_num(src: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = src.find(&needle)? + needle.len();
    let rest = src[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn arg_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == flag)
        .and_then(|i| argv.get(i + 1))
        .cloned()
}

use ute_cluster::Simulator;
use ute_convert::ConvertOptions;
use ute_format::file::FramePolicy;
use ute_format::profile::Profile;
use ute_merge::MergeOptions;
use ute_pipeline::{convert_and_merge, default_jobs};
use ute_workloads::micro;

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let check = argv.iter().any(|a| a == "--check");
    let baseline = arg_value(&argv, "--baseline");
    let tolerance: f64 = arg_value(&argv, "--tolerance")
        .map(|t| t.parse().expect("--tolerance must be a number (percent)"))
        .unwrap_or(15.0);
    let rps_tolerance: f64 = arg_value(&argv, "--rps-tolerance")
        .map(|t| {
            t.parse()
                .expect("--rps-tolerance must be a number (percent)")
        })
        .unwrap_or(60.0);
    let out_path = arg_value(&argv, "--out").unwrap_or_else(|| "BENCH_pipeline.json".to_string());

    // ≥4 nodes so the fan-out has real work to spread. Both sizes are
    // large enough that per-run thread spawn cost (~1 ms for a pool of
    // 8 on a slow runner) is noise against the convert+merge time.
    let (nodes, steps, bytes, reps) = if smoke {
        (6u32, 256u32, 8u64 << 10, 3u32)
    } else {
        (8, 384, 16 << 10, 5)
    };
    let w = micro::stencil(nodes, steps, bytes);
    let result = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
    let profile = Profile::standard();
    let copts = ConvertOptions {
        policy: FramePolicy::default(),
        ..ConvertOptions::default()
    };
    let mopts = MergeOptions::default();
    // At least 2 so the channel-fed parallel path is really exercised
    // even on a single-core runner (where it still wins by streaming
    // into the writer instead of materializing the full merged vector).
    let jobs = default_jobs().max(2);

    let run = |jobs: usize| -> (u64, Vec<u8>) {
        let mut best = u64::MAX;
        let mut merged = Vec::new();
        for _ in 0..reps {
            let t = Instant::now();
            let out = convert_and_merge(
                &result.raw_files,
                &result.threads,
                &profile,
                &copts,
                &mopts,
                jobs,
            )
            .unwrap();
            let ns = t.elapsed().as_nanos() as u64;
            if ns < best {
                best = ns;
            }
            merged = out.merged.merged;
        }
        (best, merged)
    };

    let (serial_ns, serial_bytes) = run(1);
    let (parallel_ns, parallel_bytes) = run(jobs);
    assert_eq!(
        serial_bytes, parallel_bytes,
        "determinism violation: merged output differs between --jobs 1 and --jobs {jobs}"
    );

    // The analyze stage over the merged output: decode + columnar table
    // build + all four diagnostics, best-of-reps like the stages above.
    // Recorded for trend-watching, never gated (absolute ns are not
    // cross-machine comparable).
    let (analyze_ns, analyze_findings) = {
        let mut best = u64::MAX;
        let mut nfindings = 0usize;
        for _ in 0..reps {
            let t = Instant::now();
            let reader = ute_format::file::IntervalFileReader::open(&parallel_bytes, &profile)
                .expect("merged output reopens");
            let markers = reader.markers.clone();
            let intervals: Vec<_> = reader.intervals().map(|iv| iv.unwrap()).collect();
            let table = ute_analyze::TraceTable::from_intervals(&profile, &intervals, markers);
            let findings = ute_analyze::run_all(&table, &ute_analyze::DiagOptions::default());
            let ns = t.elapsed().as_nanos() as u64;
            best = best.min(ns);
            nfindings = findings.len();
        }
        (best, nfindings)
    };

    // The merge stage in isolation, loser tree vs the retired BTreeMap
    // merger, over the same clock-adjusted streams: the split that shows
    // where tournament replay beats rebalancing, appended to the history
    // log so the ratio is trend-watchable.
    let (loser_tree_merge_ns, btreemap_merge_ns, merge_stream_records) = {
        let converted = ute_convert::convert_job_opts(
            &result.raw_files,
            &result.threads,
            &profile,
            &copts,
            false,
        )
        .unwrap();
        let streams: Vec<Vec<ute_format::record::Interval>> = converted
            .iter()
            .map(|o| {
                let reader = ute_format::file::IntervalFileReader::open(&o.interval_file, &profile)
                    .expect("converted output reopens");
                let mut ivs = Vec::new();
                ute_merge::adjust_node(&reader, &profile, &mopts, |iv| {
                    ivs.push(iv);
                    Ok(())
                })
                .expect("clock adjustment");
                ivs
            })
            .collect();
        let records: usize = streams.iter().map(Vec::len).sum();
        let time_loser = {
            let mut best = u64::MAX;
            for _ in 0..reps {
                let sources: Vec<ute_merge::IvSource> = streams
                    .iter()
                    .cloned()
                    .map(ute_merge::IvSource::new)
                    .collect();
                let t = Instant::now();
                let n = ute_merge::LoserTreeMerge::new(sources).count();
                best = best.min(t.elapsed().as_nanos() as u64);
                assert_eq!(n, records);
            }
            best
        };
        let time_btree = {
            let mut best = u64::MAX;
            for _ in 0..reps {
                let sources: Vec<ute_merge::IvSource> = streams
                    .iter()
                    .cloned()
                    .map(ute_merge::IvSource::new)
                    .collect();
                let t = Instant::now();
                let n = ute_merge::BalancedTreeMerge::new(sources).count();
                best = best.min(t.elapsed().as_nanos() as u64);
                assert_eq!(n, records);
            }
            best
        };
        (time_loser, time_btree, records)
    };

    // One profiled run, after every timed rep: per-span CPU clocks and
    // the stack sampler are live only here, so the timings above are
    // untouched while the JSON still carries utilization. Everything
    // below is computed from before/after snapshot *deltas*, so the
    // serial reference run and the timing reps above never leak into
    // the utilization numbers.
    let before = ute_obs::snapshot();
    ute_obs::set_profiling(true);
    ute_profile::start(std::time::Duration::from_micros(200));
    let t_profiled = Instant::now();
    convert_and_merge(
        &result.raw_files,
        &result.threads,
        &profile,
        &copts,
        &mopts,
        jobs,
    )
    .unwrap();
    let profiled_wall_ns = t_profiled.elapsed().as_nanos() as u64;
    ute_profile::stop();
    ute_obs::set_profiling(false);
    let snap = ute_obs::snapshot();
    let sum_since = |name: &str| -> u64 {
        let now = snap.histogram(name).map(|h| h.sum).unwrap_or(0);
        let was = before.histogram(name).map(|h| h.sum).unwrap_or(0);
        now.saturating_sub(was)
    };
    // Per-stage utilization: each stage's CPU time over its own span
    // wall time. Summing span walls into one global denominator would
    // double-count nested spans (a per-node convert span lives inside
    // the pipeline span), which is the bug this replaces.
    let mut stage_util: Vec<(String, u64, u64)> = Vec::new();
    let mut span_cpu_ns = 0u64;
    for (name, _) in &snap.histograms {
        if let Some(stage) = name.strip_suffix("/cpu_ns") {
            let cpu = sum_since(name);
            let wall = sum_since(&format!("{stage}/span_ns"));
            span_cpu_ns += cpu;
            if wall > 0 {
                stage_util.push((stage.to_string(), cpu, wall));
            }
        }
    }
    stage_util.sort();
    // Overall utilization: total span CPU over the profiled run's wall
    // time times the pool width — the fraction of the worker pool kept
    // busy, not a sum of overlapping span walls.
    let utilization = if profiled_wall_ns > 0 {
        (span_cpu_ns as f64 / (profiled_wall_ns as f64 * jobs as f64)).min(1.0)
    } else {
        0.0
    };

    // Backpressure totals across all runs (serial + parallel + profiled):
    // who waited on whom, and how full the channels got.
    let blocked_sends = snap.counter("pipeline/blocked_sends").unwrap_or(0);
    let blocked_recvs = snap.counter("pipeline/blocked_recvs").unwrap_or(0);
    let send_wait_ns = snap.histogram("pipeline/send_wait_ns").map_or(0, |h| h.sum);
    let recv_wait_ns = snap.histogram("pipeline/recv_wait_ns").map_or(0, |h| h.sum);
    let queue_depth_max = snap.gauge("pipeline/queue_depth_max").unwrap_or(0.0);

    let speedup = serial_ns as f64 / parallel_ns as f64;
    let records_in = snap.counter("merge/records_in").unwrap_or(0);
    // Per-run throughput on the parallel path: the bench repeats the run
    // `2 * reps` times (serial + parallel), plus the profiled run, plus
    // one adjustment pass in the merge-split section above — the counter
    // total is divided back down before relating it to the best parallel
    // time.
    let records_per_run = records_in as f64 / (2 * reps + 2) as f64;
    let records_per_sec = records_per_run / (parallel_ns as f64 / 1e9);
    // Per-stage utilization as flat `util_<stage>` keys so the naive
    // json_num reader (and jq-less CI greps) keep working.
    let stage_util_json: String = stage_util
        .iter()
        .map(|(stage, cpu, wall)| {
            format!(
                "  \"util_{stage}\": {:.4},\n",
                (*cpu as f64 / *wall as f64).min(1.0)
            )
        })
        .collect();
    let merge_speedup = btreemap_merge_ns as f64 / loser_tree_merge_ns.max(1) as f64;
    let json = format!(
        "{{\n  \"workload\": \"stencil\",\n  \"nodes\": {nodes},\n  \"smoke\": {smoke},\n  \
         \"runs\": {reps},\n  \"jobs\": {jobs},\n  \
         \"serial_convert_merge_ns\": {serial_ns},\n  \
         \"parallel_convert_merge_ns\": {parallel_ns},\n  \
         \"speedup\": {speedup:.4},\n  \
         \"records_per_sec\": {records_per_sec:.0},\n  \
         \"utilization\": {utilization:.4},\n\
         {stage_util_json}  \
         \"loser_tree_merge_ns\": {loser_tree_merge_ns},\n  \
         \"btreemap_merge_ns\": {btreemap_merge_ns},\n  \
         \"merge_speedup\": {merge_speedup:.4},\n  \
         \"merge_stream_records\": {merge_stream_records},\n  \
         \"blocked_sends\": {blocked_sends},\n  \
         \"blocked_recvs\": {blocked_recvs},\n  \
         \"send_wait_ns\": {send_wait_ns},\n  \
         \"recv_wait_ns\": {recv_wait_ns},\n  \
         \"queue_depth_max\": {queue_depth_max},\n  \
         \"analyze_ns\": {analyze_ns},\n  \
         \"analyze_findings\": {analyze_findings},\n  \
         \"merged_bytes\": {},\n  \"merge_records_in\": {records_in}\n}}\n",
        serial_bytes.len(),
    );
    std::fs::write(&out_path, &json).unwrap();

    // Append this run to the history log next to the snapshot file: one
    // JSON object per line, stamped, never rewritten — `BENCH_pipeline.json`
    // stays the latest snapshot, the history keeps the trend.
    let history_path = std::path::Path::new(&out_path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map(|p| p.join("BENCH_history.jsonl"))
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_history.jsonl"));
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut line = json.split_whitespace().collect::<Vec<_>>().join(" ");
    if let Some(stripped) = line.strip_suffix(" }") {
        line = format!("{stripped}, \"recorded_unix\": {stamp} }}");
    }
    use std::io::Write as _;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history_path)
        .and_then(|mut f| writeln!(f, "{line}"));
    if let Err(e) = appended {
        eprintln!("warn: could not append {}: {e}", history_path.display());
    }

    println!("# serial vs parallel convert+merge (stencil, {nodes} nodes, best of {reps})\n");
    println!("serial   (--jobs 1):  {:>10.3} ms", serial_ns as f64 / 1e6);
    println!(
        "parallel (--jobs {jobs}):  {:>10.3} ms",
        parallel_ns as f64 / 1e6
    );
    println!("speedup: {speedup:.2}x  ({records_per_sec:.0} records/s parallel)");
    println!(
        "merge stage alone ({merge_stream_records} records): loser tree {:.3} ms vs \
         BTreeMap {:.3} ms ({merge_speedup:.2}x)",
        loser_tree_merge_ns as f64 / 1e6,
        btreemap_merge_ns as f64 / 1e6
    );
    println!(
        "profiled run: pool utilization {:.0}% (span cpu {:.3} ms / wall {:.3} ms x {jobs} jobs)",
        utilization * 100.0,
        span_cpu_ns as f64 / 1e6,
        profiled_wall_ns as f64 / 1e6
    );
    for (stage, cpu, wall) in &stage_util {
        println!(
            "  stage {stage:<12} {:>6.1}% busy ({:.3} ms cpu / {:.3} ms span)",
            (*cpu as f64 / *wall as f64).min(1.0) * 100.0,
            *cpu as f64 / 1e6,
            *wall as f64 / 1e6
        );
    }
    println!(
        "backpressure: {blocked_sends} blocked send(s) ({:.3} ms), \
         {blocked_recvs} blocked recv(s) ({:.3} ms), queue depth max {queue_depth_max}",
        send_wait_ns as f64 / 1e6,
        recv_wait_ns as f64 / 1e6
    );
    println!(
        "analyze (decode+table+4 diagnostics): {:>7.3} ms, {analyze_findings} finding(s)",
        analyze_ns as f64 / 1e6
    );
    println!("\nwrote {out_path} (history: {})", history_path.display());

    if check && parallel_ns as f64 > serial_ns as f64 * 1.10 {
        eprintln!(
            "FAIL: parallel ({:.3} ms) is more than 10% slower than serial ({:.3} ms)",
            parallel_ns as f64 / 1e6,
            serial_ns as f64 / 1e6
        );
        std::process::exit(1);
    }

    if let Some(path) = baseline {
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let base_speedup =
            json_num(&src, "speedup").unwrap_or_else(|| panic!("no \"speedup\" field in {path}"));
        let floor = base_speedup * (1.0 - tolerance / 100.0);
        println!(
            "baseline speedup {base_speedup:.2}x (from {path}), fresh {speedup:.2}x, \
             floor {floor:.2}x (-{tolerance}%)"
        );
        if speedup < floor {
            eprintln!(
                "FAIL: speedup regressed: {speedup:.2}x < {floor:.2}x \
                 (baseline {base_speedup:.2}x - {tolerance}%)"
            );
            std::process::exit(1);
        }
        // The raw-throughput floor: loose (machines vary far more in
        // absolute records/s than in speedup) but present, so an
        // order-of-magnitude hot-path regression fails even when the
        // serial/parallel *ratio* is unchanged.
        if let Some(base_rps) = json_num(&src, "records_per_sec") {
            let rps_floor = base_rps * (1.0 - rps_tolerance / 100.0);
            println!(
                "baseline records/s {base_rps:.0}, fresh {records_per_sec:.0}, \
                 floor {rps_floor:.0} (-{rps_tolerance}%)"
            );
            if records_per_sec < rps_floor {
                eprintln!(
                    "FAIL: records/s regressed: {records_per_sec:.0} < {rps_floor:.0} \
                     (baseline {base_rps:.0} - {rps_tolerance}%)"
                );
                std::process::exit(1);
            }
        }
    }
}
