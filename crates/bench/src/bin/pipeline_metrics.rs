//! Serial vs parallel convert+merge wall time, written to
//! `BENCH_pipeline.json`, plus the framework's own pipeline metrics.
//!
//! Traces a fixed-seed multi-node workload once, then runs the fused
//! convert+merge pipeline at `--jobs 1` and at full parallelism,
//! best-of-N each. The two outputs are also compared byte-for-byte — the
//! bench doubles as a determinism check.
//!
//! Run: `cargo run -p ute-bench --release --bin pipeline_metrics [-- --smoke] [-- --check]`
//!
//! * `--smoke` — smaller workload and fewer repetitions (CI).
//! * `--check` — exit non-zero if parallel is >10% slower than serial
//!   (catches lock-contention regressions without a flaky absolute
//!   threshold).

use std::time::Instant;

use ute_cluster::Simulator;
use ute_convert::ConvertOptions;
use ute_format::file::FramePolicy;
use ute_format::profile::Profile;
use ute_merge::MergeOptions;
use ute_pipeline::{convert_and_merge, default_jobs};
use ute_workloads::micro;

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let check = argv.iter().any(|a| a == "--check");

    // ≥4 nodes so the fan-out has real work to spread. Both sizes are
    // large enough that per-run thread spawn cost (~1 ms for a pool of
    // 8 on a slow runner) is noise against the convert+merge time.
    let (nodes, steps, bytes, reps) = if smoke {
        (6u32, 256u32, 8u64 << 10, 3u32)
    } else {
        (8, 384, 16 << 10, 5)
    };
    let w = micro::stencil(nodes, steps, bytes);
    let result = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
    let profile = Profile::standard();
    let copts = ConvertOptions {
        policy: FramePolicy::default(),
        ..ConvertOptions::default()
    };
    let mopts = MergeOptions::default();
    // At least 2 so the channel-fed parallel path is really exercised
    // even on a single-core runner (where it still wins by streaming
    // into the writer instead of materializing the full merged vector).
    let jobs = default_jobs().max(2);

    let run = |jobs: usize| -> (u64, Vec<u8>) {
        let mut best = u64::MAX;
        let mut merged = Vec::new();
        for _ in 0..reps {
            let t = Instant::now();
            let out = convert_and_merge(
                &result.raw_files,
                &result.threads,
                &profile,
                &copts,
                &mopts,
                jobs,
            )
            .unwrap();
            let ns = t.elapsed().as_nanos() as u64;
            if ns < best {
                best = ns;
            }
            merged = out.merged.merged;
        }
        (best, merged)
    };

    let (serial_ns, serial_bytes) = run(1);
    let (parallel_ns, parallel_bytes) = run(jobs);
    assert_eq!(
        serial_bytes, parallel_bytes,
        "determinism violation: merged output differs between --jobs 1 and --jobs {jobs}"
    );

    let speedup = serial_ns as f64 / parallel_ns as f64;
    let snap = ute_obs::snapshot();
    let records_in = snap.counter("merge/records_in").unwrap_or(0);
    let json = format!(
        "{{\n  \"workload\": \"stencil\",\n  \"nodes\": {nodes},\n  \"smoke\": {smoke},\n  \
         \"runs\": {reps},\n  \"jobs\": {jobs},\n  \
         \"serial_convert_merge_ns\": {serial_ns},\n  \
         \"parallel_convert_merge_ns\": {parallel_ns},\n  \
         \"speedup\": {speedup:.4},\n  \
         \"merged_bytes\": {},\n  \"merge_records_in\": {records_in}\n}}\n",
        serial_bytes.len(),
    );
    std::fs::write("BENCH_pipeline.json", &json).unwrap();

    println!("# serial vs parallel convert+merge (stencil, {nodes} nodes, best of {reps})\n");
    println!("serial   (--jobs 1):  {:>10.3} ms", serial_ns as f64 / 1e6);
    println!(
        "parallel (--jobs {jobs}):  {:>10.3} ms",
        parallel_ns as f64 / 1e6
    );
    println!("speedup: {speedup:.2}x");
    println!("\nwrote BENCH_pipeline.json");

    if check && parallel_ns as f64 > serial_ns as f64 * 1.10 {
        eprintln!(
            "FAIL: parallel ({:.3} ms) is more than 10% slower than serial ({:.3} ms)",
            parallel_ns as f64 / 1e6,
            serial_ns as f64 / 1e6
        );
        std::process::exit(1);
    }
}
