//! Pipeline self-observability report: runs the full Figure-2 pipeline
//! on the sppm workload through `ute report` and writes every metric
//! the framework collects about itself to `BENCH_pipeline.json`.
//!
//! Run: `cargo run -p ute-bench --bin pipeline_metrics [--release]`

use ute_cli::{cmd_report, Args};

fn main() {
    let out = std::env::temp_dir().join(format!("ute_bench_pipeline_{}", std::process::id()));
    std::fs::create_dir_all(&out).unwrap();
    let argv: Vec<String> = ["--workload", "sppm", "--out", out.to_str().unwrap()]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let json = cmd_report(&Args::parse(&argv).unwrap()).unwrap();
    std::fs::write("BENCH_pipeline.json", &json).unwrap();
    std::fs::remove_dir_all(&out).ok();

    let snap = ute_obs::snapshot();
    println!("# pipeline self-metrics (sppm) -> BENCH_pipeline.json\n");
    for name in [
        "cluster/events_simulated",
        "rawtrace/records_cut",
        "convert/records_in",
        "convert/intervals_out",
        "merge/records_in",
        "merge/comparisons",
        "slog/records_out",
        "format/frames_written",
        "stats/rows_emitted",
    ] {
        println!("{name}: {}", snap.counter(name).unwrap_or(0));
    }
    println!("\nfull report: BENCH_pipeline.json ({} bytes)", json.len());
}
