//! Figure 6: "Statistics visualization for pre-defined statistics tables"
//! — the sum of interesting-interval duration per node × 50 time bins,
//! rendered by the statistics viewer.
//!
//! Paper shape to reproduce: the per-bin profile exposes the program's
//! phase structure — busy ranges separated by quiet ranges, so one can
//! read off "the time ranges of a time-space diagram that are likely to
//! be interesting".
//!
//! Run: `cargo run -p ute-bench --bin fig6_stats_view`

use ute_bench::{merged_intervals, run_pipeline};
use ute_slog::builder::BuildOptions;
use ute_stats::predefined::predefined_tables;
use ute_stats::run_tables;
use ute_stats::viewer::{heatmap_ascii, heatmap_svg};
use ute_workloads::flash::{workload, FlashParams};

fn main() {
    let run = run_pipeline(workload(FlashParams::default()), BuildOptions::default()).unwrap();
    let intervals = merged_intervals(&run).unwrap();
    let tables = run_tables(&predefined_tables(), &run.profile, &intervals).unwrap();
    let fig6 = tables
        .iter()
        .find(|t| t.name == "interesting_by_node_bin")
        .expect("predefined Figure 6 table");

    println!("# Figure 6 — sum of interesting durations per node x 50 bins (TSV)\n");
    print!("{}", fig6.to_tsv());

    println!("\n# statistics viewer rendering:\n");
    print!("{}", heatmap_ascii(fig6, 0).unwrap());

    let out = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out).unwrap();
    let svg_path = out.join("fig6_stats_view.svg");
    std::fs::write(&svg_path, heatmap_svg(fig6, 0, 10).unwrap()).unwrap();
    println!("\nwrote {}", svg_path.display());

    // Shape check: busy and quiet bins both exist (phase structure).
    let mut per_bin = vec![0.0f64; 50];
    for (key, ys) in &fig6.rows {
        per_bin[key[1].0 as usize] += ys[0];
    }
    let busy = per_bin.iter().filter(|&&v| v > 0.0).count();
    let quiet = per_bin.iter().filter(|&&v| v == 0.0).count();
    assert!(busy >= 5, "busy bins: {busy}");
    assert!(quiet >= 5, "quiet bins: {quiet}");
    println!("# OK: {busy} busy bins and {quiet} quiet bins — phase structure visible");
}
