//! Ablation: the §2.2 design choices for clock-ratio estimation.
//!
//! Compares the paper's RMS-of-slope-segments against the RMS-of-all-
//! slopes variant it rejects ("gives too much weight on the first point"),
//! the last-pair slope, and the piecewise per-segment fit — on three clock
//! scenarios: constant drift, drift with §5 deschedule outliers (with and
//! without filtering), and temperature-varying drift.
//!
//! Run: `cargo run -p ute-bench --bin ablation_clock`

use ute_clock::drift::{ClockParams, LocalClock};
use ute_clock::filter::filter_outliers_default;
use ute_clock::global::GlobalClock;
use ute_clock::ratio::{ClockFit, PiecewiseFit, RatioEstimator};
use ute_clock::sample::{sample_clocks, ClockSample, SamplerConfig};
use ute_core::time::{Duration, LocalTime, Time};

/// Mean absolute adjustment error (ns) of a fit over probe points with
/// known ground truth (true time t ↔ exact local reading).
fn eval_linear(fit: &ClockFit, truth: &[(Time, LocalTime)]) -> f64 {
    truth
        .iter()
        .map(|(g, l)| (fit.adjust(*l).ticks() as i64 - g.ticks() as i64).abs() as f64)
        .sum::<f64>()
        / truth.len() as f64
}

fn eval_piecewise(fit: &PiecewiseFit, truth: &[(Time, LocalTime)]) -> f64 {
    truth
        .iter()
        .map(|(g, l)| (fit.adjust(*l).ticks() as i64 - g.ticks() as i64).abs() as f64)
        .sum::<f64>()
        / truth.len() as f64
}

fn scenario(
    name: &str,
    params: ClockParams,
    outliers: Option<usize>,
) -> (Vec<ClockSample>, Vec<(Time, LocalTime)>) {
    let global = GlobalClock::ideal();
    let mut clock = LocalClock::new(params.clone());
    let cfg = SamplerConfig {
        period: Duration::from_secs(1),
        outlier_every: outliers,
        outlier_delay: Duration::from_millis(3),
    };
    let samples = sample_clocks(
        &global,
        &mut clock,
        &cfg,
        Time::ZERO,
        Time::from_secs_f64(140.0),
    );
    // Ground truth from a fresh identical clock read off-schedule.
    let mut probe_clock = LocalClock::new(params);
    let truth: Vec<(Time, LocalTime)> = (0..280)
        .map(|i| {
            let t = Time(i * 500_000_000 + 250_000_000);
            (t, probe_clock.read(t))
        })
        .collect();
    println!("\n== scenario: {name} ({} samples) ==", samples.len());
    (samples, truth)
}

fn report(samples: &[ClockSample], truth: &[(Time, LocalTime)]) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    for (name, est) in [
        ("rms-segments (paper)", RatioEstimator::RmsSegments),
        ("rms-all-slopes", RatioEstimator::RmsAllSlopes),
        ("last-pair", RatioEstimator::LastPair),
    ] {
        let fit = ClockFit::fit(samples, est).unwrap();
        let err = eval_linear(&fit, truth);
        println!("  {name:<24} mean |error| = {err:>10.1} ns");
        rows.push((name.to_string(), err));
    }
    let pw = PiecewiseFit::fit(samples).unwrap();
    let err = eval_piecewise(&pw, truth);
    println!("  {:<24} mean |error| = {err:>10.1} ns", "piecewise");
    rows.push(("piecewise".to_string(), err));
    rows
}

fn main() {
    println!("# Ablation — clock-ratio estimators (§2.2)");

    // 1. Constant drift: everything should basically tie.
    let (samples, truth) = scenario(
        "constant +25 ppm drift",
        ClockParams::with_ppm(25.0, 500),
        None,
    );
    let rows = report(&samples, &truth);
    assert!(
        rows.iter().all(|(_, e)| *e < 2_000.0),
        "constant case should be easy"
    );

    // 2. Deschedule outliers, unfiltered then filtered.
    let (samples, truth) = scenario(
        "+25 ppm with deschedule outliers every 20th sample",
        ClockParams::with_ppm(25.0, 500),
        Some(20),
    );
    let dirty = report(&samples, &truth);
    println!("  -- after outlier filtering --");
    let filtered = filter_outliers_default(&samples);
    println!("  (kept {}/{} samples)", filtered.len(), samples.len());
    let clean = report(&filtered, &truth);
    let dirty_seg = dirty[0].1;
    let clean_seg = clean[0].1;
    assert!(
        clean_seg < dirty_seg,
        "filtering should improve the paper estimator: {dirty_seg} -> {clean_seg}"
    );

    // 3. Temperature-varying drift: piecewise should win.
    let (samples, truth) = scenario(
        "temperature-wandering drift (±2 ppm walk)",
        ClockParams {
            offset_ticks: 0,
            freq_error_ppm: 10.0,
            temp_walk_ppm: 0.4,
            temp_bound_ppm: 2.0,
            read_quantum_ticks: 1,
            seed: 99,
        },
        None,
    );
    let rows = report(&samples, &truth);
    let (seg, pw) = (rows[0].1, rows[3].1);
    assert!(
        pw <= seg,
        "piecewise should track a wandering clock at least as well: seg {seg}, pw {pw}"
    );
    println!(
        "\n# OK: paper estimator robust; filtering heals §5 outliers; piecewise wins on wandering clocks"
    );
}
