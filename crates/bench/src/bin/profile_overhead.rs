//! Profiling overhead gate for the fused convert+merge path.
//!
//! Two measurements, the same interleaved A/B discipline as the obs
//! overhead ablation (alternating runs so drift hits both arms):
//!
//! * **off-state bound** — the span-side profiling hooks are always
//!   compiled in; when profiling is off their entire cost is one relaxed
//!   atomic load per span open/close. The gate bounds it from above:
//!   microbenchmark the *full* cost of an open+close span cycle with
//!   profiling off, multiply by the spans one fused run creates, and
//!   require that ceiling to stay under 3% of the fused wall time.
//! * **on-state delta** — median fused time with the profiler live
//!   (hooks + sampler at the default interval) vs off, reported for
//!   trend-watching, never gated (it is inherently noisier and the
//!   profiler is opt-in).
//!
//! Run: `cargo run -p ute-bench --release --bin profile_overhead [-- --smoke] [-- --check]`
//!
//! * `--smoke` — smaller workload and fewer repetitions (CI).
//! * `--check` — exit non-zero if the off-state ceiling reaches 3%.

use std::time::Instant;

use ute_cluster::Simulator;
use ute_convert::ConvertOptions;
use ute_format::profile::Profile;
use ute_merge::MergeOptions;
use ute_pipeline::{convert_and_merge, default_jobs};
use ute_workloads::micro;

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let check = argv.iter().any(|a| a == "--check");

    let (nodes, steps, bytes, reps) = if smoke {
        (6u32, 256u32, 8u64 << 10, 5u32)
    } else {
        (8, 384, 16 << 10, 9)
    };
    let w = micro::stencil(nodes, steps, bytes);
    let result = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
    let profile = Profile::standard();
    let copts = ConvertOptions::default();
    let mopts = MergeOptions::default();
    let jobs = default_jobs().max(2);

    let fused = || {
        let t = Instant::now();
        convert_and_merge(
            &result.raw_files,
            &result.threads,
            &profile,
            &copts,
            &mopts,
            jobs,
        )
        .unwrap();
        t.elapsed().as_nanos() as u64
    };

    // Count the spans one fused run opens (the off-state hook runs once
    // per open and once per close of each of these).
    ute_obs::span::set_capture(true);
    ute_obs::span::drain_spans();
    fused();
    let spans_per_run = ute_obs::span::drain_spans().len() as u64;
    ute_obs::span::set_capture(false);

    // Interleaved A/B: off, on, off, on, ... so clock drift and cache
    // state hit both arms equally.
    let (mut off, mut on) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        ute_obs::set_profiling(false);
        off.push(fused());
        ute_obs::set_profiling(true);
        ute_profile::start(std::time::Duration::from_micros(
            ute_profile::DEFAULT_INTERVAL_US,
        ));
        on.push(fused());
        ute_profile::stop();
        ute_obs::set_profiling(false);
    }
    let off_ns = median(off);
    let on_ns = median(on);

    // Upper bound on the compiled-in-but-off cost: the full open+close
    // cycle (allocation, clock reads, log append — all of which a
    // hook-free build would pay too) times the spans per run. The real
    // off-state addition is one relaxed load per boundary, far below
    // this ceiling — so a pass here is conservative.
    let cycles = 200_000u64;
    ute_obs::set_profiling(false);
    let t = Instant::now();
    for _ in 0..cycles {
        let _s = ute_obs::Span::enter("bench-profile-overhead", "unit");
    }
    let span_cycle_ns = t.elapsed().as_nanos() as u64 / cycles;

    let ceiling_ns = spans_per_run * span_cycle_ns;
    let ceiling_pct = ceiling_ns as f64 / off_ns as f64 * 100.0;
    let on_delta_pct = (on_ns as f64 - off_ns as f64) / off_ns as f64 * 100.0;

    println!(
        "# profiling overhead, fused convert+merge (stencil, {nodes} nodes, median of {reps})\n"
    );
    println!("profiling off:        {:>10.3} ms", off_ns as f64 / 1e6);
    println!(
        "profiling on:         {:>10.3} ms  ({on_delta_pct:+.1}% vs off, report-only)",
        on_ns as f64 / 1e6
    );
    println!(
        "off-state ceiling:    {spans_per_run} span(s)/run x {span_cycle_ns} ns full cycle \
         = {:.3} ms ({ceiling_pct:.2}% of fused time)",
        ceiling_ns as f64 / 1e6
    );

    if check && ceiling_pct >= 3.0 {
        eprintln!(
            "FAIL: off-state span ceiling {ceiling_pct:.2}% >= 3% of fused time \
             ({ceiling_ns} ns over {off_ns} ns)"
        );
        std::process::exit(1);
    }
    println!("\noff-state overhead gate (<3%): ok");
}
