//! Figure 7: "Jumpshot visualization with preview for the FLASH code" —
//! the whole-run preview window, then a frame display at a user-selected
//! instant, located through the time-keyed frame index.
//!
//! Paper shape to reproduce: the preview makes the initialization /
//! iteration / termination phases visible; selecting a time in the middle
//! displays that frame, with pseudo-interval records completing the
//! picture; and the frame lookup touches no data outside the frame.
//!
//! Run: `cargo run -p ute-bench --bin fig7_preview`

use ute_bench::run_pipeline;
use ute_slog::builder::BuildOptions;
use ute_view::model::{frame_view, ViewConfig};
use ute_view::preview::{interesting_ranges, render_ascii, render_svg};
use ute_workloads::flash::{workload, FlashParams};

fn main() {
    let run = run_pipeline(
        workload(FlashParams::default()),
        BuildOptions {
            nframes: 48,
            preview_bins: 96,
            arrows: true,
        },
    )
    .unwrap();

    println!("# Figure 7 — whole-run preview\n");
    print!("{}", render_ascii(&run.slog.preview, 8));

    let ranges = interesting_ranges(&run.slog.preview, 0.2);
    println!("\ninteresting ranges (the phases the caption points at):");
    for (a, b) in &ranges {
        println!("  {a:.3}s – {b:.3}s");
    }
    assert!(ranges.len() >= 3, "expected ≥3 busy phases, got {ranges:?}");

    // "The user has selected a time instant in this middle section which
    // causes the display of the data in the frame containing this
    // instant."
    let pick = (ranges[1].0 + ranges[1].1) / 2.0;
    let t = (pick * 1e9) as u64;
    let frame = run.slog.frame_at(t).expect("frame index finds the instant");
    println!(
        "\nselected t = {pick:.3}s -> frame [{:.3}s, {:.3}s) with {} records ({} pseudo)",
        frame.t_start as f64 / 1e9,
        frame.t_end as f64 / 1e9,
        frame.records.len(),
        frame.pseudo_count(),
    );
    let view = frame_view(&run.slog, t, &ViewConfig::default()).unwrap();
    print!("{}", ute_view::ascii::render(&view, 100));

    let out = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out).unwrap();
    std::fs::write(
        out.join("fig7_preview.svg"),
        render_svg(&run.slog.preview, 700, 120),
    )
    .unwrap();
    std::fs::write(
        out.join("fig7_frame.svg"),
        ute_view::svg::render(&view, &ute_view::svg::SvgOptions::default()),
    )
    .unwrap();
    println!("\nwrote target/figures/fig7_preview.svg and fig7_frame.svg");
    println!("# OK: preview -> frame index -> self-contained frame display");
}
