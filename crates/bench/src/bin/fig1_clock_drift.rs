//! Figure 1: "Accumulated timestamp discrepancies among 4 local clocks"
//! over ~140 seconds, against a chosen reference clock.
//!
//! Paper shape to reproduce: every non-reference curve grows roughly
//! linearly with elapsed time (slope = relative crystal frequency error),
//! "regardless of the reference clock".
//!
//! Run: `cargo run -p ute-bench --bin fig1_clock_drift`

use ute_clock::discrepancy::{discrepancy_series, figure1_default_params};
use ute_core::time::Duration;

fn main() {
    for reference in [0usize, 2] {
        println!("# Figure 1 — accumulated discrepancy, reference clock {reference}");
        println!("# elapsed(s)\tclock0(us)\tclock1(us)\tclock2(us)\tclock3(us)");
        let rows = discrepancy_series(
            &figure1_default_params(),
            reference,
            Duration::from_secs(140),
            Duration::from_secs(5),
        );
        for r in &rows {
            print!("{:.1}", r.reference_elapsed as f64 / 1e9);
            for d in &r.deviation {
                print!("\t{:.1}", *d as f64 / 1e3);
            }
            println!();
        }
        // Shape check: non-reference curves grow with elapsed time.
        let first = &rows[2];
        let last = rows.last().unwrap();
        for clock in 0..4 {
            if clock == reference {
                continue;
            }
            assert!(
                last.deviation[clock].abs() > first.deviation[clock].abs(),
                "clock {clock} discrepancy did not accumulate"
            );
        }
        println!("# OK: discrepancies accumulate with elapsed time\n");
    }
}
