//! Figure 2: "Trace generation and processing in the unified tracing
//! approach" — the control flow from compiled program to visualization.
//!
//! This harness drives every stage of the figure and prints the artifact
//! produced at each arrow: raw trace files (one per node), per-node
//! interval files, the merged interval file, the statistics tables, the
//! SLOG file, and a rendered view.
//!
//! Run: `cargo run -p ute-bench --bin fig2_pipeline`

use ute_bench::{merged_intervals, run_pipeline, total_raw_events};
use ute_slog::builder::BuildOptions;
use ute_stats::predefined::predefined_tables;
use ute_stats::run_tables;
use ute_view::model::{build_view, ViewConfig};
use ute_workloads::flash::{workload, FlashParams};

fn main() {
    println!("# Figure 2 — the pipeline, stage by stage\n");
    println!("[source code] -> compile/link -> [program] -> execute ...");
    let run = run_pipeline(workload(FlashParams::default()), BuildOptions::default()).unwrap();

    println!("\n-> raw trace files (one per node):");
    for f in &run.sim.raw_files {
        println!(
            "   trace.{}.raw: {} records, local timestamps",
            f.node,
            f.events.len()
        );
    }
    println!("   total {} raw events", total_raw_events(&run));

    println!("\n-> convert (event matching, marker unification):");
    for c in &run.converted {
        println!(
            "   trace.{}.ivl: {} events in -> {} interval records, {} bytes",
            c.node,
            c.stats.events_in,
            c.stats.intervals_out,
            c.interval_file.len()
        );
    }

    println!("\n-> merge (clock alignment + balanced-tree merge):");
    println!(
        "   merged.ivl: {} records ({} frame-head pseudo continuations)",
        run.merged.stats.records_out, run.merged.stats.pseudo_added
    );
    for fit in &run.merged.stats.fits {
        println!(
            "   node {} clock: R = {:.9} ({} samples)",
            fit.node,
            fit.fit.ratio(),
            fit.samples_used
        );
    }

    println!("\n-> statistics generation:");
    let intervals = merged_intervals(&run).unwrap();
    let tables = run_tables(&predefined_tables(), &run.profile, &intervals).unwrap();
    for t in &tables {
        println!("   table `{}`: {} rows", t.name, t.rows.len());
    }

    println!("\n-> SLOG format conversion:");
    println!(
        "   run.slog: {} frames, {} records, preview of {} bins",
        run.slog.frames.len(),
        run.slog.total_records(),
        run.slog.preview.nbins
    );

    println!("\n-> visualization:");
    let view = build_view(&run.slog, &ViewConfig::default()).unwrap();
    println!(
        "   thread-activity view: {} timelines, {} bars, {} arrows",
        view.rows.len(),
        view.bars.len(),
        view.arrows.len()
    );
    let (sim, conv, merge, slog) = run.timings;
    println!(
        "\nstage timings: simulate {sim:.3}s, convert {conv:.3}s, merge {merge:.3}s, slogmerge {slog:.3}s"
    );
    println!("\n# OK: every Figure 2 stage produced its artifact");
}
