//! Ablation: tracing overhead (§2.1).
//!
//! "Tracing overhead should be as small as possible." The paper prices a
//! record cut at a small fraction of a microsecond (parts 1+2) plus a
//! wrapper part, and offers the enable mask and delayed start as knobs to
//! shed data. This harness runs the same workload under different trace
//! configurations and reports records cut, modelled overhead, and the
//! perturbation of the simulated run time.
//!
//! Run: `cargo run -p ute-bench --bin ablation_overhead`

use ute_cluster::Simulator;
use ute_core::event::EventClass;
use ute_core::time::LocalTime;
use ute_rawtrace::buffer::TraceOptions;
use ute_rawtrace::cost::CostModel;
use ute_workloads::scaling::scaled_job;

fn run(label: &str, trace: TraceOptions) -> (u64, f64, f64) {
    let mut w = scaled_job(512);
    w.config.trace = trace;
    let res = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
    let events: u64 = res.raw_files.iter().map(|f| f.events.len() as u64).sum();
    let overhead = res.stats.trace_overhead.as_secs_f64();
    let end = res.stats.end_time.as_secs_f64();
    println!(
        "{label:<34} {events:>10} records  {:>9.1} us overhead  {end:>9.6} s runtime",
        overhead * 1e6
    );
    (events, overhead, end)
}

fn main() {
    println!("# Ablation — tracing overhead on the 4x4 test program (512 iterations)\n");
    let (full_ev, full_oh, full_end) = run("everything on (default)", TraceOptions::default());
    let (mpi_ev, mpi_oh, _) = run(
        "MPI + clock only (enable mask)",
        TraceOptions::default().with_classes(&[EventClass::Mpi, EventClass::Clock]),
    );
    let (free_ev, free_oh, free_end) = run(
        "everything on, zero-cost model",
        TraceOptions {
            cost: CostModel::free(),
            ..TraceOptions::default()
        },
    );
    let cutoff = LocalTime((full_end * 0.5 * 1e9) as u64);
    let (late_ev, _, _) = run(
        "delayed start (trace last half)",
        TraceOptions {
            start_after: Some(cutoff),
            ..TraceOptions::default()
        },
    );

    println!();
    // Enable mask sheds dispatch/system records — a large fraction.
    assert!(
        mpi_ev < full_ev * 2 / 3,
        "mask should shed records: {mpi_ev} vs {full_ev}"
    );
    assert!(mpi_oh < full_oh);
    // Delayed start sheds roughly half.
    assert!(
        late_ev < full_ev * 3 / 4,
        "delayed start should shed records: {late_ev} vs {full_ev}"
    );
    // Zero-cost tracing still cuts every record but charges nothing to
    // the overhead ledger.
    assert_eq!(free_ev, full_ev);
    assert_eq!(free_oh, 0.0);
    assert!(free_end <= full_end);
    let per_record = full_oh / full_ev as f64;
    println!(
        "# modelled cost per record: {:.0} ns (paper: 'a small fraction of one microsecond')",
        per_record * 1e9
    );
    assert!(per_record < 1e-6);
    println!("# OK: enable mask and delayed start shed data; overhead scales with records cut");
}
