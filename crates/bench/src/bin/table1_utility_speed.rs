//! Table 1: "Utility speed" — seconds per event for the convert and
//! slogmerge utilities across raw-event counts from ~40 K to ~11 M.
//!
//! Paper shape to reproduce: "the average speeds of the utilities remain
//! roughly unchanged while the number of raw events increases" — i.e. the
//! per-event cost is flat (the utilities are linear in trace size), and
//! slogmerge costs a small constant factor more than convert.
//!
//! Absolute numbers will differ from the paper's 2000-era PowerPC; the
//! claim under test is the *flatness*.
//!
//! Run: `cargo run -p ute-bench --bin table1_utility_speed --release`
//! (pass `--quick` to run only the first four sizes)

use std::time::Instant;

use ute_cluster::Simulator;
use ute_convert::convert_job;
use ute_format::file::FramePolicy;
use ute_format::profile::Profile;
use ute_merge::{slogmerge, MergeOptions};
use ute_slog::builder::BuildOptions;
use ute_workloads::scaling::{iterations_for_events, scaled_job, TABLE1_EVENT_COUNTS};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[u64] = if quick {
        &TABLE1_EVENT_COUNTS[..4]
    } else {
        &TABLE1_EVENT_COUNTS
    };
    let profile = Profile::standard();

    let mut raw_counts = Vec::new();
    let mut convert_costs = Vec::new();
    let mut slogmerge_costs = Vec::new();

    for &target in sizes {
        let w = scaled_job(iterations_for_events(target));
        let sim = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
        let raw_events: u64 = sim.raw_files.iter().map(|f| f.events.len() as u64).sum();

        // convert: time per raw event.
        let t0 = Instant::now();
        let converted = convert_job(
            &sim.raw_files,
            &sim.threads,
            &profile,
            FramePolicy::default(),
            false,
        )
        .unwrap();
        let convert_s = t0.elapsed().as_secs_f64();

        // slogmerge (merge + SLOG conversion): time per raw event, as in
        // the paper ("the slogmerge utility also converts the file format
        // to SLOG").
        let refs: Vec<&[u8]> = converted
            .iter()
            .map(|c| c.interval_file.as_slice())
            .collect();
        let t0 = Instant::now();
        let (_slog, _stats) = slogmerge(
            &refs,
            &profile,
            &MergeOptions::default(),
            BuildOptions::default(),
        )
        .unwrap();
        let slogmerge_s = t0.elapsed().as_secs_f64();

        raw_counts.push(raw_events);
        convert_costs.push(convert_s / raw_events as f64);
        slogmerge_costs.push(slogmerge_s / raw_events as f64);
    }

    println!("# Table 1 — utility speed (sec/event)\n");
    print!("{:<24}", "# raw events");
    for n in &raw_counts {
        print!("{n:>14}");
    }
    println!();
    print!("{:<24}", "sec/event in convert");
    for c in &convert_costs {
        print!("{c:>14.9}");
    }
    println!();
    print!("{:<24}", "sec/event in slogmerge");
    for c in &slogmerge_costs {
        print!("{c:>14.9}");
    }
    println!();

    // Shape checks: per-event cost roughly flat (within 3x across ≥100x
    // event-count growth), slogmerge ≥ convert per event on the largest
    // size (it does strictly more work).
    let flatness = |costs: &[f64]| -> f64 {
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = costs.iter().cloned().fold(0.0, f64::max);
        max / min
    };
    let cf = flatness(&convert_costs);
    let sf = flatness(&slogmerge_costs);
    println!("\n# convert per-event cost spread: {cf:.2}x (paper: ~1.1x)");
    println!("# slogmerge per-event cost spread: {sf:.2}x (paper: ~1.4x)");
    assert!(cf < 4.0, "convert cost is not flat: {convert_costs:?}");
    assert!(sf < 4.0, "slogmerge cost is not flat: {slogmerge_costs:?}");
    println!("# OK: per-event cost stays roughly constant as traces grow");
}
