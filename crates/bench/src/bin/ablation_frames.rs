//! Ablation: frame-based random access (§2.3.3, §4).
//!
//! The format's claim: "utilities and tools can jump into a specific
//! frame without reading or processing any record ahead of the frame",
//! giving display time "independent from the size of the SLOG file".
//!
//! This harness grows a trace ~16x and measures (a) time-indexed frame
//! lookup + single-frame decode against (b) the strawman that scans the
//! file from the start to the same point, plus (c) the effect of frame
//! size on lookup cost.
//!
//! Run: `cargo run -p ute-bench --bin ablation_frames --release`

use std::time::Instant;

use ute_core::ids::{CpuId, LogicalThreadId, NodeId};
use ute_format::file::{FramePolicy, IntervalFileReader, IntervalFileWriter};
use ute_format::profile::{Profile, MASK_PER_NODE};
use ute_format::record::{Interval, IntervalType};
use ute_format::state::StateCode;
use ute_format::thread_table::ThreadTable;

fn build_file(profile: &Profile, n: u64, policy: FramePolicy) -> Vec<u8> {
    let mut w =
        IntervalFileWriter::new(profile, MASK_PER_NODE, 0, &ThreadTable::new(), &[], policy);
    for i in 0..n {
        let iv = Interval::basic(
            IntervalType::complete(StateCode::RUNNING),
            i * 1_000,
            900,
            CpuId(0),
            NodeId(0),
            LogicalThreadId(0),
        );
        w.push(&iv).unwrap();
    }
    w.finish()
}

fn timed<R>(f: impl Fn() -> R, reps: u32) -> (R, f64) {
    let t0 = Instant::now();
    let mut out = None;
    for _ in 0..reps {
        out = Some(f());
    }
    (out.unwrap(), t0.elapsed().as_secs_f64() / reps as f64)
}

fn main() {
    let profile = Profile::standard();
    println!("# Ablation — frame-indexed access vs sequential scan\n");
    println!(
        "{:>10} {:>14} {:>16} {:>10}",
        "records", "frame-seek (us)", "seq-scan (us)", "speedup"
    );
    let mut seeks = Vec::new();
    for n in [20_000u64, 80_000, 320_000] {
        let bytes = build_file(&profile, n, FramePolicy::default());
        let reader = IntervalFileReader::open(&bytes, &profile).unwrap();
        let target = n * 1_000 * 9 / 10; // 90% into the run
                                         // (a) frame-indexed access: walk directory chain, decode 1 frame.
        let (_, seek_s) = timed(
            || {
                let e = reader.find_frame(target).unwrap().unwrap();
                reader.frame_intervals(&e).unwrap().len()
            },
            20,
        );
        // (b) strawman: decode records from the start until the target.
        let (_, scan_s) = timed(
            || {
                let mut count = 0usize;
                for iv in reader.intervals() {
                    let iv = iv.unwrap();
                    count += 1;
                    if iv.end() >= target {
                        break;
                    }
                }
                count
            },
            5,
        );
        println!(
            "{n:>10} {:>14.1} {:>16.1} {:>9.0}x",
            seek_s * 1e6,
            scan_s * 1e6,
            scan_s / seek_s
        );
        seeks.push(seek_s);
    }
    // Scalability claim: frame seek grows far slower than the file (the
    // directory walk is linear in directories, not records; decode is one
    // frame regardless).
    let growth = seeks.last().unwrap() / seeks[0];
    println!("\n# frame-seek growth across 16x more records: {growth:.2}x");
    assert!(
        growth < 8.0,
        "frame access should not scale with file size: {seeks:?}"
    );

    println!("\n# frame size vs single-frame display cost (320k records)");
    println!(
        "{:>18} {:>14} {:>16}",
        "records/frame", "seek+decode (us)", "frame records"
    );
    for per_frame in [256usize, 1024, 4096, 16384] {
        let bytes = build_file(
            &profile,
            320_000,
            FramePolicy {
                max_records_per_frame: per_frame,
                max_frames_per_dir: 64,
            },
        );
        let reader = IntervalFileReader::open(&bytes, &profile).unwrap();
        let ((), cost) = timed(
            || {
                let e = reader.find_frame(200_000_000).unwrap().unwrap();
                reader.frame_intervals(&e).unwrap();
            },
            10,
        );
        let e = reader.find_frame(200_000_000).unwrap().unwrap();
        println!("{per_frame:>18} {:>14.1} {:>16}", cost * 1e6, e.nrecords);
    }
    println!("\n# OK: the frame index makes display cost a function of frame size, not file size");
}
