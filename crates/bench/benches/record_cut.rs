//! §2.1's cost claim: "the average cost of cutting a trace record is
//! fairly small (a small fraction of one micro second) for the first two
//! parts". This bench measures the *actual implementation* cost of the
//! buffer insertion path (enable test + encode + insert) per record.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ute_core::event::EventCode;
use ute_core::time::LocalTime;
use ute_rawtrace::buffer::{TraceBuffer, TraceOptions};
use ute_rawtrace::record::{DispatchPayload, RawEvent};

fn bench_cut(c: &mut Criterion) {
    let mut group = c.benchmark_group("record_cut");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.throughput(Throughput::Elements(1));
    let payload = DispatchPayload {
        thread: ute_core::ids::LogicalThreadId(3),
        cpu: ute_core::ids::CpuId(1),
    }
    .to_bytes();

    group.bench_function("cut_enabled", |b| {
        let mut buf = TraceBuffer::new(TraceOptions {
            buffer_size: 1 << 24,
            ..TraceOptions::default()
        });
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let ev = RawEvent::new(EventCode::ThreadDispatch, LocalTime(t), payload.clone());
            buf.cut(&ev, false).unwrap()
        })
    });

    group.bench_function("cut_disabled_class", |b| {
        let mut buf = TraceBuffer::new(
            TraceOptions::default().with_classes(&[ute_core::event::EventClass::Mpi]),
        );
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let ev = RawEvent::new(EventCode::Syscall, LocalTime(t), payload.clone());
            buf.cut(&ev, false).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cut);
criterion_main!(benches);
