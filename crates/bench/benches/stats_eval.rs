//! Bench for the §3.2 statistics engine: parsing the table language and
//! evaluating tables over interval streams of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ute_core::ids::{CpuId, LogicalThreadId, NodeId};
use ute_format::profile::Profile;
use ute_format::record::{Interval, IntervalType};
use ute_format::state::StateCode;
use ute_stats::{parse_program, run_tables};

fn stream(n: u64) -> Vec<Interval> {
    (0..n)
        .map(|i| {
            let state = if i % 3 == 0 {
                StateCode::RUNNING
            } else {
                StateCode::SYSCALL
            };
            Interval::basic(
                IntervalType::complete(state),
                i * 1_000,
                500,
                CpuId((i % 4) as u16),
                NodeId((i % 8) as u16),
                LogicalThreadId(0),
            )
        })
        .collect()
}

const PROGRAM: &str = r#"
table name=fig6 condition=(interesting)
      x=("node", node) x=("bin", bin(start, 50))
      y=("sum", dura, sum)
"#;

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats_engine");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("parse_program", |b| {
        b.iter(|| parse_program(PROGRAM).unwrap())
    });
    let profile = Profile::standard();
    let specs = parse_program(PROGRAM).unwrap();
    for n in [10_000u64, 100_000] {
        let ivs = stream(n);
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("run_tables", n), &ivs, |b, ivs| {
            b.iter(|| run_tables(&specs, &profile, ivs).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stats);
criterion_main!(benches);
