//! §1.2's motivation bench: intervals are "visualization-friendly". A
//! viewer rendering a window from *interval* records reads records whose
//! spans it draws directly; from raw *event* records it must pair begins
//! with ends first. This bench compares building a window's worth of
//! drawable spans from each representation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ute_core::event::{EventCode, MpiOp};
use ute_core::time::LocalTime;
use ute_rawtrace::record::{MpiPayload, RawEvent};

/// Raw event stream: n alternating begin/end pairs.
fn events(n: u64) -> Vec<RawEvent> {
    let mut out = Vec::with_capacity(2 * n as usize);
    let payload = MpiPayload::bare(ute_core::ids::LogicalThreadId(0), 0);
    for i in 0..n {
        out.push(RawEvent::new(
            EventCode::MpiBegin(MpiOp::Send),
            LocalTime(i * 1_000),
            payload.to_bytes(),
        ));
        out.push(RawEvent::new(
            EventCode::MpiEnd(MpiOp::Send),
            LocalTime(i * 1_000 + 700),
            payload.to_bytes(),
        ));
    }
    out
}

/// Interval stream: the same activity as (start, duration) pairs.
fn intervals(n: u64) -> Vec<(u64, u64)> {
    (0..n).map(|i| (i * 1_000, 700)).collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_vs_event_window");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for n in [10_000u64, 100_000] {
        group.throughput(Throughput::Elements(n));
        let evs = events(n);
        let ivs = intervals(n);
        let w0 = n * 1_000 / 4;
        let w1 = n * 1_000 / 2;
        group.bench_with_input(BenchmarkId::new("from_events", n), &evs, |b, evs| {
            b.iter(|| {
                // Pair begins with ends, then clip to the window.
                let mut open: Option<u64> = None;
                let mut spans = 0usize;
                for e in evs {
                    match e.code {
                        EventCode::MpiBegin(_) => open = Some(e.timestamp.ticks()),
                        EventCode::MpiEnd(_) => {
                            if let Some(s) = open.take() {
                                let t = e.timestamp.ticks();
                                if s < w1 && t > w0 {
                                    spans += 1;
                                }
                            }
                        }
                        _ => {}
                    }
                }
                spans
            })
        });
        group.bench_with_input(BenchmarkId::new("from_intervals", n), &ivs, |b, ivs| {
            b.iter(|| {
                // Intervals draw directly.
                ivs.iter().filter(|(s, d)| *s < w1 && s + d > w0).count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
