//! Ablation bench: cost of the §2.2 ratio estimators as the number of
//! global-clock records grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ute_clock::filter::filter_outliers_default;
use ute_clock::ratio::{last_pair, rms_all_slopes, rms_segments, PiecewiseFit};
use ute_clock::sample::ClockSample;
use ute_core::time::{LocalTime, Time};

fn samples(n: u64) -> Vec<ClockSample> {
    (0..n)
        .map(|i| {
            let g = i * 1_000_000_000;
            let l = (g as f64 * (1.0 + 25e-6)) as u64 + 123;
            ClockSample::new(Time(g), LocalTime(l))
        })
        .collect()
}

fn bench_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("clock_ratio");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for n in [100u64, 1_000, 10_000] {
        let s = samples(n);
        group.bench_with_input(BenchmarkId::new("rms_segments", n), &s, |b, s| {
            b.iter(|| rms_segments(s))
        });
        group.bench_with_input(BenchmarkId::new("rms_all_slopes", n), &s, |b, s| {
            b.iter(|| rms_all_slopes(s))
        });
        group.bench_with_input(BenchmarkId::new("last_pair", n), &s, |b, s| {
            b.iter(|| last_pair(s))
        });
        group.bench_with_input(BenchmarkId::new("piecewise_fit", n), &s, |b, s| {
            b.iter(|| PiecewiseFit::fit(s).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("outlier_filter", n), &s, |b, s| {
            b.iter(|| filter_outliers_default(s))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
