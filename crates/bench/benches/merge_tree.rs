//! Ablation bench: the paper's balanced-tree k-way merge vs a naive
//! rescan of all stream heads, as the number of input files grows (§3.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ute_merge::kway::{BalancedTreeMerge, NaiveMerge, VecSource};

fn streams(k: usize, per_stream: usize) -> Vec<VecSource> {
    let mut state = 0x2468_ace0u64;
    let mut xorshift = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..k)
        .map(|_| {
            let mut v: Vec<(u64, u64)> = (0..per_stream)
                .map(|_| (xorshift() % 10_000_000, 0))
                .collect();
            v.sort_unstable();
            VecSource::new(v)
        })
        .collect()
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("kway_merge");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let per_stream = 10_000;
    for k in [4usize, 16, 64] {
        group.throughput(Throughput::Elements((k * per_stream) as u64));
        group.bench_with_input(BenchmarkId::new("balanced_tree", k), &k, |b, &k| {
            b.iter_batched(
                || streams(k, per_stream),
                |s| BalancedTreeMerge::new(s).count(),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("naive_rescan", k), &k, |b, &k| {
            b.iter_batched(
                || streams(k, per_stream),
                |s| NaiveMerge::new(s).count(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
