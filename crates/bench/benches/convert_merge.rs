//! Criterion form of Table 1: convert and slogmerge throughput
//! (events/second ≈ 1 / sec-per-event) at several trace sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ute_cluster::Simulator;
use ute_convert::convert_job;
use ute_format::file::FramePolicy;
use ute_format::profile::Profile;
use ute_merge::{slogmerge, MergeOptions};
use ute_slog::builder::BuildOptions;
use ute_workloads::scaling::scaled_job;

fn bench_utilities(c: &mut Criterion) {
    let profile = Profile::standard();
    let mut group = c.benchmark_group("table1_utilities");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for iterations in [256u32, 1024, 4096] {
        let w = scaled_job(iterations);
        let sim = Simulator::new(w.config, &w.job).unwrap().run().unwrap();
        let raw_events: u64 = sim.raw_files.iter().map(|f| f.events.len() as u64).sum();
        group.throughput(Throughput::Elements(raw_events));
        group.bench_with_input(BenchmarkId::new("convert", raw_events), &sim, |b, sim| {
            b.iter(|| {
                convert_job(
                    &sim.raw_files,
                    &sim.threads,
                    &profile,
                    FramePolicy::default(),
                    false,
                )
                .unwrap()
            })
        });
        let converted = convert_job(
            &sim.raw_files,
            &sim.threads,
            &profile,
            FramePolicy::default(),
            false,
        )
        .unwrap();
        let refs: Vec<&[u8]> = converted
            .iter()
            .map(|c| c.interval_file.as_slice())
            .collect();
        group.bench_with_input(
            BenchmarkId::new("slogmerge", raw_events),
            &refs,
            |b, refs| {
                b.iter(|| {
                    slogmerge(
                        refs,
                        &profile,
                        &MergeOptions::default(),
                        BuildOptions::default(),
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_utilities);
criterion_main!(benches);
