//! Ablation bench: frame-indexed random access vs sequential scan in
//! interval files of growing size (§2.3.3 / §4 scalability claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ute_core::ids::{CpuId, LogicalThreadId, NodeId};
use ute_format::file::{FramePolicy, IntervalFileReader, IntervalFileWriter};
use ute_format::profile::{Profile, MASK_PER_NODE};
use ute_format::record::{Interval, IntervalType};
use ute_format::state::StateCode;
use ute_format::thread_table::ThreadTable;

fn build_file(profile: &Profile, n: u64) -> Vec<u8> {
    let mut w = IntervalFileWriter::new(
        profile,
        MASK_PER_NODE,
        0,
        &ThreadTable::new(),
        &[],
        FramePolicy::default(),
    );
    for i in 0..n {
        w.push(&Interval::basic(
            IntervalType::complete(StateCode::RUNNING),
            i * 1_000,
            900,
            CpuId(0),
            NodeId(0),
            LogicalThreadId(0),
        ))
        .unwrap();
    }
    w.finish()
}

fn bench_access(c: &mut Criterion) {
    let profile = Profile::standard();
    let mut group = c.benchmark_group("frame_access");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(20);
    for n in [10_000u64, 40_000, 160_000] {
        let bytes = build_file(&profile, n);
        let target = n * 1_000 * 9 / 10;
        group.bench_with_input(BenchmarkId::new("frame_seek", n), &bytes, |b, bytes| {
            let reader = IntervalFileReader::open(bytes, &profile).unwrap();
            b.iter(|| {
                let e = reader.find_frame(target).unwrap().unwrap();
                reader.frame_intervals(&e).unwrap().len()
            })
        });
        group.bench_with_input(BenchmarkId::new("seq_scan", n), &bytes, |b, bytes| {
            let reader = IntervalFileReader::open(bytes, &profile).unwrap();
            b.iter(|| {
                let mut count = 0usize;
                for iv in reader.intervals() {
                    if iv.unwrap().end() >= target {
                        break;
                    }
                    count += 1;
                }
                count
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_access);
criterion_main!(benches);
