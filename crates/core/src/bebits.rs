//! Interval begin/end bits ("bebits", §2.3.1).
//!
//! An interval record has four variants (§1.2): in the simple case an MPI
//! call executed without interruption produces one **complete** interval.
//! If execution was not continuous (the thread was descheduled, or a nested
//! state started) the call is represented by several *interval pieces*: the
//! first has type **begin**, the last **end**, and any in between are
//! **continuation** pieces. The two bits are a begin-bit and an end-bit:
//! a piece that both starts and finishes the state is complete (`11`), one
//! that only starts it is begin (`10`), only finishes it is end (`01`), and
//! an interior piece is continuation (`00`).

/// The four interval-piece variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BeBits {
    /// Interior piece of a split state: neither first nor last.
    Continuation,
    /// Final piece of a split state.
    End,
    /// First piece of a split state.
    Begin,
    /// The whole state in one uninterrupted piece.
    Complete,
}

impl BeBits {
    /// Two-bit encoding: begin-bit in bit 1, end-bit in bit 0.
    pub fn to_bits(self) -> u8 {
        match self {
            BeBits::Continuation => 0b00,
            BeBits::End => 0b01,
            BeBits::Begin => 0b10,
            BeBits::Complete => 0b11,
        }
    }

    /// Decodes the two-bit encoding (higher bits must be clear).
    pub fn from_bits(bits: u8) -> Option<BeBits> {
        match bits {
            0b00 => Some(BeBits::Continuation),
            0b01 => Some(BeBits::End),
            0b10 => Some(BeBits::Begin),
            0b11 => Some(BeBits::Complete),
            _ => None,
        }
    }

    /// Builds the variant from the two flags directly.
    pub fn from_flags(is_first: bool, is_last: bool) -> BeBits {
        match (is_first, is_last) {
            (true, true) => BeBits::Complete,
            (true, false) => BeBits::Begin,
            (false, true) => BeBits::End,
            (false, false) => BeBits::Continuation,
        }
    }

    /// Whether this piece starts its state.
    pub fn starts_state(self) -> bool {
        matches!(self, BeBits::Begin | BeBits::Complete)
    }

    /// Whether this piece finishes its state.
    pub fn ends_state(self) -> bool {
        matches!(self, BeBits::End | BeBits::Complete)
    }
}

/// Validates that a sequence of pieces reassembles into whole states:
/// every state opens with `Begin` (or is a lone `Complete`), contains only
/// `Continuation` pieces while open, and closes with `End`. Returns the
/// number of whole states, or `None` if the sequence is malformed (e.g.
/// `End` without `Begin`, or the sequence ends with a state still open).
///
/// This is the invariant the paper relies on to "properly count MPI calls
/// and associate call fragments that pertain to the same call" (§1.2).
pub fn count_states(pieces: &[BeBits]) -> Option<usize> {
    let mut open = false;
    let mut states = 0usize;
    for &p in pieces {
        match p {
            BeBits::Complete => {
                if open {
                    return None;
                }
                states += 1;
            }
            BeBits::Begin => {
                if open {
                    return None;
                }
                open = true;
            }
            BeBits::Continuation => {
                if !open {
                    return None;
                }
            }
            BeBits::End => {
                if !open {
                    return None;
                }
                open = false;
                states += 1;
            }
        }
    }
    if open {
        None
    } else {
        Some(states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip() {
        for b in [
            BeBits::Continuation,
            BeBits::End,
            BeBits::Begin,
            BeBits::Complete,
        ] {
            assert_eq!(BeBits::from_bits(b.to_bits()), Some(b));
        }
        assert_eq!(BeBits::from_bits(0b100), None);
    }

    #[test]
    fn flags_match_bits() {
        assert_eq!(BeBits::from_flags(true, true), BeBits::Complete);
        assert_eq!(BeBits::from_flags(true, false), BeBits::Begin);
        assert_eq!(BeBits::from_flags(false, true), BeBits::End);
        assert_eq!(BeBits::from_flags(false, false), BeBits::Continuation);
        assert!(BeBits::Complete.starts_state() && BeBits::Complete.ends_state());
        assert!(BeBits::Begin.starts_state() && !BeBits::Begin.ends_state());
    }

    #[test]
    fn count_states_accepts_well_formed() {
        use BeBits::*;
        assert_eq!(count_states(&[]), Some(0));
        assert_eq!(count_states(&[Complete]), Some(1));
        assert_eq!(count_states(&[Begin, End]), Some(1));
        assert_eq!(
            count_states(&[Begin, Continuation, Continuation, End]),
            Some(1)
        );
        assert_eq!(
            count_states(&[Complete, Begin, End, Complete, Begin, Continuation, End]),
            Some(4)
        );
    }

    #[test]
    fn count_states_rejects_malformed() {
        use BeBits::*;
        assert_eq!(count_states(&[End]), None);
        assert_eq!(count_states(&[Continuation]), None);
        assert_eq!(count_states(&[Begin]), None); // never closed
        assert_eq!(count_states(&[Begin, Complete]), None); // nested complete
        assert_eq!(count_states(&[Begin, Begin]), None);
        assert_eq!(count_states(&[Begin, End, End]), None);
    }
}
