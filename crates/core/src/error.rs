//! The common error type for all UTE crates.

use std::fmt;
use std::io;

/// Convenient result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, UteError>;

/// Errors produced anywhere in the trace pipeline.
#[derive(Debug)]
pub enum UteError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A file did not conform to its format ("what" says which structure,
    /// at which byte offset when known).
    Corrupt {
        /// Which structure failed to parse.
        what: String,
        /// Byte offset of the failure, if known.
        offset: Option<u64>,
    },
    /// The profile version recorded in an interval file does not match the
    /// profile being used to read it (§2.3: "Utilities and programs that
    /// read interval files check that they are using the correct profile").
    VersionMismatch {
        /// Version stored in the profile file.
        profile: u32,
        /// Version stored in the interval file header.
        file: u32,
    },
    /// A field, record, marker, or thread lookup failed.
    NotFound(String),
    /// A statistics-language program failed to parse.
    Parse {
        /// Human-readable description of the syntax error.
        msg: String,
        /// Byte position in the program text.
        pos: usize,
    },
    /// A request was structurally valid but semantically impossible
    /// (e.g. more than 512 threads registered on one node).
    Invalid(String),
    /// An error tied to a specific file on disk. Wraps the underlying
    /// failure so read/write paths can report *which* file was being
    /// touched — an `ENOSPC` or short read without a path is useless in
    /// a pipeline that handles hundreds of per-node files.
    File {
        /// The offending file's path.
        path: String,
        /// The underlying failure.
        source: Box<UteError>,
    },
}

impl UteError {
    /// Shorthand for a corrupt-format error with no offset.
    pub fn corrupt(what: impl Into<String>) -> UteError {
        UteError::Corrupt {
            what: what.into(),
            offset: None,
        }
    }

    /// Shorthand for a corrupt-format error at a known byte offset.
    pub fn corrupt_at(what: impl Into<String>, offset: u64) -> UteError {
        UteError::Corrupt {
            what: what.into(),
            offset: Some(offset),
        }
    }

    /// Attaches a file path to this error. Idempotent: an error already
    /// carrying a path keeps the innermost (most specific) one.
    pub fn in_file(self, path: impl AsRef<std::path::Path>) -> UteError {
        match self {
            e @ UteError::File { .. } => e,
            e => UteError::File {
                path: path.as_ref().display().to_string(),
                source: Box::new(e),
            },
        }
    }
}

/// Extension trait for attaching file-path context to any `Result`.
pub trait PathContext<T> {
    /// Wraps the error side with the offending file's path.
    fn in_file(self, path: impl AsRef<std::path::Path>) -> Result<T>;
}

impl<T, E: Into<UteError>> PathContext<T> for std::result::Result<T, E> {
    fn in_file(self, path: impl AsRef<std::path::Path>) -> Result<T> {
        self.map_err(|e| e.into().in_file(path))
    }
}

impl fmt::Display for UteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UteError::Io(e) => write!(f, "i/o error: {e}"),
            UteError::Corrupt { what, offset } => match offset {
                Some(o) => write!(f, "corrupt {what} at byte {o}"),
                None => write!(f, "corrupt {what}"),
            },
            UteError::VersionMismatch { profile, file } => write!(
                f,
                "profile version mismatch: profile is v{profile}, interval file was written with v{file}"
            ),
            UteError::NotFound(what) => write!(f, "not found: {what}"),
            UteError::Parse { msg, pos } => write!(f, "parse error at {pos}: {msg}"),
            UteError::Invalid(msg) => write!(f, "invalid request: {msg}"),
            UteError::File { path, source } => write!(f, "{path}: {source}"),
        }
    }
}

impl std::error::Error for UteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UteError::Io(e) => Some(e),
            UteError::File { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for UteError {
    fn from(e: io::Error) -> Self {
        UteError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = UteError::corrupt_at("frame directory", 128);
        assert_eq!(e.to_string(), "corrupt frame directory at byte 128");
        let e = UteError::corrupt("hookword");
        assert_eq!(e.to_string(), "corrupt hookword");
        let e = UteError::VersionMismatch {
            profile: 2,
            file: 1,
        };
        assert!(e.to_string().contains("v2"));
        assert!(e.to_string().contains("v1"));
        let e = UteError::Parse {
            msg: "expected ')'".into(),
            pos: 7,
        };
        assert!(e.to_string().contains("at 7"));
    }

    #[test]
    fn file_context_names_the_path_and_stays_innermost() {
        let e = UteError::corrupt("hookword").in_file("/data/trace.3.raw");
        assert_eq!(e.to_string(), "/data/trace.3.raw: corrupt hookword");
        // Re-wrapping keeps the innermost path.
        let e = e.in_file("/data/other");
        assert_eq!(e.to_string(), "/data/trace.3.raw: corrupt hookword");
        // The trait form works straight off an io::Result.
        let r: std::result::Result<(), io::Error> =
            Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        let e = r.in_file("/data/x.ivl").unwrap_err();
        assert!(e.to_string().starts_with("/data/x.ivl: "), "{e}");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn io_conversion_preserves_source() {
        let ioe = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        let e: UteError = ioe.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
