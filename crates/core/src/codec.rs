//! Little-endian byte codec used by all UTE file formats.
//!
//! [`ByteWriter`] appends to a growable buffer and supports back-patching
//! (needed by the interval-file writer, which links frame directories by
//! patching `next` offsets on close). [`ByteReader`] reads from a slice and
//! turns every short read into a [`UteError::Corrupt`] carrying the byte
//! offset, so format errors in damaged trace files are reported precisely.

use bytes::{Buf, BufMut};

use crate::error::{Result, UteError};

/// Clamps a count declared in untrusted input to what the remaining
/// bytes could possibly hold, so corrupt files cannot drive gigantic
/// preallocations. Use for every `Vec::with_capacity` sized from a
/// decoded field.
pub fn clamped_capacity(declared: usize, min_item_size: usize, remaining: usize) -> usize {
    declared.min(remaining / min_item_size.max(1)).min(1 << 20)
}

/// Growable little-endian writer with back-patch support.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// New empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter { buf: Vec::new() }
    }

    /// New writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> ByteWriter {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes — the offset the next write lands at.
    #[inline]
    pub fn pos(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Consumes the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends a single byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a little-endian `u16`.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Appends a little-endian `u32`.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a little-endian `u64`.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends a little-endian `i64`.
    #[inline]
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Appends a little-endian IEEE-754 `f64`.
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Appends raw bytes.
    #[inline]
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a UTF-8 string with a `u16` length prefix.
    pub fn put_str(&mut self, s: &str) {
        debug_assert!(s.len() <= u16::MAX as usize, "string too long for codec");
        self.put_u16(s.len() as u16);
        self.put_bytes(s.as_bytes());
    }

    /// Overwrites 8 bytes at `offset` with a little-endian `u64`.
    /// Panics if the range was never written.
    pub fn patch_u64(&mut self, offset: u64, v: u64) {
        let o = offset as usize;
        self.buf[o..o + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Overwrites 4 bytes at `offset` with a little-endian `u32`.
    pub fn patch_u32(&mut self, offset: u64, v: u32) {
        let o = offset as usize;
        self.buf[o..o + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Discards everything written at or after `pos` (a value previously
    /// returned by [`ByteWriter::pos`]) — lets an encoder roll back a
    /// partially written record on error.
    pub fn truncate(&mut self, pos: u64) {
        self.buf.truncate(pos as usize);
    }
}

/// Slice reader that reports precise offsets on short reads.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    full: &'a [u8],
    rest: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// Reads from the start of `data`.
    pub fn new(data: &'a [u8]) -> ByteReader<'a> {
        ByteReader {
            full: data,
            rest: data,
        }
    }

    /// Current byte offset from the start of the underlying slice.
    #[inline]
    pub fn pos(&self) -> u64 {
        (self.full.len() - self.rest.len()) as u64
    }

    /// Bytes left to read.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// Whether all bytes were consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rest.is_empty()
    }

    fn need(&self, n: usize, what: &str) -> Result<()> {
        if self.rest.remaining() < n {
            Err(UteError::corrupt_at(
                format!("{what}: need {n} bytes, have {}", self.rest.len()),
                self.pos(),
            ))
        } else {
            Ok(())
        }
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        self.need(1, "u8")?;
        Ok(self.rest.get_u8())
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        self.need(2, "u16")?;
        Ok(self.rest.get_u16_le())
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        self.need(4, "u32")?;
        Ok(self.rest.get_u32_le())
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        self.need(8, "u64")?;
        Ok(self.rest.get_u64_le())
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64> {
        self.need(8, "i64")?;
        Ok(self.rest.get_i64_le())
    }

    /// Reads a little-endian `f64`.
    pub fn get_f64(&mut self) -> Result<f64> {
        self.need(8, "f64")?;
        Ok(self.rest.get_f64_le())
    }

    /// Reads exactly `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.need(n, "bytes")?;
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    /// Reads a `u16`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_u16()? as usize;
        let pos = self.pos();
        let bytes = self.get_bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| UteError::corrupt_at("string: invalid utf-8", pos))
    }

    /// Skips `n` bytes.
    pub fn skip(&mut self, n: usize) -> Result<()> {
        self.need(n, "skip")?;
        self.rest = &self.rest[n..];
        Ok(())
    }

    /// Repositions to an absolute offset from the start of the slice.
    pub fn seek(&mut self, offset: u64) -> Result<()> {
        let o = offset as usize;
        if o > self.full.len() {
            return Err(UteError::corrupt_at("seek past end", offset));
        }
        self.rest = &self.full[o..];
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = ByteWriter::new();
        w.put_u8(0xab);
        w.put_u16(0xbeef);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0123_4567_89ab_cdef);
        w.put_i64(-42);
        w.put_f64(2.5);
        w.put_str("hello");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert_eq!(r.get_u16().unwrap(), 0xbeef);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 2.5);
        assert_eq!(r.get_str().unwrap(), "hello");
        assert!(r.is_empty());
    }

    #[test]
    fn short_read_reports_offset() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        r.get_u8().unwrap();
        let err = r.get_u32().unwrap_err();
        match err {
            UteError::Corrupt { offset, .. } => assert_eq!(offset, Some(1)),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn patch_back_fills() {
        let mut w = ByteWriter::new();
        let at = w.pos();
        w.put_u64(0); // placeholder
        w.put_u32(7);
        w.patch_u64(at, 0x55);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u64().unwrap(), 0x55);
        assert_eq!(r.get_u32().unwrap(), 7);
    }

    #[test]
    fn seek_and_skip() {
        let mut w = ByteWriter::new();
        for i in 0..10u8 {
            w.put_u8(i);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.skip(4).unwrap();
        assert_eq!(r.get_u8().unwrap(), 4);
        r.seek(9).unwrap();
        assert_eq!(r.get_u8().unwrap(), 9);
        assert!(r.seek(11).is_err());
        assert!(r.skip(1).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = ByteWriter::new();
        w.put_u16(2);
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_str().is_err());
    }
}
