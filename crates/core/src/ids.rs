//! Entity identifiers for nodes, processors, tasks, and threads.
//!
//! The trace environment identifies every interval record by the SMP node it
//! was produced on, the processor the thread was dispatched to, and a
//! *logical thread id* that is compact (numbered from 0 within each node).
//! The paper bounds logical thread ids to 512 per node; combined with the
//! 16-bit node id this supports "more than 2 million threads in a trace
//! file" (§2.3.2).

use std::fmt;

/// Maximum number of relevant threads per node (paper §2.3.2: "Currently
/// there could be up to 512 relevant threads per node").
pub const MAX_THREADS_PER_NODE: u16 = 512;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $inner:ty) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw numeric value of this id.
            #[inline]
            pub fn raw(self) -> $inner {
                self.0
            }

            /// Returns the id widened to `usize`, for indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type!(
    /// Identifies one SMP node of the cluster.
    NodeId,
    u16
);
id_type!(
    /// Identifies one processor (CPU) within an SMP node.
    CpuId,
    u16
);
id_type!(
    /// Identifies one MPI task (rank) across the whole job.
    TaskId,
    u32
);
id_type!(
    /// Compact per-node thread id, numbered from 0 on each node.
    LogicalThreadId,
    u16
);
id_type!(
    /// Operating-system thread id, unique within a node.
    SystemThreadId,
    u64
);
id_type!(
    /// Operating-system process id.
    Pid,
    u32
);

/// The three thread categories kept in the interval-file thread table
/// (§2.3.3): "MPI threads, user-defined threads, and system threads. This
/// provides a way to choose specific threads for merging."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadType {
    /// A thread that issues MPI calls.
    Mpi,
    /// A user-created worker thread that does not issue MPI calls.
    User,
    /// An operating-system daemon or kernel thread.
    System,
}

impl ThreadType {
    /// Stable on-disk encoding.
    pub fn to_u8(self) -> u8 {
        match self {
            ThreadType::Mpi => 0,
            ThreadType::User => 1,
            ThreadType::System => 2,
        }
    }

    /// Decodes the on-disk byte; rejects unknown values.
    pub fn from_u8(v: u8) -> Option<ThreadType> {
        match v {
            0 => Some(ThreadType::Mpi),
            1 => Some(ThreadType::User),
            2 => Some(ThreadType::System),
            _ => None,
        }
    }
}

impl fmt::Display for ThreadType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ThreadType::Mpi => "mpi",
            ThreadType::User => "user",
            ThreadType::System => "system",
        };
        f.write_str(s)
    }
}

/// A fully-qualified thread address: which node, plus the logical id on
/// that node. This is the key used when matching records across files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalThreadId {
    /// The node the thread lives on.
    pub node: NodeId,
    /// The thread's compact id within the node.
    pub thread: LogicalThreadId,
}

impl fmt::Display for GlobalThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}t{}", self.node, self.thread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_type_round_trip() {
        for t in [ThreadType::Mpi, ThreadType::User, ThreadType::System] {
            assert_eq!(ThreadType::from_u8(t.to_u8()), Some(t));
        }
        assert_eq!(ThreadType::from_u8(3), None);
        assert_eq!(ThreadType::from_u8(255), None);
    }

    #[test]
    fn ids_display_and_index() {
        assert_eq!(NodeId(3).to_string(), "3");
        assert_eq!(CpuId(7).index(), 7);
        assert_eq!(TaskId::from(9u32).raw(), 9);
        let g = GlobalThreadId {
            node: NodeId(1),
            thread: LogicalThreadId(4),
        };
        assert_eq!(g.to_string(), "n1t4");
    }

    #[test]
    fn global_thread_id_orders_by_node_then_thread() {
        let a = GlobalThreadId {
            node: NodeId(0),
            thread: LogicalThreadId(9),
        };
        let b = GlobalThreadId {
            node: NodeId(1),
            thread: LogicalThreadId(0),
        };
        assert!(a < b);
    }

    #[test]
    fn max_threads_constant_matches_paper() {
        assert_eq!(MAX_THREADS_PER_NODE, 512);
    }
}
