//! Simulated time.
//!
//! All timestamps in the framework are integer *ticks*. One tick is one
//! nanosecond of simulated time, so [`TICKS_PER_SEC`] is 10⁹. Two flavours
//! of timestamp exist:
//!
//! * [`Time`] — a timestamp on the **global** (switch-adapter) clock, or on
//!   the simulator's true-time axis. All merged interval files use this.
//! * [`LocalTime`] — a timestamp read from one node's **local** drifting
//!   clock. Raw trace files and per-node interval files use this; the merge
//!   utility converts it to [`Time`] using global-clock records (§2.2).
//!
//! Keeping the two as distinct types makes it a compile error to mix
//! unadjusted local timestamps into merged data.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Ticks per simulated second (nanosecond resolution).
pub const TICKS_PER_SEC: u64 = 1_000_000_000;

/// A span of simulated time, in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Builds a duration from whole microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// Builds a duration from whole milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    #[inline]
    pub fn from_secs(s: u64) -> Duration {
        Duration(s * TICKS_PER_SEC)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// tick. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Duration {
        if s <= 0.0 {
            Duration::ZERO
        } else {
            Duration((s * TICKS_PER_SEC as f64).round() as u64)
        }
    }

    /// This span expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// Raw tick count.
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs_f64())
    }
}

macro_rules! time_type {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// The origin of this time axis.
            pub const ZERO: $name = $name(0);

            /// Raw tick count since the axis origin.
            #[inline]
            pub fn ticks(self) -> u64 {
                self.0
            }

            /// Timestamp expressed in fractional seconds since the origin.
            #[inline]
            pub fn as_secs_f64(self) -> f64 {
                self.0 as f64 / TICKS_PER_SEC as f64
            }

            /// Builds a timestamp from fractional seconds since the origin.
            pub fn from_secs_f64(s: f64) -> $name {
                if s <= 0.0 {
                    $name(0)
                } else {
                    $name((s * TICKS_PER_SEC as f64).round() as u64)
                }
            }

            /// Distance to an earlier timestamp; zero if `earlier` is later.
            #[inline]
            pub fn saturating_since(self, earlier: $name) -> Duration {
                Duration(self.0.saturating_sub(earlier.0))
            }
        }

        impl Add<Duration> for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: Duration) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign<Duration> for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Duration) {
                self.0 += rhs.0;
            }
        }

        impl Sub<Duration> for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: Duration) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign<Duration> for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Duration) {
                self.0 -= rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Duration;
            #[inline]
            fn sub(self, rhs: $name) -> Duration {
                Duration(self.0 - rhs.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.9}", self.as_secs_f64())
            }
        }
    };
}

time_type!(
    /// A timestamp on the global (switch-adapter / true-time) axis.
    Time
);
time_type!(
    /// A timestamp read from one node's local drifting clock. Must be
    /// adjusted against global-clock records before cross-node comparison.
    LocalTime
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_secs(2).ticks(), 2 * TICKS_PER_SEC);
        assert_eq!(Duration::from_millis(3).ticks(), 3_000_000);
        assert_eq!(Duration::from_micros(5).ticks(), 5_000);
        assert_eq!(Duration::from_secs_f64(0.5).ticks(), TICKS_PER_SEC / 2);
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::from_secs_f64(1.0);
        let u = t + Duration::from_secs(2);
        assert_eq!(u.as_secs_f64(), 3.0);
        assert_eq!(u - t, Duration::from_secs(2));
        assert_eq!(t.saturating_since(u), Duration::ZERO);
        assert_eq!(u.saturating_since(t), Duration::from_secs(2));
    }

    #[test]
    fn local_time_is_distinct_axis() {
        // LocalTime and Time are separate types; this test documents that
        // arithmetic stays within one axis.
        let l = LocalTime::from_secs_f64(2.5);
        let l2 = l + Duration::from_millis(500);
        assert_eq!(l2 - l, Duration::from_millis(500));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(Time(1_500_000_000).to_string(), "1.500000000");
        assert_eq!(Duration(250_000_000).to_string(), "0.250000000s");
    }

    #[test]
    fn duration_saturating_sub() {
        let a = Duration::from_secs(1);
        let b = Duration::from_secs(2);
        assert_eq!(a.saturating_sub(b), Duration::ZERO);
        assert_eq!(b.saturating_sub(a), Duration::from_secs(1));
    }
}
