//! # ute-core — shared vocabulary for the Unified Trace Environment
//!
//! This crate holds the types every other UTE crate speaks: entity
//! identifiers ([`ids`]), simulated time ([`time`]), trace event codes
//! ([`event`]), interval begin/end bits ([`bebits`]), the common error type
//! ([`error`]), and a small little-endian byte codec ([`codec`]) used by the
//! raw-trace, interval, and SLOG file formats.
//!
//! The vocabulary follows the SC 2000 paper *"From Trace Generation to
//! Visualization: A Performance Framework for Distributed Parallel Systems"*
//! (Wu et al.): trace records are identified by a *hookword* carrying an
//! event type and record length; intervals carry two *bebits* distinguishing
//! complete / begin / continuation / end pieces; threads are identified per
//! node by a logical thread id (up to 512 per node).

pub mod bebits;
pub mod codec;
pub mod error;
pub mod event;
pub mod ids;
pub mod inline;
pub mod time;

pub use bebits::BeBits;
pub use error::{Result, UteError};
pub use event::{EventCode, MpiOp};
pub use ids::{CpuId, LogicalThreadId, NodeId, Pid, SystemThreadId, TaskId, ThreadType};
pub use inline::InlineVec;
pub use time::{Duration, LocalTime, Time, TICKS_PER_SEC};
