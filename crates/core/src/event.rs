//! Trace event codes.
//!
//! Every raw trace record starts with a *hookword* identifying the event
//! type and the record length (§2.1). The 16-bit event-type space is split
//! into system events (thread dispatch, global-clock samples, I/O, page
//! faults), user-marker events, and MPI events. MPI events come in
//! begin/end pairs cut by the PMPI-style wrappers around each call.

use std::fmt;

/// MPI operations modelled by the tracing environment.
///
/// The set covers the point-to-point and collective calls exercised by the
/// paper's workloads (sPPM, FLASH) plus the non-blocking completions needed
/// for realistic interval splitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MpiOp {
    Init,
    Finalize,
    Send,
    Recv,
    Isend,
    Irecv,
    Wait,
    Waitall,
    Sendrecv,
    Barrier,
    Bcast,
    Reduce,
    Allreduce,
    Alltoall,
    Gather,
    Scatter,
    Allgather,
}

impl MpiOp {
    /// All modelled operations, in code order.
    pub const ALL: [MpiOp; 17] = [
        MpiOp::Init,
        MpiOp::Finalize,
        MpiOp::Send,
        MpiOp::Recv,
        MpiOp::Isend,
        MpiOp::Irecv,
        MpiOp::Wait,
        MpiOp::Waitall,
        MpiOp::Sendrecv,
        MpiOp::Barrier,
        MpiOp::Bcast,
        MpiOp::Reduce,
        MpiOp::Allreduce,
        MpiOp::Alltoall,
        MpiOp::Gather,
        MpiOp::Scatter,
        MpiOp::Allgather,
    ];

    /// Numeric sub-code within the MPI event-type block.
    pub fn code(self) -> u16 {
        match self {
            MpiOp::Init => 0,
            MpiOp::Finalize => 1,
            MpiOp::Send => 2,
            MpiOp::Recv => 3,
            MpiOp::Isend => 4,
            MpiOp::Irecv => 5,
            MpiOp::Wait => 6,
            MpiOp::Waitall => 7,
            MpiOp::Sendrecv => 8,
            MpiOp::Barrier => 9,
            MpiOp::Bcast => 10,
            MpiOp::Reduce => 11,
            MpiOp::Allreduce => 12,
            MpiOp::Alltoall => 13,
            MpiOp::Gather => 14,
            MpiOp::Scatter => 15,
            MpiOp::Allgather => 16,
        }
    }

    /// Inverse of [`MpiOp::code`].
    pub fn from_code(code: u16) -> Option<MpiOp> {
        MpiOp::ALL.get(code as usize).copied()
    }

    /// The standard routine name, e.g. `"MPI_Send"`.
    pub fn name(self) -> &'static str {
        match self {
            MpiOp::Init => "MPI_Init",
            MpiOp::Finalize => "MPI_Finalize",
            MpiOp::Send => "MPI_Send",
            MpiOp::Recv => "MPI_Recv",
            MpiOp::Isend => "MPI_Isend",
            MpiOp::Irecv => "MPI_Irecv",
            MpiOp::Wait => "MPI_Wait",
            MpiOp::Waitall => "MPI_Waitall",
            MpiOp::Sendrecv => "MPI_Sendrecv",
            MpiOp::Barrier => "MPI_Barrier",
            MpiOp::Bcast => "MPI_Bcast",
            MpiOp::Reduce => "MPI_Reduce",
            MpiOp::Allreduce => "MPI_Allreduce",
            MpiOp::Alltoall => "MPI_Alltoall",
            MpiOp::Gather => "MPI_Gather",
            MpiOp::Scatter => "MPI_Scatter",
            MpiOp::Allgather => "MPI_Allgather",
        }
    }

    /// Whether this call sends point-to-point payload bytes.
    pub fn is_p2p_send(self) -> bool {
        matches!(self, MpiOp::Send | MpiOp::Isend | MpiOp::Sendrecv)
    }

    /// Whether this call receives point-to-point payload bytes.
    pub fn is_p2p_recv(self) -> bool {
        matches!(self, MpiOp::Recv | MpiOp::Irecv | MpiOp::Sendrecv)
    }

    /// Whether this is a collective operation over a communicator.
    pub fn is_collective(self) -> bool {
        matches!(
            self,
            MpiOp::Barrier
                | MpiOp::Bcast
                | MpiOp::Reduce
                | MpiOp::Allreduce
                | MpiOp::Alltoall
                | MpiOp::Gather
                | MpiOp::Scatter
                | MpiOp::Allgather
        )
    }
}

impl fmt::Display for MpiOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Base of the MPI block in the 16-bit event-type space. MPI begin events
/// are `MPI_BASE + 2*code`, end events are `MPI_BASE + 2*code + 1`.
pub const MPI_BASE: u16 = 0x1000;

/// A 16-bit trace event type, as stored in the hookword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventCode {
    /// Tracing was (re)started on this node.
    TraceStart,
    /// Tracing was stopped on this node.
    TraceStop,
    /// A thread was dispatched onto a CPU.
    ThreadDispatch,
    /// A thread was descheduled from a CPU.
    ThreadUndispatch,
    /// A (global timestamp, local timestamp) clock-sample record (§2.2).
    GlobalClock,
    /// A user-marker string was defined and assigned a task-local id.
    MarkerDef,
    /// Begin of a user-marked region.
    MarkerBegin,
    /// End of a user-marked region.
    MarkerEnd,
    /// A system call executed on behalf of a thread.
    Syscall,
    /// A page fault was serviced.
    PageFault,
    /// Start of an I/O operation.
    IoStart,
    /// End of an I/O operation.
    IoEnd,
    /// A hardware interrupt was handled.
    Interrupt,
    /// Begin of an MPI call.
    MpiBegin(MpiOp),
    /// End of an MPI call.
    MpiEnd(MpiOp),
}

impl EventCode {
    /// Encodes to the 16-bit on-disk event type.
    pub fn to_u16(self) -> u16 {
        match self {
            EventCode::TraceStart => 0x0001,
            EventCode::TraceStop => 0x0002,
            EventCode::ThreadDispatch => 0x0010,
            EventCode::ThreadUndispatch => 0x0011,
            EventCode::GlobalClock => 0x0020,
            EventCode::MarkerDef => 0x0030,
            EventCode::MarkerBegin => 0x0031,
            EventCode::MarkerEnd => 0x0032,
            EventCode::Syscall => 0x0040,
            EventCode::PageFault => 0x0041,
            EventCode::IoStart => 0x0042,
            EventCode::IoEnd => 0x0043,
            EventCode::Interrupt => 0x0044,
            EventCode::MpiBegin(op) => MPI_BASE + 2 * op.code(),
            EventCode::MpiEnd(op) => MPI_BASE + 2 * op.code() + 1,
        }
    }

    /// Decodes the 16-bit on-disk event type; `None` for unknown codes.
    pub fn from_u16(v: u16) -> Option<EventCode> {
        match v {
            0x0001 => Some(EventCode::TraceStart),
            0x0002 => Some(EventCode::TraceStop),
            0x0010 => Some(EventCode::ThreadDispatch),
            0x0011 => Some(EventCode::ThreadUndispatch),
            0x0020 => Some(EventCode::GlobalClock),
            0x0030 => Some(EventCode::MarkerDef),
            0x0031 => Some(EventCode::MarkerBegin),
            0x0032 => Some(EventCode::MarkerEnd),
            0x0040 => Some(EventCode::Syscall),
            0x0041 => Some(EventCode::PageFault),
            0x0042 => Some(EventCode::IoStart),
            0x0043 => Some(EventCode::IoEnd),
            0x0044 => Some(EventCode::Interrupt),
            v if v >= MPI_BASE => {
                let rel = v - MPI_BASE;
                let op = MpiOp::from_code(rel / 2)?;
                if rel.is_multiple_of(2) {
                    Some(EventCode::MpiBegin(op))
                } else {
                    Some(EventCode::MpiEnd(op))
                }
            }
            _ => None,
        }
    }

    /// The event class, used by the trace facility's enable mask.
    pub fn class(self) -> EventClass {
        match self {
            EventCode::TraceStart | EventCode::TraceStop => EventClass::Control,
            EventCode::ThreadDispatch | EventCode::ThreadUndispatch => EventClass::Dispatch,
            EventCode::GlobalClock => EventClass::Clock,
            EventCode::MarkerDef | EventCode::MarkerBegin | EventCode::MarkerEnd => {
                EventClass::Marker
            }
            EventCode::Syscall
            | EventCode::PageFault
            | EventCode::IoStart
            | EventCode::IoEnd
            | EventCode::Interrupt => EventClass::System,
            EventCode::MpiBegin(_) | EventCode::MpiEnd(_) => EventClass::Mpi,
        }
    }
}

impl fmt::Display for EventCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventCode::MpiBegin(op) => write!(f, "{}:begin", op),
            EventCode::MpiEnd(op) => write!(f, "{}:end", op),
            other => write!(f, "{:?}", other),
        }
    }
}

/// Coarse event classes selectable in the trace facility's enable mask
/// ("events to be traced", §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventClass {
    /// Trace start/stop bookkeeping; always enabled.
    Control,
    /// Thread dispatch/undispatch events.
    Dispatch,
    /// Periodic global-clock samples.
    Clock,
    /// User-defined marker events.
    Marker,
    /// Kernel activity: syscalls, page faults, I/O, interrupts.
    System,
    /// MPI call begin/end events.
    Mpi,
}

impl EventClass {
    /// Bit position of this class in the enable mask.
    pub fn bit(self) -> u8 {
        match self {
            EventClass::Control => 0,
            EventClass::Dispatch => 1,
            EventClass::Clock => 2,
            EventClass::Marker => 3,
            EventClass::System => 4,
            EventClass::Mpi => 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpi_op_code_round_trip() {
        for op in MpiOp::ALL {
            assert_eq!(MpiOp::from_code(op.code()), Some(op), "{op}");
        }
        assert_eq!(MpiOp::from_code(17), None);
    }

    #[test]
    fn event_code_round_trip() {
        let mut codes = vec![
            EventCode::TraceStart,
            EventCode::TraceStop,
            EventCode::ThreadDispatch,
            EventCode::ThreadUndispatch,
            EventCode::GlobalClock,
            EventCode::MarkerDef,
            EventCode::MarkerBegin,
            EventCode::MarkerEnd,
            EventCode::Syscall,
            EventCode::PageFault,
            EventCode::IoStart,
            EventCode::IoEnd,
            EventCode::Interrupt,
        ];
        for op in MpiOp::ALL {
            codes.push(EventCode::MpiBegin(op));
            codes.push(EventCode::MpiEnd(op));
        }
        let mut seen = std::collections::HashSet::new();
        for c in codes {
            let raw = c.to_u16();
            assert!(seen.insert(raw), "duplicate raw code {raw:#06x} for {c}");
            assert_eq!(EventCode::from_u16(raw), Some(c));
        }
    }

    #[test]
    fn unknown_codes_rejected() {
        assert_eq!(EventCode::from_u16(0x0000), None);
        assert_eq!(EventCode::from_u16(0x0fff), None);
        // Past the last MPI op.
        assert_eq!(EventCode::from_u16(MPI_BASE + 2 * 17), None);
    }

    #[test]
    fn begin_end_pairing() {
        for op in MpiOp::ALL {
            let b = EventCode::MpiBegin(op).to_u16();
            let e = EventCode::MpiEnd(op).to_u16();
            assert_eq!(e, b + 1);
            assert_eq!(b % 2, 0);
        }
    }

    #[test]
    fn classes() {
        assert_eq!(EventCode::ThreadDispatch.class(), EventClass::Dispatch);
        assert_eq!(EventCode::GlobalClock.class(), EventClass::Clock);
        assert_eq!(EventCode::MpiBegin(MpiOp::Send).class(), EventClass::Mpi);
        assert_eq!(EventCode::PageFault.class(), EventClass::System);
        // All class bits are distinct.
        let bits: std::collections::HashSet<u8> = [
            EventClass::Control,
            EventClass::Dispatch,
            EventClass::Clock,
            EventClass::Marker,
            EventClass::System,
            EventClass::Mpi,
        ]
        .iter()
        .map(|c| c.bit())
        .collect();
        assert_eq!(bits.len(), 6);
    }

    #[test]
    fn p2p_and_collective_predicates() {
        assert!(MpiOp::Send.is_p2p_send());
        assert!(MpiOp::Sendrecv.is_p2p_send() && MpiOp::Sendrecv.is_p2p_recv());
        assert!(!MpiOp::Barrier.is_p2p_send());
        assert!(MpiOp::Allreduce.is_collective());
        assert!(!MpiOp::Wait.is_collective());
    }
}
