//! A small-vector that keeps its first `N` elements inline.
//!
//! [`InlineVec`] keeps up to `N` elements in the struct itself (an arena
//! of one record's worth, bump-"allocated" by `len`), spilling to a heap
//! `Vec` only past that. It trades struct size for allocation count —
//! which is only a win when `N × size_of::<T>()` is small *and* the
//! containing struct is not itself copied in bulk.
//!
//! A cautionary measurement from this repo: record *extras* (MPI rank,
//! peer, tag, …) were briefly stored as `InlineVec<(u16, Value), 6>`,
//! which removed the per-record allocation but grew the 56-byte
//! `Interval` to 304 bytes — and the stage-split bench showed the k-way
//! merge and reorder buffer paying ~40% more wall time moving the fat
//! struct than the saved allocation was worth. Extras went back to an
//! exact-sized heap vector; use this type only where the container
//! stays small relative to the traffic moving it.
//!
//! The implementation is deliberately `unsafe`-free: inline slots hold
//! `T: Default` values and `len` tracks how many are live. Equality,
//! ordering of iteration, and `FromIterator` all behave exactly like a
//! `Vec<T>` of the same elements, so swapping it into a struct does not
//! change any derived `PartialEq`/`Debug` semantics observable in tests.

/// A growable sequence whose first `N` elements live inline.
pub struct InlineVec<T, const N: usize> {
    len: usize,
    inline: [T; N],
    spill: Vec<T>,
}

impl<T: Default, const N: usize> InlineVec<T, N> {
    /// An empty vector; no heap allocation.
    pub fn new() -> InlineVec<T, N> {
        InlineVec {
            len: 0,
            inline: std::array::from_fn(|_| T::default()),
            spill: Vec::new(),
        }
    }

    /// Appends an element; spills to the heap only past `N` elements.
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.inline[self.len] = value;
        } else {
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Drops all elements (inline slots revert to `T::default()`).
    pub fn clear(&mut self) {
        for slot in self.inline[..self.len.min(N)].iter_mut() {
            *slot = T::default();
        }
        self.spill.clear();
        self.len = 0;
    }
}

impl<T, const N: usize> InlineVec<T, N> {
    /// Number of live elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no elements are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The element at `i`, if live.
    pub fn get(&self, i: usize) -> Option<&T> {
        if i >= self.len {
            None
        } else if i < N {
            Some(&self.inline[i])
        } else {
            self.spill.get(i - N)
        }
    }

    /// Iterates the live elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.inline[..self.len.min(N)]
            .iter()
            .chain(self.spill.iter())
    }
}

impl<T: Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: Default + Clone, const N: usize> Clone for InlineVec<T, N> {
    fn clone(&self) -> Self {
        InlineVec {
            len: self.len,
            inline: self.inline.clone(),
            spill: self.spill.clone(),
        }
    }
}

impl<T: PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<T: std::fmt::Debug, const N: usize> std::fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = InlineVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T: Default, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::iter::Chain<std::slice::Iter<'a, T>, std::slice::Iter<'a, T>>;

    fn into_iter(self) -> Self::IntoIter {
        self.inline[..self.len.min(N)]
            .iter()
            .chain(self.spill.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert_eq!(v.len(), 4);
        assert_eq!(v.spill.len(), 0);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn spills_past_capacity_preserving_order() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..7 {
            v.push(i * 10);
        }
        assert_eq!(v.len(), 7);
        assert_eq!(v.get(0), Some(&0));
        assert_eq!(v.get(1), Some(&10));
        assert_eq!(v.get(2), Some(&20));
        assert_eq!(v.get(6), Some(&60));
        assert_eq!(v.get(7), None);
        assert_eq!(
            v.iter().copied().collect::<Vec<_>>(),
            vec![0, 10, 20, 30, 40, 50, 60]
        );
    }

    #[test]
    fn equality_matches_element_sequence() {
        let a: InlineVec<u32, 2> = (0..5).collect();
        let b: InlineVec<u32, 2> = (0..5).collect();
        let c: InlineVec<u32, 2> = (0..4).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn clear_resets_and_reuses() {
        let mut v: InlineVec<String, 2> = InlineVec::new();
        v.push("a".into());
        v.push("b".into());
        v.push("c".into());
        v.clear();
        assert!(v.is_empty());
        v.push("d".into());
        assert_eq!(v.iter().cloned().collect::<Vec<_>>(), vec!["d".to_string()]);
    }

    #[test]
    fn debug_renders_like_a_list() {
        let v: InlineVec<u32, 2> = (1..4).collect();
        assert_eq!(format!("{v:?}"), "[1, 2, 3]");
    }
}
