//! The switch-adapter global clock.
//!
//! "The IBM SP switch adapter, which connects each SP node to the
//! high-performance switch network, provides a globally synchronized clock"
//! (§2.2). Accessing it is "much more expensive than accessing a local
//! clock", which is why the framework samples it only periodically rather
//! than timestamping every event with it.

use ute_core::time::{Duration, Time};

/// The globally synchronized clock exposed by the switch adapter.
///
/// All nodes observe the same register, so a read is simply true time
/// rounded down to the adapter's resolution. The access cost is modelled so
/// the cluster simulator can charge it to the sampling thread.
#[derive(Debug, Clone)]
pub struct GlobalClock {
    /// Read resolution in ticks.
    pub quantum_ticks: u64,
    /// Cost of one read (bus round trip to the adapter), charged to the
    /// reading thread by the simulator.
    pub access_cost: Duration,
}

impl Default for GlobalClock {
    fn default() -> Self {
        // The SP adapter clock ticked at microsecond-ish resolution; a read
        // crossed the I/O bus, costing on the order of a microsecond versus
        // tens of nanoseconds for the local timebase register.
        GlobalClock {
            quantum_ticks: 1_000,
            access_cost: Duration::from_micros(2),
        }
    }
}

impl GlobalClock {
    /// A global clock with full resolution and free reads (for tests).
    pub fn ideal() -> GlobalClock {
        GlobalClock {
            quantum_ticks: 1,
            access_cost: Duration::ZERO,
        }
    }

    /// Reads the global clock at simulator true time `now`.
    pub fn read(&self, now: Time) -> Time {
        let q = self.quantum_ticks.max(1);
        Time(now.ticks() - now.ticks() % q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_quantizes_down() {
        let g = GlobalClock {
            quantum_ticks: 1_000,
            access_cost: Duration::ZERO,
        };
        assert_eq!(g.read(Time(1_234_567)).ticks(), 1_234_000);
        assert_eq!(g.read(Time(999)).ticks(), 0);
        assert_eq!(g.read(Time(1_000)).ticks(), 1_000);
    }

    #[test]
    fn ideal_is_identity() {
        let g = GlobalClock::ideal();
        assert_eq!(g.read(Time(123_456_789)).ticks(), 123_456_789);
    }

    #[test]
    fn same_instant_same_reading_everywhere() {
        // The defining property of the global clock: node-independent.
        let g1 = GlobalClock::default();
        let g2 = GlobalClock::default();
        let t = Time(77_777_777);
        assert_eq!(g1.read(t), g2.read(t));
    }

    #[test]
    fn access_cost_is_nonzero_by_default() {
        // §2.2: "accessing the global clock is much more expensive than
        // accessing a local clock".
        assert!(GlobalClock::default().access_cost > Duration::ZERO);
    }
}
