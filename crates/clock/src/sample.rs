//! Global-clock records: periodic (global, local) timestamp pairs.
//!
//! "We chose to access the global clock register periodically in each node
//! to collect global clock records, each of which contains a global
//! timestamp and a local timestamp, and adjust local timestamps after trace
//! files are created" (§2.2).
//!
//! The paper's §5 notes a failure mode: the sampling thread can be
//! descheduled *between* reading the global clock and reading the local
//! clock, producing a pair with a significant one-sided discrepancy that
//! "may be easily filtered out by utilities". [`SamplerConfig::outlier_every`]
//! injects exactly that fault so the filter (see [`crate::filter`]) can be
//! exercised.

use ute_core::time::{Duration, LocalTime, Time};

use crate::drift::LocalClock;
use crate::global::GlobalClock;

/// One global-clock record: a (G, L) timestamp pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockSample {
    /// The switch-adapter (global) timestamp.
    pub global: Time,
    /// The node-local timestamp read "at the same instant".
    pub local: LocalTime,
}

impl ClockSample {
    /// Builds a sample.
    pub fn new(global: Time, local: LocalTime) -> ClockSample {
        ClockSample { global, local }
    }
}

/// Configuration of a node's clock-sampling thread.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Interval between samples.
    pub period: Duration,
    /// If `Some(k)`, every k-th sample (1-based) suffers a deschedule of
    /// `outlier_delay` between the global read and the local read,
    /// reproducing the §5 failure mode.
    pub outlier_every: Option<usize>,
    /// The deschedule length injected into outlier samples.
    pub outlier_delay: Duration,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            period: Duration::from_secs(1),
            outlier_every: None,
            outlier_delay: Duration::from_millis(5),
        }
    }
}

/// Samples the pair of clocks over `[start, end]` at the configured period,
/// always including a sample at `start`. This is the offline stand-in for
/// the in-simulator sampling thread (the cluster simulator drives the same
/// reads through its event loop).
pub fn sample_clocks(
    global: &GlobalClock,
    local: &mut LocalClock,
    cfg: &SamplerConfig,
    start: Time,
    end: Time,
) -> Vec<ClockSample> {
    assert!(
        cfg.period > Duration::ZERO,
        "sampling period must be positive"
    );
    let mut out = Vec::new();
    let mut t = start;
    let mut k = 0usize;
    while t <= end {
        k += 1;
        let g = global.read(t);
        let local_read_at = match cfg.outlier_every {
            Some(n) if n > 0 && k.is_multiple_of(n) => t + cfg.outlier_delay,
            _ => t,
        };
        let l = local.read(local_read_at);
        out.push(ClockSample::new(g, l));
        t = local_read_at.max(t) + cfg.period;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::ClockParams;

    #[test]
    fn samples_cover_span_at_period() {
        let g = GlobalClock::ideal();
        let mut l = LocalClock::new(ClockParams::perfect());
        let cfg = SamplerConfig::default();
        let s = sample_clocks(&g, &mut l, &cfg, Time::ZERO, Time::from_secs_f64(10.0));
        assert_eq!(s.len(), 11); // 0..=10 inclusive
        for (i, smp) in s.iter().enumerate() {
            assert_eq!(smp.global.ticks(), i as u64 * 1_000_000_000);
            assert_eq!(smp.local.ticks(), smp.global.ticks());
        }
    }

    #[test]
    fn drifting_clock_diverges_in_samples() {
        let g = GlobalClock::ideal();
        let mut l = LocalClock::new(ClockParams::with_ppm(40.0, 0));
        let cfg = SamplerConfig::default();
        let s = sample_clocks(&g, &mut l, &cfg, Time::ZERO, Time::from_secs_f64(100.0));
        let last = s.last().unwrap();
        let gain = last.local.ticks() as i64 - last.global.ticks() as i64;
        // 40 ppm over 100 s = 4 ms.
        assert!((gain - 4_000_000).abs() < 10_000, "gain {gain}");
    }

    #[test]
    fn outlier_injection_creates_one_sided_lag() {
        let g = GlobalClock::ideal();
        let mut l = LocalClock::new(ClockParams::perfect());
        let cfg = SamplerConfig {
            outlier_every: Some(5),
            outlier_delay: Duration::from_millis(5),
            ..SamplerConfig::default()
        };
        let s = sample_clocks(&g, &mut l, &cfg, Time::ZERO, Time::from_secs_f64(20.0));
        let outliers: Vec<_> = s
            .iter()
            .filter(|smp| smp.local.ticks() as i64 - smp.global.ticks() as i64 > 1_000_000)
            .collect();
        assert!(!outliers.is_empty(), "expected injected outliers");
        for o in outliers {
            // Local read happened 5 ms after the global read.
            assert_eq!(o.local.ticks() - o.global.ticks(), 5_000_000);
        }
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let g = GlobalClock::ideal();
        let mut l = LocalClock::new(ClockParams::perfect());
        let cfg = SamplerConfig {
            period: Duration::ZERO,
            ..SamplerConfig::default()
        };
        sample_clocks(&g, &mut l, &cfg, Time::ZERO, Time(10));
    }
}
