//! Outlier rejection for global-clock records.
//!
//! §5: "Since global clock records are collected by a thread in each node,
//! there is a remote chance that significant discrepancy between the global
//! and local clock may be recorded due to, say thread de-scheduling right
//! after accessing the global clock. Although this significant discrepancy
//! may be easily filtered out by utilities, an atomic operation would
//! totally eliminate such possibilities."
//!
//! The filter works on the segment slopes: honest samples from a crystal
//! clock produce slopes within a few hundred ppm of each other, while a
//! deschedule of even a millisecond between the two reads bends the two
//! adjacent slopes by orders of magnitude more. We compute the median
//! slope, flag samples whose *both* adjacent slopes deviate beyond a
//! tolerance, and drop them.

use crate::sample::ClockSample;

/// Default tolerance: slopes more than 500 ppm away from the median slope
/// are considered bent by an outlier sample. Real crystal drift is tens of
/// ppm; a 1 ms deschedule inside a 1 s sampling period bends a slope by
/// ~1000 ppm.
pub const DEFAULT_TOLERANCE_PPM: f64 = 500.0;

/// Removes samples whose presence bends both adjacent slope segments away
/// from the median slope by more than `tolerance_ppm`. The first and last
/// samples are kept unless their single adjacent slope deviates.
///
/// Returns the retained samples (order preserved). With fewer than three
/// samples the input is returned unchanged — no median is meaningful.
pub fn filter_outliers(samples: &[ClockSample], tolerance_ppm: f64) -> Vec<ClockSample> {
    if samples.len() < 3 {
        return samples.to_vec();
    }
    let slopes: Vec<f64> = samples
        .windows(2)
        .map(|w| {
            let dg = (w[1].global.ticks() - w[0].global.ticks()) as f64;
            let dl = (w[1].local.ticks() as i128 - w[0].local.ticks() as i128) as f64;
            if dl <= 0.0 {
                f64::INFINITY
            } else {
                dg / dl
            }
        })
        .collect();
    let mut sorted: Vec<f64> = slopes.iter().copied().filter(|s| s.is_finite()).collect();
    if sorted.is_empty() {
        return samples.to_vec();
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];
    let tol = median * tolerance_ppm * 1e-6;
    let deviant = |s: f64| -> bool { !s.is_finite() || (s - median).abs() > tol };

    let mut keep = vec![true; samples.len()];
    for i in 0..samples.len() {
        let left_dev = if i > 0 { deviant(slopes[i - 1]) } else { true };
        let right_dev = if i < slopes.len() {
            deviant(slopes[i])
        } else {
            true
        };
        // A sample is an outlier when every slope it participates in is
        // deviant. (Interior: both; edges: their single slope.)
        if left_dev && right_dev {
            keep[i] = false;
        }
    }
    samples
        .iter()
        .zip(keep)
        .filter_map(|(s, k)| if k { Some(*s) } else { None })
        .collect()
}

/// Convenience wrapper using [`DEFAULT_TOLERANCE_PPM`].
pub fn filter_outliers_default(samples: &[ClockSample]) -> Vec<ClockSample> {
    filter_outliers(samples, DEFAULT_TOLERANCE_PPM)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_core::time::{LocalTime, Time, TICKS_PER_SEC};

    fn clean_run(n: u64, ppm: f64) -> Vec<ClockSample> {
        (0..=n)
            .map(|i| {
                let g = i * TICKS_PER_SEC;
                let l = (g as f64 * (1.0 + ppm * 1e-6)) as u64;
                ClockSample::new(Time(g), LocalTime(l))
            })
            .collect()
    }

    #[test]
    fn clean_samples_pass_through() {
        let s = clean_run(30, 25.0);
        let f = filter_outliers_default(&s);
        assert_eq!(f, s);
    }

    #[test]
    fn single_deschedule_outlier_removed() {
        let mut s = clean_run(30, 25.0);
        // Sample 10 read the local clock 2 ms late (deschedule after the
        // global read): its local timestamp is 2 ms too large.
        s[10].local = LocalTime(s[10].local.ticks() + 2_000_000);
        let f = filter_outliers_default(&s);
        assert_eq!(f.len(), s.len() - 1);
        assert!(!f.contains(&s[10]));
        // Everything else survives.
        for (i, smp) in s.iter().enumerate() {
            if i != 10 {
                assert!(f.contains(smp), "sample {i} wrongly dropped");
            }
        }
    }

    #[test]
    fn outlier_at_edges_removed() {
        let mut s = clean_run(20, 0.0);
        s[0].local = LocalTime(s[0].local.ticks() + 3_000_000);
        let last = s.len() - 1;
        s[last].local = LocalTime(s[last].local.ticks() + 3_000_000);
        let f = filter_outliers_default(&s);
        assert!(!f.contains(&s[0]));
        assert!(!f.contains(&s[last]));
        assert_eq!(f.len(), s.len() - 2);
    }

    #[test]
    fn multiple_outliers_removed() {
        let mut s = clean_run(60, 40.0);
        for &i in &[7usize, 23, 48] {
            s[i].local = LocalTime(s[i].local.ticks() + 5_000_000);
        }
        let f = filter_outliers_default(&s);
        assert_eq!(f.len(), s.len() - 3);
    }

    #[test]
    fn short_inputs_unchanged() {
        let s = clean_run(1, 10.0);
        assert_eq!(filter_outliers_default(&s), s);
        assert!(filter_outliers_default(&[]).is_empty());
    }

    #[test]
    fn filtering_restores_ratio_accuracy() {
        use crate::ratio::rms_segments;
        let mut s = clean_run(120, 30.0);
        s[40].local = LocalTime(s[40].local.ticks() + 4_000_000);
        let expect = 1.0 / (1.0 + 30e-6);
        let dirty = (rms_segments(&s) - expect).abs();
        let clean = (rms_segments(&filter_outliers_default(&s)) - expect).abs();
        assert!(
            clean < dirty / 100.0,
            "filter should improve the fit: dirty {dirty:e}, clean {clean:e}"
        );
    }
}
