//! Drifting local clock model.
//!
//! Figure 1 of the paper shows that the accumulated discrepancy between
//! local clocks grows roughly linearly with elapsed time, because "the
//! frequency of a clock crystal is directly related to its temperature. It
//! remains more or less constant unless its temperature changes
//! dramatically" (§2.2). The model here captures exactly that: a constant
//! parts-per-million frequency error (the dominant term), a slow bounded
//! random walk of that frequency standing in for temperature variation, and
//! read quantization.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ute_core::time::{Duration, LocalTime, Time, TICKS_PER_SEC};

/// Static description of one node's local clock.
#[derive(Debug, Clone)]
pub struct ClockParams {
    /// Local reading at true time zero, in ticks (power-up offset).
    pub offset_ticks: i64,
    /// Constant frequency error in parts per million. Positive means the
    /// local clock runs fast. Typical crystal errors are ±1–50 ppm.
    pub freq_error_ppm: f64,
    /// Standard deviation of the per-second random walk applied to the
    /// frequency error (temperature wander), in ppm. Zero disables it.
    pub temp_walk_ppm: f64,
    /// The walk is clamped to `freq_error_ppm ± temp_bound_ppm`.
    pub temp_bound_ppm: f64,
    /// Read quantization in ticks (timer resolution). Zero or one means
    /// full nanosecond resolution.
    pub read_quantum_ticks: u64,
    /// Seed for the temperature walk.
    pub seed: u64,
}

impl Default for ClockParams {
    fn default() -> Self {
        ClockParams {
            offset_ticks: 0,
            freq_error_ppm: 0.0,
            temp_walk_ppm: 0.0,
            temp_bound_ppm: 0.0,
            read_quantum_ticks: 1,
            seed: 0,
        }
    }
}

impl ClockParams {
    /// A perfect clock: no offset, no drift, full resolution.
    pub fn perfect() -> ClockParams {
        ClockParams::default()
    }

    /// A typical crystal with the given constant ppm error and power-up
    /// offset in microseconds.
    pub fn with_ppm(freq_error_ppm: f64, offset_us: i64) -> ClockParams {
        ClockParams {
            offset_ticks: offset_us * 1_000,
            freq_error_ppm,
            ..ClockParams::default()
        }
    }
}

/// A node's free-running local clock.
///
/// The clock integrates its (slowly wandering) rate over true time. Reads
/// must be issued with non-decreasing true time; the returned local
/// timestamps are guaranteed non-decreasing (a real counter register never
/// runs backwards).
#[derive(Debug, Clone)]
pub struct LocalClock {
    params: ClockParams,
    rng: SmallRng,
    /// True time of the last rate-walk checkpoint, in ticks.
    walk_at: u64,
    /// Current frequency error in ppm (wanders if temp_walk_ppm > 0).
    current_ppm: f64,
    /// Accumulated local ticks (may lag/lead true time) at `walk_at`,
    /// excluding the power-up offset, as an exact float integral.
    accumulated: f64,
    /// Last value returned, to enforce monotonicity under quantization.
    last_read: u64,
}

/// The temperature walk is re-evaluated once per simulated second.
const WALK_STEP_TICKS: u64 = TICKS_PER_SEC;

impl LocalClock {
    /// Builds a clock from its parameters.
    pub fn new(params: ClockParams) -> LocalClock {
        let rng = SmallRng::seed_from_u64(params.seed ^ 0x5eed_c10c);
        LocalClock {
            current_ppm: params.freq_error_ppm,
            params,
            rng,
            walk_at: 0,
            accumulated: 0.0,
            last_read: 0,
        }
    }

    /// Current effective rate (local ticks per true tick).
    #[inline]
    pub fn rate(&self) -> f64 {
        1.0 + self.current_ppm * 1e-6
    }

    /// The static parameters this clock was built with.
    pub fn params(&self) -> &ClockParams {
        &self.params
    }

    /// Advances the rate walk up to true-time tick `now`.
    fn advance(&mut self, now: u64) {
        while self.walk_at + WALK_STEP_TICKS <= now {
            self.accumulated += WALK_STEP_TICKS as f64 * self.rate();
            self.walk_at += WALK_STEP_TICKS;
            if self.params.temp_walk_ppm > 0.0 {
                // Gaussian-ish step from the sum of uniforms (Irwin–Hall,
                // n=3 is plenty for a bounded walk).
                let u: f64 = (0..3).map(|_| self.rng.gen_range(-1.0..1.0)).sum::<f64>() / 3.0;
                self.current_ppm += u * self.params.temp_walk_ppm;
                let lo = self.params.freq_error_ppm - self.params.temp_bound_ppm;
                let hi = self.params.freq_error_ppm + self.params.temp_bound_ppm;
                self.current_ppm = self.current_ppm.clamp(lo, hi);
            }
        }
    }

    /// Reads the clock at simulator true time `now`.
    ///
    /// # Panics
    /// Panics in debug builds if `now` precedes an earlier read's true time.
    pub fn read(&mut self, now: Time) -> LocalTime {
        let now_ticks = now.ticks();
        debug_assert!(
            now_ticks >= self.walk_at.saturating_sub(WALK_STEP_TICKS),
            "clock read went backwards in true time"
        );
        self.advance(now_ticks);
        let partial = (now_ticks - self.walk_at) as f64 * self.rate();
        let raw = self.params.offset_ticks as f64 + self.accumulated + partial;
        let mut ticks = if raw <= 0.0 { 0 } else { raw as u64 };
        let q = self.params.read_quantum_ticks.max(1);
        ticks -= ticks % q;
        // The hardware counter is monotone even when quantization would
        // round a later read below an earlier one.
        if ticks < self.last_read {
            ticks = self.last_read;
        }
        self.last_read = ticks;
        LocalTime(ticks)
    }

    /// The exact (un-quantized) local reading for a true time, ignoring the
    /// temperature walk — used by tests and by the discrepancy analysis to
    /// compute closed-form expectations.
    pub fn ideal_reading(params: &ClockParams, now: Time) -> f64 {
        params.offset_ticks as f64 + now.ticks() as f64 * (1.0 + params.freq_error_ppm * 1e-6)
    }

    /// Elapsed local time between two true-time instants under the constant
    /// part of the drift (no walk).
    pub fn ideal_elapsed(params: &ClockParams, span: Duration) -> f64 {
        span.ticks() as f64 * (1.0 + params.freq_error_ppm * 1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_tracks_true_time() {
        let mut c = LocalClock::new(ClockParams::perfect());
        for s in [0u64, 1, 5, 140] {
            let t = Time(s * TICKS_PER_SEC);
            assert_eq!(c.read(t).ticks(), t.ticks());
        }
    }

    #[test]
    fn constant_ppm_drift_accumulates_linearly() {
        // +20 ppm over 100 s should gain 2 ms.
        let mut c = LocalClock::new(ClockParams::with_ppm(20.0, 0));
        let t = Time(100 * TICKS_PER_SEC);
        let local = c.read(t);
        let gained = local.ticks() as i64 - t.ticks() as i64;
        let expect = (100.0 * 20e-6 * TICKS_PER_SEC as f64) as i64;
        assert!(
            (gained - expect).abs() < 1_000,
            "gained {gained}, expected ~{expect}"
        );
    }

    #[test]
    fn offset_applies_at_time_zero() {
        let mut c = LocalClock::new(ClockParams::with_ppm(0.0, 250));
        assert_eq!(c.read(Time::ZERO).ticks(), 250_000);
    }

    #[test]
    fn negative_drift_lags() {
        let mut c = LocalClock::new(ClockParams::with_ppm(-50.0, 0));
        let t = Time(10 * TICKS_PER_SEC);
        assert!(c.read(t).ticks() < t.ticks());
    }

    #[test]
    fn reads_are_monotone_under_quantization() {
        let mut p = ClockParams::with_ppm(-30.0, 0);
        p.read_quantum_ticks = 1_000; // microsecond timer
        let mut c = LocalClock::new(p);
        let mut last = 0;
        for i in 0..10_000u64 {
            let v = c.read(Time(i * 123_457)).ticks();
            assert!(v >= last, "clock ran backwards at read {i}");
            assert_eq!(v % 1_000, 0, "quantization violated");
            last = v;
        }
    }

    #[test]
    fn temperature_walk_stays_bounded() {
        let mut p = ClockParams::with_ppm(10.0, 0);
        p.temp_walk_ppm = 0.5;
        p.temp_bound_ppm = 2.0;
        p.seed = 42;
        let mut c = LocalClock::new(p);
        for s in 1..=600u64 {
            c.read(Time(s * TICKS_PER_SEC));
            assert!(
                (c.current_ppm - 10.0).abs() <= 2.0 + 1e-9,
                "walk escaped bounds: {}",
                c.current_ppm
            );
        }
    }

    #[test]
    fn walk_is_deterministic_per_seed() {
        let mut p = ClockParams::with_ppm(5.0, 0);
        p.temp_walk_ppm = 0.2;
        p.temp_bound_ppm = 1.0;
        p.seed = 7;
        let mut a = LocalClock::new(p.clone());
        let mut b = LocalClock::new(p);
        for s in 1..=50u64 {
            let t = Time(s * TICKS_PER_SEC + 17);
            assert_eq!(a.read(t), b.read(t));
        }
    }

    #[test]
    fn ideal_reading_matches_constant_model() {
        let p = ClockParams::with_ppm(20.0, 100);
        let mut c = LocalClock::new(p.clone());
        let t = Time(50 * TICKS_PER_SEC);
        let ideal = LocalClock::ideal_reading(&p, t);
        let actual = c.read(t).ticks() as f64;
        assert!(
            (ideal - actual).abs() < 2.0,
            "ideal {ideal} vs actual {actual}"
        );
    }
}
