//! Global-to-local clock ratio estimation (§2.2).
//!
//! "During the merge process the first global clock records in individual
//! trace files are used to determine the starting point in time for records
//! in each trace file. Subsequent global clock records are used to
//! calculate the ratio of global versus local clock timestamps."
//!
//! The paper's estimator is the **root mean square of the slope segments**
//! constructed by adjacent pairs of timestamp points:
//!
//! ```text
//!         ⎛  Σᵢ ((Gᵢ − Gᵢ₋₁) / (Lᵢ − Lᵢ₋₁))²  ⎞ ½
//!   R  =  ⎜  ─────────────────────────────────  ⎟
//!         ⎝                 n                   ⎠
//! ```
//!
//! which the paper prefers over the RMS of *all* slopes (anchored at
//! (G₀, L₀)) because the latter "gives too much weight on the first point
//! in the sequence". Two further alternatives the paper mentions are also
//! provided: the slope of the last timestamp pair, and a piecewise fit that
//! "effectively partitions the total elapsed time into n segments, each of
//! which has its own global to local clock ratio".

use ute_core::error::{Result, UteError};
use ute_core::time::{Duration, LocalTime, Time};

use crate::sample::ClockSample;

/// Which estimator the merge utility should use for the ratio `R`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RatioEstimator {
    /// RMS of adjacent slope segments — the paper's choice.
    #[default]
    RmsSegments,
    /// RMS of all slopes anchored at the first pair — the alternative the
    /// paper rejects for over-weighting the first point.
    RmsAllSlopes,
    /// Slope of (last pair − first pair) — reasonable "if the elapsed time
    /// of the trace is reasonably long".
    LastPair,
    /// Per-segment ratios (see [`PiecewiseFit`]).
    Piecewise,
}

/// A linear fit mapping one node's local timestamps onto the global axis:
/// `global = origin_global + R · (local − origin_local)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockFit {
    /// Global timestamp of the anchor (first global-clock record).
    pub origin_global: Time,
    /// Local timestamp of the anchor.
    pub origin_local: LocalTime,
    /// The global-to-local ratio `R`.
    pub ratio: f64,
}

impl ClockFit {
    /// Fits the samples with the requested estimator.
    ///
    /// Needs at least two samples with strictly increasing local
    /// timestamps; for [`RatioEstimator::Piecewise`] use
    /// [`PiecewiseFit::fit`] instead (this function falls back to
    /// [`RatioEstimator::RmsSegments`] for that variant).
    pub fn fit(samples: &[ClockSample], estimator: RatioEstimator) -> Result<ClockFit> {
        validate(samples)?;
        let ratio = match estimator {
            RatioEstimator::RmsSegments | RatioEstimator::Piecewise => rms_segments(samples),
            RatioEstimator::RmsAllSlopes => rms_all_slopes(samples),
            RatioEstimator::LastPair => last_pair(samples),
        };
        Ok(ClockFit {
            origin_global: samples[0].global,
            origin_local: samples[0].local,
            ratio,
        })
    }

    /// Maps a local timestamp to the global axis. Local timestamps earlier
    /// than the anchor clamp to the anchor (records cut before the first
    /// global-clock record align to the trace start).
    pub fn adjust(&self, local: LocalTime) -> Time {
        if local.ticks() <= self.origin_local.ticks() {
            return self.origin_global;
        }
        let dl = (local.ticks() - self.origin_local.ticks()) as f64;
        Time(self.origin_global.ticks() + (self.ratio * dl).round() as u64)
    }

    /// Scales a local duration onto the global axis (`R·D`, §2.2).
    pub fn adjust_duration(&self, d: Duration) -> Duration {
        Duration((self.ratio * d.ticks() as f64).round() as u64)
    }
}

fn validate(samples: &[ClockSample]) -> Result<()> {
    if samples.len() < 2 {
        return Err(UteError::Invalid(format!(
            "clock fit needs at least 2 samples, got {}",
            samples.len()
        )));
    }
    for w in samples.windows(2) {
        if w[1].local.ticks() <= w[0].local.ticks() {
            return Err(UteError::Invalid(
                "clock samples must have strictly increasing local timestamps".into(),
            ));
        }
    }
    Ok(())
}

/// The paper's estimator: RMS over adjacent-pair slope segments.
pub fn rms_segments(samples: &[ClockSample]) -> f64 {
    let n = samples.len() - 1;
    let sum_sq: f64 = samples
        .windows(2)
        .map(|w| {
            let dg = (w[1].global.ticks() - w[0].global.ticks()) as f64;
            let dl = (w[1].local.ticks() - w[0].local.ticks()) as f64;
            let s = dg / dl;
            s * s
        })
        .sum();
    (sum_sq / n as f64).sqrt()
}

/// The rejected alternative: RMS over slopes all anchored at the first pair.
pub fn rms_all_slopes(samples: &[ClockSample]) -> f64 {
    let first = samples[0];
    let n = samples.len() - 1;
    let sum_sq: f64 = samples[1..]
        .iter()
        .map(|s| {
            let dg = (s.global.ticks() - first.global.ticks()) as f64;
            let dl = (s.local.ticks() - first.local.ticks()) as f64;
            let r = dg / dl;
            r * r
        })
        .sum();
    (sum_sq / n as f64).sqrt()
}

/// The slope of the whole span (first to last pair).
pub fn last_pair(samples: &[ClockSample]) -> f64 {
    let first = samples[0];
    let last = samples[samples.len() - 1];
    let dg = (last.global.ticks() - first.global.ticks()) as f64;
    let dl = (last.local.ticks() - first.local.ticks()) as f64;
    dg / dl
}

/// Piecewise adjustment: "it is also possible to adjust local timestamps
/// using slopes of individual slope segments. This approach effectively
/// partitions the total elapsed time into n segments, each of which has its
/// own global to local clock ratio" (§2.2).
#[derive(Debug, Clone)]
pub struct PiecewiseFit {
    /// Segment anchors: the original samples, sorted by local timestamp.
    anchors: Vec<ClockSample>,
    /// Per-segment ratios; `ratios[i]` covers anchors `i → i+1`.
    ratios: Vec<f64>,
}

impl PiecewiseFit {
    /// Fits one ratio per adjacent sample pair.
    pub fn fit(samples: &[ClockSample]) -> Result<PiecewiseFit> {
        validate(samples)?;
        let ratios = samples
            .windows(2)
            .map(|w| {
                let dg = (w[1].global.ticks() - w[0].global.ticks()) as f64;
                let dl = (w[1].local.ticks() - w[0].local.ticks()) as f64;
                dg / dl
            })
            .collect();
        Ok(PiecewiseFit {
            anchors: samples.to_vec(),
            ratios,
        })
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.ratios.len()
    }

    /// The segment index whose local span contains `local` (clamping to the
    /// first/last segment outside the sampled range).
    fn segment_for(&self, local: LocalTime) -> usize {
        match self
            .anchors
            .binary_search_by_key(&local.ticks(), |s| s.local.ticks())
        {
            Ok(i) => i.min(self.ratios.len() - 1),
            Err(0) => 0,
            Err(i) => (i - 1).min(self.ratios.len() - 1),
        }
    }

    /// Maps a local timestamp to the global axis using the ratio of the
    /// segment it falls in; anchor points map exactly.
    pub fn adjust(&self, local: LocalTime) -> Time {
        let i = self.segment_for(local);
        let a = self.anchors[i];
        if local.ticks() <= a.local.ticks() && i == 0 && local.ticks() < a.local.ticks() {
            // Before the first record: clamp to the aligned start.
            return a.global;
        }
        let dl = local.ticks() as f64 - a.local.ticks() as f64;
        let g = a.global.ticks() as f64 + self.ratios[i] * dl;
        Time(if g <= 0.0 { 0 } else { g.round() as u64 })
    }

    /// Scales a duration starting at `local` using that segment's ratio.
    pub fn adjust_duration(&self, local: LocalTime, d: Duration) -> Duration {
        let i = self.segment_for(local);
        Duration((self.ratios[i] * d.ticks() as f64).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::{ClockParams, LocalClock};
    use crate::global::GlobalClock;
    use crate::sample::{sample_clocks, SamplerConfig};
    use ute_core::time::TICKS_PER_SEC;

    fn samples_for_ppm(ppm: f64, secs: u64) -> Vec<ClockSample> {
        let g = GlobalClock::ideal();
        let mut l = LocalClock::new(ClockParams::with_ppm(ppm, 123));
        sample_clocks(
            &g,
            &mut l,
            &SamplerConfig::default(),
            Time::ZERO,
            Time(secs * TICKS_PER_SEC),
        )
    }

    #[test]
    fn rms_segments_recovers_constant_ratio() {
        for ppm in [-100.0, -20.0, 0.0, 35.0, 200.0] {
            let s = samples_for_ppm(ppm, 120);
            let r = rms_segments(&s);
            let expect = 1.0 / (1.0 + ppm * 1e-6);
            assert!(
                (r - expect).abs() < 1e-9,
                "ppm {ppm}: got {r}, expected {expect}"
            );
        }
    }

    #[test]
    fn all_estimators_agree_on_constant_drift() {
        let s = samples_for_ppm(50.0, 60);
        let a = rms_segments(&s);
        let b = rms_all_slopes(&s);
        let c = last_pair(&s);
        assert!((a - b).abs() < 1e-9);
        assert!((a - c).abs() < 1e-9);
    }

    #[test]
    fn rms_all_slopes_overweights_first_point() {
        // Make the first segment anomalous (an outlier in the first pair):
        // RMS-of-all-slopes keeps the anomaly in every term, while
        // RMS-of-segments confines it to one term out of n.
        let mut s = samples_for_ppm(0.0, 100);
        // Perturb the first local timestamp by +2 ms.
        s[0].local = LocalTime(s[0].local.ticks() + 2_000_000);
        let seg = rms_segments(&s);
        let all = rms_all_slopes(&s);
        let err_seg = (seg - 1.0).abs();
        let err_all = (all - 1.0).abs();
        assert!(
            err_all > err_seg * 5.0,
            "expected anchored estimator to be much worse: seg {err_seg}, all {err_all}"
        );
    }

    #[test]
    fn fit_adjust_maps_local_to_global() {
        let ppm = 80.0;
        let s = samples_for_ppm(ppm, 140);
        let fit = ClockFit::fit(&s, RatioEstimator::RmsSegments).unwrap();
        // A local timestamp mid-trace should map back to within a few µs of
        // the true time that produced it.
        let true_t = Time(70 * TICKS_PER_SEC);
        let local =
            LocalTime(LocalClock::ideal_reading(&ClockParams::with_ppm(ppm, 123), true_t) as u64);
        let adjusted = fit.adjust(local);
        let err = adjusted.ticks() as i64 - true_t.ticks() as i64;
        assert!(err.abs() < 5_000, "adjust error {err} ticks");
    }

    #[test]
    fn adjust_clamps_before_anchor() {
        let s = vec![
            ClockSample::new(Time(1_000_000), LocalTime(2_000_000)),
            ClockSample::new(Time(2_000_000), LocalTime(3_000_000)),
        ];
        let fit = ClockFit::fit(&s, RatioEstimator::LastPair).unwrap();
        assert_eq!(fit.adjust(LocalTime(0)), Time(1_000_000));
        assert_eq!(fit.adjust(LocalTime(2_000_000)), Time(1_000_000));
    }

    #[test]
    fn duration_scaling_uses_ratio() {
        let s = vec![
            ClockSample::new(Time(0), LocalTime(0)),
            ClockSample::new(Time(2_000_000), LocalTime(1_000_000)),
        ];
        // Local clock runs at half speed: R = 2.
        let fit = ClockFit::fit(&s, RatioEstimator::RmsSegments).unwrap();
        assert!((fit.ratio - 2.0).abs() < 1e-12);
        assert_eq!(fit.adjust_duration(Duration(500)).ticks(), 1_000);
    }

    #[test]
    fn fit_requires_two_increasing_samples() {
        assert!(ClockFit::fit(&[], RatioEstimator::RmsSegments).is_err());
        let one = vec![ClockSample::new(Time(0), LocalTime(0))];
        assert!(ClockFit::fit(&one, RatioEstimator::RmsSegments).is_err());
        let dup = vec![
            ClockSample::new(Time(0), LocalTime(5)),
            ClockSample::new(Time(1), LocalTime(5)),
        ];
        assert!(ClockFit::fit(&dup, RatioEstimator::RmsSegments).is_err());
    }

    #[test]
    fn piecewise_tracks_changing_drift_better_than_linear() {
        // A clock whose rate steps halfway through the trace: the
        // piecewise fit should adjust both halves well, the single-ratio
        // fit must compromise.
        let mut samples = Vec::new();
        let mut local = 0u64;
        for i in 0..=120u64 {
            let g = i * TICKS_PER_SEC;
            samples.push(ClockSample::new(Time(g), LocalTime(local)));
            // First half +100 ppm, second half -100 ppm.
            let rate = if i < 60 { 1.0001 } else { 0.9999 };
            local += (TICKS_PER_SEC as f64 * rate) as u64;
        }
        let linear = ClockFit::fit(&samples, RatioEstimator::RmsSegments).unwrap();
        let piece = PiecewiseFit::fit(&samples).unwrap();
        // Evaluate at sample 30 (inside first half) against ground truth.
        let probe = samples[30];
        let lin_err =
            (linear.adjust(probe.local).ticks() as i64 - probe.global.ticks() as i64).abs();
        let pw_err = (piece.adjust(probe.local).ticks() as i64 - probe.global.ticks() as i64).abs();
        assert!(pw_err <= 2, "piecewise should nail anchors, err {pw_err}");
        assert!(
            lin_err > 100_000,
            "single ratio should be visibly off mid-segment: {lin_err}"
        );
    }

    #[test]
    fn piecewise_anchor_points_map_exactly() {
        let s = samples_for_ppm(25.0, 50);
        let pw = PiecewiseFit::fit(&s).unwrap();
        for a in &s {
            assert_eq!(pw.adjust(a.local), a.global);
        }
        assert_eq!(pw.segments(), s.len() - 1);
    }

    #[test]
    fn piecewise_extrapolates_with_edge_ratios() {
        let s = vec![
            ClockSample::new(Time(1_000), LocalTime(1_000)),
            ClockSample::new(Time(2_000), LocalTime(2_000)),
            ClockSample::new(Time(4_000), LocalTime(3_000)),
        ];
        let pw = PiecewiseFit::fit(&s).unwrap();
        // Beyond the last anchor, use the last segment's ratio (2.0).
        assert_eq!(pw.adjust(LocalTime(3_500)).ticks(), 5_000);
        // Before the first anchor, clamp to the aligned start.
        assert_eq!(pw.adjust(LocalTime(0)).ticks(), 1_000);
        // Duration scaling picks the right segment.
        assert_eq!(
            pw.adjust_duration(LocalTime(2_500), Duration(100)).ticks(),
            200
        );
        assert_eq!(
            pw.adjust_duration(LocalTime(1_500), Duration(100)).ticks(),
            100
        );
    }
}
