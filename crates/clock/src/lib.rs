//! # ute-clock — clocks and clock synchronization
//!
//! The paper's framework runs on an IBM SP whose nodes carry free-running
//! local crystal clocks, while the SP switch adapter exposes a globally
//! synchronized clock that is expensive to read (§2.2). Since we have no SP
//! hardware, this crate provides a faithful *model* of both:
//!
//! * [`drift::LocalClock`] — a per-node clock with an initial offset, a
//!   parts-per-million frequency error, a slow temperature random walk of
//!   that frequency, and read quantization. Reading it converts simulator
//!   true time into local ticks.
//! * [`global::GlobalClock`] — the switch-adapter clock: true time with a
//!   coarser read quantum and a (modelled) higher access cost.
//! * [`sample`] — periodic (global, local) timestamp pairs, the
//!   "global clock records" each node's sampler thread cuts, including the
//!   deschedule-between-reads outlier the paper's §5 warns about.
//! * [`ratio`] — the estimators the merge utility uses to turn those pairs
//!   into a global-to-local ratio `R`: the paper's choice (root mean square
//!   of adjacent slope segments), the rejected RMS-of-all-slopes variant,
//!   the last-pair slope, and the piecewise per-segment fit.
//! * [`filter`] — outlier rejection for clock samples.
//! * [`discrepancy`] — reproduces Figure 1: accumulated timestamp
//!   discrepancies among local clocks against a reference clock.

pub mod discrepancy;
pub mod drift;
pub mod filter;
pub mod global;
pub mod ratio;
pub mod sample;

pub use drift::{ClockParams, LocalClock};
pub use global::GlobalClock;
pub use ratio::{ClockFit, PiecewiseFit, RatioEstimator};
pub use sample::ClockSample;
