//! Figure 1 reproduction: accumulated timestamp discrepancies.
//!
//! "Figure 1 shows the accumulated timestamp discrepancies among 4 local
//! clocks over a period of roughly 140 seconds. ... The elapsed time of a
//! reference clock is used as the x axis. It can be seen that the
//! accumulated discrepancies increase as the elapsed time increases,
//! regardless of the reference clock."
//!
//! [`discrepancy_series`] runs a set of modelled local clocks side by side
//! and reports, for each sampling instant, every clock's deviation from the
//! chosen reference clock. The output is what the figure plots.

use ute_core::time::{Duration, Time};

use crate::drift::{ClockParams, LocalClock};

/// One row of the Figure-1 data: the reference clock's elapsed time and
/// each clock's deviation from the reference, in ticks (signed).
#[derive(Debug, Clone, PartialEq)]
pub struct DiscrepancyRow {
    /// Elapsed time on the reference clock since the first sample, ticks.
    pub reference_elapsed: u64,
    /// `clock_i elapsed − reference elapsed` for every clock, in ticks
    /// (including the reference itself, which is identically zero).
    pub deviation: Vec<i64>,
}

/// Computes accumulated discrepancy series for a set of clocks.
///
/// * `clocks` — parameters for each local clock (e.g. 4 nodes).
/// * `reference` — index of the reference clock (x axis).
/// * `span` — total observed true time (the paper used ~140 s).
/// * `period` — sampling period.
///
/// All clocks are read at the same true instants; deviations are measured
/// between *elapsed* times so constant power-up offsets cancel, exactly as
/// in the figure (which starts every curve at zero).
pub fn discrepancy_series(
    clocks: &[ClockParams],
    reference: usize,
    span: Duration,
    period: Duration,
) -> Vec<DiscrepancyRow> {
    assert!(reference < clocks.len(), "reference index out of range");
    assert!(period > Duration::ZERO, "period must be positive");
    let mut instances: Vec<LocalClock> = clocks.iter().cloned().map(LocalClock::new).collect();
    let first: Vec<u64> = instances
        .iter_mut()
        .map(|c| c.read(Time::ZERO).ticks())
        .collect();

    let mut rows = Vec::new();
    let mut t = Time::ZERO;
    while t.ticks() <= span.ticks() {
        let readings: Vec<u64> = instances.iter_mut().map(|c| c.read(t).ticks()).collect();
        let ref_elapsed = readings[reference] - first[reference];
        let deviation = readings
            .iter()
            .zip(&first)
            .map(|(r, f)| (r - f) as i64 - ref_elapsed as i64)
            .collect();
        rows.push(DiscrepancyRow {
            reference_elapsed: ref_elapsed,
            deviation,
        });
        t += period;
    }
    rows
}

/// The paper's Figure-1 scenario: four nodes with distinct crystal errors,
/// observed for 140 seconds at 1-second sampling.
pub fn figure1_default_params() -> Vec<ClockParams> {
    vec![
        ClockParams {
            offset_ticks: 0,
            freq_error_ppm: 0.0,
            temp_walk_ppm: 0.05,
            temp_bound_ppm: 0.5,
            seed: 11,
            ..ClockParams::default()
        },
        ClockParams {
            offset_ticks: 180_000,
            freq_error_ppm: 14.0,
            temp_walk_ppm: 0.05,
            temp_bound_ppm: 0.5,
            seed: 22,
            ..ClockParams::default()
        },
        ClockParams {
            offset_ticks: -90_000,
            freq_error_ppm: -9.0,
            temp_walk_ppm: 0.05,
            temp_bound_ppm: 0.5,
            seed: 33,
            ..ClockParams::default()
        },
        ClockParams {
            offset_ticks: 40_000,
            freq_error_ppm: 31.0,
            temp_walk_ppm: 0.05,
            temp_bound_ppm: 0.5,
            seed: 44,
            ..ClockParams::default()
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_deviation_is_zero() {
        let rows = discrepancy_series(
            &figure1_default_params(),
            0,
            Duration::from_secs(140),
            Duration::from_secs(1),
        );
        assert_eq!(rows.len(), 141);
        for r in &rows {
            assert_eq!(r.deviation[0], 0);
            assert_eq!(r.deviation.len(), 4);
        }
    }

    #[test]
    fn discrepancy_grows_with_elapsed_time() {
        // The figure's headline property: |deviation| increases over time
        // for clocks with a different rate than the reference.
        let rows = discrepancy_series(
            &figure1_default_params(),
            0,
            Duration::from_secs(140),
            Duration::from_secs(1),
        );
        for clock in 1..4 {
            let early = rows[10].deviation[clock].abs();
            let late = rows[140].deviation[clock].abs();
            assert!(
                late > early * 5,
                "clock {clock}: expected growth, early {early} late {late}"
            );
        }
        // +14 ppm clock gains ~14 µs/s ⇒ ~1.96 ms at 140 s.
        let gained = rows[140].deviation[1];
        assert!(
            (gained - 1_960_000).abs() < 200_000,
            "clock 1 gained {gained} ticks"
        );
    }

    #[test]
    fn property_holds_regardless_of_reference() {
        // "regardless of the reference clock" — re-run with reference 2.
        let rows = discrepancy_series(
            &figure1_default_params(),
            2,
            Duration::from_secs(140),
            Duration::from_secs(1),
        );
        for clock in [0usize, 1, 3] {
            let early = rows[10].deviation[clock].abs();
            let late = rows[140].deviation[clock].abs();
            assert!(late > early, "clock {clock} vs reference 2");
        }
        for r in &rows {
            assert_eq!(r.deviation[2], 0);
        }
    }

    #[test]
    fn offsets_cancel_in_elapsed_deviation() {
        // Two clocks with identical rate but different power-up offsets
        // must show zero accumulated discrepancy.
        let clocks = vec![
            ClockParams::with_ppm(10.0, 0),
            ClockParams::with_ppm(10.0, 5_000),
        ];
        let rows = discrepancy_series(&clocks, 0, Duration::from_secs(50), Duration::from_secs(5));
        for r in &rows {
            assert!(
                r.deviation[1].abs() <= 1,
                "offset leaked: {}",
                r.deviation[1]
            );
        }
    }
}
