//! # ute-stats — the statistics utility and viewer (§3.2)
//!
//! "A statistics utility was developed using the API to generate
//! statistics from interval files. It reads one or more interval files
//! and generates tables specified by a program written in a declarative
//! language."
//!
//! The language is the paper's:
//!
//! ```text
//! table name=sample
//!       condition=(start < 2)
//!       x=("node", node)
//!       x=("processor", cpu)
//!       y=("avg(duration)", dura, avg)
//! ```
//!
//! * `condition` selects intervals (an arithmetic/boolean expression over
//!   the profile's field names — `start` and `dura` are exposed in
//!   seconds);
//! * each `x` declares a free variable of the table;
//! * each `y` declares a dependent value and its aggregator (`avg`,
//!   `sum`, `count`, `min`, `max`).
//!
//! "The generated tables is a tab-separated-value text file" —
//! [`table::Table::to_tsv`]. When no program is given, the pre-defined
//! tables of [`predefined`] are produced (including Figure 6's
//! sum-of-interesting-duration per node × 50 time bins), and
//! [`viewer`] renders them as ASCII heat maps or SVG.

pub mod expr;
pub mod parser;
pub mod predefined;
pub mod runner;
pub mod table;
pub mod viewer;

pub use expr::{EvalContext, Expr};
pub use parser::parse_program;
pub use runner::run_tables;
pub use table::{Agg, Table, TableSpec};
