//! The pre-defined statistics tables (§3.2).
//!
//! "The statistics program generates a set of pre-defined tables when it
//! is not given user-defined table specifications. A statistics viewer
//! was developed to visualize these pre-defined tables."

use crate::parser::parse_program;
use crate::table::TableSpec;

/// The Figure 6 table: "the sum of the duration of interesting intervals
/// per node and per 50 equally sized time bins of the execution of the
/// program. Here, an interesting interval is one for a state other than
/// the default state of Running."
pub const INTERESTING_BY_NODE_BIN: &str = r#"
table name=interesting_by_node_bin
      condition=(interesting)
      x=("node", node)
      x=("bin", bin(start, 50))
      y=("sum(duration)", dura, sum)
"#;

/// Per-MPI-routine call counts and duration statistics.
pub const MPI_BY_ROUTINE: &str = r#"
table name=mpi_by_routine
      condition=(state >= 256)
      x=("routine", state)
      y=("calls", dura, count)
      y=("total(duration)", dura, sum)
      y=("avg(duration)", dura, avg)
      y=("max(duration)", dura, max)
"#;

/// Bytes sent per (source node, peer rank) — the Figure 5 question
/// ("total bytes sent") broken out by destination.
pub const BYTES_BY_NODE_PEER: &str = r#"
table name=bytes_by_node_peer
      condition=(state >= 256 && msgSizeSent > 0)
      x=("node", node)
      x=("peer", peer)
      y=("bytes", msgSizeSent, sum)
      y=("messages", msgSizeSent, count)
"#;

/// Per-thread busy time split by state category.
pub const BUSY_BY_THREAD: &str = r#"
table name=busy_by_thread
      x=("node", node)
      x=("thread", thread)
      x=("interesting", interesting)
      y=("time", dura, sum)
"#;

/// Parses all pre-defined specifications.
pub fn predefined_tables() -> Vec<TableSpec> {
    let mut out = Vec::new();
    for src in [
        INTERESTING_BY_NODE_BIN,
        MPI_BY_ROUTINE,
        BYTES_BY_NODE_PEER,
        BUSY_BY_THREAD,
    ] {
        out.extend(parse_program(src).expect("predefined tables must parse"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_predefined_tables_parse() {
        let t = predefined_tables();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].name, "interesting_by_node_bin");
        assert_eq!(t[0].xs.len(), 2);
        assert_eq!(t[1].name, "mpi_by_routine");
        assert_eq!(t[1].ys.len(), 4);
        assert_eq!(t[2].name, "bytes_by_node_peer");
        assert_eq!(t[3].name, "busy_by_thread");
    }

    #[test]
    fn figure6_table_uses_50_bins() {
        let t = predefined_tables();
        match &t[0].xs[1].1 {
            crate::expr::Expr::TimeBin(_, n) => assert_eq!(*n, 50),
            other => panic!("expected bin expression, got {other:?}"),
        }
    }
}
