//! Table specifications and generated tables.

use std::collections::BTreeMap;

use crate::expr::Expr;

/// Aggregation functions for `y` expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Arithmetic mean.
    Avg,
    /// Sum.
    Sum,
    /// Number of selected records (the expression value is ignored).
    Count,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// Accumulator for one (group, y) cell.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cell {
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl Cell {
    /// Folds one value in.
    pub fn add(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.sum += v;
        self.count += 1;
    }

    /// Finalizes under an aggregator.
    pub fn finish(&self, agg: Agg) -> f64 {
        match agg {
            Agg::Sum => self.sum,
            Agg::Count => self.count as f64,
            Agg::Avg => {
                if self.count == 0 {
                    0.0
                } else {
                    self.sum / self.count as f64
                }
            }
            Agg::Min => self.min,
            Agg::Max => self.max,
        }
    }
}

/// One `table …` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSpec {
    /// Table name.
    pub name: String,
    /// Row filter; `None` selects everything.
    pub condition: Option<Expr>,
    /// Free variables: (label, expression).
    pub xs: Vec<(String, Expr)>,
    /// Dependent values: (label, expression, aggregator).
    pub ys: Vec<(String, Expr, Agg)>,
}

/// Orders f64 group keys totally (NaN sorts last).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Key(pub f64);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A generated table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Column labels of the free variables.
    pub x_labels: Vec<String>,
    /// Column labels of the dependent values.
    pub y_labels: Vec<String>,
    /// Rows sorted by their x tuple.
    pub rows: BTreeMap<Vec<Key>, Vec<f64>>,
}

impl Table {
    /// Renders as tab-separated values, header first — "The generated
    /// tables is a tab-separated-value text file" (§3.2).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for (i, l) in self.x_labels.iter().chain(&self.y_labels).enumerate() {
            if i > 0 {
                out.push('\t');
            }
            out.push_str(l);
        }
        out.push('\n');
        for (xs, ys) in &self.rows {
            let mut first = true;
            for v in xs.iter().map(|k| k.0).chain(ys.iter().copied()) {
                if !first {
                    out.push('\t');
                }
                first = false;
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{}", v as i64));
                } else {
                    out.push_str(&format!("{v:.6}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Looks up one row's y values by x tuple.
    pub fn row(&self, xs: &[f64]) -> Option<&Vec<f64>> {
        let key: Vec<Key> = xs.iter().map(|&v| Key(v)).collect();
        self.rows.get(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_aggregations() {
        let mut c = Cell::default();
        for v in [3.0, 1.0, 2.0] {
            c.add(v);
        }
        assert_eq!(c.finish(Agg::Sum), 6.0);
        assert_eq!(c.finish(Agg::Count), 3.0);
        assert_eq!(c.finish(Agg::Avg), 2.0);
        assert_eq!(c.finish(Agg::Min), 1.0);
        assert_eq!(c.finish(Agg::Max), 3.0);
        assert_eq!(Cell::default().finish(Agg::Avg), 0.0);
    }

    #[test]
    fn tsv_rendering() {
        let mut rows = BTreeMap::new();
        rows.insert(vec![Key(0.0), Key(1.0)], vec![2.5]);
        rows.insert(vec![Key(0.0), Key(0.0)], vec![7.0]);
        let t = Table {
            name: "sample".into(),
            x_labels: vec!["node".into(), "processor".into()],
            y_labels: vec!["avg(duration)".into()],
            rows,
        };
        let tsv = t.to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines[0], "node\tprocessor\tavg(duration)");
        assert_eq!(lines[1], "0\t0\t7");
        assert_eq!(lines[2], "0\t1\t2.500000");
        assert_eq!(t.row(&[0.0, 1.0]), Some(&vec![2.5]));
        assert_eq!(t.row(&[9.0, 9.0]), None);
    }

    #[test]
    fn keys_order_totally() {
        let mut v = [Key(f64::NAN), Key(1.0), Key(-1.0)];
        v.sort();
        assert_eq!(v[0], Key(-1.0));
        assert_eq!(v[1], Key(1.0));
        assert!(v[2].0.is_nan());
    }
}
