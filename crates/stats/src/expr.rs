//! Expressions over interval-record fields.
//!
//! Field names come from the description profile (`node`, `cpu`,
//! `thread`, `dura`, `msgSizeSent`, …). Time-valued fields (`start`,
//! `dura`, `end`) are exposed in *seconds*, matching the paper's example
//! `condition=(start < 2)` meaning "started during the first 2 seconds".
//! Two synthetic fields are provided: `state` (the numeric state code)
//! and `interesting` (1 for states other than Running/clock bookkeeping).
//! The builtin `bin(e, n)` maps a time expression to one of `n` equal
//! bins over the run's span.

use ute_core::error::{Result, UteError};
use ute_core::time::TICKS_PER_SEC;
use ute_format::profile::Profile;
use ute_format::record::Interval;

/// Evaluation context: the run's time span (for `bin`).
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalContext {
    /// Span start, seconds.
    pub span_start: f64,
    /// Span end, seconds.
    pub span_end: f64,
}

/// A parsed expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A numeric literal.
    Num(f64),
    /// A field reference by name.
    Field(String),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// `bin(expr, n)`: which of `n` equal time bins `expr` falls in.
    TimeBin(Box<Expr>, u32),
}

/// Binary operators, loosest first in precedence climbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    /// Precedence level (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div => 5,
        }
    }
}

fn truthy(v: f64) -> bool {
    v != 0.0
}

fn field_value(profile: &Profile, iv: &Interval, name: &str) -> Result<f64> {
    Ok(match name {
        "start" => iv.start as f64 / TICKS_PER_SEC as f64,
        "dura" | "duration" => iv.duration as f64 / TICKS_PER_SEC as f64,
        "end" => iv.end() as f64 / TICKS_PER_SEC as f64,
        "node" => iv.node.raw() as f64,
        "cpu" | "processor" => iv.cpu.raw() as f64,
        "thread" => iv.thread.raw() as f64,
        "recType" => iv.itype.to_u32() as f64,
        "state" => iv.itype.state.0 as f64,
        "interesting" => {
            if iv.itype.state.is_interesting() {
                1.0
            } else {
                0.0
            }
        }
        other => iv
            .extra(profile, other)
            .and_then(|v| v.as_float())
            .ok_or_else(|| {
                UteError::NotFound(format!("field {other} on a {} record", iv.itype.state))
            })?,
    })
}

impl Expr {
    /// Evaluates against one interval record.
    pub fn eval(&self, ctx: &EvalContext, profile: &Profile, iv: &Interval) -> Result<f64> {
        Ok(match self {
            Expr::Num(v) => *v,
            Expr::Field(name) => field_value(profile, iv, name)?,
            Expr::Neg(e) => -e.eval(ctx, profile, iv)?,
            Expr::TimeBin(e, n) => {
                let t = e.eval(ctx, profile, iv)?;
                let span = (ctx.span_end - ctx.span_start).max(f64::MIN_POSITIVE);
                let b = ((t - ctx.span_start) / span * *n as f64).floor();
                b.clamp(0.0, *n as f64 - 1.0)
            }
            Expr::Bin(op, a, b) => {
                let x = a.eval(ctx, profile, iv)?;
                match op {
                    // Short-circuiting boolean ops.
                    BinOp::And => {
                        if !truthy(x) {
                            0.0
                        } else if truthy(b.eval(ctx, profile, iv)?) {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    BinOp::Or => {
                        if truthy(x) || truthy(b.eval(ctx, profile, iv)?) {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    _ => {
                        let y = b.eval(ctx, profile, iv)?;
                        match op {
                            BinOp::Eq => (x == y) as u8 as f64,
                            BinOp::Ne => (x != y) as u8 as f64,
                            BinOp::Lt => (x < y) as u8 as f64,
                            BinOp::Le => (x <= y) as u8 as f64,
                            BinOp::Gt => (x > y) as u8 as f64,
                            BinOp::Ge => (x >= y) as u8 as f64,
                            BinOp::Add => x + y,
                            BinOp::Sub => x - y,
                            BinOp::Mul => x * y,
                            BinOp::Div => x / y,
                            BinOp::And | BinOp::Or => unreachable!(),
                        }
                    }
                }
            }
        })
    }

    /// Convenience constructor for a field reference.
    pub fn field(name: &str) -> Expr {
        Expr::Field(name.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ute_core::ids::{CpuId, LogicalThreadId, NodeId};
    use ute_format::record::IntervalType;
    use ute_format::state::StateCode;
    use ute_format::value::Value;

    fn iv(profile: &Profile) -> Interval {
        Interval::basic(
            IntervalType::complete(StateCode::mpi(ute_core::event::MpiOp::Send)),
            1_500_000_000, // 1.5 s
            250_000_000,   // 0.25 s
            CpuId(2),
            NodeId(1),
            LogicalThreadId(3),
        )
        .with_extra(profile, "rank", Value::Uint(4))
        .with_extra(profile, "peer", Value::Uint(0))
        .with_extra(profile, "tag", Value::Uint(9))
        .with_extra(profile, "msgSizeSent", Value::Uint(4096))
        .with_extra(profile, "seq", Value::Uint(1))
        .with_extra(profile, "address", Value::Uint(0))
    }

    fn eval(e: &Expr) -> f64 {
        let p = Profile::standard();
        let ctx = EvalContext {
            span_start: 0.0,
            span_end: 10.0,
        };
        e.eval(&ctx, &p, &iv(&p)).unwrap()
    }

    #[test]
    fn field_access_in_seconds() {
        assert_eq!(eval(&Expr::field("start")), 1.5);
        assert_eq!(eval(&Expr::field("dura")), 0.25);
        assert_eq!(eval(&Expr::field("end")), 1.75);
        assert_eq!(eval(&Expr::field("node")), 1.0);
        assert_eq!(eval(&Expr::field("cpu")), 2.0);
        assert_eq!(eval(&Expr::field("msgSizeSent")), 4096.0);
        assert_eq!(eval(&Expr::field("interesting")), 1.0);
    }

    #[test]
    fn arithmetic_and_comparison() {
        let e = Expr::Bin(
            BinOp::Lt,
            Box::new(Expr::field("start")),
            Box::new(Expr::Num(2.0)),
        );
        assert_eq!(eval(&e), 1.0);
        let e = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::field("start")),
            Box::new(Expr::Neg(Box::new(Expr::Num(0.5)))),
        );
        assert_eq!(eval(&e), 1.0);
        let e = Expr::Bin(
            BinOp::And,
            Box::new(Expr::field("interesting")),
            Box::new(Expr::Bin(
                BinOp::Ge,
                Box::new(Expr::field("msgSizeSent")),
                Box::new(Expr::Num(4096.0)),
            )),
        );
        assert_eq!(eval(&e), 1.0);
    }

    #[test]
    fn time_bins() {
        // 1.5 s into a 10 s span with 50 bins → bin 7.
        let e = Expr::TimeBin(Box::new(Expr::field("start")), 50);
        assert_eq!(eval(&e), 7.0);
        // Values past the end clamp into the last bin.
        let e = Expr::TimeBin(Box::new(Expr::Num(99.0)), 50);
        assert_eq!(eval(&e), 49.0);
        let e = Expr::TimeBin(Box::new(Expr::Num(-1.0)), 50);
        assert_eq!(eval(&e), 0.0);
    }

    #[test]
    fn unknown_field_errors() {
        let p = Profile::standard();
        let ctx = EvalContext::default();
        let e = Expr::field("bogus");
        assert!(e.eval(&ctx, &p, &iv(&p)).is_err());
        // A field another record type has, but Send doesn't.
        let e = Expr::field("markerId");
        assert!(e.eval(&ctx, &p, &iv(&p)).is_err());
    }

    #[test]
    fn short_circuit_avoids_errors() {
        // interesting && markerId — markerId is missing on a Send record,
        // but the left side is evaluated first; when it is 0 the right
        // side must not be evaluated.
        let p = Profile::standard();
        let ctx = EvalContext::default();
        let running = Interval::basic(
            IntervalType::complete(StateCode::RUNNING),
            0,
            1,
            CpuId(0),
            NodeId(0),
            LogicalThreadId(0),
        );
        let e = Expr::Bin(
            BinOp::And,
            Box::new(Expr::field("interesting")),
            Box::new(Expr::field("markerId")),
        );
        assert_eq!(e.eval(&ctx, &p, &running).unwrap(), 0.0);
    }
}
