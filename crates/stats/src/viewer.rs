//! The statistics viewer (§3.2, Figure 6).
//!
//! Renders generated tables headlessly: an ASCII heat map for
//! two-free-variable tables (Figure 6 is node × time-bin), an ASCII bar
//! chart for one-free-variable tables, and SVG equivalents of both.

use ute_core::error::{Result, UteError};

use crate::table::Table;

const SHADES: [char; 9] = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];

fn max_y(table: &Table, y_idx: usize) -> f64 {
    table
        .rows
        .values()
        .map(|ys| ys[y_idx])
        .fold(0.0_f64, f64::max)
}

/// ASCII heat map of a table with exactly two free variables: rows from
/// the first x, columns from the second, intensity from the y value.
pub fn heatmap_ascii(table: &Table, y_idx: usize) -> Result<String> {
    if table.x_labels.len() != 2 {
        return Err(UteError::Invalid(format!(
            "heatmap needs 2 free variables, table `{}` has {}",
            table.name,
            table.x_labels.len()
        )));
    }
    let mut rows: Vec<f64> = Vec::new();
    let mut cols: Vec<f64> = Vec::new();
    for key in table.rows.keys() {
        if !rows.contains(&key[0].0) {
            rows.push(key[0].0);
        }
        if !cols.contains(&key[1].0) {
            cols.push(key[1].0);
        }
    }
    rows.sort_by(f64::total_cmp);
    cols.sort_by(f64::total_cmp);
    let peak = max_y(table, y_idx).max(f64::MIN_POSITIVE);
    let mut out = format!(
        "{} — {} (rows: {}, cols: {})\n",
        table.name, table.y_labels[y_idx], table.x_labels[0], table.x_labels[1]
    );
    for r in &rows {
        out.push_str(&format!("{:>8} |", format!("{r:.0}")));
        for c in &cols {
            let v = table.row(&[*r, *c]).map(|ys| ys[y_idx]).unwrap_or(0.0);
            let shade = ((v / peak) * (SHADES.len() - 1) as f64).round() as usize;
            out.push(SHADES[shade.min(SHADES.len() - 1)]);
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(cols.len())));
    Ok(out)
}

/// ASCII bar chart for a table with exactly one free variable.
pub fn bars_ascii(table: &Table, y_idx: usize, width: usize) -> Result<String> {
    if table.x_labels.len() != 1 {
        return Err(UteError::Invalid(format!(
            "bar chart needs 1 free variable, table `{}` has {}",
            table.name,
            table.x_labels.len()
        )));
    }
    let peak = max_y(table, y_idx).max(f64::MIN_POSITIVE);
    let mut out = format!("{} — {}\n", table.name, table.y_labels[y_idx]);
    for (key, ys) in &table.rows {
        let v = ys[y_idx];
        let n = ((v / peak) * width as f64).round() as usize;
        out.push_str(&format!(
            "{:>10} | {:<width$} {:.6}\n",
            format!("{:.0}", key[0].0),
            "█".repeat(n),
            v,
            width = width
        ));
    }
    Ok(out)
}

/// SVG heat map of a two-free-variable table (the Figure 6 viewer).
pub fn heatmap_svg(table: &Table, y_idx: usize, cell: u32) -> Result<String> {
    if table.x_labels.len() != 2 {
        return Err(UteError::Invalid("heatmap needs 2 free variables".into()));
    }
    let mut rows: Vec<f64> = Vec::new();
    let mut cols: Vec<f64> = Vec::new();
    for key in table.rows.keys() {
        if !rows.contains(&key[0].0) {
            rows.push(key[0].0);
        }
        if !cols.contains(&key[1].0) {
            cols.push(key[1].0);
        }
    }
    rows.sort_by(f64::total_cmp);
    cols.sort_by(f64::total_cmp);
    let peak = max_y(table, y_idx).max(f64::MIN_POSITIVE);
    let margin = 60u32;
    let w = margin + cols.len() as u32 * cell + 10;
    let h = 30 + rows.len() as u32 * cell + 10;
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\">\n\
         <text x=\"4\" y=\"16\" font-family=\"monospace\" font-size=\"12\">{} — {}</text>\n",
        table.name, table.y_labels[y_idx]
    );
    for (ri, r) in rows.iter().enumerate() {
        svg.push_str(&format!(
            "<text x=\"4\" y=\"{}\" font-family=\"monospace\" font-size=\"10\">{} {:.0}</text>\n",
            30 + ri as u32 * cell + cell / 2 + 4,
            table.x_labels[0],
            r
        ));
        for (ci, c) in cols.iter().enumerate() {
            let v = table.row(&[*r, *c]).map(|ys| ys[y_idx]).unwrap_or(0.0);
            let frac = (v / peak).clamp(0.0, 1.0);
            let shade = (255.0 - frac * 200.0) as u32;
            svg.push_str(&format!(
                "<rect x=\"{}\" y=\"{}\" width=\"{cell}\" height=\"{cell}\" \
                 fill=\"rgb({shade},{shade},255)\" stroke=\"#ccc\"/>\n",
                margin + ci as u32 * cell,
                30 + ri as u32 * cell,
            ));
        }
    }
    svg.push_str("</svg>\n");
    Ok(svg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Key;
    use std::collections::BTreeMap;

    fn two_x_table() -> Table {
        let mut rows = BTreeMap::new();
        for node in 0..2 {
            for bin in 0..5 {
                rows.insert(
                    vec![Key(node as f64), Key(bin as f64)],
                    vec![(node + 1) as f64 * bin as f64],
                );
            }
        }
        Table {
            name: "interesting_by_node_bin".into(),
            x_labels: vec!["node".into(), "bin".into()],
            y_labels: vec!["sum(duration)".into()],
            rows,
        }
    }

    #[test]
    fn heatmap_ascii_shape() {
        let t = two_x_table();
        let s = heatmap_ascii(&t, 0).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header + 2 rows + axis
        assert!(lines[1].contains('|'));
        // Peak cell (node 1, bin 4) renders the darkest shade.
        assert!(lines[2].ends_with('@'), "line: {:?}", lines[2]);
    }

    #[test]
    fn heatmap_rejects_wrong_arity() {
        let mut t = two_x_table();
        t.x_labels.pop();
        assert!(heatmap_ascii(&t, 0).is_err());
        assert!(heatmap_svg(&t, 0, 8).is_err());
    }

    #[test]
    fn bars_render() {
        let mut rows = BTreeMap::new();
        rows.insert(vec![Key(0.0)], vec![1.0]);
        rows.insert(vec![Key(1.0)], vec![4.0]);
        let t = Table {
            name: "t".into(),
            x_labels: vec!["node".into()],
            y_labels: vec!["time".into()],
            rows,
        };
        let s = bars_ascii(&t, 0, 20).unwrap();
        assert!(s.contains("████████████████████")); // the peak bar
        assert!(bars_ascii(&two_x_table(), 0, 10).is_err());
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let t = two_x_table();
        let svg = heatmap_svg(&t, 0, 10).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<rect").count(), 10);
    }
}

/// Renders a table whose first free variable is a state code (like the
/// pre-defined `mpi_by_routine`) with routine *names* instead of numeric
/// codes — the form the statistics viewer shows users.
pub fn named_routine_table(table: &Table) -> Result<String> {
    if table.x_labels.is_empty() {
        return Err(UteError::Invalid(
            "routine table needs the routine as its first free variable".into(),
        ));
    }
    let mut out = String::new();
    out.push_str(&table.x_labels[0]);
    for l in table.x_labels.iter().skip(1).chain(&table.y_labels) {
        out.push('\t');
        out.push_str(l);
    }
    out.push('\n');
    for (xs, ys) in &table.rows {
        let code = xs[0].0 as u16;
        out.push_str(&ute_format::state::StateCode(code).name());
        for v in xs.iter().skip(1).map(|k| k.0).chain(ys.iter().copied()) {
            out.push('\t');
            if v.fract() == 0.0 && v.abs() < 1e15 {
                out.push_str(&format!("{}", v as i64));
            } else {
                out.push_str(&format!("{v:.6}"));
            }
        }
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod named_tests {
    use super::*;
    use crate::table::Key;
    use std::collections::BTreeMap;
    use ute_core::event::MpiOp;
    use ute_format::state::StateCode;

    #[test]
    fn routine_codes_become_names() {
        let mut rows = BTreeMap::new();
        rows.insert(
            vec![Key(StateCode::mpi(MpiOp::Send).0 as f64)],
            vec![3.0, 0.25],
        );
        rows.insert(
            vec![Key(StateCode::mpi(MpiOp::Allreduce).0 as f64)],
            vec![1.0, 0.5],
        );
        let t = Table {
            name: "mpi_by_routine".into(),
            x_labels: vec!["routine".into()],
            y_labels: vec!["calls".into(), "total(duration)".into()],
            rows,
        };
        let s = named_routine_table(&t).unwrap();
        assert!(s.contains("MPI_Send\t3\t0.250000"), "{s}");
        assert!(s.contains("MPI_Allreduce\t1\t0.500000"));
        let empty = Table {
            name: "x".into(),
            x_labels: vec![],
            y_labels: vec![],
            rows: BTreeMap::new(),
        };
        assert!(named_routine_table(&empty).is_err());
    }
}
